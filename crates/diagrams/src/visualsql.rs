//! **Visual SQL** (Jaakkola & Thalheim, ER Workshops 2003) — an ER-based
//! visual query language that also supports query *visualization*.
//!
//! The tutorial's key observation about Visual SQL is its deliberate
//! **one-to-one correspondence to SQL syntax**: every clause of the query
//! text appears as a visual element, in the order and nesting the text
//! uses. The price is *syntactic sensitivity* — "syntactic variants of
//! the same query lead to different representations". `NOT IN` and
//! `NOT EXISTS` phrasings of the very same relational pattern produce
//! visibly different diagrams, whereas logic-based formalisms such as
//! Relational Diagrams converge on one picture (experiment E9 measures
//! exactly this contrast).
//!
//! ## Model
//!
//! The diagram mirrors the query's parse tree:
//!
//! * one [`Frame`] per `SELECT` block, carrying the projection header, the
//!   `FROM` tables (in source order) and the `WHERE` conjuncts as
//!   condition *strips* (in source order);
//! * a subquery becomes a nested frame hung off its host strip, with the
//!   **syntactic connective** (`IN`, `NOT EXISTS`, `>= ALL`, …) as the
//!   edge label — the element that makes variants distinguishable;
//! * set operations mirror the `UNION`/`INTERSECT`/`EXCEPT` tree.
//!
//! [`VisualSqlDiagram::fingerprint`] canonicalizes everything *except*
//! the syntactic choices (aliases are renamed by order of appearance), so
//! two queries collide exactly when Visual SQL would draw the same
//! picture.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use relviz_model::Database;
use relviz_render::{Scene, TextStyle};
use relviz_sql::ast::{Cond, Query, SelectItem, SelectStmt, SetOpKind};
use relviz_sql::printer;

use crate::common::{DiagError, DiagResult};

/// A condition strip inside a frame: either an atomic predicate shown as
/// text, or a connective hanging a nested subquery frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Strip {
    /// Atomic predicate, displayed verbatim.
    Predicate(String),
    /// `expr <connective> (subquery)` — the subquery lives in `frame`
    /// (an index into [`VisualSqlDiagram::nodes`]).
    Connective { lhs: Option<String>, label: String, node: usize },
    /// An `OR` / explicit `NOT` group of strips (kept as a group because
    /// Visual SQL renders the boolean structure of the text).
    Group { op: String, parts: Vec<Strip> },
}

/// One `SELECT` block mirrored as a frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    pub distinct: bool,
    /// Projection header entries, in source order.
    pub select: Vec<String>,
    /// `FROM` tables as (table, effective alias), in source order.
    pub tables: Vec<(String, String)>,
    /// Condition strips, in source order.
    pub strips: Vec<Strip>,
}

/// A node of the mirrored set-operation tree.
#[derive(Debug, Clone, PartialEq)]
pub enum VNode {
    Select(Frame),
    SetOp { op: SetOpKind, left: usize, right: usize },
}

/// A Visual SQL diagram: a tree of frames mirroring the SQL text.
#[derive(Debug, Clone, PartialEq)]
pub struct VisualSqlDiagram {
    /// All nodes; `root` is the entry point. Subquery frames referenced
    /// from strips are also stored here.
    pub nodes: Vec<VNode>,
    pub root: usize,
}

impl VisualSqlDiagram {
    /// Builds the diagram from SQL text. The query is name-resolved first
    /// (Visual SQL is a faithful mirror, but only of *valid* SQL).
    pub fn from_sql(sql: &str, db: &Database) -> DiagResult<VisualSqlDiagram> {
        let q = relviz_sql::parser::parse_query(sql)
            .map_err(|e| DiagError::Lang(e.to_string()))?;
        let q = relviz_sql::analyze::resolve(&q, db)
            .map_err(|e| DiagError::Lang(e.to_string()))?;
        Self::from_ast(&q)
    }

    /// Builds the diagram from a resolved AST.
    pub fn from_ast(q: &Query) -> DiagResult<VisualSqlDiagram> {
        let mut d = VisualSqlDiagram { nodes: Vec::new(), root: 0 };
        d.root = d.build_node(q)?;
        Ok(d)
    }

    fn build_node(&mut self, q: &Query) -> DiagResult<usize> {
        match q {
            Query::Select(s) => {
                let frame = self.build_frame(s)?;
                self.nodes.push(VNode::Select(frame));
                Ok(self.nodes.len() - 1)
            }
            Query::SetOp { op, left, right } => {
                let l = self.build_node(left)?;
                let r = self.build_node(right)?;
                self.nodes.push(VNode::SetOp { op: *op, left: l, right: r });
                Ok(self.nodes.len() - 1)
            }
        }
    }

    fn build_frame(&mut self, s: &SelectStmt) -> DiagResult<Frame> {
        let select = s
            .items
            .iter()
            .map(|item| match item {
                SelectItem::Wildcard => "*".to_string(),
                SelectItem::QualifiedWildcard(q) => format!("{q}.*"),
                SelectItem::Expr { expr, alias } => {
                    let mut t = printer::print_scalar(expr);
                    if let Some(a) = alias {
                        let _ = write!(t, " AS {a}");
                    }
                    t
                }
            })
            .collect();
        let tables = s
            .from
            .iter()
            .map(|t| (t.table.clone(), t.effective_name().to_string()))
            .collect();
        let mut strips = Vec::new();
        if let Some(w) = &s.where_clause {
            self.build_strips(w, &mut strips)?;
        }
        Ok(Frame { distinct: s.distinct, select, tables, strips })
    }

    /// Flattens the top-level conjunction into strips (mirroring how
    /// Visual SQL stacks `AND`-ed conditions), but keeps `OR`/`NOT`
    /// structure as explicit groups.
    fn build_strips(&mut self, c: &Cond, out: &mut Vec<Strip>) -> DiagResult<()> {
        match c {
            Cond::And(a, b) => {
                self.build_strips(a, out)?;
                self.build_strips(b, out)?;
            }
            other => out.push(self.build_strip(other)?),
        }
        Ok(())
    }

    fn build_strip(&mut self, c: &Cond) -> DiagResult<Strip> {
        Ok(match c {
            Cond::Exists { negated, query } => {
                let node = self.build_node(query)?;
                Strip::Connective {
                    lhs: None,
                    label: if *negated { "NOT EXISTS".into() } else { "EXISTS".into() },
                    node,
                }
            }
            Cond::InSubquery { expr, negated, query } => {
                let node = self.build_node(query)?;
                Strip::Connective {
                    lhs: Some(printer::print_scalar(expr)),
                    label: if *negated { "NOT IN".into() } else { "IN".into() },
                    node,
                }
            }
            Cond::QuantCmp { left, op, quant, query } => {
                let node = self.build_node(query)?;
                let quant = match quant {
                    relviz_sql::ast::Quant::Any => "ANY",
                    relviz_sql::ast::Quant::All => "ALL",
                };
                Strip::Connective {
                    lhs: Some(printer::print_scalar(left)),
                    label: format!("{} {quant}", op.symbol()),
                    node,
                }
            }
            Cond::Or(a, b) => {
                let mut parts = Vec::new();
                // Flatten the OR spine but keep it one group.
                fn spine<'c>(c: &'c Cond, acc: &mut Vec<&'c Cond>) {
                    if let Cond::Or(a, b) = c {
                        spine(a, acc);
                        spine(b, acc);
                    } else {
                        acc.push(c);
                    }
                }
                let mut leaves = Vec::new();
                spine(a, &mut leaves);
                spine(b, &mut leaves);
                for leaf in leaves {
                    parts.push(self.build_strip(leaf)?);
                }
                Strip::Group { op: "OR".into(), parts }
            }
            Cond::Not(inner) => {
                Strip::Group { op: "NOT".into(), parts: vec![self.build_strip(inner)?] }
            }
            atomic => Strip::Predicate(printer::print_cond(atomic)),
        })
    }

    // ---- structure metrics -------------------------------------------------

    /// Element census: (frames, set-op nodes, tables, strips incl. nested
    /// group parts, connective edges).
    pub fn census(&self) -> (usize, usize, usize, usize, usize) {
        fn strip_count(s: &Strip) -> (usize, usize) {
            match s {
                Strip::Predicate(_) => (1, 0),
                Strip::Connective { .. } => (1, 1),
                Strip::Group { parts, .. } => {
                    let mut strips = 1;
                    let mut edges = 0;
                    for p in parts {
                        let (s, e) = strip_count(p);
                        strips += s;
                        edges += e;
                    }
                    (strips, edges)
                }
            }
        }
        let mut frames = 0;
        let mut setops = 0;
        let mut tables = 0;
        let mut strips = 0;
        let mut edges = 0;
        for n in &self.nodes {
            match n {
                VNode::Select(f) => {
                    frames += 1;
                    tables += f.tables.len();
                    for s in &f.strips {
                        let (sc, ec) = strip_count(s);
                        strips += sc;
                        edges += ec;
                    }
                }
                VNode::SetOp { .. } => setops += 1,
            }
        }
        (frames, setops, tables, strips, edges)
    }

    /// A canonical structural fingerprint. Table aliases are renamed by
    /// order of first appearance (`v1`, `v2`, …) so the fingerprint is
    /// insensitive to alias *names* — but fully sensitive to every
    /// *syntactic* choice (connectives, clause order, nesting), which is
    /// Visual SQL's defining property.
    pub fn fingerprint(&self) -> String {
        let mut renames: BTreeMap<String, String> = BTreeMap::new();
        // First pass: collect aliases in frame/table order.
        fn collect(d: &VisualSqlDiagram, node: usize, renames: &mut BTreeMap<String, String>) {
            match &d.nodes[node] {
                VNode::Select(f) => {
                    for (_, alias) in &f.tables {
                        if !renames.contains_key(alias) {
                            let v = format!("v{}", renames.len() + 1);
                            renames.insert(alias.clone(), v);
                        }
                    }
                    for s in &f.strips {
                        collect_strip(d, s, renames);
                    }
                }
                VNode::SetOp { left, right, .. } => {
                    collect(d, *left, renames);
                    collect(d, *right, renames);
                }
            }
        }
        fn collect_strip(
            d: &VisualSqlDiagram,
            s: &Strip,
            renames: &mut BTreeMap<String, String>,
        ) {
            match s {
                Strip::Connective { node, .. } => collect(d, *node, renames),
                Strip::Group { parts, .. } => {
                    for p in parts {
                        collect_strip(d, p, renames);
                    }
                }
                Strip::Predicate(_) => {}
            }
        }
        collect(self, self.root, &mut renames);
        let table_alias = renames.clone();
        let rewrite = move |text: &str| rename_qualifiers(text, &renames);

        let mut out = String::new();
        fn emit(
            d: &VisualSqlDiagram,
            node: usize,
            out: &mut String,
            rw: &dyn Fn(&str) -> String,
            table_alias: &BTreeMap<String, String>,
        ) {
            match &d.nodes[node] {
                VNode::Select(f) => {
                    let _ = write!(out, "select[distinct={}](", f.distinct);
                    for s in &f.select {
                        let _ = write!(out, "{};", rw(s));
                    }
                    out.push_str(")from(");
                    for (t, a) in &f.tables {
                        let canon = table_alias.get(a).cloned().unwrap_or_else(|| a.clone());
                        let _ = write!(out, "{t} {canon};");
                    }
                    out.push_str(")where(");
                    for s in &f.strips {
                        emit_strip(d, s, out, rw, table_alias);
                    }
                    out.push(')');
                }
                VNode::SetOp { op, left, right } => {
                    let _ = write!(out, "{}(", op.keyword());
                    emit(d, *left, out, rw, table_alias);
                    out.push(',');
                    emit(d, *right, out, rw, table_alias);
                    out.push(')');
                }
            }
        }
        fn emit_strip(
            d: &VisualSqlDiagram,
            s: &Strip,
            out: &mut String,
            rw: &dyn Fn(&str) -> String,
            table_alias: &BTreeMap<String, String>,
        ) {
            match s {
                Strip::Predicate(p) => {
                    let _ = write!(out, "[{}]", rw(p));
                }
                Strip::Connective { lhs, label, node } => {
                    let _ = write!(
                        out,
                        "[{} {label} ",
                        lhs.as_deref().map(rw).unwrap_or_default()
                    );
                    emit(d, *node, out, rw, table_alias);
                    out.push(']');
                }
                Strip::Group { op, parts } => {
                    let _ = write!(out, "[{op}:");
                    for p in parts {
                        emit_strip(d, p, out, rw, table_alias);
                    }
                    out.push(']');
                }
            }
        }
        emit(self, self.root, &mut out, &rewrite, &table_alias);
        out
    }

    /// Structural isomorphism: same picture modulo alias names.
    pub fn isomorphic(&self, other: &VisualSqlDiagram) -> bool {
        self.fingerprint() == other.fingerprint()
    }

    // ---- rendering -----------------------------------------------------

    /// Scene: frames as rounded boxes (header = projection, body = table
    /// row + condition strips), nested frames drawn inside their host
    /// strip, connective labels on the hanging edge.
    pub fn scene(&self) -> Scene {
        let mut scene = Scene::new(0.0, 0.0);
        let mut y = 20.0;
        self.draw_node(self.root, 20.0, &mut y, &mut scene);
        scene.fit(10.0);
        scene
    }

    fn draw_node(&self, node: usize, x: f64, y: &mut f64, scene: &mut Scene) -> (f64, f64) {
        const LINE_H: f64 = 18.0;
        const W: f64 = 330.0;
        match &self.nodes[node] {
            VNode::Select(f) => {
                let top = *y;
                let mut cy = top + 4.0;
                let header = format!(
                    "SELECT{} {}",
                    if f.distinct { " DISTINCT" } else { "" },
                    f.select.join(", ")
                );
                scene.styled_text(
                    x + 8.0,
                    cy + 12.0,
                    header,
                    TextStyle { size: 12.0, bold: true, ..TextStyle::default() },
                );
                cy += LINE_H;
                // Table row.
                let mut tx = x + 8.0;
                for (t, a) in &f.tables {
                    let label = if t == a { t.clone() } else { format!("{t} {a}") };
                    let w = Scene::text_width(&label, 11.0) + 14.0;
                    scene.rect(tx, cy, w, LINE_H);
                    scene.text(tx + 7.0, cy + 13.0, label);
                    tx += w + 8.0;
                }
                cy += LINE_H + 6.0;
                // Strips.
                for s in &f.strips {
                    cy = self.draw_strip(s, x + 8.0, cy, scene);
                }
                let h = (cy - top).max(2.0 * LINE_H) + 6.0;
                scene.styled_rect(x, top, W, h, 8.0, "#333333", "none", 1.2, false);
                *y = top + h + 14.0;
                (x, top)
            }
            VNode::SetOp { op, left, right } => {
                let top = *y;
                scene.styled_text(
                    x + 4.0,
                    top + 12.0,
                    op.keyword().to_string(),
                    TextStyle { size: 12.0, bold: true, ..TextStyle::default() },
                );
                *y = top + 22.0;
                self.draw_node(*left, x + 16.0, y, scene);
                self.draw_node(*right, x + 16.0, y, scene);
                (x, top)
            }
        }
    }

    fn draw_strip(&self, s: &Strip, x: f64, mut cy: f64, scene: &mut Scene) -> f64 {
        const LINE_H: f64 = 18.0;
        match s {
            Strip::Predicate(p) => {
                let w = Scene::text_width(p, 11.0) + 12.0;
                scene.styled_rect(x, cy, w, LINE_H - 2.0, 2.0, "#777777", "none", 0.8, false);
                scene.text(x + 6.0, cy + 12.0, p.clone());
                cy + LINE_H
            }
            Strip::Connective { lhs, label, node } => {
                let text = match lhs {
                    Some(l) => format!("{l} {label}"),
                    None => label.clone(),
                };
                let w = Scene::text_width(&text, 11.0) + 12.0;
                scene.styled_rect(x, cy, w, LINE_H - 2.0, 2.0, "#777777", "none", 0.8, false);
                scene.styled_text(
                    x + 6.0,
                    cy + 12.0,
                    text,
                    TextStyle { size: 11.0, italic: true, ..TextStyle::default() },
                );
                // Hang the subquery frame below, connected by a short edge.
                let mut sub_y = cy + LINE_H + 6.0;
                scene.line(x + w / 2.0, cy + LINE_H - 2.0, x + w / 2.0, sub_y);
                self.draw_node(*node, x + 18.0, &mut sub_y, scene);
                sub_y
            }
            Strip::Group { op, parts } => {
                scene.styled_text(
                    x,
                    cy + 12.0,
                    op.clone(),
                    TextStyle { size: 11.0, bold: true, ..TextStyle::default() },
                );
                cy += LINE_H - 4.0;
                for p in parts {
                    cy = self.draw_strip(p, x + 22.0, cy, scene);
                }
                cy + 4.0
            }
        }
    }
}

/// Rewrites `alias.attr` qualifiers in predicate text using the rename
/// map. Tokenizes on identifier boundaries so `S.sid` renames while the
/// string literal `'S.sid'` does not. Shared with [`crate::sqlvis`], the
/// other syntax-mirroring formalism.
pub(crate) fn rename_qualifiers(text: &str, renames: &BTreeMap<String, String>) -> String {
    let mut out = String::with_capacity(text.len());
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\'' {
            // Copy string literal verbatim.
            let start = i;
            i += 1;
            while i < bytes.len() && bytes[i] as char != '\'' {
                i += 1;
            }
            i = (i + 1).min(bytes.len());
            out.push_str(&text[start..i]);
        } else if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && ((bytes[i] as char).is_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let word = &text[start..i];
            // Qualifier position: followed by a dot.
            let qualifies = bytes.get(i) == Some(&b'.');
            match renames.get(word) {
                Some(v) if qualifies => out.push_str(v),
                _ => out.push_str(word),
            }
        } else {
            out.push(c);
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use relviz_model::catalog::sailors_sample;

    const Q4_NOT_EXISTS: &str = "SELECT S.sname FROM Sailor S WHERE NOT EXISTS \
        (SELECT * FROM Reserves R, Boat B \
         WHERE R.sid = S.sid AND R.bid = B.bid AND B.color = 'red')";
    const Q4_NOT_IN: &str = "SELECT S.sname FROM Sailor S WHERE S.sid NOT IN \
        (SELECT R.sid FROM Reserves R, Boat B \
         WHERE R.bid = B.bid AND B.color = 'red')";

    #[test]
    fn mirrors_frame_structure() {
        let db = sailors_sample();
        let d = VisualSqlDiagram::from_sql(Q4_NOT_EXISTS, &db).unwrap();
        let (frames, setops, tables, strips, edges) = d.census();
        assert_eq!(frames, 2);
        assert_eq!(setops, 0);
        assert_eq!(tables, 3);
        assert_eq!(edges, 1, "one NOT EXISTS connective");
        assert!(strips >= 4, "three inner predicates + the connective strip: {strips}");
    }

    #[test]
    fn syntactic_variants_differ() {
        // The tutorial's point about syntax-mirroring formalisms: the same
        // relational pattern phrased two ways yields two pictures.
        let db = sailors_sample();
        let a = VisualSqlDiagram::from_sql(Q4_NOT_EXISTS, &db).unwrap();
        let b = VisualSqlDiagram::from_sql(Q4_NOT_IN, &db).unwrap();
        assert!(!a.isomorphic(&b));
        // …even though both queries mean the same thing:
        let ra = relviz_sql::eval::run_sql(Q4_NOT_EXISTS, &db).unwrap();
        let rb = relviz_sql::eval::run_sql(Q4_NOT_IN, &db).unwrap();
        assert!(ra.same_contents(&rb));
    }

    #[test]
    fn alias_renaming_is_invisible() {
        let db = sailors_sample();
        let a = VisualSqlDiagram::from_sql(
            "SELECT DISTINCT S.sname FROM Sailor S, Reserves R \
             WHERE S.sid = R.sid AND R.bid = 102",
            &db,
        )
        .unwrap();
        let b = VisualSqlDiagram::from_sql(
            "SELECT DISTINCT X.sname FROM Sailor X, Reserves Y \
             WHERE X.sid = Y.sid AND Y.bid = 102",
            &db,
        )
        .unwrap();
        assert!(a.isomorphic(&b));
    }

    #[test]
    fn clause_order_is_visible() {
        // Reordering conjuncts is a syntactic change ⇒ different picture.
        let db = sailors_sample();
        let a = VisualSqlDiagram::from_sql(
            "SELECT DISTINCT S.sname FROM Sailor S, Reserves R \
             WHERE S.sid = R.sid AND R.bid = 102",
            &db,
        )
        .unwrap();
        let b = VisualSqlDiagram::from_sql(
            "SELECT DISTINCT S.sname FROM Sailor S, Reserves R \
             WHERE R.bid = 102 AND S.sid = R.sid",
            &db,
        )
        .unwrap();
        assert!(!a.isomorphic(&b));
    }

    #[test]
    fn set_operations_mirrored() {
        let db = sailors_sample();
        let d = VisualSqlDiagram::from_sql(
            "SELECT S.sname FROM Sailor S WHERE S.rating = 10 \
             UNION SELECT S.sname FROM Sailor S WHERE S.age < 20",
            &db,
        )
        .unwrap();
        let (frames, setops, ..) = d.census();
        assert_eq!((frames, setops), (2, 1));
        assert!(matches!(d.nodes[d.root], VNode::SetOp { op: SetOpKind::Union, .. }));
    }

    #[test]
    fn or_groups_preserved() {
        let db = sailors_sample();
        let d = VisualSqlDiagram::from_sql(
            "SELECT DISTINCT B.bname FROM Boat B \
             WHERE B.color = 'red' OR B.color = 'green'",
            &db,
        )
        .unwrap();
        let VNode::Select(f) = &d.nodes[d.root] else { panic!("select root") };
        assert_eq!(f.strips.len(), 1);
        assert!(matches!(&f.strips[0], Strip::Group { op, parts } if op == "OR" && parts.len() == 2));
    }

    #[test]
    fn quantified_comparison_labelled() {
        let db = sailors_sample();
        let d = VisualSqlDiagram::from_sql(
            "SELECT S.sname FROM Sailor S WHERE S.rating >= ALL \
             (SELECT S2.rating FROM Sailor S2)",
            &db,
        )
        .unwrap();
        assert!(d.fingerprint().contains(">= ALL"));
    }

    #[test]
    fn scene_renders_frames_and_connectives() {
        let db = sailors_sample();
        let d = VisualSqlDiagram::from_sql(Q4_NOT_EXISTS, &db).unwrap();
        let svg = relviz_render::svg::to_svg(&d.scene());
        assert!(svg.contains("NOT EXISTS"));
        assert!(svg.contains("Sailor"));
    }

    #[test]
    fn literal_text_not_renamed() {
        let renames: BTreeMap<String, String> =
            [("S".to_string(), "v1".to_string())].into_iter().collect();
        assert_eq!(rename_qualifiers("S.sid = 'S.sid'", &renames), "v1.sid = 'S.sid'");
        assert_eq!(rename_qualifiers("Sailor.sid = S.sid", &renames), "Sailor.sid = v1.sid");
    }

    #[test]
    fn invalid_sql_rejected() {
        let db = sailors_sample();
        assert!(VisualSqlDiagram::from_sql("SELECT nope FROM Nowhere", &db).is_err());
    }
}
