//! **Query By Diagram** (QBD, Angelaccio, Catarci & Santucci 1990) — a
//! "fully visual query system" in which the user queries by selecting a
//! connected subgraph of the database's **Entity-Relationship diagram**
//! and annotating it with conditions and output marks.
//!
//! The tutorial places QBD with the interactive query builders: strong
//! for conjunctive navigation over the schema graph, but the diagram has
//! no visual element for general negation, disjunction across entities,
//! or universal quantification (QBD* later added recursion, not logic).
//! This module makes those limits checkable: the builder accepts exactly
//! the conjunctive queries whose joins follow the ER edges and returns a
//! typed [`DiagError::Unsupported`] otherwise — the rows QBD contributes
//! to the E5 capability matrix.
//!
//! ## Model
//!
//! An [`ErSchema`] declares entities (rectangles) and relationships
//! (diamonds) with their role attributes; [`ErSchema::sailors`] encodes
//! the tutorial's running schema (`Sailor` ⟨reserves⟩ `Boat`, with
//! `Reserves` as the relationship). A [`QbdQuery`] is a highlighted
//! connected subgraph plus per-node selections and output marks.

use std::collections::BTreeMap;

use relviz_model::Database;
use relviz_render::{Scene, TextStyle};
use relviz_sql::ast::{Cond, Query, Scalar, SelectItem};
use relviz_sql::printer;

use crate::common::{DiagError, DiagResult};

const FORMALISM: &str = "QBD (ER-based)";

/// An ER node kind: entity (rectangle) or relationship (diamond).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErKind {
    Entity,
    Relationship,
}

/// An ER node: a table playing entity or relationship role.
#[derive(Debug, Clone, PartialEq)]
pub struct ErNode {
    pub table: String,
    pub kind: ErKind,
}

/// An ER edge: relationship table attribute ↔ entity key attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct ErEdge {
    pub relationship: String,
    pub rel_attr: String,
    pub entity: String,
    pub entity_attr: String,
}

/// An ER schema: the diagram QBD users navigate.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ErSchema {
    pub nodes: Vec<ErNode>,
    pub edges: Vec<ErEdge>,
}

impl ErSchema {
    /// The tutorial's running schema as an ER diagram.
    pub fn sailors() -> ErSchema {
        ErSchema {
            nodes: vec![
                ErNode { table: "Sailor".into(), kind: ErKind::Entity },
                ErNode { table: "Boat".into(), kind: ErKind::Entity },
                ErNode { table: "Reserves".into(), kind: ErKind::Relationship },
            ],
            edges: vec![
                ErEdge {
                    relationship: "Reserves".into(),
                    rel_attr: "sid".into(),
                    entity: "Sailor".into(),
                    entity_attr: "sid".into(),
                },
                ErEdge {
                    relationship: "Reserves".into(),
                    rel_attr: "bid".into(),
                    entity: "Boat".into(),
                    entity_attr: "bid".into(),
                },
            ],
        }
    }

    fn kind_of(&self, table: &str) -> Option<ErKind> {
        self.nodes.iter().find(|n| n.table == table).map(|n| n.kind)
    }

    /// Is `(ta.aa = tb.ab)` one of the schema's ER edges?
    fn is_er_edge(&self, ta: &str, aa: &str, tb: &str, ab: &str) -> bool {
        self.edges.iter().any(|e| {
            (e.relationship == ta && e.rel_attr == aa && e.entity == tb && e.entity_attr == ab)
                || (e.relationship == tb
                    && e.rel_attr == ab
                    && e.entity == ta
                    && e.entity_attr == aa)
        })
    }
}

/// One highlighted node of a QBD query.
#[derive(Debug, Clone, PartialEq)]
pub struct QbdNode {
    pub table: String,
    pub alias: String,
    pub kind: ErKind,
    /// Selection conditions attached to the node, as text.
    pub selections: Vec<String>,
    /// Output-marked attributes.
    pub outputs: Vec<String>,
}

/// A QBD query: a connected highlighted subgraph of the ER diagram.
#[derive(Debug, Clone, PartialEq)]
pub struct QbdQuery {
    pub schema: ErSchema,
    pub nodes: Vec<QbdNode>,
    /// Highlighted edges as (node index, node index).
    pub links: Vec<(usize, usize)>,
}

impl QbdQuery {
    /// Builds a QBD query from conjunctive SQL whose join predicates all
    /// follow the ER edges of `schema`.
    pub fn from_sql(sql: &str, schema: &ErSchema, db: &Database) -> DiagResult<QbdQuery> {
        let q = relviz_sql::parser::parse_query(sql)
            .map_err(|e| DiagError::Lang(e.to_string()))?;
        let q = relviz_sql::analyze::resolve(&q, db)
            .map_err(|e| DiagError::Lang(e.to_string()))?;
        let Query::Select(s) = &q else {
            return Err(DiagError::unsupported(
                FORMALISM,
                "set operations (no visual element for union of subgraphs)",
            ));
        };
        let mut out = QbdQuery { schema: schema.clone(), nodes: Vec::new(), links: Vec::new() };
        let mut alias_to_node: BTreeMap<String, usize> = BTreeMap::new();
        for t in &s.from {
            let kind = schema.kind_of(&t.table).ok_or_else(|| {
                DiagError::unsupported(
                    FORMALISM,
                    format!("table {} is not in the ER diagram", t.table),
                )
            })?;
            let alias = t.effective_name().to_string();
            alias_to_node.insert(alias.clone(), out.nodes.len());
            out.nodes.push(QbdNode {
                table: t.table.clone(),
                alias,
                kind,
                selections: Vec::new(),
                outputs: Vec::new(),
            });
        }
        if let Some(w) = &s.where_clause {
            for part in conjuncts(w) {
                match part {
                    Cond::Cmp {
                        left: Scalar::Column { qualifier: Some(ql), name: nl },
                        op: relviz_model::CmpOp::Eq,
                        right: Scalar::Column { qualifier: Some(qr), name: nr },
                    } if ql != qr => {
                        let (a, b) = (
                            *alias_to_node
                                .get(ql)
                                .ok_or_else(|| DiagError::Invalid(format!("alias {ql}")))?,
                            *alias_to_node
                                .get(qr)
                                .ok_or_else(|| DiagError::Invalid(format!("alias {qr}")))?,
                        );
                        let (ta, tb) = (&out.nodes[a].table, &out.nodes[b].table);
                        if !schema.is_er_edge(ta, nl, tb, nr) {
                            return Err(DiagError::unsupported(
                                FORMALISM,
                                format!(
                                    "join {} does not follow an ER edge",
                                    printer::print_cond(part)
                                ),
                            ));
                        }
                        out.links.push((a.min(b), a.max(b)));
                    }
                    Cond::Cmp {
                        left: Scalar::Column { qualifier: Some(ql), .. },
                        op,
                        right: Scalar::Column { qualifier: Some(qr), .. },
                    } if ql != qr => {
                        return Err(DiagError::unsupported(
                            FORMALISM,
                            format!(
                                "non-equi join {} (ER edges are equalities); {op:?}",
                                printer::print_cond(part)
                            ),
                        ));
                    }
                    Cond::Exists { .. } | Cond::InSubquery { .. } | Cond::QuantCmp { .. } => {
                        return Err(DiagError::unsupported(
                            FORMALISM,
                            "subqueries (no visual element for quantifiers over the \
                             schema graph)",
                        ));
                    }
                    Cond::Or(_, _) => {
                        return Err(DiagError::unsupported(
                            FORMALISM,
                            "disjunction (conditions on the diagram conjoin)",
                        ));
                    }
                    Cond::Not(_) => {
                        return Err(DiagError::unsupported(
                            FORMALISM,
                            "general negation (only per-attribute conditions attach to \
                             nodes)",
                        ));
                    }
                    other => {
                        let mut quals = Vec::new();
                        collect_qualifiers(other, &mut quals);
                        let Some(first) = quals.first() else {
                            return Err(DiagError::unsupported(
                                FORMALISM,
                                "constant condition with no node to attach to",
                            ));
                        };
                        if quals.iter().any(|q| q != first) {
                            return Err(DiagError::unsupported(
                                FORMALISM,
                                "cross-node condition outside the ER edges",
                            ));
                        }
                        let n = *alias_to_node
                            .get(first)
                            .ok_or_else(|| DiagError::Invalid(format!("alias {first}")))?;
                        out.nodes[n].selections.push(printer::print_cond(other));
                    }
                }
            }
        }
        for item in &s.items {
            match item {
                SelectItem::Expr { expr: Scalar::Column { qualifier: Some(q), name }, .. } => {
                    let n = *alias_to_node
                        .get(q)
                        .ok_or_else(|| DiagError::Invalid(format!("alias {q}")))?;
                    out.nodes[n].outputs.push(name.clone());
                }
                _ => {
                    return Err(DiagError::unsupported(
                        FORMALISM,
                        "non-column projection (outputs are attribute marks on nodes)",
                    ))
                }
            }
        }
        out.check_connected()?;
        Ok(out)
    }

    /// The highlighted subgraph must be connected — QBD queries are
    /// navigations, not products.
    fn check_connected(&self) -> DiagResult<()> {
        if self.nodes.len() <= 1 {
            return Ok(());
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(n) = stack.pop() {
            for &(a, b) in &self.links {
                let other = if a == n {
                    b
                } else if b == n {
                    a
                } else {
                    continue;
                };
                if !seen[other] {
                    seen[other] = true;
                    stack.push(other);
                }
            }
        }
        if seen.iter().all(|&s| s) {
            Ok(())
        } else {
            Err(DiagError::unsupported(
                FORMALISM,
                "disconnected subgraph (cartesian product has no ER navigation)",
            ))
        }
    }

    /// Element census: (nodes, links, selections, output marks,
    /// relationship nodes).
    pub fn census(&self) -> (usize, usize, usize, usize, usize) {
        let sels: usize = self.nodes.iter().map(|n| n.selections.len()).sum();
        let outs: usize = self.nodes.iter().map(|n| n.outputs.len()).sum();
        let rels = self.nodes.iter().filter(|n| n.kind == ErKind::Relationship).count();
        (self.nodes.len(), self.links.len(), sels, outs, rels)
    }

    /// Scene: the classic ER picture — entity rectangles, relationship
    /// diamonds, selection text under the node, output attributes
    /// underlined (marked with ▸).
    pub fn scene(&self) -> Scene {
        let mut scene = Scene::new(0.0, 0.0);
        let mut pos: Vec<(f64, f64)> = Vec::new();
        let mut x = 30.0;
        for n in &self.nodes {
            let label = if n.table == n.alias {
                n.table.clone()
            } else {
                format!("{} {}", n.table, n.alias)
            };
            let w = Scene::text_width(&label, 12.0) + 26.0;
            match n.kind {
                ErKind::Entity => {
                    scene.rect(x, 40.0, w, 30.0);
                }
                ErKind::Relationship => {
                    // Diamond via polyline.
                    let cx = x + w / 2.0;
                    scene.items.push(relviz_render::Item::Polyline {
                        points: vec![
                            (cx, 32.0),
                            (x + w + 8.0, 55.0),
                            (cx, 78.0),
                            (x - 8.0, 55.0),
                            (cx, 32.0),
                        ],
                        stroke: "#000000".into(),
                        stroke_width: 1.2,
                        dashed: false,
                        arrow: false,
                    });
                }
            }
            scene.styled_text(
                x + 12.0,
                59.0,
                label,
                TextStyle { size: 12.0, bold: true, ..TextStyle::default() },
            );
            let mut ty = 92.0;
            for s in &n.selections {
                scene.styled_text(
                    x,
                    ty,
                    s.clone(),
                    TextStyle { size: 10.0, italic: true, ..TextStyle::default() },
                );
                ty += 14.0;
            }
            for o in &n.outputs {
                scene.text(x, ty, format!("▸ {o}"));
                ty += 14.0;
            }
            pos.push((x + w / 2.0, 55.0));
            x += w + 60.0;
        }
        for &(a, b) in &self.links {
            let (xa, ya) = pos[a];
            let (xb, yb) = pos[b];
            scene.line(xa, ya, xb, yb);
        }
        scene.fit(10.0);
        scene
    }
}

/// Flattens an AND-spine of SQL conditions.
fn conjuncts(c: &Cond) -> Vec<&Cond> {
    let mut out = Vec::new();
    fn walk<'a>(c: &'a Cond, out: &mut Vec<&'a Cond>) {
        if let Cond::And(a, b) = c {
            walk(a, out);
            walk(b, out);
        } else {
            out.push(c);
        }
    }
    walk(c, &mut out);
    out
}

/// Collects the qualifiers mentioned by a condition.
fn collect_qualifiers(c: &Cond, out: &mut Vec<String>) {
    fn scalar(s: &Scalar, out: &mut Vec<String>) {
        if let Scalar::Column { qualifier: Some(q), .. } = s {
            out.push(q.clone());
        }
    }
    match c {
        Cond::Cmp { left, right, .. } => {
            scalar(left, out);
            scalar(right, out);
        }
        Cond::And(a, b) | Cond::Or(a, b) => {
            collect_qualifiers(a, out);
            collect_qualifiers(b, out);
        }
        Cond::Not(a) => collect_qualifiers(a, out),
        Cond::InList { expr, .. } | Cond::IsNull { expr, .. } => scalar(expr, out),
        Cond::Between { expr, low, high, .. } => {
            scalar(expr, out);
            scalar(low, out);
            scalar(high, out);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relviz_model::catalog::sailors_sample;

    const Q2: &str = "SELECT S.sname FROM Sailor S, Reserves R, Boat B \
        WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'red'";

    #[test]
    fn conjunctive_navigation_builds() {
        let db = sailors_sample();
        let q = QbdQuery::from_sql(Q2, &ErSchema::sailors(), &db).unwrap();
        let (nodes, links, sels, outs, rels) = q.census();
        assert_eq!((nodes, links, sels, outs, rels), (3, 2, 1, 1, 1));
        let reserves = q.nodes.iter().find(|n| n.table == "Reserves").unwrap();
        assert_eq!(reserves.kind, ErKind::Relationship);
    }

    #[test]
    fn join_must_follow_er_edges() {
        let db = sailors_sample();
        // sid = bid joins along no ER edge.
        let r = QbdQuery::from_sql(
            "SELECT S.sname FROM Sailor S, Boat B WHERE S.sid = B.bid",
            &ErSchema::sailors(),
            &db,
        );
        assert!(matches!(r, Err(DiagError::Unsupported { .. })), "{r:?}");
    }

    #[test]
    fn negation_and_disjunction_unsupported() {
        let db = sailors_sample();
        let schema = ErSchema::sailors();
        for sql in [
            "SELECT S.sname FROM Sailor S WHERE NOT EXISTS \
             (SELECT * FROM Reserves R WHERE R.sid = S.sid)",
            "SELECT S.sname FROM Sailor S, Reserves R, Boat B \
             WHERE S.sid = R.sid AND R.bid = B.bid AND \
             (B.color = 'red' OR B.color = 'green')",
            "SELECT S.sname FROM Sailor S WHERE S.rating = 10 \
             UNION SELECT S.sname FROM Sailor S WHERE S.age < 20",
        ] {
            let r = QbdQuery::from_sql(sql, &schema, &db);
            assert!(matches!(r, Err(DiagError::Unsupported { .. })), "{sql}: {r:?}");
        }
    }

    #[test]
    fn disconnected_subgraph_unsupported() {
        let db = sailors_sample();
        let r = QbdQuery::from_sql(
            "SELECT S.sname, B.bname FROM Sailor S, Boat B WHERE S.rating = 10 \
             AND B.color = 'red'",
            &ErSchema::sailors(),
            &db,
        );
        assert!(matches!(r, Err(DiagError::Unsupported { .. })), "{r:?}");
    }

    #[test]
    fn self_join_uses_two_highlights() {
        // QBD handles self-joins by highlighting the entity twice (two
        // aliases) — but the rating equality is not an ER edge, so the
        // tutorial's Q7 is out.
        let db = sailors_sample();
        let r = QbdQuery::from_sql(
            "SELECT S1.sname, S2.sname FROM Sailor S1, Sailor S2 \
             WHERE S1.rating = S2.rating AND S1.sid < S2.sid",
            &ErSchema::sailors(),
            &db,
        );
        assert!(matches!(r, Err(DiagError::Unsupported { .. })), "{r:?}");
    }

    #[test]
    fn unknown_table_rejected() {
        let db = sailors_sample();
        let mut schema = ErSchema::sailors();
        schema.nodes.retain(|n| n.table != "Boat");
        let r = QbdQuery::from_sql(Q2, &schema, &db);
        assert!(matches!(r, Err(DiagError::Unsupported { .. })), "{r:?}");
    }

    #[test]
    fn scene_draws_entities_and_diamond() {
        let db = sailors_sample();
        let q = QbdQuery::from_sql(Q2, &ErSchema::sailors(), &db).unwrap();
        let svg = relviz_render::svg::to_svg(&q.scene());
        assert!(svg.contains("Sailor"));
        assert!(svg.contains("▸ sname"));
        assert!(svg.contains("<polyline"), "relationship diamond");
    }
}
