//! Classical syllogistics decided two independent ways — the engine behind
//! experiment **E4**.
//!
//! A syllogism has a mood (three categorical forms, e.g. AAA) and a figure
//! (1–4, fixing how the middle term M arranges with subject S and
//! predicate P). That yields 4³·4 = **256 forms**, of which 15 are valid
//! unconditionally and 9 more under *existential import* (non-empty
//! terms) — 24 "classically valid" forms.
//!
//! Deciders:
//! 1. [`decide_venn`] — Shin's Venn-I route: premises become shading and
//!    ⊗-sequences on a 3-set diagram, unified; conclusion checked by the
//!    minterm-model semantics.
//! 2. [`decide_fol`] — FOL route: every monadic structure over S, M, P is
//!    (up to logical equivalence) a choice of inhabited minterms, so we
//!    enumerate all 2⁸ small databases with unary relations and evaluate
//!    the premises/conclusion as **DRC sentences** through the calculus
//!    evaluator from `relviz-rc` — a genuinely independent code path.
//!
//! Agreement of the two deciders on all 256 forms reproduces (the
//! computational content of) Shin's soundness & completeness results for
//! Venn-I that the tutorial surveys.

use relviz_model::{Database, DataType, Relation, Schema, Tuple, Value};
use relviz_rc::drc::{DrcFormula, DrcQuery, DrcTerm};

use crate::common::DiagResult;
use crate::euler::{Categorical, Statement};
use crate::venn::VennDiagram;

/// The four syllogistic figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Figure {
    First,
    Second,
    Third,
    Fourth,
}

impl Figure {
    pub const ALL: [Figure; 4] = [Figure::First, Figure::Second, Figure::Third, Figure::Fourth];

    /// (major premise terms, minor premise terms) as (subject, predicate),
    /// with the conclusion always S–P.
    fn arrangement(self) -> ((Term, Term), (Term, Term)) {
        use Term::*;
        match self {
            Figure::First => ((M, P), (S, M)),
            Figure::Second => ((P, M), (S, M)),
            Figure::Third => ((M, P), (M, S)),
            Figure::Fourth => ((P, M), (M, S)),
        }
    }

    pub fn number(self) -> u8 {
        match self {
            Figure::First => 1,
            Figure::Second => 2,
            Figure::Third => 3,
            Figure::Fourth => 4,
        }
    }
}

/// The three syllogistic terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Term {
    S,
    M,
    P,
}

impl Term {
    fn name(self) -> &'static str {
        match self {
            Term::S => "S",
            Term::M => "M",
            Term::P => "P",
        }
    }
    fn index(self) -> usize {
        match self {
            Term::S => 0,
            Term::M => 1,
            Term::P => 2,
        }
    }
}

/// A syllogistic form: mood (major, minor, conclusion) + figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Syllogism {
    pub major: Categorical,
    pub minor: Categorical,
    pub conclusion: Categorical,
    pub figure: Figure,
}

impl Syllogism {
    /// All 256 forms.
    pub fn all_forms() -> Vec<Syllogism> {
        let forms =
            [Categorical::All, Categorical::No, Categorical::Some, Categorical::SomeNot];
        let mut out = Vec::with_capacity(256);
        for &major in &forms {
            for &minor in &forms {
                for &conclusion in &forms {
                    for &figure in &Figure::ALL {
                        out.push(Syllogism { major, minor, conclusion, figure });
                    }
                }
            }
        }
        out
    }

    /// The three statements (major, minor, conclusion) with term names.
    pub fn statements(&self) -> (Statement, Statement, Statement) {
        let ((maj_s, maj_p), (min_s, min_p)) = self.figure.arrangement();
        (
            Statement::new(self.major, maj_s.name(), maj_p.name()),
            Statement::new(self.minor, min_s.name(), min_p.name()),
            Statement::new(self.conclusion, "S", "P"),
        )
    }

    /// Traditional mood string, e.g. "AAA-1" (Barbara).
    pub fn mood(&self) -> String {
        fn letter(c: Categorical) -> char {
            match c {
                Categorical::All => 'A',
                Categorical::No => 'E',
                Categorical::Some => 'I',
                Categorical::SomeNot => 'O',
            }
        }
        format!(
            "{}{}{}-{}",
            letter(self.major),
            letter(self.minor),
            letter(self.conclusion),
            self.figure.number()
        )
    }
}

// ---- Venn-I decision procedure ---------------------------------------------

fn term_index(name: &str) -> usize {
    match name {
        "S" => 0,
        "M" => 1,
        _ => 2,
    }
}

/// Encodes a categorical statement on a 3-set Venn diagram.
pub fn statement_to_venn(stmt: &Statement, d: &mut VennDiagram) -> DiagResult<()> {
    let x = term_index(&stmt.subject);
    let y = term_index(&stmt.predicate);
    match stmt.form {
        Categorical::All => d.shade(d.difference(x, y)),
        Categorical::No => d.shade(d.intersection(x, y)),
        Categorical::Some => d.add_xseq(d.intersection(x, y)),
        Categorical::SomeNot => d.add_xseq(d.difference(x, y)),
    }
}

/// Decides validity via Venn-I: unify premise diagrams, test semantic
/// entailment of the conclusion diagram. With `existential_import`, every
/// term additionally carries an ⊗-sequence asserting non-emptiness.
pub fn decide_venn(s: &Syllogism, existential_import: bool) -> DiagResult<bool> {
    let (maj, min, concl) = s.statements();
    let mut premises = VennDiagram::new(vec!["S", "M", "P"])?;
    statement_to_venn(&maj, &mut premises)?;
    statement_to_venn(&min, &mut premises)?;
    if existential_import {
        for t in [Term::S, Term::M, Term::P] {
            let region = premises.inside(t.index());
            premises.add_xseq(region)?;
        }
    }
    let mut conclusion = VennDiagram::new(vec!["S", "M", "P"])?;
    statement_to_venn(&concl, &mut conclusion)?;
    premises.entails(&conclusion)
}

// ---- FOL decision procedure ------------------------------------------------

/// A categorical statement as a DRC sentence over unary relations S, M, P.
pub fn statement_to_drc(stmt: &Statement) -> DrcFormula {
    let a = stmt.subject.clone();
    let b = stmt.predicate.clone();
    let x = || DrcTerm::var("x");
    match stmt.form {
        // ∀x: A(x) → B(x) ≡ ¬∃x: A(x) ∧ ¬B(x)
        Categorical::All => DrcFormula::exists(
            vec!["x".into()],
            DrcFormula::atom(a, vec![x()]).and(DrcFormula::atom(b, vec![x()]).not()),
        )
        .not(),
        // ¬∃x: A(x) ∧ B(x)
        Categorical::No => DrcFormula::exists(
            vec!["x".into()],
            DrcFormula::atom(a, vec![x()]).and(DrcFormula::atom(b, vec![x()])),
        )
        .not(),
        // ∃x: A(x) ∧ B(x)
        Categorical::Some => DrcFormula::exists(
            vec!["x".into()],
            DrcFormula::atom(a, vec![x()]).and(DrcFormula::atom(b, vec![x()])),
        ),
        // ∃x: A(x) ∧ ¬B(x)
        Categorical::SomeNot => DrcFormula::exists(
            vec!["x".into()],
            DrcFormula::atom(a, vec![x()]).and(DrcFormula::atom(b, vec![x()]).not()),
        ),
    }
}

/// Builds the monadic database for an inhabited-minterm pattern: for each
/// set bit `t` of `pattern`, an element `t` whose S/M/P membership follows
/// the bits of `t`.
fn database_for(pattern: u8) -> Database {
    let mut db = Database::new();
    let mut rels: Vec<Relation> = (0..3)
        .map(|_| Relation::empty(Schema::of(&[("x", DataType::Int)])))
        .collect();
    for t in 0..8u8 {
        if pattern & (1 << t) != 0 {
            for (i, rel) in rels.iter_mut().enumerate() {
                if t & (1 << i) != 0 {
                    rel.insert_unchecked(Tuple::new(vec![Value::Int(t as i64)]));
                }
            }
        }
    }
    // A spare constant keeps the active domain non-empty even for the
    // all-empty pattern (quantifiers need a domain to range over; an
    // empty-domain FOL structure is standardly excluded).
    let mut dom = Relation::empty(Schema::of(&[("x", DataType::Int)]));
    dom.insert_unchecked(Tuple::new(vec![Value::Int(99)]));
    for t in 0..8u8 {
        if pattern & (1 << t) != 0 {
            dom.insert_unchecked(Tuple::new(vec![Value::Int(t as i64)]));
        }
    }
    db.add("S", rels.remove(0)).unwrap();
    db.add("M", rels.remove(0)).unwrap();
    db.add("P", rels.remove(0)).unwrap();
    db.add("Dom", dom).unwrap();
    db
}

fn sentence_holds(f: &DrcFormula, db: &Database) -> bool {
    let q = DrcQuery { head: Vec::new(), body: f.clone() };
    !relviz_rc::drc_eval::eval_drc_unchecked(&q, db)
        .expect("syllogistic sentences are well-formed")
        .is_empty()
}

/// Decides validity by enumerating all monadic structures (2⁸ minterm
/// patterns suffice: monadic FOL with 3 predicates has the finite model
/// property with ≤8 element types) and evaluating the DRC sentences.
pub fn decide_fol(s: &Syllogism, existential_import: bool) -> bool {
    let (maj, min, concl) = s.statements();
    let fmaj = statement_to_drc(&maj);
    let fmin = statement_to_drc(&min);
    let fconcl = statement_to_drc(&concl);
    for pattern in 0..=255u8 {
        let db = database_for(pattern);
        if existential_import {
            let nonempty = |name: &str| !db.relation(name).unwrap().is_empty();
            if !(nonempty("S") && nonempty("M") && nonempty("P")) {
                continue;
            }
        }
        if sentence_holds(&fmaj, &db)
            && sentence_holds(&fmin, &db)
            && !sentence_holds(&fconcl, &db)
        {
            return false; // counterexample
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use Categorical::*;

    fn syl(major: Categorical, minor: Categorical, conclusion: Categorical, figure: Figure) -> Syllogism {
        Syllogism { major, minor, conclusion, figure }
    }

    #[test]
    fn barbara_is_valid_both_ways() {
        let barbara = syl(All, All, All, Figure::First);
        assert_eq!(barbara.mood(), "AAA-1");
        assert!(decide_venn(&barbara, false).unwrap());
        assert!(decide_fol(&barbara, false));
    }

    #[test]
    fn celarent_ferio_darii() {
        for (m1, m2, c, f) in [
            (No, All, No, Figure::First),     // Celarent EAE-1
            (All, Some, Some, Figure::First), // Darii AII-1
            (No, Some, SomeNot, Figure::First), // Ferio EIO-1
        ] {
            let s = syl(m1, m2, c, f);
            assert!(decide_venn(&s, false).unwrap(), "{}", s.mood());
            assert!(decide_fol(&s, false), "{}", s.mood());
        }
    }

    #[test]
    fn darapti_needs_existential_import() {
        // AAI-3 (Darapti): valid only with non-empty M.
        let darapti = syl(All, All, Some, Figure::Third);
        assert!(!decide_venn(&darapti, false).unwrap());
        assert!(!decide_fol(&darapti, false));
        assert!(decide_venn(&darapti, true).unwrap());
        assert!(decide_fol(&darapti, true));
    }

    #[test]
    fn an_invalid_form_is_invalid_everywhere() {
        // AAA-2 is the classic fallacy of the undistributed middle.
        let bad = syl(All, All, All, Figure::Second);
        assert!(!decide_venn(&bad, false).unwrap());
        assert!(!decide_fol(&bad, false));
        assert!(!decide_venn(&bad, true).unwrap());
        assert!(!decide_fol(&bad, true));
    }

    #[test]
    fn deciders_agree_on_a_sample() {
        // The full 256-form sweep is experiment E4; here a spot sample
        // keeps the unit suite fast.
        for (i, s) in Syllogism::all_forms().into_iter().enumerate() {
            if i % 17 != 0 {
                continue;
            }
            assert_eq!(
                decide_venn(&s, false).unwrap(),
                decide_fol(&s, false),
                "disagreement (strict) on {}",
                s.mood()
            );
            assert_eq!(
                decide_venn(&s, true).unwrap(),
                decide_fol(&s, true),
                "disagreement (import) on {}",
                s.mood()
            );
        }
    }

    #[test]
    fn form_counting() {
        assert_eq!(Syllogism::all_forms().len(), 256);
    }
}
