//! **Conceptual graphs** (Sowa, IBM J. R&D 1976) — proposed, notably, *as
//! a database interface*: bipartite graphs of concept nodes `[Type: ref]`
//! and relation nodes `(REL)` whose arcs connect relations to the concepts
//! they relate.
//!
//! The core (without Sowa's contexts/negation, which recapitulate Peirce's
//! cuts) corresponds to **conjunctive, positive DRC** — so the builder
//! accepts exactly that fragment and reports anything else as
//! unsupported, which is how the formalism lands in the E5 matrix.

use relviz_layout::layered::{layout, GraphSpec, LayeredOptions};
use relviz_model::Value;
use relviz_rc::drc::{DrcFormula, DrcQuery, DrcTerm};
use relviz_render::{Scene, TextStyle};

use crate::common::{DiagError, DiagResult};

const FORMALISM: &str = "conceptual graphs";

/// A concept node: a variable or an individual constant.
#[derive(Debug, Clone, PartialEq)]
pub struct Concept {
    /// Display label, e.g. `[T: *x]` (generic) or `[T: 102]` (individual).
    pub referent: Referent,
}

/// The referent of a concept node.
#[derive(Debug, Clone, PartialEq)]
pub enum Referent {
    /// A generic concept (existentially quantified variable).
    Generic(String),
    /// An individual (constant).
    Individual(Value),
}

impl std::fmt::Display for Referent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Referent::Generic(v) => write!(f, "[*{v}]"),
            Referent::Individual(c) => write!(f, "[{}]", c.to_literal()),
        }
    }
}

/// A relation node with arcs to concept nodes (by index, in positional
/// order).
#[derive(Debug, Clone, PartialEq)]
pub struct RelationNode {
    pub label: String,
    pub args: Vec<usize>,
}

/// A conceptual graph.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConceptualGraph {
    pub concepts: Vec<Concept>,
    pub relations: Vec<RelationNode>,
}

impl ConceptualGraph {
    /// Builds from the positive conjunctive fragment of DRC: one concept
    /// node per variable/constant occurrence class, one relation node per
    /// atom. Negation, disjunction and comparisons other than the implicit
    /// shared-variable equality are unsupported.
    pub fn from_drc(q: &DrcQuery) -> DiagResult<ConceptualGraph> {
        let mut g = ConceptualGraph::default();
        let mut var_concept: Vec<(String, usize)> = Vec::new();

        // Flatten ∃ and ∧ into atoms + equalities; anything else is
        // outside the fragment. Equalities become *co-reference*: the
        // variables are merged into one concept node (that is exactly how
        // conceptual graphs draw equality — a shared concept or a
        // co-reference link).
        fn flatten(
            f: &DrcFormula,
            atoms: &mut Vec<DrcFormula>,
            eqs: &mut Vec<(DrcTerm, DrcTerm)>,
        ) -> DiagResult<()> {
            match f {
                DrcFormula::And(a, b) => {
                    flatten(a, atoms, eqs)?;
                    flatten(b, atoms, eqs)
                }
                DrcFormula::Exists { body, .. } => flatten(body, atoms, eqs),
                DrcFormula::Atom { .. } => {
                    atoms.push(f.clone());
                    Ok(())
                }
                DrcFormula::Cmp { left, op: relviz_model::CmpOp::Eq, right } => {
                    eqs.push((left.clone(), right.clone()));
                    Ok(())
                }
                DrcFormula::Const(true) => Ok(()),
                DrcFormula::Not(_) => Err(DiagError::unsupported(
                    FORMALISM,
                    "negation (Sowa's contexts re-introduce Peirce's cuts; core CGs are positive)",
                )),
                DrcFormula::Or(_, _) => {
                    Err(DiagError::unsupported(FORMALISM, "disjunction"))
                }
                DrcFormula::Cmp { .. } => Err(DiagError::unsupported(
                    FORMALISM,
                    "order comparisons (only equality/co-reference is visual)",
                )),
                DrcFormula::Forall { .. } => {
                    Err(DiagError::unsupported(FORMALISM, "universal quantification"))
                }
                DrcFormula::Const(false) => {
                    Err(DiagError::unsupported(FORMALISM, "the constant FALSE"))
                }
            }
        }

        let mut atom_list = Vec::new();
        let mut eqs = Vec::new();
        flatten(&q.body, &mut atom_list, &mut eqs)?;

        // Resolve equalities via union-find-by-substitution: map each
        // variable to a representative term (constant wins over variable).
        let mut subst: Vec<(String, DrcTerm)> = Vec::new();
        let resolve = |t: &DrcTerm, subst: &Vec<(String, DrcTerm)>| -> DrcTerm {
            let mut cur = t.clone();
            loop {
                match &cur {
                    DrcTerm::Var(v) => match subst.iter().find(|(name, _)| name == v) {
                        Some((_, to)) if to != &cur => cur = to.clone(),
                        _ => return cur,
                    },
                    DrcTerm::Const(_) => return cur,
                }
            }
        };
        for (a, b) in &eqs {
            let ra = resolve(a, &subst);
            let rb = resolve(b, &subst);
            if ra == rb {
                continue;
            }
            match (&ra, &rb) {
                (DrcTerm::Var(v), _) => subst.push((v.clone(), rb.clone())),
                (_, DrcTerm::Var(v)) => subst.push((v.clone(), ra.clone())),
                (DrcTerm::Const(_), DrcTerm::Const(_)) => {
                    return Err(DiagError::unsupported(
                        FORMALISM,
                        "equating two distinct constants (an unsatisfiable graph)",
                    ))
                }
            }
        }
        let atom_list: Vec<DrcFormula> = atom_list
            .into_iter()
            .map(|a| {
                let DrcFormula::Atom { rel, terms } = a else { unreachable!() };
                DrcFormula::Atom {
                    rel,
                    terms: terms.iter().map(|t| resolve(t, &subst)).collect(),
                }
            })
            .collect();

        for atom in &atom_list {
            let DrcFormula::Atom { rel, terms } = atom else { unreachable!() };
            let mut args = Vec::with_capacity(terms.len());
            for t in terms {
                let idx = match t {
                    DrcTerm::Var(v) => {
                        match var_concept.iter().find(|(name, _)| name == v) {
                            Some((_, i)) => *i,
                            None => {
                                g.concepts.push(Concept {
                                    referent: Referent::Generic(v.clone()),
                                });
                                let i = g.concepts.len() - 1;
                                var_concept.push((v.clone(), i));
                                i
                            }
                        }
                    }
                    DrcTerm::Const(c) => {
                        g.concepts.push(Concept { referent: Referent::Individual(c.clone()) });
                        g.concepts.len() - 1
                    }
                };
                args.push(idx);
            }
            g.relations.push(RelationNode { label: rel.clone(), args });
        }
        Ok(g)
    }

    /// Reads back into conjunctive DRC with head = the given free
    /// variables (the rest quantified existentially).
    pub fn to_drc(&self, head: Vec<String>) -> DrcQuery {
        let mut parts = Vec::with_capacity(self.relations.len());
        for r in &self.relations {
            let terms = r
                .args
                .iter()
                .map(|&i| match &self.concepts[i].referent {
                    Referent::Generic(v) => DrcTerm::Var(v.clone()),
                    Referent::Individual(c) => DrcTerm::Const(c.clone()),
                })
                .collect();
            parts.push(DrcFormula::Atom { rel: r.label.clone(), terms });
        }
        let body = DrcFormula::conj(parts);
        let bound: Vec<String> = self
            .concepts
            .iter()
            .filter_map(|c| match &c.referent {
                Referent::Generic(v) if !head.contains(v) => Some(v.clone()),
                _ => None,
            })
            .collect();
        let body = if bound.is_empty() {
            body
        } else {
            DrcFormula::exists(bound, body)
        };
        DrcQuery { head, body }
    }

    /// Element census: (concept nodes, relation nodes, arcs).
    /// **Projection** (Sowa's reasoning operation): does `self` project
    /// into `target` — is there a label-preserving homomorphism mapping
    /// every relation node of `self` onto one of `target`, individuals
    /// onto equal individuals, generics consistently onto anything?
    ///
    /// By the homomorphism theorem this is exactly Boolean conjunctive-
    /// query containment: if `self` projects into `target`, then on every
    /// database where `target`'s sentence holds, `self`'s holds too (the
    /// projected graph is the more *general* statement). The test suite
    /// cross-checks that implication through the DRC evaluator.
    pub fn projects_into(&self, target: &ConceptualGraph) -> bool {
        // Backtracking over this graph's relation nodes.
        fn compatible(
            h: &ConceptualGraph,
            g: &ConceptualGraph,
            hc: usize,
            gc: usize,
            map: &mut [Option<usize>],
        ) -> bool {
            match (&h.concepts[hc].referent, &g.concepts[gc].referent) {
                (Referent::Individual(a), Referent::Individual(b)) => a == b,
                (Referent::Individual(_), Referent::Generic(_)) => false,
                (Referent::Generic(_), _) => match map[hc] {
                    Some(prev) => prev == gc,
                    None => {
                        map[hc] = Some(gc);
                        true
                    }
                },
            }
        }
        fn search(
            h: &ConceptualGraph,
            g: &ConceptualGraph,
            next: usize,
            map: &mut Vec<Option<usize>>,
        ) -> bool {
            let Some(hr) = h.relations.get(next) else {
                return true;
            };
            for gr in &g.relations {
                if gr.label != hr.label || gr.args.len() != hr.args.len() {
                    continue;
                }
                let saved = map.clone();
                let ok = hr
                    .args
                    .iter()
                    .zip(&gr.args)
                    .all(|(&hc, &gc)| compatible(h, g, hc, gc, map));
                if ok && search(h, g, next + 1, map) {
                    return true;
                }
                *map = saved;
            }
            false
        }
        let mut map: Vec<Option<usize>> = vec![None; self.concepts.len()];
        search(self, target, 0, &mut map)
    }

    pub fn census(&self) -> (usize, usize, usize) {
        (
            self.concepts.len(),
            self.relations.len(),
            self.relations.iter().map(|r| r.args.len()).sum(),
        )
    }

    /// Scene: bipartite layered drawing — concepts as rectangles,
    /// relations as rounded boxes, arcs between them.
    pub fn scene(&self) -> Scene {
        let mut g = GraphSpec::default();
        for c in &self.concepts {
            let label = c.referent.to_string();
            g.add_node(Scene::text_width(&label, 12.0) + 18.0, 26.0);
        }
        for r in &self.relations {
            g.add_node(Scene::text_width(&r.label, 12.0) + 26.0, 26.0);
        }
        let n_concepts = self.concepts.len();
        for (ri, r) in self.relations.iter().enumerate() {
            for &arg in &r.args {
                g.add_edge(arg, n_concepts + ri);
            }
        }
        let l = layout(&g, LayeredOptions::default());
        let mut scene = Scene::new(l.size.w, l.size.h);
        for (i, r) in l.nodes.iter().enumerate() {
            let (label, rounded) = if i < n_concepts {
                (self.concepts[i].referent.to_string(), false)
            } else {
                (format!("({})", self.relations[i - n_concepts].label), true)
            };
            scene.styled_rect(
                r.x,
                r.y,
                r.w,
                r.h,
                if rounded { 12.0 } else { 0.0 },
                "#000000",
                "none",
                1.0,
                false,
            );
            scene.styled_text(
                r.x + r.w / 2.0,
                r.y + r.h / 2.0 + 4.0,
                label,
                TextStyle { size: 12.0, anchor: relviz_render::Anchor::Middle, ..TextStyle::default() },
            );
        }
        for pts in &l.edges {
            scene
                .items
                .push(relviz_render::Item::Polyline {
                    points: pts.iter().map(|p| (p.x, p.y)).collect(),
                    stroke: "#000000".into(),
                    stroke_width: 1.0,
                    dashed: false,
                    arrow: false,
                });
        }
        scene.fit(10.0);
        scene
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relviz_model::catalog::sailors_sample;
    use relviz_rc::drc_eval::eval_drc_unchecked;
    use relviz_rc::drc_parse::parse_drc;

    #[test]
    fn q1_builds_and_round_trips() {
        let db = sailors_sample();
        let q = parse_drc(
            "{n | exists s, rt, a, d: (Sailor(s, n, rt, a) and Reserves(s, 102, d))}",
        )
        .unwrap();
        let g = ConceptualGraph::from_drc(&q).unwrap();
        let (concepts, relations, arcs) = g.census();
        // vars: n, s, rt, a, d (5) + constant 102 (1)
        assert_eq!((concepts, relations, arcs), (6, 2, 7));
        // shared variable s appears once as a concept: co-reference is the join
        let back = g.to_drc(vec!["n".into()]);
        let orig = eval_drc_unchecked(&q, &db).unwrap();
        let rt = eval_drc_unchecked(&back, &db).unwrap();
        assert!(orig.same_contents(&rt), "{back}");
    }

    #[test]
    fn negation_unsupported() {
        let q = parse_drc("{n | exists s: (P(s, n) and not Q(s))}").unwrap();
        assert!(matches!(
            ConceptualGraph::from_drc(&q),
            Err(DiagError::Unsupported { .. })
        ));
    }

    #[test]
    fn disjunction_and_comparisons_unsupported() {
        let q = parse_drc("{n | P(n) or Q(n)}").unwrap();
        assert!(ConceptualGraph::from_drc(&q).is_err());
        let q = parse_drc("{n | exists r: (P(n, r) and r > 7)}").unwrap();
        assert!(ConceptualGraph::from_drc(&q).is_err());
    }

    #[test]
    fn constants_become_individual_concepts() {
        let q = parse_drc("{x | exists n: (Boat(x, n, 'red'))}").unwrap();
        let g = ConceptualGraph::from_drc(&q).unwrap();
        assert!(g
            .concepts
            .iter()
            .any(|c| matches!(&c.referent, Referent::Individual(v) if v.to_string() == "red")));
    }

    #[test]
    fn scene_is_bipartite() {
        let q = parse_drc("{x | exists n: (Boat(x, n, 'red'))}").unwrap();
        let g = ConceptualGraph::from_drc(&q).unwrap();
        let svg = relviz_render::svg::to_svg(&g.scene());
        assert!(svg.contains("(Boat)"));
        assert!(svg.contains("[*x]"));
    }

    #[test]
    fn projection_generalizes() {
        // "some sailor reserved some boat" projects into
        // "some sailor reserved boat 102 on some day" (more specific).
        let general = ConceptualGraph::from_drc(
            &relviz_rc::drc_parse::parse_drc("{ | exists s, b, d: (Reserves(s, b, d))}")
                .unwrap(),
        )
        .unwrap();
        let specific = ConceptualGraph::from_drc(
            &relviz_rc::drc_parse::parse_drc(
                "{ | exists s, d, n, rt, a: (Reserves(s, 102, d) and Sailor(s, n, rt, a))}",
            )
            .unwrap(),
        )
        .unwrap();
        assert!(general.projects_into(&specific));
        assert!(!specific.projects_into(&general), "Sailor atom has no image");
    }

    #[test]
    fn projection_respects_individuals() {
        let wants_102 = ConceptualGraph::from_drc(
            &relviz_rc::drc_parse::parse_drc("{ | exists s, d: (Reserves(s, 102, d))}")
                .unwrap(),
        )
        .unwrap();
        let has_103 = ConceptualGraph::from_drc(
            &relviz_rc::drc_parse::parse_drc("{ | exists s, d: (Reserves(s, 103, d))}")
                .unwrap(),
        )
        .unwrap();
        assert!(!wants_102.projects_into(&has_103));
        assert!(wants_102.projects_into(&wants_102), "projection is reflexive");
    }

    #[test]
    fn projection_binds_generics_consistently() {
        // "someone reserved the same boat twice on days d1, d2" does NOT
        // project into "two different sailors reserved (possibly
        // different) boats" — the shared generic must map to one target.
        let same_sailor = ConceptualGraph::from_drc(
            &relviz_rc::drc_parse::parse_drc(
                "{ | exists s, b1, b2, d1, d2: (Reserves(s, b1, d1) and Reserves(s, b2, d2))}",
            )
            .unwrap(),
        )
        .unwrap();
        let two_sailors = ConceptualGraph::from_drc(
            &relviz_rc::drc_parse::parse_drc(
                "{ | exists s1, s2, d1, d2: (Reserves(s1, 102, d1) and Reserves(s2, 103, d2))}",
            )
            .unwrap(),
        )
        .unwrap();
        // Both atoms CAN map onto the same target atom (s↦s1, twice) — a
        // homomorphism may collapse; so this DOES project:
        assert!(same_sailor.projects_into(&two_sailors));
        // But requiring two *distinct-boat* atoms of one sailor fails
        // against a target whose sailors differ:
        let strict = ConceptualGraph::from_drc(
            &relviz_rc::drc_parse::parse_drc(
                "{ | exists s, d1, d2: (Reserves(s, 102, d1) and Reserves(s, 103, d2))}",
            )
            .unwrap(),
        )
        .unwrap();
        assert!(!strict.projects_into(&two_sailors));
    }

    #[test]
    fn projection_implies_containment_semantically() {
        // The homomorphism theorem, checked: whenever H projects into G,
        // G's sentence implies H's on every probe database.
        use relviz_model::generate::{generate_sailors, GenConfig};
        let sentences = [
            "{ | exists s, b, d: (Reserves(s, b, d))}",
            "{ | exists s, d: (Reserves(s, 102, d))}",
            "{ | exists s, d, n, rt, a: (Reserves(s, 102, d) and Sailor(s, n, rt, a))}",
            "{ | exists s, b, d, bn, c: (Reserves(s, b, d) and Boat(b, bn, c))}",
        ];
        let graphs: Vec<(ConceptualGraph, relviz_rc::drc::DrcQuery)> = sentences
            .iter()
            .map(|t| {
                let q = relviz_rc::drc_parse::parse_drc(t).unwrap();
                (ConceptualGraph::from_drc(&q).unwrap(), q)
            })
            .collect();
        let dbs: Vec<relviz_model::Database> = (0..4)
            .map(|seed| generate_sailors(&GenConfig { seed, ..Default::default() }))
            .collect();
        let truth = |q: &relviz_rc::drc::DrcQuery, db: &relviz_model::Database| {
            !relviz_rc::drc_eval::eval_drc(q, db).unwrap().is_empty()
        };
        for (h, hq) in &graphs {
            for (g, gq) in &graphs {
                if h.projects_into(g) {
                    for db in &dbs {
                        assert!(
                            !truth(gq, db) || truth(hq, db),
                            "projection without containment: {} vs {}",
                            hq.body,
                            gq.body
                        );
                    }
                }
            }
        }
    }
}
