//! **SIEUFERD** (Bakke & Karger, SIGMOD 2016) — "expressive query
//! construction through direct manipulation of nested relational
//! results".
//!
//! SIEUFERD is a spreadsheet-like interface: the user never sees query
//! text; instead **the result header encodes the structure of the
//! query**, and the (nested) result rows are listed below it. A join adds
//! a nested child table to the header; a filter annotates the header
//! column it applies to.
//!
//! This module implements that *representation*: a header tree ([`HeaderNode`]) built
//! from a conjunctive query whose equi-join graph is a tree, the nested
//! evaluation producing [`NestedRow`] groups (the visible spreadsheet),
//! and a flattening check connecting the nested result back to standard
//! SQL semantics. Joins that are not tree-shaped and subqueries are
//! reported as named unsupported features — the representational limits
//! the tutorial's comparison points out for result-oriented interfaces.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use relviz_model::{Database, Relation, Tuple, Value};
use relviz_render::{Scene, TextStyle};
use relviz_sql::ast::{Cond, Query, Scalar, SelectItem};
use relviz_sql::printer;

use crate::common::{DiagError, DiagResult};

const FORMALISM: &str = "SIEUFERD";

/// One node of the result header: a table with its visible columns,
/// filters, and nested child tables.
#[derive(Debug, Clone, PartialEq)]
pub struct HeaderNode {
    pub table: String,
    pub alias: String,
    /// Visible columns (attribute names of `table`), in SELECT order.
    pub shown: Vec<String>,
    /// Filter annotations, as text, shown under the header.
    pub filters: Vec<String>,
    /// Join to the parent: (parent attribute, this node's attribute).
    pub join: Option<(String, String)>,
    pub children: Vec<HeaderNode>,
}

/// A nested result row: the visible values of one tuple plus one group of
/// nested rows per child header.
#[derive(Debug, Clone, PartialEq)]
pub struct NestedRow {
    pub values: Vec<Value>,
    pub groups: Vec<Vec<NestedRow>>,
}

/// A SIEUFERD sheet: header tree + the query's projection order.
#[derive(Debug, Clone, PartialEq)]
pub struct SieuferdSheet {
    pub root: HeaderNode,
    pub distinct: bool,
    /// Output order as (alias, attribute) — SELECT-list order, which may
    /// interleave columns of different header nodes.
    pub output: Vec<(String, String)>,
}

impl SieuferdSheet {
    /// Builds a sheet from a conjunctive SQL block whose equi-join graph
    /// is a tree (rooted at the first FROM table).
    pub fn from_sql(sql: &str, db: &Database) -> DiagResult<SieuferdSheet> {
        let q = relviz_sql::parser::parse_query(sql)
            .map_err(|e| DiagError::Lang(e.to_string()))?;
        let q = relviz_sql::analyze::resolve(&q, db)
            .map_err(|e| DiagError::Lang(e.to_string()))?;
        let Query::Select(s) = &q else {
            return Err(DiagError::unsupported(
                FORMALISM,
                "set operations (one nested result sheet per query)",
            ));
        };
        if s.from.is_empty() {
            return Err(DiagError::Invalid("no FROM tables".into()));
        }
        // Partition the WHERE conjuncts.
        let mut joins: Vec<(String, String, String, String)> = Vec::new(); // (qa, na, qb, nb)
        let mut filters: Vec<(String, String)> = Vec::new(); // (alias, text)
        if let Some(w) = &s.where_clause {
            for part in conjuncts(w) {
                match part {
                    Cond::Cmp {
                        left: Scalar::Column { qualifier: Some(ql), name: nl },
                        op,
                        right: Scalar::Column { qualifier: Some(qr), name: nr },
                    } if ql != qr => {
                        if *op != relviz_model::CmpOp::Eq {
                            return Err(DiagError::unsupported(
                                FORMALISM,
                                format!(
                                    "non-equi join {} (nesting requires equality joins)",
                                    printer::print_cond(part)
                                ),
                            ));
                        }
                        joins.push((ql.clone(), nl.clone(), qr.clone(), nr.clone()));
                    }
                    Cond::Exists { .. } | Cond::InSubquery { .. } | Cond::QuantCmp { .. } => {
                        return Err(DiagError::unsupported(
                            FORMALISM,
                            "subqueries (the header encodes joins, not quantifiers)",
                        ));
                    }
                    other => {
                        let mut cols = Vec::new();
                        collect_qualifiers(other, &mut cols);
                        let alias = cols
                            .first()
                            .cloned()
                            .ok_or_else(|| {
                                DiagError::unsupported(
                                    FORMALISM,
                                    format!(
                                        "constant condition {} (no header column to \
                                         annotate)",
                                        printer::print_cond(other)
                                    ),
                                )
                            })?;
                        if cols.iter().any(|c| c != &alias) {
                            return Err(DiagError::unsupported(
                                FORMALISM,
                                format!(
                                    "cross-table filter {} (annotations attach to one \
                                     header node)",
                                    printer::print_cond(other)
                                ),
                            ));
                        }
                        filters.push((alias, printer::print_cond(other)));
                    }
                }
            }
        }
        // Grow the header tree from the first FROM table.
        let mut placed: BTreeSet<String> = BTreeSet::new();
        let first = &s.from[0];
        let mut root = HeaderNode {
            table: first.table.clone(),
            alias: first.effective_name().to_string(),
            shown: Vec::new(),
            filters: Vec::new(),
            join: None,
            children: Vec::new(),
        };
        placed.insert(root.alias.clone());
        let mut remaining: Vec<&relviz_sql::ast::TableRef> = s.from.iter().skip(1).collect();
        let mut used_joins = vec![false; joins.len()];
        while !remaining.is_empty() {
            let mut progress = false;
            remaining.retain(|t| {
                let alias = t.effective_name().to_string();
                // A join connecting this table to a placed one?
                for (i, (qa, na, qb, nb)) in joins.iter().enumerate() {
                    if used_joins[i] {
                        continue;
                    }
                    let (parent, pattr, cattr) = if placed.contains(qa) && *qb == alias {
                        (qa.clone(), na.clone(), nb.clone())
                    } else if placed.contains(qb) && *qa == alias {
                        (qb.clone(), nb.clone(), na.clone())
                    } else {
                        continue;
                    };
                    used_joins[i] = true;
                    let node = HeaderNode {
                        table: t.table.clone(),
                        alias: alias.clone(),
                        shown: Vec::new(),
                        filters: Vec::new(),
                        join: Some((pattr, cattr)),
                        children: Vec::new(),
                    };
                    attach(&mut root, &parent, node);
                    placed.insert(alias.clone());
                    progress = true;
                    return false;
                }
                true
            });
            if !progress {
                return Err(DiagError::unsupported(
                    FORMALISM,
                    "a FROM table not connected to the join tree (cartesian products \
                     have no nesting structure)",
                ));
            }
        }
        // Joins left over join two already-placed tables: a cycle.
        if used_joins.iter().any(|u| !u) {
            return Err(DiagError::unsupported(
                FORMALISM,
                "cyclic join graph (the nested header is a tree)",
            ));
        }
        // Attach filters and outputs.
        for (alias, text) in filters {
            if !annotate(&mut root, &alias, &text) {
                return Err(DiagError::Invalid(format!("filter on unknown alias {alias}")));
            }
        }
        let mut output = Vec::new();
        for item in &s.items {
            match item {
                SelectItem::Expr { expr: Scalar::Column { qualifier: Some(q), name }, .. } => {
                    if !show(&mut root, q, name) {
                        return Err(DiagError::Invalid(format!("output on unknown alias {q}")));
                    }
                    output.push((q.clone(), name.clone()));
                }
                SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => {
                    return Err(DiagError::unsupported(
                        FORMALISM,
                        "wildcard projection (the sheet shows explicitly chosen columns)",
                    ));
                }
                SelectItem::Expr { .. } => {
                    return Err(DiagError::unsupported(
                        FORMALISM,
                        "computed output column",
                    ));
                }
            }
        }
        Ok(SieuferdSheet { root, distinct: s.distinct, output })
    }

    /// Evaluates the sheet: nested rows, exactly what the UI lists under
    /// the header.
    pub fn evaluate(&self, db: &Database) -> DiagResult<Vec<NestedRow>> {
        eval_node(&self.root, db, None)
    }

    /// Flattens the nested result into a relation over the output columns
    /// (inner-join semantics: a row with an empty required child group
    /// disappears) — the bridge back to standard SQL semantics.
    pub fn flatten(&self, db: &Database) -> DiagResult<Relation> {
        let rows = self.evaluate(db)?;
        // Column positions: walk the header in the same order as eval
        // collects values, mapping (alias, attr) → flat position.
        let mut cols: Vec<(String, String)> = Vec::new();
        fn collect_cols(n: &HeaderNode, out: &mut Vec<(String, String)>) {
            for a in &n.shown {
                out.push((n.alias.clone(), a.clone()));
            }
            for c in &n.children {
                collect_cols(c, out);
            }
        }
        collect_cols(&self.root, &mut cols);

        let mut flat: Vec<Vec<Value>> = Vec::new();
        fn expand(node: &HeaderNode, row: &NestedRow, prefix: Vec<Value>, out: &mut Vec<Vec<Value>>) {
            let mut prefix = prefix;
            prefix.extend(row.values.iter().cloned());
            // Cartesian across child groups (inner join: empty ⇒ drop).
            fn product(
                node: &HeaderNode,
                groups: &[Vec<NestedRow>],
                idx: usize,
                acc: Vec<Value>,
                out: &mut Vec<Vec<Value>>,
            ) {
                if idx == groups.len() {
                    out.push(acc);
                    return;
                }
                for child_row in &groups[idx] {
                    let mut sub = Vec::new();
                    expand(&node.children[idx], child_row, Vec::new(), &mut sub);
                    for s in sub {
                        let mut a = acc.clone();
                        a.extend(s);
                        product(node, groups, idx + 1, a, out);
                    }
                }
            }
            if node.children.is_empty() {
                out.push(prefix);
            } else {
                product(node, &row.groups, 0, prefix, out);
            }
        }
        for r in &rows {
            expand(&self.root, r, Vec::new(), &mut flat);
        }
        // Project to SELECT order.
        let positions: Vec<usize> = self
            .output
            .iter()
            .map(|oc| cols.iter().position(|c| c == oc).expect("output column shown"))
            .collect();
        let attrs: Vec<relviz_model::Attribute> = self
            .output
            .iter()
            .enumerate()
            .map(|(i, (_, name))| {
                let witness = flat
                    .iter()
                    .map(|r| r[positions[i]].data_type())
                    .next()
                    .unwrap_or(relviz_model::DataType::Str);
                relviz_model::Attribute::new(format!("{name}_{i}"), witness)
            })
            .collect();
        let schema = relviz_model::Schema::new(attrs)
            .map_err(|e| DiagError::Invalid(e.to_string()))?;
        let mut rel = Relation::empty(schema);
        for r in flat {
            let projected: Vec<Value> = positions.iter().map(|&p| r[p].clone()).collect();
            rel.insert_unchecked(Tuple::new(projected));
        }
        Ok(rel)
    }

    /// Element census: (header nodes, shown columns, filter annotations,
    /// join edges, header depth).
    pub fn census(&self) -> (usize, usize, usize, usize, usize) {
        fn walk(n: &HeaderNode, depth: usize) -> (usize, usize, usize, usize, usize) {
            let mut acc = (1, n.shown.len(), n.filters.len(), usize::from(n.join.is_some()), depth);
            for c in &n.children {
                let r = walk(c, depth + 1);
                acc.0 += r.0;
                acc.1 += r.1;
                acc.2 += r.2;
                acc.3 += r.3;
                acc.4 = acc.4.max(r.4);
            }
            acc
        }
        walk(&self.root, 1)
    }

    /// ASCII spreadsheet: header tree then the nested rows with
    /// indentation per nesting level.
    pub fn ascii(&self, db: &Database) -> DiagResult<String> {
        let mut out = String::new();
        fn header(n: &HeaderNode, indent: usize, out: &mut String) {
            let pad = "  ".repeat(indent);
            let _ = writeln!(
                out,
                "{pad}▣ {} {} [{}]{}",
                n.table,
                n.alias,
                n.shown.join(", "),
                if n.filters.is_empty() {
                    String::new()
                } else {
                    format!("  ⚲ {}", n.filters.join(" ∧ "))
                }
            );
            for c in &n.children {
                header(c, indent + 1, out);
            }
        }
        header(&self.root, 0, &mut out);
        out.push_str("----\n");
        fn rows(node: &HeaderNode, rs: &[NestedRow], indent: usize, out: &mut String) {
            let pad = "  ".repeat(indent);
            for r in rs {
                let vals =
                    r.values.iter().map(Value::to_literal).collect::<Vec<_>>().join(" | ");
                let _ = writeln!(out, "{pad}{vals}");
                for (ci, g) in r.groups.iter().enumerate() {
                    rows(&node.children[ci], g, indent + 1, out);
                }
            }
        }
        rows(&self.root, &self.evaluate(db)?, 0, &mut out);
        Ok(out)
    }

    /// Scene: the header as nested column bands (structure only — the
    /// data pane is the ASCII rendering).
    pub fn scene(&self) -> Scene {
        let mut scene = Scene::new(0.0, 0.0);
        draw_header(&self.root, 20.0, 20.0, &mut scene);
        scene.fit(10.0);
        scene
    }
}

fn draw_header(n: &HeaderNode, x: f64, y: f64, scene: &mut Scene) -> f64 {
    const COL_W: f64 = 78.0;
    const H: f64 = 22.0;
    let own_w = (n.shown.len().max(1)) as f64 * COL_W;
    let mut child_w = 0.0;
    for c in &n.children {
        child_w += draw_header(c, x + own_w + child_w, y + H, scene);
    }
    let w = own_w + child_w;
    scene.rect(x, y, w, H);
    scene.styled_text(
        x + 4.0,
        y + 15.0,
        format!("{} {}", n.table, n.alias),
        TextStyle { size: 11.0, bold: true, ..TextStyle::default() },
    );
    for (i, a) in n.shown.iter().enumerate() {
        scene.rect(x + i as f64 * COL_W, y + H, COL_W, H);
        scene.text(x + i as f64 * COL_W + 4.0, y + H + 15.0, a.clone());
    }
    for (i, f) in n.filters.iter().enumerate() {
        scene.styled_text(
            x + 4.0,
            y + 2.0 * H + 14.0 + i as f64 * 14.0,
            format!("⚲ {f}"),
            TextStyle { size: 10.0, italic: true, ..TextStyle::default() },
        );
    }
    w
}

fn attach(node: &mut HeaderNode, parent_alias: &str, child: HeaderNode) -> bool {
    if node.alias == parent_alias {
        node.children.push(child);
        return true;
    }
    for c in &mut node.children {
        if attach(c, parent_alias, child.clone()) {
            return true;
        }
    }
    false
}

fn annotate(node: &mut HeaderNode, alias: &str, text: &str) -> bool {
    if node.alias == alias {
        node.filters.push(text.to_string());
        return true;
    }
    node.children.iter_mut().any(|c| annotate(c, alias, text))
}

fn show(node: &mut HeaderNode, alias: &str, attr: &str) -> bool {
    if node.alias == alias {
        if !node.shown.iter().any(|a| a == attr) {
            node.shown.push(attr.to_string());
        }
        return true;
    }
    node.children.iter_mut().any(|c| show(c, alias, attr))
}

/// Evaluates a header node: all tuples of its table passing the filters
/// (and matching the parent join value when given), with child groups.
fn eval_node(
    node: &HeaderNode,
    db: &Database,
    parent_match: Option<(&str, &Value)>,
) -> DiagResult<Vec<NestedRow>> {
    let rel = db
        .relation(&node.table)
        .map_err(|e| DiagError::Lang(e.to_string()))?;
    let schema = rel.schema().clone();
    let filter_sql: Vec<relviz_sql::ast::Cond> = node
        .filters
        .iter()
        .map(|f| parse_filter(f))
        .collect::<DiagResult<Vec<_>>>()?;
    let mut out = Vec::new();
    for t in rel.iter() {
        if let Some((attr, val)) = parent_match {
            let idx = schema
                .index_of(attr)
                .ok_or_else(|| DiagError::Invalid(format!("no attribute {attr}")))?;
            if t.get(idx) != Some(val) {
                continue;
            }
        }
        if !filter_sql.iter().all(|c| eval_filter(c, &schema, t)) {
            continue;
        }
        let values: Vec<Value> = node
            .shown
            .iter()
            .map(|a| {
                let idx = schema.index_of(a).expect("resolved column");
                t.get(idx).expect("arity checked").clone()
            })
            .collect();
        let mut groups = Vec::new();
        for c in &node.children {
            let (pattr, cattr) = c.join.as_ref().expect("non-root has a join");
            let pidx = schema
                .index_of(pattr)
                .ok_or_else(|| DiagError::Invalid(format!("no attribute {pattr}")))?;
            let pval = t.get(pidx).expect("arity checked");
            groups.push(eval_node(c, db, Some((cattr, pval)))?);
        }
        out.push(NestedRow { values, groups });
    }
    Ok(out)
}

/// Parses a filter annotation back into a condition (annotations were
/// printed by the canonical printer, so this is exact).
fn parse_filter(text: &str) -> DiagResult<relviz_sql::ast::Cond> {
    let sql = format!("SELECT * FROM T WHERE {text}");
    let q = relviz_sql::parser::parse_query(&sql)
        .map_err(|e| DiagError::Invalid(format!("unparsable filter {text}: {e}")))?;
    match q {
        Query::Select(s) => {
            s.where_clause.ok_or_else(|| DiagError::Invalid("empty filter".into()))
        }
        _ => Err(DiagError::Invalid("filter parsed to set-op".into())),
    }
}

/// Evaluates a filter condition on one tuple (qualifiers refer to this
/// node's alias, names to its schema).
fn eval_filter(c: &Cond, schema: &relviz_model::Schema, t: &Tuple) -> bool {
    let scalar = |s: &Scalar| -> Option<Value> {
        match s {
            Scalar::Literal(v) => Some(v.clone()),
            Scalar::Column { name, .. } => {
                schema.index_of(name).and_then(|i| t.get(i)).cloned()
            }
        }
    };
    match c {
        Cond::Cmp { left, op, right } => match (scalar(left), scalar(right)) {
            (Some(l), Some(r)) => op.apply(&l, &r),
            _ => false,
        },
        Cond::And(a, b) => eval_filter(a, schema, t) && eval_filter(b, schema, t),
        Cond::Or(a, b) => eval_filter(a, schema, t) || eval_filter(b, schema, t),
        Cond::Not(a) => !eval_filter(a, schema, t),
        Cond::InList { expr, negated, list } => {
            let hit = scalar(expr).map(|v| list.contains(&v)).unwrap_or(false);
            hit != *negated
        }
        Cond::Between { expr, negated, low, high } => {
            let hit = match (scalar(expr), scalar(low), scalar(high)) {
                (Some(v), Some(lo), Some(hi)) => {
                    relviz_model::CmpOp::Le.apply(&lo, &v)
                        && relviz_model::CmpOp::Le.apply(&v, &hi)
                }
                _ => false,
            };
            hit != *negated
        }
        Cond::IsNull { expr, negated } => {
            let hit = scalar(expr).map(|v| v.is_null()).unwrap_or(false);
            hit != *negated
        }
        Cond::Literal(b) => *b,
        Cond::Exists { .. } | Cond::InSubquery { .. } | Cond::QuantCmp { .. } => false,
    }
}

/// Flattens an AND-spine of SQL conditions.
fn conjuncts(c: &Cond) -> Vec<&Cond> {
    let mut out = Vec::new();
    fn walk<'a>(c: &'a Cond, out: &mut Vec<&'a Cond>) {
        if let Cond::And(a, b) = c {
            walk(a, out);
            walk(b, out);
        } else {
            out.push(c);
        }
    }
    walk(c, &mut out);
    out
}

/// Collects the qualifiers mentioned by a condition.
fn collect_qualifiers(c: &Cond, out: &mut Vec<String>) {
    fn scalar(s: &Scalar, out: &mut Vec<String>) {
        if let Scalar::Column { qualifier: Some(q), .. } = s {
            out.push(q.clone());
        }
    }
    match c {
        Cond::Cmp { left, right, .. } => {
            scalar(left, out);
            scalar(right, out);
        }
        Cond::And(a, b) | Cond::Or(a, b) => {
            collect_qualifiers(a, out);
            collect_qualifiers(b, out);
        }
        Cond::Not(a) => collect_qualifiers(a, out),
        Cond::InList { expr, .. } | Cond::IsNull { expr, .. } => scalar(expr, out),
        Cond::Between { expr, low, high, .. } => {
            scalar(expr, out);
            scalar(low, out);
            scalar(high, out);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relviz_model::catalog::sailors_sample;

    const Q2: &str = "SELECT DISTINCT S.sname FROM Sailor S, Reserves R, Boat B \
        WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'red'";

    #[test]
    fn header_encodes_the_join_tree() {
        let db = sailors_sample();
        let sheet = SieuferdSheet::from_sql(Q2, &db).unwrap();
        assert_eq!(sheet.root.table, "Sailor");
        assert_eq!(sheet.root.children.len(), 1);
        let r = &sheet.root.children[0];
        assert_eq!(r.table, "Reserves");
        assert_eq!(r.join, Some(("sid".to_string(), "sid".to_string())));
        let b = &r.children[0];
        assert_eq!(b.table, "Boat");
        assert_eq!(b.filters, vec!["B.color = 'red'".to_string()]);
        let (nodes, shown, filters, joins, depth) = sheet.census();
        assert_eq!((nodes, shown, filters, joins, depth), (3, 1, 1, 2, 3));
    }

    #[test]
    fn flatten_matches_sql_semantics() {
        let db = sailors_sample();
        let sheet = SieuferdSheet::from_sql(Q2, &db).unwrap();
        let flat = sheet.flatten(&db).unwrap();
        let sql = relviz_sql::eval::run_sql(Q2, &db).unwrap();
        assert!(flat.same_contents(&sql), "nested→flat equals direct SQL");
    }

    #[test]
    fn nested_rows_group_by_parent() {
        let db = sailors_sample();
        let sheet = SieuferdSheet::from_sql(
            "SELECT S.sname, R.bid FROM Sailor S, Reserves R WHERE S.sid = R.sid",
            &db,
        )
        .unwrap();
        let rows = sheet.evaluate(&db).unwrap();
        // One top row per sailor (the nesting shows sailors w/o
        // reservations too — SIEUFERD's outer view).
        let sailors = db.relation("Sailor").unwrap().len();
        assert_eq!(rows.len(), sailors);
        // But flattening drops childless rows (inner-join semantics):
        let flat = sheet.flatten(&db).unwrap();
        let sql = relviz_sql::eval::run_sql(
            "SELECT S.sname, R.bid FROM Sailor S, Reserves R WHERE S.sid = R.sid",
            &db,
        )
        .unwrap();
        assert!(flat.same_contents(&sql));
    }

    #[test]
    fn cartesian_product_unsupported() {
        let db = sailors_sample();
        let r = SieuferdSheet::from_sql("SELECT S.sname, B.bname FROM Sailor S, Boat B", &db);
        assert!(matches!(r, Err(DiagError::Unsupported { .. })), "{r:?}");
    }

    #[test]
    fn cyclic_join_unsupported() {
        let db = sailors_sample();
        let r = SieuferdSheet::from_sql(
            "SELECT S.sname FROM Sailor S, Reserves R, Boat B \
             WHERE S.sid = R.sid AND R.bid = B.bid AND B.bid = S.sid",
            &db,
        );
        assert!(matches!(r, Err(DiagError::Unsupported { .. })), "{r:?}");
    }

    #[test]
    fn subquery_unsupported() {
        let db = sailors_sample();
        let r = SieuferdSheet::from_sql(
            "SELECT S.sname FROM Sailor S WHERE EXISTS \
             (SELECT * FROM Reserves R WHERE R.sid = S.sid)",
            &db,
        );
        assert!(matches!(r, Err(DiagError::Unsupported { .. })), "{r:?}");
    }

    #[test]
    fn ascii_sheet_lists_header_and_rows() {
        let db = sailors_sample();
        let sheet = SieuferdSheet::from_sql(Q2, &db).unwrap();
        let text = sheet.ascii(&db).unwrap();
        assert!(text.contains("Sailor"));
        assert!(text.contains("⚲ B.color = 'red'"));
        assert!(text.contains("----"));
    }

    #[test]
    fn scene_draws_nested_bands() {
        let db = sailors_sample();
        let sheet = SieuferdSheet::from_sql(Q2, &db).unwrap();
        let svg = relviz_render::svg::to_svg(&sheet.scene());
        assert!(svg.contains("Sailor"));
        assert!(svg.contains("Boat"));
    }
}
