//! **String diagrams** for first-order logic (Haydon & Sobociński 2020;
//! Bonchi et al. 2024): essentially Peirce's beta graphs re-engineered in
//! monoidal-category clothing — with the crucial addition that **free
//! variables are first-class**: a free variable is an *open wire* that
//! reaches the diagram boundary, whereas a bound variable's wire
//! terminates in a dot (the existential cap).
//!
//! That one change turns beta graphs from a statement language into a
//! *query* language (free wires = output columns), which is exactly how
//! the tutorial positions them in Part 5. The builder therefore accepts
//! full [`DrcQuery`]s, not just sentences.

use relviz_rc::drc::{DrcFormula, DrcQuery};
use relviz_render::{Scene, TextStyle};

use crate::common::{DiagError, DiagResult};
use crate::peirce::beta::{BetaGraph, BetaItem};

/// A string diagram: a beta graph plus designated open (free) wires.
#[derive(Debug, Clone, PartialEq)]
pub struct StringDiagram {
    pub graph: BetaGraph,
    /// Indices into `graph.lines` that are open (free) wires, in output
    /// order, with their output names.
    pub open_wires: Vec<(usize, String)>,
}

impl StringDiagram {
    /// Builds from a DRC query: head variables become open wires; the
    /// body builds like a beta graph.
    pub fn from_drc(q: &DrcQuery) -> DiagResult<StringDiagram> {
        // Wrap the body in ∃(head vars) to reuse the beta builder, then
        // mark those lines as open instead of existential.
        let free = q.body.free_vars();
        for h in &q.head {
            if !free.contains(h) {
                return Err(DiagError::Invalid(format!(
                    "head variable `{h}` does not occur in the body"
                )));
            }
        }
        let closed = if q.head.is_empty() {
            q.body.clone()
        } else {
            DrcFormula::exists(q.head.clone(), q.body.clone())
        };
        let graph = BetaGraph::from_drc(&closed)?;
        // The wrapper ∃ introduced the head lines first, in order.
        let open_wires = q.head.iter().cloned().enumerate().collect();
        Ok(StringDiagram { graph, open_wires })
    }

    /// Reads the diagram back into DRC: open wires become head variables.
    pub fn to_drc(&self) -> DiagResult<DrcQuery> {
        let reading = self.graph.reading()?;
        // The reading re-quantifies the open wires (they were built as an
        // outer ∃); strip that outer quantifier back off.
        let head: Vec<String> = self.open_wires.iter().map(|(li, _)| var_of(*li)).collect();
        let body = match reading.body {
            DrcFormula::Exists { vars, body } if head.iter().all(|h| vars.contains(h)) => {
                let residual: Vec<String> =
                    vars.into_iter().filter(|v| !head.contains(v)).collect();
                if residual.is_empty() {
                    *body
                } else {
                    DrcFormula::Exists { vars: residual, body }
                }
            }
            other if head.is_empty() => other,
            other => other,
        };
        Ok(DrcQuery { head, body })
    }

    /// Element census: (predicates, cuts, wires, open wires).
    pub fn census(&self) -> (usize, usize, usize, usize) {
        fn preds(items: &[BetaItem]) -> usize {
            items
                .iter()
                .map(|i| match i {
                    BetaItem::Predicate { .. } => 1,
                    BetaItem::Cut { items, .. } => preds(items),
                })
                .sum()
        }
        fn cuts(items: &[BetaItem]) -> usize {
            items
                .iter()
                .map(|i| match i {
                    BetaItem::Cut { items, .. } => 1 + cuts(items),
                    _ => 0,
                })
                .sum()
        }
        (
            preds(&self.graph.items),
            cuts(&self.graph.items),
            self.graph.lines.len(),
            self.open_wires.len(),
        )
    }

    /// Scene: the beta scene plus open wires extended to the left boundary
    /// with their output labels.
    pub fn scene(&self) -> Scene {
        let mut scene = self.graph.scene();
        // Draw boundary markers for open wires on the left edge.
        for (i, (_, name)) in self.open_wires.iter().enumerate() {
            let y = 24.0 + i as f64 * 26.0;
            scene.items.push(relviz_render::Item::Polyline {
                points: vec![(0.0, y), (18.0, y)],
                stroke: "#000000".into(),
                stroke_width: 3.0,
                dashed: false,
                arrow: false,
            });
            scene.styled_text(
                20.0,
                y + 4.0,
                name.clone(),
                TextStyle { size: 11.0, italic: true, ..TextStyle::default() },
            );
        }
        scene.fit(8.0);
        scene
    }
}

fn var_of(line: usize) -> String {
    format!("x{}", line + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relviz_model::catalog::sailors_sample;
    use relviz_rc::drc_eval::eval_drc_unchecked;
    use relviz_rc::drc_parse::parse_drc;

    fn check_round_trip(src: &str) {
        let db = sailors_sample();
        let q = parse_drc(src).unwrap();
        let d = StringDiagram::from_drc(&q).unwrap_or_else(|e| panic!("{src}: {e}"));
        let back = d.to_drc().unwrap();
        let orig = eval_drc_unchecked(&q, &db).unwrap();
        let rt = eval_drc_unchecked(&back, &db)
            .unwrap_or_else(|e| panic!("{src}\nback: {back}\n{e}"));
        assert!(
            orig.same_contents(&rt),
            "string diagram round trip changed `{src}`\nback: {back}"
        );
    }

    #[test]
    fn free_wires_make_it_a_query_language() {
        // The exact query beta graphs reject (free variable x):
        let q = parse_drc("{x | exists n: (Boat(x, n, 'red'))}").unwrap();
        let d = StringDiagram::from_drc(&q).unwrap();
        assert_eq!(d.open_wires.len(), 1);
        let (preds, cuts, wires, open) = d.census();
        assert_eq!((preds, cuts, wires, open), (1, 0, 2, 1));
    }

    #[test]
    fn round_trips_preserve_semantics() {
        for src in [
            "{x | exists n: (Boat(x, n, 'red'))}",
            "{n | exists s, rt, a, d: (Sailor(s, n, rt, a) and Reserves(s, 102, d))}",
            "{n | exists s, rt, a: (Sailor(s, n, rt, a) and not exists b, bn: \
              (Boat(b, bn, 'red') and not exists d: (Reserves(s, b, d))))}",
        ] {
            check_round_trip(src);
        }
    }

    #[test]
    fn head_var_must_occur() {
        let q = DrcQuery::new(
            vec!["ghost"],
            DrcFormula::atom("Boat", vec![relviz_rc::drc::DrcTerm::var("x")]),
        );
        assert!(StringDiagram::from_drc(&q).is_err());
    }

    #[test]
    fn boolean_queries_still_work() {
        // Sentences are the degenerate case with no open wires.
        let q = parse_drc("{h | exists s, n, rt, a: (Sailor(s, n, rt, a) and h = s)}").unwrap();
        let sentence = DrcQuery { head: vec![], body: DrcFormula::exists(vec!["h".into()], q.body) };
        let d = StringDiagram::from_drc(&sentence).unwrap();
        assert!(d.open_wires.is_empty());
        let back = d.to_drc().unwrap();
        assert!(back.head.is_empty());
    }

    #[test]
    fn scene_marks_open_wires() {
        let q = parse_drc("{x | exists n: (Boat(x, n, 'red'))}").unwrap();
        let d = StringDiagram::from_drc(&q).unwrap();
        let svg = relviz_render::svg::to_svg(&d.scene());
        assert!(svg.contains(">x<") || svg.contains(">x</text>"), "{svg}");
    }
}
