//! **Query-By-Example** (Zloof 1977): skeleton tables with example
//! elements — the most influential early visual query language, itself
//! influenced by DRC.
//!
//! A QBE program is a sequence of **steps**; each step fills skeleton
//! tables with rows of example elements (`_X`), constants, `P.` print
//! markers and `¬` row negation, plus a **condition box** for comparisons.
//! Universal quantification (relational division, Q5) requires *two*
//! steps and a temporary relation — the dataflow idiom the tutorial
//! highlights when asking whether QBE is really more visual than the
//! Datalog program it transliterates. Experiment E6 compares the two
//! element-for-element.
//!
//! The builder consumes non-recursive Datalog (one step per IDB
//! predicate), making the QBE ↔ Datalog correspondence literal.

use relviz_datalog::{Atom, Literal, Program, Term};
use relviz_model::Value;
use relviz_render::{Scene, TextStyle};

use crate::common::{DiagError, DiagResult};

const FORMALISM: &str = "QBE";

/// A cell of a skeleton row.
#[derive(Debug, Clone, PartialEq)]
pub enum QbeCell {
    Blank,
    /// An example element, printed `_X`.
    Example(String),
    Const(Value),
    /// `P._X` — print this column.
    Print(String),
}

impl std::fmt::Display for QbeCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QbeCell::Blank => Ok(()),
            QbeCell::Example(x) => write!(f, "_{x}"),
            QbeCell::Const(v) => write!(f, "{}", v.to_literal()),
            QbeCell::Print(x) => write!(f, "P._{x}"),
        }
    }
}

/// A row in a skeleton: optional `¬` negation, `I.` insertion marker.
#[derive(Debug, Clone, PartialEq)]
pub struct QbeRow {
    pub negated: bool,
    /// `I.` — this row inserts into a temporary relation.
    pub inserts: bool,
    pub cells: Vec<QbeCell>,
}

/// A skeleton table.
#[derive(Debug, Clone, PartialEq)]
pub struct Skeleton {
    pub rel: String,
    /// Column headers (generic `argK` names for temporaries).
    pub columns: Vec<String>,
    pub rows: Vec<QbeRow>,
}

/// One QBE step (screenful): skeletons + condition box.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QbeStep {
    pub skeletons: Vec<Skeleton>,
    pub conditions: Vec<String>,
}

/// A complete QBE interaction.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QbeProgram {
    pub steps: Vec<QbeStep>,
}

impl QbeProgram {
    /// Builds from a non-recursive Datalog program: one step per IDB
    /// predicate (in dependency order); the answer predicate's variables
    /// become `P.` markers.
    pub fn from_datalog(p: &Program, db: &relviz_model::Database) -> DiagResult<QbeProgram> {
        if p.is_recursive() {
            return Err(DiagError::unsupported(FORMALISM, "recursive programs"));
        }
        let stratum = relviz_datalog::stratify(p).map_err(DiagError::from)?;
        let mut order: Vec<&str> = stratum.keys().map(String::as_str).collect();
        order.sort_by_key(|n| (stratum[*n], n.to_string()));

        let mut out = QbeProgram::default();
        for pred in order {
            let mut step = QbeStep::default();
            for rule in p.rules.iter().filter(|r| r.head.rel == pred) {
                add_rule(&mut step, rule, pred == p.query, db)?;
            }
            out.steps.push(step);
        }
        Ok(out)
    }

    /// Element census for E6: (steps, skeleton tables, rows, filled cells,
    /// condition entries).
    pub fn census(&self) -> (usize, usize, usize, usize, usize) {
        let mut tables = 0;
        let mut rows = 0;
        let mut cells = 0;
        let mut conds = 0;
        for s in &self.steps {
            tables += s.skeletons.len();
            conds += s.conditions.len();
            for sk in &s.skeletons {
                rows += sk.rows.len();
                for r in &sk.rows {
                    cells += r.cells.iter().filter(|c| **c != QbeCell::Blank).count();
                }
            }
        }
        (self.steps.len(), tables, rows, cells, conds)
    }

    /// Scene: each step's skeletons as grids, condition box below.
    pub fn scene(&self) -> Scene {
        const CELL_W: f64 = 78.0;
        const CELL_H: f64 = 20.0;
        let mut scene = Scene::new(0.0, 0.0);
        let mut y = 16.0;
        for (si, step) in self.steps.iter().enumerate() {
            scene.styled_text(
                12.0,
                y,
                format!("Step {}", si + 1),
                TextStyle { size: 12.0, bold: true, ..TextStyle::default() },
            );
            y += 10.0;
            for sk in &step.skeletons {
                let cols = sk.columns.len() + 1;
                let w = cols as f64 * CELL_W;
                let h = (sk.rows.len() + 1) as f64 * CELL_H;
                scene.rect(12.0, y, w, h);
                for c in 1..cols {
                    scene.line(12.0 + c as f64 * CELL_W, y, 12.0 + c as f64 * CELL_W, y + h);
                }
                for r in 1..=sk.rows.len() + 1 {
                    let ly = y + r as f64 * CELL_H;
                    if r <= sk.rows.len() {
                        scene.line(12.0, ly, 12.0 + w, ly);
                    }
                }
                scene.styled_text(
                    16.0,
                    y + 14.0,
                    sk.rel.clone(),
                    TextStyle { size: 11.0, bold: true, ..TextStyle::default() },
                );
                for (ci, col) in sk.columns.iter().enumerate() {
                    scene.text(16.0 + (ci + 1) as f64 * CELL_W, y + 14.0, col.clone());
                }
                for (ri, row) in sk.rows.iter().enumerate() {
                    let ry = y + (ri + 1) as f64 * CELL_H + 14.0;
                    let mut prefix = String::new();
                    if row.negated {
                        prefix.push('¬');
                    }
                    if row.inserts {
                        prefix.push_str("I.");
                    }
                    scene.text(16.0, ry, prefix);
                    for (ci, cell) in row.cells.iter().enumerate() {
                        scene.text(16.0 + (ci + 1) as f64 * CELL_W, ry, cell.to_string());
                    }
                }
                y += h + 14.0;
            }
            if !step.conditions.is_empty() {
                let h = (step.conditions.len() + 1) as f64 * CELL_H;
                scene.rect(12.0, y, 220.0, h);
                scene.styled_text(
                    16.0,
                    y + 14.0,
                    "CONDITIONS",
                    TextStyle { size: 10.0, bold: true, ..TextStyle::default() },
                );
                for (i, c) in step.conditions.iter().enumerate() {
                    scene.text(16.0, y + (i + 1) as f64 * CELL_H + 14.0, c.clone());
                }
                y += h + 14.0;
            }
            y += 10.0;
        }
        scene.fit(12.0);
        scene
    }
}

fn add_rule(
    step: &mut QbeStep,
    rule: &relviz_datalog::Rule,
    is_query: bool,
    db: &relviz_model::Database,
) -> DiagResult<()> {
    // Which variables does the head print/insert?
    let head_vars: Vec<&str> = rule.head.terms.iter().filter_map(Term::as_var).collect();

    for lit in &rule.body {
        match lit {
            Literal::Pos(atom) => {
                step.skeletons.push(skeleton_for(atom, false, &[], db)?);
            }
            Literal::Neg(atom) => {
                step.skeletons.push(skeleton_for(atom, true, &[], db)?);
            }
            Literal::Cmp { left, op, right } => {
                step.conditions.push(format!(
                    "{} {} {}",
                    term_text(left),
                    op.symbol(),
                    term_text(right)
                ));
            }
        }
    }
    // Head: the answer predicate prints; intermediate predicates insert
    // into a temporary skeleton.
    let head_cells: Vec<QbeCell> = rule
        .head
        .terms
        .iter()
        .map(|t| match t {
            Term::Var(v) if is_query => QbeCell::Print(v.clone()),
            Term::Var(v) => QbeCell::Example(v.clone()),
            Term::Const(c) => QbeCell::Const(c.clone()),
        })
        .collect();
    let columns = (1..=rule.head.terms.len()).map(|i| format!("arg{i}")).collect();
    step.skeletons.push(Skeleton {
        rel: rule.head.rel.clone(),
        columns,
        rows: vec![QbeRow { negated: false, inserts: !is_query, cells: head_cells }],
    });
    let _ = head_vars;
    Ok(())
}

fn skeleton_for(
    atom: &Atom,
    negated: bool,
    _head: &[&str],
    db: &relviz_model::Database,
) -> DiagResult<Skeleton> {
    let columns: Vec<String> = match db.schema(&atom.rel) {
        Ok(s) => s.attrs().iter().map(|a| a.name.clone()).collect(),
        Err(_) => (1..=atom.terms.len()).map(|i| format!("arg{i}")).collect(),
    };
    if columns.len() != atom.terms.len() {
        return Err(DiagError::Invalid(format!(
            "atom `{atom}` arity {} vs schema arity {}",
            atom.terms.len(),
            columns.len()
        )));
    }
    let cells = atom
        .terms
        .iter()
        .map(|t| match t {
            Term::Var(v) => QbeCell::Example(v.clone()),
            Term::Const(c) => QbeCell::Const(c.clone()),
        })
        .collect();
    Ok(Skeleton {
        rel: atom.rel.clone(),
        columns,
        rows: vec![QbeRow { negated, inserts: false, cells }],
    })
}

fn term_text(t: &Term) -> String {
    match t {
        Term::Var(v) => format!("_{v}"),
        Term::Const(c) => c.to_literal(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relviz_datalog::parse::parse_program;
    use relviz_model::catalog::sailors_sample;

    #[test]
    fn q1_single_step() {
        let db = sailors_sample();
        let p = parse_program("ans(N) :- Sailor(S, N, R, A), Reserves(S, 102, D).").unwrap();
        let q = QbeProgram::from_datalog(&p, &db).unwrap();
        assert_eq!(q.steps.len(), 1);
        // two source skeletons + one answer skeleton
        assert_eq!(q.steps[0].skeletons.len(), 3);
        let sailor = &q.steps[0].skeletons[0];
        assert_eq!(sailor.rel, "Sailor");
        assert_eq!(sailor.columns, vec!["sid", "sname", "rating", "age"]);
        assert_eq!(sailor.rows[0].cells[0], QbeCell::Example("S".into()));
        // answer prints
        let ans = q.steps[0].skeletons.last().unwrap();
        assert_eq!(ans.rows[0].cells[0], QbeCell::Print("N".into()));
    }

    #[test]
    fn q5_division_needs_two_extra_steps() {
        // The tutorial's point: QBE expresses division only via the
        // dataflow pattern with a temporary relation.
        let db = sailors_sample();
        let p = parse_program(
            "% query: ans\n\
             missing(S) :- Sailor(S, N, R, A), Boat(B, BN, 'red'), not res2(S, B).\n\
             res2(S, B) :- Reserves(S, B, D).\n\
             ans(N) :- Sailor(S, N, R, A), not missing(S).",
        )
        .unwrap();
        let q = QbeProgram::from_datalog(&p, &db).unwrap();
        assert_eq!(q.steps.len(), 3);
        // temp steps insert, final step prints
        let temp_rows: Vec<&QbeRow> = q.steps[..2]
            .iter()
            .flat_map(|s| &s.skeletons)
            .flat_map(|sk| &sk.rows)
            .filter(|r| r.inserts)
            .collect();
        assert_eq!(temp_rows.len(), 2);
        // negated rows appear (¬res2 and ¬missing)
        let negs = q
            .steps
            .iter()
            .flat_map(|s| &s.skeletons)
            .flat_map(|sk| &sk.rows)
            .filter(|r| r.negated)
            .count();
        assert_eq!(negs, 2);
    }

    #[test]
    fn conditions_go_to_condition_box() {
        let db = sailors_sample();
        let p = parse_program("ans(N) :- Sailor(S, N, R, A), R > 7, A < 40.").unwrap();
        let q = QbeProgram::from_datalog(&p, &db).unwrap();
        assert_eq!(q.steps[0].conditions, vec!["_R > 7", "_A < 40"]);
    }

    #[test]
    fn recursion_rejected() {
        let db = sailors_sample();
        let p = parse_program("tc(X, Y) :- R(X, Y).\ntc(X, Z) :- tc(X, Y), R(Y, Z).").unwrap();
        assert!(matches!(
            QbeProgram::from_datalog(&p, &db),
            Err(DiagError::Unsupported { .. })
        ));
    }

    #[test]
    fn census_counts() {
        let db = sailors_sample();
        let p = parse_program("ans(N) :- Sailor(S, N, R, A), Reserves(S, 102, D).").unwrap();
        let q = QbeProgram::from_datalog(&p, &db).unwrap();
        let (steps, tables, rows, cells, conds) = q.census();
        assert_eq!((steps, tables, rows, conds), (1, 3, 3, 0));
        assert!(cells >= 8);
    }

    #[test]
    fn scene_renders_grids() {
        let db = sailors_sample();
        let p = parse_program("ans(N) :- Sailor(S, N, R, A), R > 7.").unwrap();
        let q = QbeProgram::from_datalog(&p, &db).unwrap();
        let svg = relviz_render::svg::to_svg(&q.scene());
        assert!(svg.contains("Sailor"));
        assert!(svg.contains("P._N"));
        assert!(svg.contains("CONDITIONS"));
    }
}
