//! The **interactive query builders** of Part 5 — dbForge, SQL Server
//! Management Studio, Active Query Builder, QueryScope, MS Access,
//! pgAdmin3 — as a machine-readable feature matrix.
//!
//! These are commercial, closed-source tools; per the substitution policy
//! in `DESIGN.md` they are *not* reimplemented. What the tutorial uses
//! them for is a capability comparison, and that comparison is data:
//! each tool's row records exactly the representational capabilities the
//! tutorial's text attributes to it (each field cites the claim). The
//! same [`BuilderProfile`] is filled in for this workspace's implemented
//! formalisms, so experiment E5's commentary can show where the
//! research formalisms pass the builders — with both sides' rows
//! produced by the same schema.

/// How a capability is supported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Support {
    /// A dedicated visual element exists.
    Visual,
    /// Possible, but only through a separate textual/configurator pane
    /// or across multiple screens — the tutorial's recurring criticism.
    Configurator,
    /// Not available.
    No,
}

impl Support {
    pub fn mark(self) -> &'static str {
        match self {
            Support::Visual => "✓",
            Support::Configurator => "(cfg)",
            Support::No => "—",
        }
    }
}

/// One tool or formalism's representational capabilities, following the
/// dimensions of the tutorial's Part 5 builder discussion.
#[derive(Debug, Clone)]
pub struct BuilderProfile {
    pub name: &'static str,
    /// Select tables/attributes by direct manipulation.
    pub table_selection: Support,
    /// Equi-joins as visual lines between attributes.
    pub equi_joins: Support,
    /// Non-equi joins as visual elements ("it does not have a visual
    /// formalism for non-equi joins between tables" — dbForge).
    pub non_equi_joins: Support,
    /// Filter values/predicates visible in the diagram itself
    /// ("the actual filtering values … can only be added in a separate
    /// query configurator").
    pub inline_predicates: Support,
    /// Nested queries in one picture ("the inner and outer queries are
    /// built separately, and the diagram for the inner query is presented
    /// separately and disjointly").
    pub nested_queries: Support,
    /// Correlated subqueries depicted visually ("thus no visual depiction
    /// of correlated subqueries is possible").
    pub correlated_subqueries: Support,
    /// A single visual element for NOT EXISTS / FOR ALL ("none has a
    /// single visual element for the logical quantifiers").
    pub quantifier_element: Support,
    /// Union / disjunction in one diagram.
    pub union_in_diagram: Support,
}

/// The commercial tools, as the tutorial's text describes them.
pub fn commercial_builders() -> Vec<BuilderProfile> {
    use Support::*;
    vec![
        // "the most advanced and commercially supported tool we found".
        BuilderProfile {
            name: "dbForge",
            table_selection: Visual,
            equi_joins: Visual,
            non_equi_joins: Configurator,
            inline_predicates: Configurator,
            nested_queries: Configurator, // separate, disjoint diagrams
            correlated_subqueries: No,
            quantifier_element: No,
            union_in_diagram: Configurator,
        },
        // "lacks in even more aspects of visual query representations".
        BuilderProfile {
            name: "SSMS",
            table_selection: Visual,
            equi_joins: Visual,
            non_equi_joins: Configurator,
            inline_predicates: Configurator,
            nested_queries: No,
            correlated_subqueries: No,
            quantifier_element: No,
            union_in_diagram: No,
        },
        BuilderProfile {
            name: "Active Query Builder",
            table_selection: Visual,
            equi_joins: Visual,
            non_equi_joins: Configurator,
            inline_predicates: Configurator,
            nested_queries: Configurator,
            correlated_subqueries: No,
            quantifier_element: No,
            union_in_diagram: Configurator,
        },
        BuilderProfile {
            name: "QueryScope",
            table_selection: Visual,
            equi_joins: Visual,
            non_equi_joins: No,
            inline_predicates: Configurator,
            nested_queries: No,
            correlated_subqueries: No,
            quantifier_element: No,
            union_in_diagram: No,
        },
        BuilderProfile {
            name: "MS Access",
            table_selection: Visual,
            equi_joins: Visual,
            non_equi_joins: Configurator,
            inline_predicates: Configurator,
            nested_queries: No,
            correlated_subqueries: No,
            quantifier_element: No,
            union_in_diagram: No,
        },
        BuilderProfile {
            name: "pgAdmin3",
            table_selection: Visual,
            equi_joins: Visual,
            non_equi_joins: No,
            inline_predicates: Configurator,
            nested_queries: No,
            correlated_subqueries: No,
            quantifier_element: No,
            union_in_diagram: No,
        },
    ]
}

/// The same profile filled in for the workspace's implemented research
/// formalisms — each field justified by that module's builder/tests.
pub fn research_formalisms() -> Vec<BuilderProfile> {
    use Support::*;
    vec![
        BuilderProfile {
            name: "QueryVis",
            table_selection: Visual,
            equi_joins: Visual,
            non_equi_joins: Visual, // labelled comparison edges
            inline_predicates: Visual,
            nested_queries: Visual, // groups per nesting level
            correlated_subqueries: Visual,
            quantifier_element: Visual, // negated groups + reading arrows
            union_in_diagram: No,       // the E5 gap
        },
        BuilderProfile {
            name: "Relational Diagrams",
            table_selection: Visual,
            equi_joins: Visual,
            non_equi_joins: Visual,
            inline_predicates: Visual,
            nested_queries: Visual,
            correlated_subqueries: Visual,
            quantifier_element: Visual, // nested negated boxes
            union_in_diagram: Visual,   // union partitions
        },
        BuilderProfile {
            name: "SQLVis",
            table_selection: Visual,
            equi_joins: Visual,
            non_equi_joins: Visual,
            inline_predicates: Visual,
            nested_queries: Visual, // nested bubbles
            correlated_subqueries: Visual,
            quantifier_element: Configurator, // the connective is a label
            union_in_diagram: Visual,
        },
        BuilderProfile {
            name: "QBD (ER-based)",
            table_selection: Visual,
            equi_joins: Visual, // along ER edges only
            non_equi_joins: No,
            inline_predicates: Visual,
            nested_queries: No,
            correlated_subqueries: No,
            quantifier_element: No,
            union_in_diagram: No,
        },
    ]
}

/// Renders the matrix as fixed-width text (for experiment E5's builder
/// appendix).
pub fn matrix_text() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let dims = [
        "tables",
        "equi-join",
        "non-equi",
        "inline-pred",
        "nesting",
        "correlated",
        "quantifier",
        "union",
    ];
    let _ = write!(out, "{:22}", "");
    for d in dims {
        let _ = write!(out, " {d:>11}");
    }
    out.push('\n');
    for p in commercial_builders().iter().chain(research_formalisms().iter()) {
        let _ = write!(out, "{:22}", p.name);
        for v in [
            p.table_selection,
            p.equi_joins,
            p.non_equi_joins,
            p.inline_predicates,
            p.nested_queries,
            p.correlated_subqueries,
            p.quantifier_element,
            p.union_in_diagram,
        ] {
            let _ = write!(out, " {:>11}", v.mark());
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tutorial_claims_encoded() {
        let builders = commercial_builders();
        // "none has a single visual element for the logical quantifiers
        // NOT EXISTS or FOR ALL":
        assert!(builders.iter().all(|b| b.quantifier_element == Support::No));
        // "all require specifying details of the query in SQL or across
        // several tabbed views":
        assert!(builders.iter().all(|b| b.inline_predicates != Support::Visual));
        // "no visual depiction of correlated subqueries is possible":
        assert!(builders.iter().all(|b| b.correlated_subqueries == Support::No));
        // dbForge is the most capable commercial tool:
        let score = |b: &BuilderProfile| {
            [
                b.table_selection,
                b.equi_joins,
                b.non_equi_joins,
                b.inline_predicates,
                b.nested_queries,
                b.correlated_subqueries,
                b.quantifier_element,
                b.union_in_diagram,
            ]
            .iter()
            .map(|s| match s {
                Support::Visual => 2usize,
                Support::Configurator => 1,
                Support::No => 0,
            })
            .sum::<usize>()
        };
        let dbforge = score(&builders[0]);
        assert!(builders.iter().all(|b| score(b) <= dbforge));
    }

    #[test]
    fn research_formalisms_close_the_gaps() {
        // The tutorial's motivation: every gap the builder paragraph
        // names is closed by at least one surveyed research formalism.
        let research = research_formalisms();
        assert!(research.iter().any(|r| r.quantifier_element == Support::Visual));
        assert!(research.iter().any(|r| r.correlated_subqueries == Support::Visual));
        assert!(research.iter().any(|r| r.union_in_diagram == Support::Visual));
        // And Relational Diagrams dominate every commercial row.
        let rd = research.iter().find(|r| r.name == "Relational Diagrams").unwrap();
        let at_least = |a: Support, b: Support| {
            let rank = |s: Support| match s {
                Support::Visual => 2,
                Support::Configurator => 1,
                Support::No => 0,
            };
            rank(a) >= rank(b)
        };
        for b in commercial_builders() {
            assert!(at_least(rd.table_selection, b.table_selection));
            assert!(at_least(rd.equi_joins, b.equi_joins));
            assert!(at_least(rd.non_equi_joins, b.non_equi_joins));
            assert!(at_least(rd.inline_predicates, b.inline_predicates));
            assert!(at_least(rd.nested_queries, b.nested_queries));
            assert!(at_least(rd.correlated_subqueries, b.correlated_subqueries));
            assert!(at_least(rd.quantifier_element, b.quantifier_element));
            assert!(at_least(rd.union_in_diagram, b.union_in_diagram));
        }
    }

    #[test]
    fn matrix_text_lists_every_row() {
        let text = matrix_text();
        for name in ["dbForge", "SSMS", "pgAdmin3", "Relational Diagrams", "QBD"] {
            assert!(text.contains(name), "{name} missing");
        }
        assert!(text.lines().count() >= 11);
    }
}
