//! Shared error type and small helpers for the diagram formalisms.

use std::fmt;

/// Errors from building or interpreting diagrams.
#[derive(Debug, Clone, PartialEq)]
pub enum DiagError {
    /// The query uses a feature this formalism cannot represent. The
    /// payload names the feature — the expressiveness matrix (E5) prints
    /// it verbatim, turning the tutorial's comparison tables into
    /// machine-checked facts.
    Unsupported { formalism: &'static str, feature: String },
    /// Structurally invalid diagram.
    Invalid(String),
    /// Failure delegated from a language crate.
    Lang(String),
}

impl DiagError {
    pub fn unsupported(formalism: &'static str, feature: impl Into<String>) -> Self {
        DiagError::Unsupported { formalism, feature: feature.into() }
    }
}

impl fmt::Display for DiagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiagError::Unsupported { formalism, feature } => {
                write!(f, "{formalism} cannot represent: {feature}")
            }
            DiagError::Invalid(m) => write!(f, "invalid diagram: {m}"),
            DiagError::Lang(m) => write!(f, "language error: {m}"),
        }
    }
}

impl std::error::Error for DiagError {}

impl From<relviz_rc::RcError> for DiagError {
    fn from(e: relviz_rc::RcError) -> Self {
        match e {
            relviz_rc::RcError::Unsupported(m) => {
                DiagError::Unsupported { formalism: "translation", feature: m }
            }
            other => DiagError::Lang(other.to_string()),
        }
    }
}

impl From<relviz_ra::RaError> for DiagError {
    fn from(e: relviz_ra::RaError) -> Self {
        DiagError::Lang(e.to_string())
    }
}

impl From<relviz_datalog::DlError> for DiagError {
    fn from(e: relviz_datalog::DlError) -> Self {
        DiagError::Lang(e.to_string())
    }
}

pub type DiagResult<T> = std::result::Result<T, DiagError>;
