//! **Relational Diagrams** (Gatterbauer & Dunne, SIGMOD'24): the most
//! recent formalism in the survey — QueryVis's tables and predicate edges,
//! but with the nesting structure shown by **nested negated bounding
//! boxes** (Peirce's cuts, rediscovered for tuple calculus) instead of
//! reading-order arrows.
//!
//! Because the diagram *is* the nesting structure of a TRC formula in
//! ∃/¬∃ normal form, the reading back to TRC is exact and unambiguous —
//! [`RelationalDiagram::to_trc`] is a faithful inverse of
//! [`RelationalDiagram::from_trc`] (property-tested: round-tripping
//! preserves query semantics). This solves, by construction, the scope
//! ambiguity of Peirce's beta graphs that experiment E3 exhibits: boxes
//! cannot "touch" a cut the way a line of identity can.
//!
//! Every predicate records the **box it is drawn in** ([`PredItem::path`]):
//! a comparison whose attributes all belong to outer tables can still
//! scope *inside* a negation box (`¬∃r: s.a <> s.a` is not the same as
//! `s.a <> s.a ∧ ¬∃r: true`), and the diagram must keep that distinction —
//! a subtlety our own property tests caught.
//!
//! Disjunction is supported exactly as in the paper: as a **union of
//! partitions** (TRC\*) drawn side by side — `OR` *inside* a formula has
//! no visual counterpart and is reported `Unsupported`.

use relviz_model::{CmpOp, Database, Value};
use relviz_rc::trc::{Binding, TrcBranch, TrcFormula, TrcQuery, TrcTerm};
use relviz_render::{Scene, TextStyle};

use crate::common::{DiagError, DiagResult};

const FORMALISM: &str = "Relational Diagrams";

/// An attribute cell of a table node. `selections` holds display labels;
/// the semantic record lives in [`Partition::preds`].
#[derive(Debug, Clone, PartialEq)]
pub struct AttrCell {
    pub attr: String,
    pub selections: Vec<String>,
    pub output: bool,
}

/// A table node (one tuple variable).
#[derive(Debug, Clone, PartialEq)]
pub struct TableNode {
    pub var: String,
    pub rel: String,
    pub attrs: Vec<AttrCell>,
}

impl TableNode {
    fn cell_mut(&mut self, attr: &str) -> &mut AttrCell {
        if let Some(i) = self.attrs.iter().position(|a| a.attr == attr) {
            return &mut self.attrs[i];
        }
        self.attrs.push(AttrCell { attr: attr.to_string(), selections: Vec::new(), output: false });
        self.attrs.last_mut().expect("just pushed")
    }
}

/// A (possibly negated) bounding box. The root box of a partition is not
/// negated; every nested box denotes `¬∃(tables inside): …`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NBox {
    pub tables: Vec<TableNode>,
    pub children: Vec<NBox>,
}

/// A predicate, anchored at the box (path of child indices from the root)
/// it is drawn in.
#[derive(Debug, Clone, PartialEq)]
pub struct PredItem {
    pub path: Vec<usize>,
    pub kind: PredKind,
}

/// The two predicate shapes of the formalism.
#[derive(Debug, Clone, PartialEq)]
pub enum PredKind {
    /// attribute–constant selection.
    Selection { var: String, attr: String, op: CmpOp, value: Value },
    /// attribute–attribute edge.
    Join { from: (String, String), op: CmpOp, to: (String, String) },
}

/// One partition = one TRC branch.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    pub root: NBox,
    pub preds: Vec<PredItem>,
    /// Output attributes in order: (var, attr, output name).
    pub head: Vec<(String, String, String)>,
}

/// A Relational Diagram: one or more partitions (union).
#[derive(Debug, Clone, PartialEq)]
pub struct RelationalDiagram {
    pub partitions: Vec<Partition>,
}

impl RelationalDiagram {
    /// Builds from a TRC query. Each branch becomes a partition; `∀` is
    /// eliminated; `OR` inside formulas is rejected (write it as UNION).
    pub fn from_trc(q: &TrcQuery, db: &Database) -> DiagResult<RelationalDiagram> {
        relviz_rc::trc_check::check_query(q, db).map_err(|e| DiagError::Lang(e.to_string()))?;
        let q = q.eliminate_forall();
        let mut partitions = Vec::with_capacity(q.branches.len());
        for branch in &q.branches {
            partitions.push(build_partition(branch)?);
        }
        Ok(RelationalDiagram { partitions })
    }

    /// Convenience: SQL → TRC → Relational Diagram.
    pub fn from_sql(sql: &str, db: &Database) -> DiagResult<RelationalDiagram> {
        let trc = relviz_rc::from_sql::parse_sql_to_trc(sql, db)?;
        Self::from_trc(&trc, db)
    }

    /// The exact back-translation to TRC — the formalism's headline
    /// property.
    pub fn to_trc(&self) -> TrcQuery {
        let branches = self
            .partitions
            .iter()
            .map(|p| {
                let bindings: Vec<Binding> = p
                    .root
                    .tables
                    .iter()
                    .map(|t| Binding::new(t.var.clone(), t.rel.clone()))
                    .collect();
                let head = p
                    .head
                    .iter()
                    .map(|(var, attr, name)| {
                        (name.clone(), TrcTerm::attr(var.clone(), attr.clone()))
                    })
                    .collect();
                let body = box_formula(&p.root, p, &mut Vec::new());
                TrcBranch { bindings, head, body }
            })
            .collect();
        TrcQuery { branches }
    }

    /// Element census: (partitions, boxes, tables, attribute cells, predicates).
    pub fn census(&self) -> (usize, usize, usize, usize, usize) {
        fn boxes(b: &NBox) -> usize {
            1 + b.children.iter().map(boxes).sum::<usize>()
        }
        fn tables(b: &NBox) -> usize {
            b.tables.len() + b.children.iter().map(tables).sum::<usize>()
        }
        fn cells(b: &NBox) -> usize {
            b.tables.iter().map(|t| t.attrs.len()).sum::<usize>()
                + b.children.iter().map(cells).sum::<usize>()
        }
        let mut bx = 0;
        let mut tb = 0;
        let mut cl = 0;
        let mut pr = 0;
        for p in &self.partitions {
            bx += boxes(&p.root);
            tb += tables(&p.root);
            cl += cells(&p.root);
            pr += p.preds.len();
        }
        (self.partitions.len(), bx, tb, cl, pr)
    }

    /// Scene: nested boxes via the box layout; tables as attribute stacks;
    /// dashed separators between partitions.
    pub fn scene(&self) -> Scene {
        use relviz_layout::boxes::{layout, BoxNode, BoxOptions};
        const CELL_H: f64 = 18.0;
        const HEADER_H: f64 = 22.0;
        const TABLE_W: f64 = 140.0;

        let mut scene = Scene::new(0.0, 0.0);
        let mut x_offset = 0.0;

        for (pi, p) in self.partitions.iter().enumerate() {
            fn to_box(b: &NBox) -> BoxNode {
                let atoms = b
                    .tables
                    .iter()
                    .map(|t| (TABLE_W, HEADER_H + t.attrs.len() as f64 * CELL_H))
                    .collect();
                let children = b.children.iter().map(to_box).collect();
                let mut node = BoxNode::with_children(atoms, children);
                node.header = 6.0;
                node
            }
            fn collect_tables<'a>(b: &'a NBox, out: &mut Vec<&'a TableNode>) {
                for t in &b.tables {
                    out.push(t);
                }
                for c in &b.children {
                    collect_tables(c, out);
                }
            }
            let tree = to_box(&p.root);
            let mut tabs = Vec::new();
            collect_tables(&p.root, &mut tabs);
            let l = layout(&tree, BoxOptions::default());

            for (bi, r) in l.boxes.iter().enumerate() {
                let negated = bi != 0;
                scene.styled_rect(
                    x_offset + r.x,
                    r.y,
                    r.w,
                    r.h,
                    3.0,
                    if negated { "#aa0000" } else { "#444444" },
                    "none",
                    if negated { 1.8 } else { 1.0 },
                    false,
                );
            }
            let mut cell_pos: std::collections::HashMap<(String, String), (f64, f64)> =
                std::collections::HashMap::new();
            for ((_, r), table) in l.atoms.iter().zip(&tabs) {
                let (tx, ty) = (x_offset + r.x, r.y);
                scene.rect(tx, ty, r.w, r.h);
                scene.styled_rect(tx, ty, r.w, HEADER_H, 0.0, "#000000", "#e8e8e8", 1.0, false);
                scene.styled_text(
                    tx + 6.0,
                    ty + 15.0,
                    format!("{} {}", table.rel, table.var),
                    TextStyle { size: 12.0, bold: true, ..TextStyle::default() },
                );
                for (ci, cell) in table.attrs.iter().enumerate() {
                    let cy = ty + HEADER_H + ci as f64 * CELL_H;
                    scene.line(tx, cy, tx + r.w, cy);
                    let label = if cell.selections.is_empty() {
                        cell.attr.clone()
                    } else {
                        format!("{} {}", cell.attr, cell.selections.join(" "))
                    };
                    scene.styled_text(
                        tx + 6.0,
                        cy + 13.0,
                        label,
                        TextStyle { size: 11.0, bold: cell.output, ..TextStyle::default() },
                    );
                    cell_pos.insert(
                        (table.var.clone(), cell.attr.clone()),
                        (tx + r.w, cy + CELL_H / 2.0),
                    );
                }
            }
            for pred in &p.preds {
                if let PredKind::Join { from, op, to } = &pred.kind {
                    let Some(&(x1, y1)) = cell_pos.get(&(from.0.clone(), from.1.clone())) else {
                        continue;
                    };
                    let Some(&(x2, y2)) = cell_pos.get(&(to.0.clone(), to.1.clone())) else {
                        continue;
                    };
                    scene.line(x1, y1, x2, y2);
                    if *op != CmpOp::Eq {
                        scene.text((x1 + x2) / 2.0 - 6.0, (y1 + y2) / 2.0 - 4.0, op.symbol());
                    }
                }
            }
            x_offset += l.boxes[0].w + 40.0;
            if pi + 1 < self.partitions.len() {
                scene.items.push(relviz_render::Item::Polyline {
                    points: vec![(x_offset - 20.0, 0.0), (x_offset - 20.0, l.boxes[0].h)],
                    stroke: "#888888".into(),
                    stroke_width: 1.0,
                    dashed: true,
                    arrow: false,
                });
            }
        }
        scene.fit(12.0);
        scene
    }
}

// ---- construction ----------------------------------------------------------

struct PartitionBuilder {
    root: NBox,
    preds: Vec<PredItem>,
}

fn build_partition(branch: &TrcBranch) -> DiagResult<Partition> {
    let mut b = PartitionBuilder { root: NBox::default(), preds: Vec::new() };
    for binding in &branch.bindings {
        b.root.tables.push(TableNode {
            var: binding.var.clone(),
            rel: binding.rel.clone(),
            attrs: Vec::new(),
        });
    }
    if let Some(body) = &branch.body {
        walk(body, &[], &mut b)?;
    }
    let mut head = Vec::with_capacity(branch.head.len());
    for (name, term) in &branch.head {
        match term {
            TrcTerm::Attr { var, attr } => {
                let t = find_table(&mut b.root, var)
                    .ok_or_else(|| DiagError::Invalid(format!("head var `{var}` not free")))?;
                t.cell_mut(attr).output = true;
                head.push((var.clone(), attr.clone(), name.clone()));
            }
            TrcTerm::Const(_) => {
                return Err(DiagError::unsupported(
                    FORMALISM,
                    "constant head terms (no table cell to anchor the output marker)",
                ))
            }
        }
    }
    Ok(Partition { root: b.root, preds: b.preds, head })
}

fn box_at<'a>(root: &'a mut NBox, path: &[usize]) -> &'a mut NBox {
    let mut cur = root;
    for &i in path {
        cur = &mut cur.children[i];
    }
    cur
}

fn find_table<'a>(b: &'a mut NBox, var: &str) -> Option<&'a mut TableNode> {
    if let Some(i) = b.tables.iter().position(|t| t.var == var) {
        return Some(&mut b.tables[i]);
    }
    for c in &mut b.children {
        if let Some(t) = find_table(c, var) {
            return Some(t);
        }
    }
    None
}

fn walk(f: &TrcFormula, path: &[usize], b: &mut PartitionBuilder) -> DiagResult<()> {
    match f {
        TrcFormula::Const(true) => Ok(()),
        TrcFormula::Const(false) => {
            // FALSE = an empty negation box (¬∃ over nothing is ¬TRUE).
            box_at(&mut b.root, path).children.push(NBox::default());
            Ok(())
        }
        TrcFormula::And(x, y) => {
            walk(x, path, b)?;
            walk(y, path, b)
        }
        TrcFormula::Or(_, _) => Err(DiagError::unsupported(
            FORMALISM,
            "disjunction inside a formula (write it as UNION → side-by-side partitions)",
        )),
        TrcFormula::Not(inner) => match &**inner {
            TrcFormula::Exists { bindings, body } => {
                let child = NBox {
                    tables: bindings
                        .iter()
                        .map(|bind| TableNode {
                            var: bind.var.clone(),
                            rel: bind.rel.clone(),
                            attrs: Vec::new(),
                        })
                        .collect(),
                    children: Vec::new(),
                };
                let parent = box_at(&mut b.root, path);
                parent.children.push(child);
                let mut child_path = path.to_vec();
                child_path.push(parent.children.len() - 1);
                walk(body, &child_path, b)
            }
            TrcFormula::Not(g) => walk(g, path, b),
            TrcFormula::Cmp { left, op, right } => {
                let negated =
                    TrcFormula::Cmp { left: left.clone(), op: op.negate(), right: right.clone() };
                walk(&negated, path, b)
            }
            _ => Err(DiagError::unsupported(
                FORMALISM,
                "negation of a complex subformula (only ¬∃ boxes and negated comparisons)",
            )),
        },
        TrcFormula::Exists { bindings, body } => {
            // A non-negated existential merges into the current box.
            let parent = box_at(&mut b.root, path);
            for bind in bindings {
                parent.tables.push(TableNode {
                    var: bind.var.clone(),
                    rel: bind.rel.clone(),
                    attrs: Vec::new(),
                });
            }
            walk(body, path, b)
        }
        TrcFormula::Cmp { left, op, right } => match (left, right) {
            (TrcTerm::Attr { var, attr }, TrcTerm::Const(c)) => {
                selection(b, path, var, attr, *op, c.clone())
            }
            (TrcTerm::Const(c), TrcTerm::Attr { var, attr }) => {
                selection(b, path, var, attr, op.flip(), c.clone())
            }
            (TrcTerm::Attr { var: v1, attr: a1 }, TrcTerm::Attr { var: v2, attr: a2 }) => {
                for (v, a) in [(v1, a1), (v2, a2)] {
                    let t = find_table(&mut b.root, v)
                        .ok_or_else(|| DiagError::Invalid(format!("unbound var `{v}`")))?;
                    t.cell_mut(a);
                }
                b.preds.push(PredItem {
                    path: path.to_vec(),
                    kind: PredKind::Join {
                        from: (v1.clone(), a1.clone()),
                        op: *op,
                        to: (v2.clone(), a2.clone()),
                    },
                });
                Ok(())
            }
            (TrcTerm::Const(_), TrcTerm::Const(_)) => Err(DiagError::unsupported(
                FORMALISM,
                "constant-to-constant comparisons (no anchor attribute)",
            )),
        },
        TrcFormula::Forall { .. } => {
            Err(DiagError::Invalid("∀ should have been eliminated".into()))
        }
    }
}

fn selection(
    b: &mut PartitionBuilder,
    path: &[usize],
    var: &str,
    attr: &str,
    op: CmpOp,
    value: Value,
) -> DiagResult<()> {
    let t = find_table(&mut b.root, var)
        .ok_or_else(|| DiagError::Invalid(format!("unbound var `{var}`")))?;
    t.cell_mut(attr).selections.push(format!("{} {}", op.symbol(), value.to_literal()));
    b.preds.push(PredItem {
        path: path.to_vec(),
        kind: PredKind::Selection {
            var: var.to_string(),
            attr: attr.to_string(),
            op,
            value,
        },
    });
    Ok(())
}

// ---- back-translation -------------------------------------------------------

/// The formula contributed by one box: its anchored predicates, plus ¬∃
/// per child box.
fn box_formula(b: &NBox, p: &Partition, path: &mut Vec<usize>) -> Option<TrcFormula> {
    let mut parts: Vec<TrcFormula> = Vec::new();

    for pred in &p.preds {
        if pred.path == *path {
            parts.push(match &pred.kind {
                PredKind::Selection { var, attr, op, value } => TrcFormula::Cmp {
                    left: TrcTerm::attr(var.clone(), attr.clone()),
                    op: *op,
                    right: TrcTerm::Const(value.clone()),
                },
                PredKind::Join { from, op, to } => TrcFormula::Cmp {
                    left: TrcTerm::attr(from.0.clone(), from.1.clone()),
                    op: *op,
                    right: TrcTerm::attr(to.0.clone(), to.1.clone()),
                },
            });
        }
    }
    for (i, child) in b.children.iter().enumerate() {
        path.push(i);
        let inner = box_formula(child, p, path);
        path.pop();
        let bindings: Vec<Binding> = child
            .tables
            .iter()
            .map(|t| Binding::new(t.var.clone(), t.rel.clone()))
            .collect();
        let body = inner.unwrap_or(TrcFormula::Const(true));
        parts.push(TrcFormula::exists(bindings, body).not());
    }

    if parts.is_empty() {
        None
    } else {
        Some(TrcFormula::conj(parts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relviz_model::catalog::sailors_sample;
    use relviz_rc::trc_eval::eval_trc;

    const Q5: &str = "SELECT S.sname FROM Sailor S WHERE NOT EXISTS \
        (SELECT * FROM Boat B WHERE B.color = 'red' AND NOT EXISTS \
          (SELECT * FROM Reserves R WHERE R.sid = S.sid AND R.bid = B.bid))";

    #[test]
    fn q5_nested_boxes() {
        let db = sailors_sample();
        let d = RelationalDiagram::from_sql(Q5, &db).unwrap();
        assert_eq!(d.partitions.len(), 1);
        let p = &d.partitions[0];
        assert_eq!(p.root.tables.len(), 1); // Sailor
        assert_eq!(p.root.children.len(), 1); // ¬∃ Boat …
        assert_eq!(p.root.children[0].tables.len(), 1);
        assert_eq!(p.root.children[0].children.len(), 1); // ¬∃ Reserves …
        let joins =
            p.preds.iter().filter(|pr| matches!(pr.kind, PredKind::Join { .. })).count();
        assert_eq!(joins, 2);
        let (parts, boxes, tables, _cells, preds) = d.census();
        assert_eq!((parts, boxes, tables, preds), (1, 3, 3, 3)); // 2 joins + 1 selection
    }

    #[test]
    fn predicates_remember_their_box() {
        let db = sailors_sample();
        let d = RelationalDiagram::from_sql(Q5, &db).unwrap();
        let p = &d.partitions[0];
        // the selection (= 'red') sits in box [0]; the joins in box [0, 0].
        let sel = p
            .preds
            .iter()
            .find(|pr| matches!(pr.kind, PredKind::Selection { .. }))
            .unwrap();
        assert_eq!(sel.path, vec![0]);
        for j in p.preds.iter().filter(|pr| matches!(pr.kind, PredKind::Join { .. })) {
            assert_eq!(j.path, vec![0, 0]);
        }
    }

    #[test]
    fn outer_only_predicate_inside_box_keeps_scope() {
        // The proptest-discovered case: a comparison over only outer
        // variables drawn inside a negation box must stay there.
        let db = sailors_sample();
        let trc = relviz_rc::trc_parse::parse_trc(
            "{s.sname | Sailor(s) and not exists r in Reserves: (s.sid <> s.sid)}",
        )
        .unwrap();
        let d = RelationalDiagram::from_trc(&trc, &db).unwrap();
        let back = d.to_trc();
        let orig = eval_trc(&trc, &db).unwrap();
        let rt = eval_trc(&back, &db).unwrap();
        assert!(orig.same_contents(&rt), "orig={orig} rt={rt}\nback: {back}");
        // the contradiction makes ¬∃ true ⇒ all sailors qualify (9 names)
        assert_eq!(orig.len(), 9);
    }

    #[test]
    fn round_trip_preserves_semantics() {
        let db = sailors_sample();
        for sql in [
            "SELECT DISTINCT S.sname FROM Sailor S, Reserves R WHERE S.sid = R.sid AND R.bid = 102",
            "SELECT DISTINCT S.sname FROM Sailor S, Reserves R, Boat B \
             WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'red'",
            Q5,
            "SELECT S.sname FROM Sailor S WHERE NOT EXISTS \
             (SELECT * FROM Reserves R WHERE R.sid = S.sid)",
            "SELECT S.sname FROM Sailor S WHERE S.rating >= ALL (SELECT S2.rating FROM Sailor S2)",
            "SELECT S.sname FROM Sailor S, Reserves R, Boat B \
             WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'red' \
             UNION SELECT S.sname FROM Sailor S, Reserves R, Boat B \
             WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'green'",
        ] {
            let trc = relviz_rc::from_sql::parse_sql_to_trc(sql, &db).unwrap();
            let d = RelationalDiagram::from_trc(&trc, &db).unwrap();
            let back = d.to_trc();
            let orig = eval_trc(&trc, &db).unwrap();
            let rt = eval_trc(&back, &db)
                .unwrap_or_else(|e| panic!("{sql}\nback: {back}\n{e}"));
            assert!(
                orig.same_contents(&rt),
                "round trip changed semantics for `{sql}`\nback: {back}\norig={orig}\nrt={rt}"
            );
        }
    }

    #[test]
    fn union_becomes_partitions() {
        let db = sailors_sample();
        let d = RelationalDiagram::from_sql(
            "SELECT S.sid FROM Sailor S UNION SELECT B.bid FROM Boat B",
            &db,
        )
        .unwrap();
        assert_eq!(d.partitions.len(), 2);
        let svg = relviz_render::svg::to_svg(&d.scene());
        assert!(svg.contains("stroke-dasharray"), "union separator should be dashed");
    }

    #[test]
    fn or_inside_formula_unsupported() {
        let db = sailors_sample();
        let r = RelationalDiagram::from_sql(
            "SELECT DISTINCT S.sname FROM Sailor S, Reserves R, Boat B \
             WHERE S.sid = R.sid AND R.bid = B.bid AND (B.color = 'red' OR B.color = 'green')",
            &db,
        );
        assert!(matches!(r, Err(DiagError::Unsupported { .. })));
    }

    #[test]
    fn forall_form_accepted_via_elimination() {
        let db = sailors_sample();
        // ∀ with implication-as-∨ leaves an OR under ¬ — unsupported; the
        // ¬∃ form (how the paper writes it) works.
        let trc = relviz_rc::trc_parse::parse_trc(
            "{q.sname | Sailor(q) and forall b in Boat: (b.color <> 'red' or \
              exists r in Reserves: (r.sid = q.sid and r.bid = b.bid))}",
        )
        .unwrap();
        assert!(matches!(
            RelationalDiagram::from_trc(&trc, &db),
            Err(DiagError::Unsupported { .. })
        ));
        let good = relviz_rc::trc_parse::parse_trc(
            "{q.sname | Sailor(q) and not exists b in Boat: (b.color = 'red' and \
              not exists r in Reserves: (r.sid = q.sid and r.bid = b.bid))}",
        )
        .unwrap();
        assert!(RelationalDiagram::from_trc(&good, &db).is_ok());
    }

    #[test]
    fn scene_has_nested_negation_boxes() {
        let db = sailors_sample();
        let d = RelationalDiagram::from_sql(Q5, &db).unwrap();
        let svg = relviz_render::svg::to_svg(&d.scene());
        assert_eq!(svg.matches("#aa0000").count(), 2, "{svg}");
        assert!(svg.contains("Sailor S"));
        assert!(svg.contains("color = 'red'"));
    }
}
