//! Venn and Venn-Peirce diagrams, after Shin's formalization (Venn-I and
//! Venn-II) [Shin 1995], as surveyed in Part 4 of the tutorial.
//!
//! ## Model
//!
//! An *n*-set Venn diagram partitions the plane into `2ⁿ` minimal regions
//! (**minterms**, encoded as bitmasks: bit *i* set ⇔ inside set *i*).
//! Venn's contribution over Euler: the region structure is *fixed*, and
//! information is expressed by annotations —
//!
//! * **shading** a region asserts it is empty (Venn),
//! * an **⊗-sequence** (Peirce's addition) asserts that at least one of
//!   its regions is non-empty — disjunctive existential information.
//!
//! A *model* assigns each minterm empty/non-empty; with n = 3 there are
//! just 2⁸ = 256 models, so semantic entailment is decidable by brute
//! force — exactly the decision procedure experiment E4 runs against an
//! *independent* FOL model checker built on the DRC evaluator.
//!
//! **Venn-II** adds disjunction *between whole diagrams* (Shin's connected
//! diagrams), which Venn-I cannot express — the tutorial's recurring theme
//! that disjunction is the hard case for diagrams.

use std::collections::BTreeSet;

use relviz_render::Scene;

use crate::common::{DiagError, DiagResult};

/// A region: a set of minterms (bitmasks over the diagram's sets).
pub type Region = BTreeSet<u8>;

/// A Venn-I diagram over `n ≤ 5` labelled sets.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VennDiagram {
    pub labels: Vec<String>,
    /// Minterms asserted empty.
    pub shaded: Region,
    /// Each ⊗-sequence asserts “some minterm in this region is inhabited”.
    pub xseqs: Vec<Region>,
}

impl VennDiagram {
    pub fn new(labels: Vec<impl Into<String>>) -> DiagResult<Self> {
        let labels: Vec<String> = labels.into_iter().map(Into::into).collect();
        if labels.is_empty() || labels.len() > 5 {
            return Err(DiagError::Invalid(format!(
                "Venn diagrams here support 1–5 sets, got {}",
                labels.len()
            )));
        }
        Ok(VennDiagram { labels, shaded: Region::new(), xseqs: Vec::new() })
    }

    pub fn n(&self) -> usize {
        self.labels.len()
    }

    /// Number of minterms, `2ⁿ`.
    pub fn minterm_count(&self) -> u16 {
        1u16 << self.n()
    }

    fn check_minterm(&self, m: u8) -> DiagResult<()> {
        if (m as u16) < self.minterm_count() {
            Ok(())
        } else {
            Err(DiagError::Invalid(format!("minterm {m} out of range for {} sets", self.n())))
        }
    }

    /// Shades a region (asserts emptiness).
    pub fn shade(&mut self, region: impl IntoIterator<Item = u8>) -> DiagResult<()> {
        for m in region {
            self.check_minterm(m)?;
            self.shaded.insert(m);
        }
        Ok(())
    }

    /// Adds an ⊗-sequence (asserts some member region is inhabited).
    pub fn add_xseq(&mut self, region: impl IntoIterator<Item = u8>) -> DiagResult<()> {
        let r: Region = region.into_iter().collect();
        if r.is_empty() {
            return Err(DiagError::Invalid("empty ⊗-sequence".into()));
        }
        for &m in &r {
            self.check_minterm(m)?;
        }
        self.xseqs.push(r);
        Ok(())
    }

    /// The region "inside set i".
    pub fn inside(&self, i: usize) -> Region {
        (0..self.minterm_count() as u8).filter(|m| m & (1 << i) != 0).collect()
    }

    /// The region "inside i and j".
    pub fn intersection(&self, i: usize, j: usize) -> Region {
        (0..self.minterm_count() as u8)
            .filter(|m| m & (1 << i) != 0 && m & (1 << j) != 0)
            .collect()
    }

    /// The region "inside i but outside j".
    pub fn difference(&self, i: usize, j: usize) -> Region {
        (0..self.minterm_count() as u8)
            .filter(|m| m & (1 << i) != 0 && m & (1 << j) == 0)
            .collect()
    }

    /// A model satisfies the diagram iff every shaded minterm is empty and
    /// every ⊗-sequence touches a non-empty minterm. `model` bit k ⇔
    /// minterm k inhabited.
    pub fn satisfied_by(&self, model: u32) -> bool {
        for &m in &self.shaded {
            if model & (1 << m) != 0 {
                return false;
            }
        }
        for seq in &self.xseqs {
            if !seq.iter().any(|&m| model & (1 << m) != 0) {
                return false;
            }
        }
        true
    }

    /// All satisfying models (bitmask over minterms).
    pub fn models(&self) -> Vec<u32> {
        let total = 1u32 << self.minterm_count();
        (0..total).filter(|&m| self.satisfied_by(m)).collect()
    }

    /// Consistency: at least one model.
    pub fn is_consistent(&self) -> bool {
        !self.models().is_empty()
    }

    /// Semantic entailment between same-shape diagrams.
    pub fn entails(&self, other: &VennDiagram) -> DiagResult<bool> {
        if self.labels != other.labels {
            return Err(DiagError::Invalid("entailment needs identical set labels".into()));
        }
        Ok(self.models().into_iter().all(|m| other.satisfied_by(m)))
    }

    /// Unifies two diagrams (Shin's rule of unification): combine shading
    /// and ⊗-sequences.
    pub fn unify(&self, other: &VennDiagram) -> DiagResult<VennDiagram> {
        if self.labels != other.labels {
            return Err(DiagError::Invalid("unification needs identical set labels".into()));
        }
        let mut out = self.clone();
        out.shaded.extend(other.shaded.iter().copied());
        out.xseqs.extend(other.xseqs.iter().cloned());
        Ok(out)
    }

    // ---- Shin's Venn-I transformation rules -----------------------------

    /// Rule: erasure of shading (forgetting information — sound).
    pub fn erase_shading(&self, m: u8) -> DiagResult<VennDiagram> {
        if !self.shaded.contains(&m) {
            return Err(DiagError::Invalid(format!("minterm {m} is not shaded")));
        }
        let mut d = self.clone();
        d.shaded.remove(&m);
        Ok(d)
    }

    /// Rule: erasure of a whole ⊗-sequence (sound).
    pub fn erase_xseq(&self, idx: usize) -> DiagResult<VennDiagram> {
        if idx >= self.xseqs.len() {
            return Err(DiagError::Invalid(format!("no ⊗-sequence {idx}")));
        }
        let mut d = self.clone();
        d.xseqs.remove(idx);
        Ok(d)
    }

    /// Rule: extension of an ⊗-sequence by another minterm (weakening the
    /// disjunction — sound).
    pub fn extend_xseq(&self, idx: usize, m: u8) -> DiagResult<VennDiagram> {
        self.check_minterm(m)?;
        if idx >= self.xseqs.len() {
            return Err(DiagError::Invalid(format!("no ⊗-sequence {idx}")));
        }
        let mut d = self.clone();
        d.xseqs[idx].insert(m);
        Ok(d)
    }

    /// Rule: erasure of the ⊗-parts falling in shaded regions; if a whole
    /// sequence lies in shading, the diagram is inconsistent (Shin's rule
    /// of conflicting information).
    pub fn prune_xseqs(&self) -> DiagResult<VennDiagram> {
        let mut d = self.clone();
        for seq in &mut d.xseqs {
            seq.retain(|m| !self.shaded.contains(m));
            if seq.is_empty() {
                return Err(DiagError::Invalid(
                    "conflicting information: an ⊗-sequence lies entirely in shading".into(),
                ));
            }
        }
        Ok(d)
    }

    // ---- rendering --------------------------------------------------------

    /// Scene: overlapping circles (n ≤ 3), shading hatch marks and ⊗ marks
    /// placed at region centroids.
    pub fn scene(&self) -> Scene {
        let mut scene = Scene::new(360.0, 320.0);
        let circles: Vec<(f64, f64, f64)> = match self.n() {
            1 => vec![(180.0, 160.0, 100.0)],
            2 => vec![(140.0, 160.0, 95.0), (220.0, 160.0, 95.0)],
            _ => vec![
                (140.0, 130.0, 95.0),
                (220.0, 130.0, 95.0),
                (180.0, 200.0, 95.0),
            ],
        };
        for (i, &(cx, cy, r)) in circles.iter().enumerate().take(self.n()) {
            scene.ellipse(cx, cy, r, r);
            scene.text(cx - r * 0.45, cy - r - 6.0, self.labels[i].clone());
        }
        // Region marks at sampled centroids.
        for &m in &self.shaded {
            if let Some((x, y)) = self.region_point(m, &circles) {
                scene.text(x - 4.0, y, "▒");
            }
        }
        for seq in &self.xseqs {
            let pts: Vec<(f64, f64)> = seq
                .iter()
                .filter_map(|&m| self.region_point(m, &circles))
                .collect();
            for &(x, y) in &pts {
                scene.text(x - 4.0, y + 14.0, "⊗");
            }
            if pts.len() > 1 {
                scene.items.push(relviz_render::Item::Polyline {
                    points: pts.iter().map(|&(x, y)| (x, y + 10.0)).collect(),
                    stroke: "#000000".into(),
                    stroke_width: 1.0,
                    dashed: false,
                    arrow: false,
                });
            }
        }
        scene
    }

    /// A representative interior point of a minterm region (grid sampling).
    fn region_point(&self, m: u8, circles: &[(f64, f64, f64)]) -> Option<(f64, f64)> {
        let inside = |x: f64, y: f64, i: usize| {
            let (cx, cy, r) = circles[i];
            (x - cx).powi(2) + (y - cy).powi(2) <= r * r
        };
        let (mut sx, mut sy, mut count) = (0.0, 0.0, 0usize);
        for gx in 0..72 {
            for gy in 0..64 {
                let x = gx as f64 * 5.0;
                let y = gy as f64 * 5.0;
                let mask = (0..self.n()).fold(0u8, |acc, i| {
                    if inside(x, y, i) {
                        acc | (1 << i)
                    } else {
                        acc
                    }
                });
                if mask == m {
                    sx += x;
                    sy += y;
                    count += 1;
                }
            }
        }
        if count == 0 {
            None
        } else {
            Some((sx / count as f64, sy / count as f64))
        }
    }
}

/// A Venn-II diagram: a disjunction of Venn-I diagrams (Shin's connected
/// diagrams). Satisfied iff *some* disjunct is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VennII {
    pub disjuncts: Vec<VennDiagram>,
}

impl VennII {
    pub fn new(disjuncts: Vec<VennDiagram>) -> DiagResult<Self> {
        if disjuncts.is_empty() {
            return Err(DiagError::Invalid("Venn-II needs at least one disjunct".into()));
        }
        let labels = &disjuncts[0].labels;
        if disjuncts.iter().any(|d| &d.labels != labels) {
            return Err(DiagError::Invalid("Venn-II disjuncts must share set labels".into()));
        }
        Ok(VennII { disjuncts })
    }

    pub fn satisfied_by(&self, model: u32) -> bool {
        self.disjuncts.iter().any(|d| d.satisfied_by(model))
    }

    pub fn models(&self) -> Vec<u32> {
        let total = 1u32 << self.disjuncts[0].minterm_count();
        (0..total).filter(|&m| self.satisfied_by(m)).collect()
    }

    pub fn entails(&self, other: &VennII) -> DiagResult<bool> {
        if self.disjuncts[0].labels != other.disjuncts[0].labels {
            return Err(DiagError::Invalid("entailment needs identical set labels".into()));
        }
        Ok(self.models().into_iter().all(|m| other.satisfied_by(m)))
    }

    // ---- Shin's Venn-II transformation rules ----------------------------

    /// **Rule of splitting sequences**: an ⊗-sequence over minterms
    /// `{m₁, …, mₖ}` in one disjunct is a disjunction in disguise; the
    /// disjunct is replaced by k copies, the i-th asserting only `mᵢ`.
    /// The result is *equivalent* (same model set).
    pub fn split_sequence(&self, disjunct: usize, seq: usize) -> DiagResult<VennII> {
        let d = self
            .disjuncts
            .get(disjunct)
            .ok_or_else(|| DiagError::Invalid(format!("no disjunct {disjunct}")))?;
        let target = d
            .xseqs
            .get(seq)
            .ok_or_else(|| DiagError::Invalid(format!("no ⊗-sequence {seq}")))?
            .clone();
        let mut out: Vec<VennDiagram> = self
            .disjuncts
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != disjunct)
            .map(|(_, x)| x.clone())
            .collect();
        for m in target {
            let mut copy = d.clone();
            copy.xseqs[seq] = std::iter::once(m).collect();
            out.push(copy);
        }
        VennII::new(out)
    }

    /// **Rule of connecting diagrams** (or-introduction): appends a
    /// further disjunct. The premise entails the result.
    pub fn connect(&self, extra: VennDiagram) -> DiagResult<VennII> {
        if extra.labels != self.disjuncts[0].labels {
            return Err(DiagError::Invalid("connected diagram must share set labels".into()));
        }
        let mut out = self.disjuncts.clone();
        out.push(extra);
        VennII::new(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> VennDiagram {
        VennDiagram::new(vec!["A", "B", "C"]).unwrap()
    }

    #[test]
    fn region_algebra() {
        let d = abc();
        assert_eq!(d.minterm_count(), 8);
        assert_eq!(d.inside(0).len(), 4);
        assert_eq!(d.intersection(0, 1).len(), 2);
        assert_eq!(d.difference(0, 1).len(), 2);
        // region laws: inside(i) = intersection(i,j) ∪ difference(i,j)
        let mut union = d.intersection(0, 1);
        union.extend(d.difference(0, 1));
        assert_eq!(union, d.inside(0));
    }

    #[test]
    fn all_a_are_b_entails_via_shading() {
        // "All A are B": shade A∖B. Then the model where A∖B is inhabited
        // is excluded.
        let mut d = abc();
        d.shade(d.difference(0, 1)).unwrap();
        for m in d.models() {
            for mt in d.difference(0, 1) {
                assert_eq!(m & (1 << mt), 0);
            }
        }
    }

    #[test]
    fn xseq_requires_inhabitant() {
        let mut d = abc();
        d.add_xseq(d.intersection(0, 1)).unwrap();
        assert!(!d.satisfied_by(0)); // all-empty model violates ⊗
        assert!(d.models().iter().all(|m| d.intersection(0, 1).iter().any(|&mt| m & (1 << mt) != 0)));
    }

    #[test]
    fn conflict_detection() {
        let mut d = abc();
        let region = d.intersection(0, 1);
        d.shade(region.clone()).unwrap();
        d.add_xseq(region).unwrap();
        assert!(!d.is_consistent());
        assert!(d.prune_xseqs().is_err());
    }

    #[test]
    fn venn_rules_are_sound() {
        // Soundness = every rule result is entailed by the original.
        let mut d = abc();
        d.shade(d.difference(0, 1)).unwrap();
        d.add_xseq(d.intersection(0, 2)).unwrap();

        let erased = d.erase_shading(*d.shaded.iter().next().unwrap()).unwrap();
        assert!(d.entails(&erased).unwrap());

        let no_x = d.erase_xseq(0).unwrap();
        assert!(d.entails(&no_x).unwrap());

        let extended = d.extend_xseq(0, 0b111).unwrap();
        assert!(d.entails(&extended).unwrap());

        let pruned = d.prune_xseqs().unwrap();
        assert!(d.entails(&pruned).unwrap());
        // pruning is an equivalence, in fact:
        assert!(pruned.entails(&d).unwrap());
    }

    #[test]
    fn unification_is_conjunction() {
        let mut d1 = abc();
        d1.shade(d1.difference(0, 1)).unwrap();
        let mut d2 = abc();
        d2.add_xseq(d2.intersection(1, 2)).unwrap();
        let u = d1.unify(&d2).unwrap();
        assert!(u.entails(&d1).unwrap());
        assert!(u.entails(&d2).unwrap());
    }

    #[test]
    fn venn_ii_expresses_disjunction_venn_i_cannot() {
        // "A∩B is inhabited OR A∩C is inhabited … as separate diagrams"
        let mut d1 = abc();
        d1.add_xseq(d1.intersection(0, 1)).unwrap();
        let mut d2 = abc();
        d2.add_xseq(d2.intersection(0, 2)).unwrap();
        let v2 = VennII::new(vec![d1.clone(), d2.clone()]).unwrap();
        // A single ⊗-sequence over the union region expresses the same:
        let mut flat = abc();
        let mut region = flat.intersection(0, 1);
        region.extend(flat.intersection(0, 2));
        flat.add_xseq(region).unwrap();
        // They are equivalent here (⊗-sequences are disjunctive), but
        // Venn-II can also disjoin *shading*, which ⊗ cannot:
        let mut s1 = abc();
        s1.shade(s1.intersection(0, 1)).unwrap();
        let mut s2 = abc();
        s2.shade(s2.intersection(0, 2)).unwrap();
        let either_empty = VennII::new(vec![s1.clone(), s2.clone()]).unwrap();
        // No single Venn-I diagram has exactly these models: the model set
        // is not an intersection of per-minterm constraints. Witness: the
        // model where both intersections are inhabited is excluded, yet
        // each intersection alone may be inhabited.
        let both = VennII::new(vec![flat.clone()]).unwrap();
        assert!(v2.entails(&both).unwrap() && both.entails(&v2).unwrap());
        let m_ab = 1u32 << *s1.intersection(0, 1).iter().next().unwrap();
        let m_ac = 1u32 << *s2.intersection(0, 2).iter().next().unwrap();
        assert!(either_empty.satisfied_by(m_ab)); // AB inhabited, AC empty: ok (second disjunct)
        assert!(either_empty.satisfied_by(m_ac));
        assert!(!either_empty.satisfied_by(m_ab | m_ac)); // both inhabited: neither disjunct
    }

    #[test]
    fn bad_inputs_rejected() {
        assert!(VennDiagram::new(Vec::<String>::new()).is_err());
        assert!(VennDiagram::new(vec!["a", "b", "c", "d", "e", "f"]).is_err());
        let mut d = abc();
        assert!(d.shade([200u8]).is_err());
        assert!(d.add_xseq(Vec::<u8>::new()).is_err());
        let two = VennDiagram::new(vec!["A", "B"]).unwrap();
        assert!(d.entails(&two).is_err());
    }

    #[test]
    fn scene_marks_regions() {
        let mut d = abc();
        d.shade(d.difference(0, 1)).unwrap();
        d.add_xseq(d.intersection(0, 1)).unwrap();
        let svg = relviz_render::svg::to_svg(&d.scene());
        assert_eq!(svg.matches("<ellipse").count(), 3);
        assert!(svg.contains("⊗"));
        assert!(svg.contains("▒"));
    }

    #[test]
    fn splitting_sequences_is_an_equivalence() {
        // An ⊗-sequence over {A∩B, A∩C} splits into two single-minterm
        // disjuncts with the same model set (Shin's Venn-II rule).
        let mut d = abc();
        let mut region = d.intersection(0, 1);
        region.extend(d.intersection(0, 2));
        d.shade(d.difference(0, 1)).unwrap();
        d.add_xseq(region).unwrap();
        let v = VennII::new(vec![d]).unwrap();
        let split = v.split_sequence(0, 0).unwrap();
        assert_eq!(split.disjuncts.len(), 3, "|A∩B ∪ A∩C| = 3 minterms, one copy each");
        assert!(split
            .disjuncts
            .iter()
            .all(|x| x.xseqs[0].len() == 1), "every copy asserts one minterm");
        assert_eq!(v.models(), split.models(), "splitting preserves the model set");
    }

    #[test]
    fn connecting_diagrams_weakens() {
        let mut d1 = abc();
        d1.shade(d1.intersection(0, 1)).unwrap();
        let v = VennII::new(vec![d1]).unwrap();
        let mut extra = abc();
        extra.add_xseq(extra.intersection(1, 2)).unwrap();
        let connected = v.connect(extra).unwrap();
        assert!(v.entails(&connected).unwrap(), "or-introduction is sound");
        assert!(!connected.entails(&v).unwrap(), "and strictly weaker here");
    }

    #[test]
    fn split_rejects_bad_indices() {
        let mut d = abc();
        d.add_xseq(d.intersection(0, 1)).unwrap();
        let v = VennII::new(vec![d]).unwrap();
        assert!(v.split_sequence(3, 0).is_err());
        assert!(v.split_sequence(0, 5).is_err());
        let two = VennDiagram::new(vec!["A", "B"]).unwrap();
        assert!(v.connect(two).is_err());
    }
}
