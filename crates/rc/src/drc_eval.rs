//! DRC evaluation (active-domain semantics) and the **safe-range** check.
//!
//! ## Safety
//!
//! Unrestricted DRC can express infinite answers (`{x | ¬R(x)}`). The
//! classical fix is the *safe-range* fragment: a query is safe iff every
//! head variable and every quantified variable is **range-restricted** —
//! syntactically forced to take values from the database. [`safe_range_check`]
//! implements the textbook `rr()` analysis (with equality propagation).
//!
//! ## Evaluation
//!
//! [`eval_drc`] evaluates under the **active domain**: variables range over
//! the set of constants in the database (plus constants of the query). For
//! safe queries this coincides with the natural semantics. The evaluator
//! uses positive atoms as *guards* — variables covered by a positive atom
//! enumerate matching tuples rather than the whole domain — so safe queries
//! evaluate in time proportional to joins, not domain powers.

use std::collections::{BTreeSet, HashMap};

use relviz_model::{Database, DataType, Relation, Schema, Tuple, Value};

use crate::drc::{DrcFormula, DrcQuery, DrcTerm};
use crate::error::{RcError, RcResult};

/// Evaluates a DRC query against `db` after checking it is safe-range.
pub fn eval_drc(q: &DrcQuery, db: &Database) -> RcResult<Relation> {
    safe_range_check(q)?;
    eval_drc_unchecked(q, db)
}

/// Evaluates without the safety check (used by tests that probe the
/// active-domain semantics of *unsafe* queries).
pub fn eval_drc_unchecked(q: &DrcQuery, db: &Database) -> RcResult<Relation> {
    let mut domain: BTreeSet<Value> = db.active_domain();
    collect_constants(&q.body, &mut domain);
    let domain: Vec<Value> = domain.into_iter().collect();

    let schema = Schema::of(
        &q.head
            .iter()
            .map(|n| (n.as_str(), DataType::Any))
            .collect::<Vec<_>>(),
    );
    let mut out = Relation::empty(schema);

    let body = q.body.eliminate_forall().push_negations();
    let mut env: HashMap<String, Value> = HashMap::new();
    solve(&q.head, &body, db, &domain, &mut env, &mut |env| {
        let values: Vec<Value> = q.head.iter().map(|v| env[v].clone()).collect();
        out.insert_unchecked(Tuple::new(values));
    })?;
    Ok(out)
}

fn collect_constants(f: &DrcFormula, out: &mut BTreeSet<Value>) {
    match f {
        DrcFormula::Atom { terms, .. } => {
            for t in terms {
                if let DrcTerm::Const(v) = t {
                    out.insert(v.clone());
                }
            }
        }
        DrcFormula::Cmp { left, right, .. } => {
            for t in [left, right] {
                if let DrcTerm::Const(v) = t {
                    out.insert(v.clone());
                }
            }
        }
        DrcFormula::And(a, b) | DrcFormula::Or(a, b) => {
            collect_constants(a, out);
            collect_constants(b, out);
        }
        DrcFormula::Not(a) => collect_constants(a, out),
        DrcFormula::Exists { body, .. } | DrcFormula::Forall { body, .. } => {
            collect_constants(body, out)
        }
        DrcFormula::Const(_) => {}
    }
}

/// Enumerates assignments of `vars` satisfying `body` (with `env` as
/// partial outer assignment), invoking `emit` once per satisfying complete
/// assignment of `vars`.
fn solve(
    vars: &[String],
    body: &DrcFormula,
    db: &Database,
    domain: &[Value],
    env: &mut HashMap<String, Value>,
    emit: &mut dyn FnMut(&HashMap<String, Value>),
) -> RcResult<()> {
    // Structural shortcuts keep safe queries join-like instead of
    // domain-exponential:
    // `solve(x̄, A ∨ B)` = union of the disjunct solutions;
    // `solve(x̄, ∃ȳ: φ)` = projection of `solve(x̄ ∪ ȳ, φ)` (emit may fire
    // several times per x̄-assignment; callers dedupe via set-insert).
    match body {
        DrcFormula::Or(a, b) => {
            solve(vars, a, db, domain, env, emit)?;
            return solve(vars, b, db, domain, env, emit);
        }
        DrcFormula::Exists { vars: inner, body: ib } => {
            let mut merged: Vec<String> = vars.to_vec();
            merged.extend(inner.iter().cloned());
            return solve(&merged, ib, db, domain, env, emit);
        }
        _ => {}
    }

    // Collect positive conjunct atoms usable as guards.
    let mut guards: Vec<&DrcFormula> = Vec::new();
    collect_guards(body, &mut guards);
    let mut order: Vec<&str> = Vec::new();
    let mut covered: BTreeSet<&str> = BTreeSet::new();
    // Guard-covered variables first (in guard order).
    for g in &guards {
        if let DrcFormula::Atom { terms, .. } = g {
            for t in terms {
                if let DrcTerm::Var(v) = t {
                    if vars.iter().any(|x| x == v) && !covered.contains(v.as_str()) {
                        covered.insert(v);
                        order.push(v);
                    }
                }
            }
        }
    }
    for v in vars {
        if !covered.contains(v.as_str()) {
            order.push(v);
        }
    }

    assign(&order, 0, &guards, body, db, domain, env, emit)
}

fn collect_guards<'a>(f: &'a DrcFormula, out: &mut Vec<&'a DrcFormula>) {
    match f {
        DrcFormula::Atom { .. } => out.push(f),
        DrcFormula::And(a, b) => {
            collect_guards(a, out);
            collect_guards(b, out);
        }
        // Only *positive conjunctive* atoms are safe to use as guards.
        _ => {}
    }
}

#[allow(clippy::too_many_arguments)]
fn assign(
    order: &[&str],
    idx: usize,
    guards: &[&DrcFormula],
    body: &DrcFormula,
    db: &Database,
    domain: &[Value],
    env: &mut HashMap<String, Value>,
    emit: &mut dyn FnMut(&HashMap<String, Value>),
) -> RcResult<()> {
    if idx == order.len() {
        if eval_formula(body, db, domain, env)? {
            emit(env);
        }
        return Ok(());
    }
    let var = order[idx];
    // Find a guard atom that mentions `var`.
    let guard = guards.iter().find(|g| {
        matches!(g, DrcFormula::Atom { terms, .. }
            if terms.iter().any(|t| t.as_var() == Some(var)))
    });
    match guard {
        Some(DrcFormula::Atom { rel, terms }) => {
            let relation = db.relation(rel)?;
            if relation.schema().arity() != terms.len() {
                return Err(RcError::Eval(format!(
                    "atom {rel}/{} does not match relation arity {}",
                    terms.len(),
                    relation.schema().arity()
                )));
            }
            // Enumerate tuples consistent with the current assignment;
            // bind every still-free variable of the atom.
            'tuples: for t in relation.iter() {
                let mut newly_bound: Vec<&str> = Vec::new();
                for (term, value) in terms.iter().zip(t.values()) {
                    match term {
                        DrcTerm::Const(c) => {
                            if c != value {
                                undo(env, &newly_bound);
                                continue 'tuples;
                            }
                        }
                        DrcTerm::Var(v) => match env.get(v) {
                            Some(bound) => {
                                if bound != value {
                                    undo(env, &newly_bound);
                                    continue 'tuples;
                                }
                            }
                            None => {
                                env.insert(v.clone(), value.clone());
                                newly_bound.push(v);
                            }
                        },
                    }
                }
                // Skip ahead past any order-vars that just got bound.
                let mut next = idx;
                while next < order.len() && env.contains_key(order[next]) {
                    next += 1;
                }
                let r = assign(order, next, guards, body, db, domain, env, emit);
                undo(env, &newly_bound);
                r?;
            }
            Ok(())
        }
        _ => {
            // No guard: fall back to the active domain.
            for v in domain {
                env.insert(var.to_string(), v.clone());
                let r = assign(order, idx + 1, guards, body, db, domain, env, emit);
                env.remove(var);
                r?;
            }
            Ok(())
        }
    }
}

fn undo(env: &mut HashMap<String, Value>, names: &[&str]) {
    for n in names {
        env.remove(*n);
    }
}

fn term_value<'a>(
    t: &'a DrcTerm,
    env: &'a HashMap<String, Value>,
) -> RcResult<&'a Value> {
    match t {
        DrcTerm::Const(v) => Ok(v),
        DrcTerm::Var(v) => env
            .get(v)
            .ok_or_else(|| RcError::Eval(format!("unbound variable `{v}`"))),
    }
}

fn eval_formula(
    f: &DrcFormula,
    db: &Database,
    domain: &[Value],
    env: &mut HashMap<String, Value>,
) -> RcResult<bool> {
    match f {
        DrcFormula::Const(b) => Ok(*b),
        DrcFormula::Atom { rel, terms } => {
            let relation = db.relation(rel)?;
            let mut values = Vec::with_capacity(terms.len());
            for t in terms {
                values.push(term_value(t, env)?.clone());
            }
            Ok(relation.contains(&Tuple::new(values)))
        }
        DrcFormula::Cmp { left, op, right } => {
            let l = term_value(left, env)?.clone();
            let r = term_value(right, env)?;
            Ok(op.apply(&l, r))
        }
        DrcFormula::And(a, b) => {
            Ok(eval_formula(a, db, domain, env)? && eval_formula(b, db, domain, env)?)
        }
        DrcFormula::Or(a, b) => {
            Ok(eval_formula(a, db, domain, env)? || eval_formula(b, db, domain, env)?)
        }
        DrcFormula::Not(a) => Ok(!eval_formula(a, db, domain, env)?),
        DrcFormula::Exists { vars, body } => {
            let mut found = false;
            solve(vars, body, db, domain, env, &mut |_| {
                found = true;
            })?;
            Ok(found)
        }
        DrcFormula::Forall { vars, body } => {
            // ¬∃x̄: ¬body
            let negated = DrcFormula::Not(body.clone());
            let mut counterexample = false;
            solve(vars, &negated, db, domain, env, &mut |_| {
                counterexample = true;
            })?;
            Ok(!counterexample)
        }
    }
}

// ---- Safe-range analysis ---------------------------------------------------

/// Checks that a query is in the safe-range fragment; errors name the
/// offending variables.
pub fn safe_range_check(q: &DrcQuery) -> RcResult<()> {
    let body = q.body.eliminate_forall().push_negations();
    let rr = range_restricted(&body)?;
    let missing: Vec<&String> = q.head.iter().filter(|v| !rr.contains(v.as_str())).collect();
    if !missing.is_empty() {
        return Err(RcError::Unsafe(format!(
            "head variables not range-restricted: {}",
            missing.iter().map(|s| s.as_str()).collect::<Vec<_>>().join(", ")
        )));
    }
    Ok(())
}

/// Computes the set of range-restricted variables of a formula, erroring
/// if a quantified variable is not range-restricted in its scope.
fn range_restricted(f: &DrcFormula) -> RcResult<BTreeSet<String>> {
    match f {
        DrcFormula::Const(_) => Ok(BTreeSet::new()),
        DrcFormula::Atom { terms, .. } => Ok(terms
            .iter()
            .filter_map(|t| t.as_var().map(str::to_string))
            .collect()),
        DrcFormula::Cmp { left, op, right } => {
            // Only `x = const` restricts x.
            let mut out = BTreeSet::new();
            if *op == relviz_model::CmpOp::Eq {
                match (left, right) {
                    (DrcTerm::Var(v), DrcTerm::Const(_))
                    | (DrcTerm::Const(_), DrcTerm::Var(v)) => {
                        out.insert(v.clone());
                    }
                    _ => {}
                }
            }
            Ok(out)
        }
        DrcFormula::And(a, b) => {
            let mut out = range_restricted(a)?;
            out.extend(range_restricted(b)?);
            // Equality propagation: conjoined `x = y` spreads restriction.
            let mut changed = true;
            while changed {
                changed = false;
                let mut eqs = Vec::new();
                collect_var_equalities(f, &mut eqs);
                for (x, y) in &eqs {
                    if out.contains(x) && !out.contains(y) {
                        out.insert(y.clone());
                        changed = true;
                    }
                    if out.contains(y) && !out.contains(x) {
                        out.insert(x.clone());
                        changed = true;
                    }
                }
            }
            Ok(out)
        }
        DrcFormula::Or(a, b) => {
            let ra = range_restricted(a)?;
            let rb = range_restricted(b)?;
            Ok(ra.intersection(&rb).cloned().collect())
        }
        DrcFormula::Not(a) => {
            range_restricted(a)?; // still check inside
            Ok(BTreeSet::new())
        }
        DrcFormula::Exists { vars, body } => {
            let rr = range_restricted(body)?;
            let missing: Vec<&String> = vars.iter().filter(|v| !rr.contains(v.as_str())).collect();
            if !missing.is_empty() {
                return Err(RcError::Unsafe(format!(
                    "quantified variables not range-restricted: {}",
                    missing.iter().map(|s| s.as_str()).collect::<Vec<_>>().join(", ")
                )));
            }
            Ok(rr.into_iter().filter(|v| !vars.contains(v)).collect())
        }
        DrcFormula::Forall { .. } => {
            Err(RcError::Check("∀ must be eliminated before rr() (internal)".into()))
        }
    }
}

fn collect_var_equalities(f: &DrcFormula, out: &mut Vec<(String, String)>) {
    match f {
        DrcFormula::Cmp {
            left: DrcTerm::Var(x),
            op: relviz_model::CmpOp::Eq,
            right: DrcTerm::Var(y),
        } => out.push((x.clone(), y.clone())),
        DrcFormula::And(a, b) => {
            collect_var_equalities(a, out);
            collect_var_equalities(b, out);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drc::DrcTerm as T;
    use relviz_model::catalog::sailors_sample;

    fn v(n: &str) -> T {
        T::var(n)
    }

    /// Q2 in DRC: names of sailors who reserved a red boat.
    fn q2() -> DrcQuery {
        DrcQuery::new(
            vec!["n"],
            DrcFormula::exists(
                vec!["s".into(), "rt".into(), "a".into(), "b".into(), "d".into(), "bn".into()],
                DrcFormula::conj(vec![
                    DrcFormula::atom("Sailor", vec![v("s"), v("n"), v("rt"), v("a")]),
                    DrcFormula::atom("Reserves", vec![v("s"), v("b"), v("d")]),
                    DrcFormula::atom("Boat", vec![v("b"), v("bn"), T::val("red")]),
                ]),
            ),
        )
    }

    #[test]
    fn q2_matches_expected() {
        let out = eval_drc(&q2(), &sailors_sample()).unwrap();
        let names: Vec<String> = out.iter().map(|t| t.values()[0].to_string()).collect();
        assert_eq!(names, vec!["dustin", "horatio", "lubber"]);
    }

    #[test]
    fn q5_division_in_drc() {
        // sailors who reserved all red boats, ¬∃ form.
        let q = DrcQuery::new(
            vec!["n"],
            DrcFormula::exists(
                vec!["s".into(), "rt".into(), "a".into()],
                DrcFormula::atom("Sailor", vec![v("s"), v("n"), v("rt"), v("a")]).and(
                    DrcFormula::exists(
                        vec!["b".into(), "bn".into()],
                        DrcFormula::atom("Boat", vec![v("b"), v("bn"), T::val("red")]).and(
                            DrcFormula::exists(
                                vec!["d".into()],
                                DrcFormula::atom("Reserves", vec![v("s"), v("b"), v("d")]),
                            )
                            .not(),
                        ),
                    )
                    .not(),
                ),
            ),
        );
        let out = eval_drc(&q, &sailors_sample()).unwrap();
        assert_eq!(out.len(), 2); // dustin, lubber
    }

    #[test]
    fn unsafe_queries_rejected() {
        // {x | ¬Sailor(x, x, x, x)} — head var only under negation.
        let q = DrcQuery::new(
            vec!["x"],
            DrcFormula::atom("Sailor", vec![v("x"), v("x"), v("x"), v("x")]).not(),
        );
        assert!(matches!(safe_range_check(&q), Err(RcError::Unsafe(_))));

        // quantified var unrestricted: ∃y: x = x (y never restricted)
        let q = DrcQuery::new(
            vec!["x"],
            DrcFormula::atom("Boat", vec![v("x"), v("z"), v("w")]).and(DrcFormula::exists(
                vec!["y".into()],
                DrcFormula::eq(v("x").clone(), v("x").clone()),
            )),
        );
        assert!(matches!(safe_range_check(&q), Err(RcError::Unsafe(_))));
    }

    #[test]
    fn equality_propagation_makes_safe() {
        // { y | ∃b, c: Boat(b, c, y2) ∧ y = y2 } — y restricted via equality.
        let q = DrcQuery::new(
            vec!["y"],
            DrcFormula::exists(
                vec!["b".into(), "c".into(), "y2".into()],
                DrcFormula::atom("Boat", vec![v("b"), v("c"), v("y2")])
                    .and(DrcFormula::eq(v("y"), v("y2"))),
            ),
        );
        // y is free and equated to a restricted var inside the ∃ — but the
        // equality lives under the ∃, so rr propagates to the head.
        assert!(safe_range_check(&q).is_ok());
        let out = eval_drc(&q, &sailors_sample()).unwrap();
        assert_eq!(out.len(), 3); // distinct colors: blue, red, green
    }

    #[test]
    fn forall_in_evaluation() {
        // ∀b,bn,c: Boat(b,bn,c) → c ≠ 'purple'  — true on the sample.
        let q = DrcQuery::new(
            vec!["n"],
            DrcFormula::exists(
                vec!["s".into(), "rt".into(), "a".into()],
                DrcFormula::atom("Sailor", vec![v("s"), v("n"), v("rt"), v("a")]).and(
                    DrcFormula::forall(
                        vec!["b".into(), "bn".into(), "c".into()],
                        DrcFormula::atom("Boat", vec![v("b"), v("bn"), v("c")])
                            .not()
                            .or(DrcFormula::cmp(v("c"), relviz_model::CmpOp::Neq, T::val("purple"))),
                    ),
                ),
            ),
        );
        let out = eval_drc(&q, &sailors_sample()).unwrap();
        assert_eq!(out.len(), 9); // all sailor names (two horatios collapse)
    }

    #[test]
    fn unguarded_vars_fall_back_to_domain() {
        // { x | x = 22 ∧ ∃d: Reserves(x, y, d) } with y free & guarded... keep simple:
        // { x | x = 102 } is unsafe? x = const restricts x → safe.
        let q = DrcQuery::new(vec!["x"], DrcFormula::eq(v("x"), T::val(102)));
        assert!(safe_range_check(&q).is_ok());
        let out = eval_drc(&q, &sailors_sample()).unwrap();
        assert_eq!(out.len(), 1);
    }
}
