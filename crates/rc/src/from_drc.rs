//! DRC → TRC: domain calculus back into tuple calculus — the last edge of
//! the workspace's translation square (SQL→TRC, TRC↔RA, TRC↔DRC).
//!
//! The algorithm works on *atom-normal* DRC (every variable is grounded by
//! a positive atom or a constant equality — i.e. the safe-range fragment,
//! which [`crate::drc_eval::safe_range_check`] certifies and
//! [`crate::to_drc`] produces):
//!
//! * each positive atom occurrence `R(t₁,…,tₖ)` becomes a fresh tuple
//!   variable `v ∈ R`; the first occurrence of a domain variable at
//!   position `j` *defines* it as `v.attrⱼ`, later occurrences emit
//!   equality conditions (this is exactly how QBE's example elements and
//!   conceptual graphs' co-reference work — one mechanism, three guises);
//! * constants in atoms emit `v.attrⱼ = c`;
//! * `¬` over an existential block becomes `¬∃` over the block's tuple
//!   variables; `¬atom` becomes `¬∃v∈R: v.ā = t̄`;
//! * top-level disjunction splits into union branches, inner disjunction
//!   stays as TRC `∨` with per-side scoping.

use std::collections::HashMap;

use relviz_model::Database;

use crate::drc::{DrcFormula, DrcQuery, DrcTerm};
use crate::error::{RcError, RcResult};
use crate::trc::{Binding, TrcBranch, TrcFormula, TrcQuery, TrcTerm};

/// Translates a safe-range DRC query into TRC.
pub fn drc_to_trc(q: &DrcQuery, db: &Database) -> RcResult<TrcQuery> {
    crate::drc_eval::safe_range_check(q)?;
    let body = q.body.eliminate_forall().push_negations();

    // Top-level disjunction → union branches.
    let disjuncts = split_or(&body);
    let mut branches = Vec::with_capacity(disjuncts.len());
    for d in disjuncts {
        branches.push(branch_for(&d, &q.head, db)?);
    }
    Ok(TrcQuery { branches })
}

fn split_or(f: &DrcFormula) -> Vec<DrcFormula> {
    match f {
        DrcFormula::Or(a, b) => {
            let mut out = split_or(a);
            out.extend(split_or(b));
            out
        }
        other => vec![other.clone()],
    }
}

struct Ctx<'a> {
    db: &'a Database,
    fresh: usize,
    /// Domain variable → defining TRC term.
    env: HashMap<String, TrcTerm>,
}

impl<'a> Ctx<'a> {
    fn fresh_var(&mut self) -> String {
        self.fresh += 1;
        format!("t{}", self.fresh)
    }

    fn term(&self, t: &DrcTerm) -> RcResult<TrcTerm> {
        match t {
            DrcTerm::Const(c) => Ok(TrcTerm::Const(c.clone())),
            DrcTerm::Var(v) => self.env.get(v).cloned().ok_or_else(|| {
                RcError::Unsupported(format!(
                    "variable `{v}` is not grounded by a positive atom (not atom-normal)"
                ))
            }),
        }
    }
}

fn branch_for(
    f: &DrcFormula,
    head: &[String],
    db: &Database,
) -> RcResult<TrcBranch> {
    let mut ctx = Ctx { db, fresh: 0, env: HashMap::new() };
    let (bindings, conds) = translate(f, &mut ctx)?;
    let mut head_terms = Vec::with_capacity(head.len());
    for h in head {
        let term = ctx.env.get(h).cloned().ok_or_else(|| {
            RcError::Unsupported(format!("head variable `{h}` not grounded in this branch"))
        })?;
        head_terms.push((h.clone(), term));
    }
    Ok(TrcBranch {
        bindings,
        head: head_terms,
        body: if conds.is_empty() { None } else { Some(TrcFormula::conj(conds)) },
    })
}

/// Translates a conjunctive block: returns the tuple-variable bindings its
/// positive atoms introduce plus the residual conditions.
fn translate(
    f: &DrcFormula,
    ctx: &mut Ctx<'_>,
) -> RcResult<(Vec<Binding>, Vec<TrcFormula>)> {
    match f {
        DrcFormula::Const(b) => Ok((vec![], vec![TrcFormula::Const(*b)])),
        DrcFormula::And(a, b) => {
            let (mut bs, mut cs) = translate(a, ctx)?;
            let (bs2, cs2) = translate(b, ctx)?;
            bs.extend(bs2);
            cs.extend(cs2);
            Ok((bs, cs))
        }
        DrcFormula::Exists { body, .. } => {
            // Quantified domain variables dissolve into attribute positions
            // of the tuple variables their grounding atoms introduce.
            translate(body, ctx)
        }
        DrcFormula::Atom { rel, terms } => {
            let schema = ctx
                .db
                .schema(rel)
                .map_err(|_| RcError::Check(format!("unknown relation `{rel}`")))?
                .clone();
            if schema.arity() != terms.len() {
                return Err(RcError::Check(format!(
                    "atom {rel}/{} vs relation arity {}",
                    terms.len(),
                    schema.arity()
                )));
            }
            let var = ctx.fresh_var();
            let mut conds = Vec::new();
            for (t, attr) in terms.iter().zip(schema.attrs()) {
                let here = TrcTerm::attr(var.clone(), attr.name.clone());
                match t {
                    DrcTerm::Const(c) => {
                        conds.push(TrcFormula::eq(here, TrcTerm::Const(c.clone())));
                    }
                    DrcTerm::Var(v) => match ctx.env.get(v) {
                        Some(prev) => conds.push(TrcFormula::eq(here, prev.clone())),
                        None => {
                            ctx.env.insert(v.clone(), here);
                        }
                    },
                }
            }
            Ok((vec![Binding::new(var, rel.clone())], conds))
        }
        DrcFormula::Cmp { left, op, right } => {
            // Equality can *define* a not-yet-grounded variable (the rr()
            // analysis's equality propagation, mirrored here): `x = t`
            // with `t` grounded makes `t` the definition of `x`.
            if *op == relviz_model::CmpOp::Eq {
                match (left, right) {
                    (DrcTerm::Var(v), other) if !ctx.env.contains_key(v) => {
                        if let Ok(t) = ctx.term(other) {
                            ctx.env.insert(v.clone(), t);
                            return Ok((vec![], vec![]));
                        }
                    }
                    (other, DrcTerm::Var(v)) if !ctx.env.contains_key(v) => {
                        if let Ok(t) = ctx.term(other) {
                            ctx.env.insert(v.clone(), t);
                            return Ok((vec![], vec![]));
                        }
                    }
                    _ => {}
                }
            }
            let l = ctx.term(left)?;
            let r = ctx.term(right)?;
            Ok((vec![], vec![TrcFormula::cmp(l, *op, r)]))
        }
        DrcFormula::Not(inner) => {
            // Translate the negated block in a child scope; its atoms
            // become a ¬∃ block. Mappings inside must not leak out.
            let saved_env = ctx.env.clone();
            let (bs, cs) = translate(inner, ctx)?;
            ctx.env = saved_env;
            let body = TrcFormula::conj(cs);
            let cond = if bs.is_empty() {
                body.not()
            } else {
                TrcFormula::exists(bs, body).not()
            };
            Ok((vec![], vec![cond]))
        }
        DrcFormula::Or(a, b) => {
            // Inner disjunction: each side scopes its own atoms.
            let mut sides = Vec::new();
            for side in [a, b] {
                let saved_env = ctx.env.clone();
                let (bs, cs) = translate(side, ctx)?;
                ctx.env = saved_env;
                let body = TrcFormula::conj(cs);
                sides.push(if bs.is_empty() {
                    body
                } else {
                    TrcFormula::exists(bs, body)
                });
            }
            let b2 = sides.pop().expect("two sides");
            let a2 = sides.pop().expect("two sides");
            Ok((vec![], vec![a2.or(b2)]))
        }
        DrcFormula::Forall { .. } => {
            Err(RcError::Check("∀ should have been eliminated (internal)".into()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drc_eval::eval_drc;
    use crate::drc_parse::parse_drc;
    use crate::trc_eval::eval_trc;
    use relviz_model::catalog::sailors_sample;

    fn check_equiv(src: &str) {
        let db = sailors_sample();
        let drc = parse_drc(src).unwrap();
        let trc = drc_to_trc(&drc, &db).unwrap_or_else(|e| panic!("{src}: {e}"));
        crate::trc_check::check_query(&trc, &db)
            .unwrap_or_else(|e| panic!("{src} gave ill-formed TRC: {e}\n{trc}"));
        let a = eval_drc(&drc, &db).unwrap();
        let b = eval_trc(&trc, &db).unwrap();
        assert!(a.same_contents(&b), "DRC vs TRC for `{src}`\n{trc}\ndrc={a}\ntrc={b}");
    }

    #[test]
    fn suite_drc_forms_translate() {
        for q in [
            "{n | exists s, rt, a, d: (Sailor(s, n, rt, a) and Reserves(s, 102, d))}",
            "{n | exists s, rt, a, b, d, bn: (Sailor(s, n, rt, a) and \
              Reserves(s, b, d) and Boat(b, bn, 'red'))}",
            "{n | exists s, rt, a: (Sailor(s, n, rt, a) and \
              not exists b, d, bn: (Reserves(s, b, d) and Boat(b, bn, 'red')))}",
            "{n | exists s, rt, a: (Sailor(s, n, rt, a) and \
              not exists b, bn: (Boat(b, bn, 'red') and \
              not exists d: (Reserves(s, b, d))))}",
            "{n1, n2 | exists s1, r1, a1, s2, r2, a2: (Sailor(s1, n1, r1, a1) and \
              Sailor(s2, n2, r2, a2) and r1 = r2 and s1 < s2)}",
        ] {
            check_equiv(q);
        }
    }

    #[test]
    fn inner_disjunction_is_kept() {
        check_equiv(
            "{n | exists s, rt, a, b, d, bn, c: (Sailor(s, n, rt, a) and \
              Reserves(s, b, d) and Boat(b, bn, c) and (c = 'red' or c = 'green'))}",
        );
    }

    #[test]
    fn top_level_or_splits_branches() {
        let db = sailors_sample();
        let drc = parse_drc(
            "{x | exists n: (Boat(x, n, 'red')) or exists n2: (Boat(x, n2, 'green'))}",
        )
        .unwrap();
        // x is restricted in both disjuncts → safe.
        let trc = drc_to_trc(&drc, &db).unwrap();
        assert_eq!(trc.branches.len(), 2, "{trc}");
        let a = eval_drc(&drc, &db).unwrap();
        let b = eval_trc(&trc, &db).unwrap();
        assert!(a.same_contents(&b));
    }

    #[test]
    fn shared_variables_become_equalities() {
        let db = sailors_sample();
        let drc = parse_drc(
            "{n | exists s, rt, a, d: (Sailor(s, n, rt, a) and Reserves(s, 102, d))}",
        )
        .unwrap();
        let trc = drc_to_trc(&drc, &db).unwrap();
        let s = trc.to_string();
        // `s` shared between Sailor and Reserves ⇒ t2.sid = t1.sid.
        assert!(s.contains("t2.sid = t1.sid"), "{s}");
        assert!(s.contains("t2.bid = 102"), "{s}");
    }

    #[test]
    fn round_trip_through_both_calculi() {
        // TRC → DRC → TRC preserves semantics on the suite.
        let db = sailors_sample();
        for q in [
            "{s.sname | Sailor(s) and exists r in Reserves: (r.sid = s.sid and r.bid = 102)}",
            "{s.sname | Sailor(s) and not exists b in Boat: (b.color = 'red' and \
              not exists r in Reserves: (r.sid = s.sid and r.bid = b.bid))}",
        ] {
            let trc = crate::trc_parse::parse_trc(q).unwrap();
            let drc = crate::to_drc::trc_to_drc(&trc, &db).unwrap();
            let back = drc_to_trc(&drc, &db).unwrap();
            let a = eval_trc(&trc, &db).unwrap();
            let b = eval_trc(&back, &db).unwrap();
            assert!(a.same_contents(&b), "{q}\nback: {back}");
        }
    }

    #[test]
    fn non_atom_normal_rejected() {
        let db = sailors_sample();
        // y only in a comparison — unsafe, rejected upstream.
        let drc = parse_drc("{y | exists b, n, c: (Boat(b, n, c) and y > b)}").unwrap();
        assert!(drc_to_trc(&drc, &db).is_err());
    }
}
