//! Errors of the relational-calculus subsystem.

use std::fmt;

/// Errors from parsing, checking, translating or evaluating calculus
/// queries.
#[derive(Debug, Clone, PartialEq)]
pub enum RcError {
    /// Parse failure of the TRC/DRC text syntax.
    Parse(String),
    /// Scoping/typing failure (unbound variable, unknown attribute…).
    Check(String),
    /// A query outside the safe (range-restricted) fragment.
    Unsafe(String),
    /// A feature that has no counterpart in the target language.
    Unsupported(String),
    /// Evaluation failure.
    Eval(String),
}

impl fmt::Display for RcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RcError::Parse(m) => write!(f, "calculus parse error: {m}"),
            RcError::Check(m) => write!(f, "calculus check error: {m}"),
            RcError::Unsafe(m) => write!(f, "unsafe query: {m}"),
            RcError::Unsupported(m) => write!(f, "unsupported translation: {m}"),
            RcError::Eval(m) => write!(f, "calculus evaluation error: {m}"),
        }
    }
}

impl std::error::Error for RcError {}

impl From<relviz_model::ModelError> for RcError {
    fn from(e: relviz_model::ModelError) -> Self {
        RcError::Eval(e.to_string())
    }
}

impl From<relviz_ra::RaError> for RcError {
    fn from(e: relviz_ra::RaError) -> Self {
        RcError::Eval(e.to_string())
    }
}

impl From<relviz_sql::SqlError> for RcError {
    fn from(e: relviz_sql::SqlError) -> Self {
        RcError::Check(e.to_string())
    }
}

pub type RcResult<T> = std::result::Result<T, RcError>;
