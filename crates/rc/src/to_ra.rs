//! TRC → RA: the classical compilation showing that safe calculus queries
//! are relationally computable (Codd's theorem, constructive direction).
//!
//! Strategy ("context algebra"): for a set `ctx` of bound variables
//! `v₁∈R₁ … vₙ∈Rₙ`, let `E(ctx)` be the product of the `Rᵢ` with attributes
//! renamed to `vᵢ__a`. Every subformula φ compiles to an RA expression with
//! schema `E(ctx)` holding exactly the variable assignments that satisfy φ:
//!
//! * comparison  → `σ(E(ctx))`
//! * `φ ∧ ψ`     → `compile(φ) ∩ compile(ψ)`
//! * `φ ∨ ψ`     → `compile(φ) ∪ compile(ψ)`
//! * `¬φ`        → `E(ctx) − compile(φ)`   (range-restricted complement)
//! * `∃v̄: φ`     → `π_{ctx}(compile(φ, ctx ∪ v̄))`
//! * `∀`         → eliminated as `¬∃¬` first
//!
//! This mirrors how the tutorial explains why *relation-bound* quantifiers
//! (and nothing else) keep diagrams finite: negation is always relative to
//! an explicit product of named relations, never to an infinite domain.
//! The output is not optimized — feed it to [`relviz_ra::rewrite::optimize`].

use relviz_model::Database;
use relviz_ra::{Operand, Predicate, RaExpr};

use crate::error::{RcError, RcResult};
use crate::trc::{Binding, TrcFormula, TrcQuery, TrcTerm};
use crate::trc_check::check_query;

/// Compiles a (checked) TRC query to RA.
pub fn trc_to_ra(q: &TrcQuery, db: &Database) -> RcResult<RaExpr> {
    check_query(q, db)?;
    let q = q.eliminate_forall();
    let mut per_branch = Vec::with_capacity(q.branches.len());
    for branch in &q.branches {
        let ctx: Vec<Binding> = branch.bindings.clone();
        let satisfying = match &branch.body {
            Some(body) => compile(body, &ctx, db)?,
            None => ctx_expr(&ctx, db)?,
        };
        // Head: project the var__attr columns, then rename to output names.
        let mut proj = Vec::with_capacity(branch.head.len());
        for (_, term) in &branch.head {
            match term {
                TrcTerm::Attr { var, attr } => proj.push(mangle(var, attr)),
                TrcTerm::Const(_) => {
                    return Err(RcError::Unsupported(
                        "constant head terms need an extension operator absent from classical RA"
                            .into(),
                    ))
                }
            }
        }
        if has_duplicates(&proj) {
            return Err(RcError::Unsupported(
                "duplicate head terms cannot be expressed as an RA projection".into(),
            ));
        }
        let mut e = RaExpr::Project { attrs: proj.clone(), input: Box::new(satisfying) };
        for (mangled, (out_name, _)) in proj.iter().zip(&branch.head) {
            if mangled != out_name {
                e = e.rename(mangled.clone(), out_name.clone());
            }
        }
        per_branch.push(e);
    }
    per_branch
        .into_iter()
        .reduce(|a, b| a.union(b))
        .ok_or_else(|| RcError::Check("query has no branches".into()))
}

fn mangle(var: &str, attr: &str) -> String {
    format!("{var}__{attr}")
}

fn has_duplicates(v: &[String]) -> bool {
    v.iter().enumerate().any(|(i, x)| v[..i].contains(x))
}

/// `E(ctx)`: the product of the context's relations, attributes mangled.
fn ctx_expr(ctx: &[Binding], db: &Database) -> RcResult<RaExpr> {
    let mut parts = Vec::with_capacity(ctx.len());
    for b in ctx {
        let schema = db
            .schema(&b.rel)
            .map_err(|_| RcError::Check(format!("unknown relation `{}`", b.rel)))?;
        let mut e = RaExpr::relation(b.rel.clone());
        for a in schema.attrs() {
            e = e.rename(a.name.clone(), mangle(&b.var, &a.name));
        }
        parts.push(e);
    }
    parts
        .into_iter()
        .reduce(|a, b| a.product(b))
        .ok_or_else(|| RcError::Unsupported("empty context (Boolean query) in RA target".into()))
}

fn ctx_attrs(ctx: &[Binding], db: &Database) -> RcResult<Vec<String>> {
    let mut out = Vec::new();
    for b in ctx {
        let schema = db
            .schema(&b.rel)
            .map_err(|_| RcError::Check(format!("unknown relation `{}`", b.rel)))?;
        for a in schema.attrs() {
            out.push(mangle(&b.var, &a.name));
        }
    }
    Ok(out)
}

fn compile(f: &TrcFormula, ctx: &[Binding], db: &Database) -> RcResult<RaExpr> {
    match f {
        TrcFormula::Const(true) => ctx_expr(ctx, db),
        TrcFormula::Const(false) => {
            let e = ctx_expr(ctx, db)?;
            Ok(e.clone().difference(e))
        }
        TrcFormula::Cmp { left, op, right } => {
            let pred = Predicate::cmp(operand(left)?, *op, operand(right)?);
            Ok(ctx_expr(ctx, db)?.select(pred))
        }
        TrcFormula::And(a, b) => Ok(compile(a, ctx, db)?.intersect(compile(b, ctx, db)?)),
        TrcFormula::Or(a, b) => Ok(compile(a, ctx, db)?.union(compile(b, ctx, db)?)),
        TrcFormula::Not(a) => Ok(ctx_expr(ctx, db)?.difference(compile(a, ctx, db)?)),
        TrcFormula::Exists { bindings, body } => {
            let mut inner_ctx = ctx.to_vec();
            inner_ctx.extend(bindings.iter().cloned());
            let inner = compile(body, &inner_ctx, db)?;
            Ok(RaExpr::Project { attrs: ctx_attrs(ctx, db)?, input: Box::new(inner) })
        }
        TrcFormula::Forall { .. } => Err(RcError::Check(
            "∀ must be eliminated before compilation (internal error)".into(),
        )),
    }
}

fn operand(t: &TrcTerm) -> RcResult<Operand> {
    Ok(match t {
        TrcTerm::Attr { var, attr } => Operand::Attr(mangle(var, attr)),
        TrcTerm::Const(v) => Operand::Const(v.clone()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::from_sql::parse_sql_to_trc;
    use crate::trc_eval::eval_trc;
    use relviz_model::catalog::sailors_sample;
    use relviz_ra::eval::eval as ra_eval;
    use relviz_ra::rewrite::optimize;

    fn check_equiv(sql: &str) {
        let db = sailors_sample();
        let trc = parse_sql_to_trc(sql, &db).unwrap();
        let ra = trc_to_ra(&trc, &db).unwrap_or_else(|e| panic!("{sql}: {e}"));
        let via_trc = eval_trc(&trc, &db).unwrap();
        let via_ra = ra_eval(&ra, &db).unwrap_or_else(|e| panic!("{sql}: {e}"));
        assert!(
            via_trc.same_contents(&via_ra),
            "TRC vs RA mismatch for `{sql}`\ntrc={via_trc}\nra={via_ra}"
        );
        // and the optimizer must preserve it:
        let via_opt = ra_eval(&optimize(&ra), &db).unwrap();
        assert!(via_trc.same_contents(&via_opt), "optimizer broke `{sql}`");
    }

    #[test]
    fn suite_queries_compile_and_agree() {
        for sql in [
            "SELECT DISTINCT S.sname FROM Sailor S, Reserves R WHERE S.sid = R.sid AND R.bid = 102",
            "SELECT DISTINCT S.sname FROM Sailor S, Reserves R, Boat B \
             WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'red'",
            "SELECT S.sname FROM Sailor S, Reserves R, Boat B \
             WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'red' \
             UNION SELECT S.sname FROM Sailor S, Reserves R, Boat B \
             WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'green'",
            "SELECT S.sname FROM Sailor S WHERE NOT EXISTS \
             (SELECT * FROM Reserves R, Boat B \
              WHERE R.sid = S.sid AND R.bid = B.bid AND B.color = 'red')",
            "SELECT S.sname FROM Sailor S WHERE NOT EXISTS \
             (SELECT * FROM Boat B WHERE B.color = 'red' AND NOT EXISTS \
               (SELECT * FROM Reserves R WHERE R.sid = S.sid AND R.bid = B.bid))",
            "SELECT S.sid FROM Sailor S EXCEPT SELECT R.sid FROM Reserves R",
            "SELECT S.sname FROM Sailor S WHERE S.rating >= ALL (SELECT S2.rating FROM Sailor S2)",
        ] {
            check_equiv(sql);
        }
    }

    #[test]
    fn constant_head_rejected() {
        let db = sailors_sample();
        let trc = crate::trc_parse::parse_trc("{s.sid, 'tag' | Sailor(s)}").unwrap();
        assert!(matches!(trc_to_ra(&trc, &db), Err(RcError::Unsupported(_))));
    }

    #[test]
    fn forall_handled_via_elimination() {
        let db = sailors_sample();
        let trc = crate::trc_parse::parse_trc(
            "{q.sname | Sailor(q) and forall b in Boat: (b.color <> 'red' or \
              exists r in Reserves: (r.sid = q.sid and r.bid = b.bid))}",
        )
        .unwrap();
        let ra = trc_to_ra(&trc, &db).unwrap();
        let via_trc = eval_trc(&trc, &db).unwrap();
        let via_ra = ra_eval(&ra, &db).unwrap();
        assert!(via_trc.same_contents(&via_ra));
        assert_eq!(via_trc.len(), 2); // dustin, lubber
    }
}
