//! Tuple Relational Calculus with relation-bound quantifiers.
//!
//! A query is a union of **branches** (the tutorial's extra query Q3 shows
//! why: disjunction across *different* binding structures is exactly what
//! needs `UNION` in SQL and multiple "partitions" in Relational Diagrams).
//! Each branch is
//!
//! ```text
//! { (t₁.a₁, …, tₖ.aₖ)  |  R₁(t₁), …, Rₙ(tₙ) · φ }
//! ```
//!
//! with free variables `tᵢ` bound to relations `Rᵢ` and a formula φ whose
//! quantifiers are relation-bound (`∃s ∈ S`, `∀s ∈ S`). This is the safe
//! fragment of TRC by construction — no variable ever ranges over an
//! unrestricted domain — which is the fragment every surveyed diagram
//! formalism targets.

use relviz_model::{CmpOp, Value};

/// A term: an attribute of a tuple variable, or a constant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TrcTerm {
    Attr { var: String, attr: String },
    Const(Value),
}

impl TrcTerm {
    pub fn attr(var: impl Into<String>, attr: impl Into<String>) -> Self {
        TrcTerm::Attr { var: var.into(), attr: attr.into() }
    }
    pub fn val(v: impl Into<Value>) -> Self {
        TrcTerm::Const(v.into())
    }
    /// The variable referenced, if any.
    pub fn var(&self) -> Option<&str> {
        match self {
            TrcTerm::Attr { var, .. } => Some(var),
            TrcTerm::Const(_) => None,
        }
    }
}

impl std::fmt::Display for TrcTerm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrcTerm::Attr { var, attr } => write!(f, "{var}.{attr}"),
            TrcTerm::Const(v) => write!(f, "{}", v.to_literal()),
        }
    }
}

/// A quantifier binding: `var ∈ rel`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Binding {
    pub var: String,
    pub rel: String,
}

impl Binding {
    pub fn new(var: impl Into<String>, rel: impl Into<String>) -> Self {
        Binding { var: var.into(), rel: rel.into() }
    }
}

impl std::fmt::Display for Binding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} in {}", self.var, self.rel)
    }
}

/// TRC formulas.
#[derive(Debug, Clone, PartialEq)]
pub enum TrcFormula {
    /// Comparison between two terms.
    Cmp { left: TrcTerm, op: CmpOp, right: TrcTerm },
    And(Box<TrcFormula>, Box<TrcFormula>),
    Or(Box<TrcFormula>, Box<TrcFormula>),
    Not(Box<TrcFormula>),
    /// `∃ v₁ ∈ R₁, … : body`
    Exists { bindings: Vec<Binding>, body: Box<TrcFormula> },
    /// `∀ v₁ ∈ R₁, … : body`
    Forall { bindings: Vec<Binding>, body: Box<TrcFormula> },
    /// Constant truth value.
    Const(bool),
}

impl TrcFormula {
    pub fn cmp(left: TrcTerm, op: CmpOp, right: TrcTerm) -> Self {
        TrcFormula::Cmp { left, op, right }
    }
    pub fn eq(left: TrcTerm, right: TrcTerm) -> Self {
        TrcFormula::cmp(left, CmpOp::Eq, right)
    }
    pub fn and(self, other: TrcFormula) -> Self {
        TrcFormula::And(Box::new(self), Box::new(other))
    }
    pub fn or(self, other: TrcFormula) -> Self {
        TrcFormula::Or(Box::new(self), Box::new(other))
    }
    #[allow(clippy::should_implement_trait)] // DSL: ¬ builder, not std::ops::Not
    pub fn not(self) -> Self {
        TrcFormula::Not(Box::new(self))
    }
    pub fn exists(bindings: Vec<Binding>, body: TrcFormula) -> Self {
        TrcFormula::Exists { bindings, body: Box::new(body) }
    }
    pub fn forall(bindings: Vec<Binding>, body: TrcFormula) -> Self {
        TrcFormula::Forall { bindings, body: Box::new(body) }
    }

    /// Conjunction of a list (True when empty).
    pub fn conj(mut parts: Vec<TrcFormula>) -> TrcFormula {
        match parts.len() {
            0 => TrcFormula::Const(true),
            1 => parts.pop().expect("len checked"),
            _ => {
                let first = parts.remove(0);
                parts.into_iter().fold(first, |acc, p| acc.and(p))
            }
        }
    }

    /// Rewrites `∀x̄: φ` as `¬∃x̄: ¬φ` everywhere — the normal form that
    /// Relational Diagrams and Peirce's graphs use (both draw universal
    /// quantification as doubly-nested negation).
    pub fn eliminate_forall(&self) -> TrcFormula {
        match self {
            TrcFormula::Forall { bindings, body } => TrcFormula::Exists {
                bindings: bindings.clone(),
                body: Box::new(body.eliminate_forall().not()),
            }
            .not(),
            TrcFormula::And(a, b) => a.eliminate_forall().and(b.eliminate_forall()),
            TrcFormula::Or(a, b) => a.eliminate_forall().or(b.eliminate_forall()),
            TrcFormula::Not(a) => a.eliminate_forall().not(),
            TrcFormula::Exists { bindings, body } => TrcFormula::Exists {
                bindings: bindings.clone(),
                body: Box::new(body.eliminate_forall()),
            },
            other => other.clone(),
        }
    }

    /// All variables referenced in terms (free or bound), with repetition.
    pub fn term_vars(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_term_vars(&mut out);
        out
    }

    fn collect_term_vars<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            TrcFormula::Cmp { left, right, .. } => {
                if let Some(v) = left.var() {
                    out.push(v);
                }
                if let Some(v) = right.var() {
                    out.push(v);
                }
            }
            TrcFormula::And(a, b) | TrcFormula::Or(a, b) => {
                a.collect_term_vars(out);
                b.collect_term_vars(out);
            }
            TrcFormula::Not(a) => a.collect_term_vars(out),
            TrcFormula::Exists { body, .. } | TrcFormula::Forall { body, .. } => {
                body.collect_term_vars(out)
            }
            TrcFormula::Const(_) => {}
        }
    }

    /// Count of quantifier nodes (used as a nesting-depth metric).
    pub fn quantifier_count(&self) -> usize {
        match self {
            TrcFormula::And(a, b) | TrcFormula::Or(a, b) => {
                a.quantifier_count() + b.quantifier_count()
            }
            TrcFormula::Not(a) => a.quantifier_count(),
            TrcFormula::Exists { body, .. } | TrcFormula::Forall { body, .. } => {
                1 + body.quantifier_count()
            }
            _ => 0,
        }
    }
}

/// One branch of a TRC query.
#[derive(Debug, Clone, PartialEq)]
pub struct TrcBranch {
    /// Free tuple variables with their relations: `Sailor(q)` etc.
    pub bindings: Vec<Binding>,
    /// Projected output terms, with output attribute names.
    pub head: Vec<(String, TrcTerm)>,
    /// Qualifying condition (optional: None ⇔ TRUE).
    pub body: Option<TrcFormula>,
}

impl TrcBranch {
    /// The body formula or TRUE.
    pub fn body_or_true(&self) -> TrcFormula {
        self.body.clone().unwrap_or(TrcFormula::Const(true))
    }
}

/// A TRC query: union of branches (all branches must have equal head arity
/// and compatible types — checked by [`crate::trc_check`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TrcQuery {
    pub branches: Vec<TrcBranch>,
}

impl TrcQuery {
    pub fn single(branch: TrcBranch) -> Self {
        TrcQuery { branches: vec![branch] }
    }

    /// Head arity (of the first branch).
    pub fn arity(&self) -> usize {
        self.branches.first().map_or(0, |b| b.head.len())
    }

    /// Total quantifier count across branches (size metric).
    pub fn quantifier_count(&self) -> usize {
        self.branches
            .iter()
            .map(|b| b.body.as_ref().map_or(0, TrcFormula::quantifier_count))
            .sum()
    }

    /// [`TrcFormula::eliminate_forall`] applied to every branch.
    pub fn eliminate_forall(&self) -> TrcQuery {
        TrcQuery {
            branches: self
                .branches
                .iter()
                .map(|b| TrcBranch {
                    bindings: b.bindings.clone(),
                    head: b.head.clone(),
                    body: b.body.as_ref().map(TrcFormula::eliminate_forall),
                })
                .collect(),
        }
    }
}

// --- Display: the textual TRC notation used on the tutorial's slides -----

impl std::fmt::Display for TrcFormula {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write_formula(f, self, 0)
    }
}

fn prec(f: &TrcFormula) -> u8 {
    match f {
        TrcFormula::Or(_, _) => 1,
        TrcFormula::And(_, _) => 2,
        TrcFormula::Not(_) => 3,
        _ => 4,
    }
}

fn write_formula(
    f: &mut std::fmt::Formatter<'_>,
    fla: &TrcFormula,
    parent: u8,
) -> std::fmt::Result {
    let p = prec(fla);
    let parens = p < parent;
    if parens {
        write!(f, "(")?;
    }
    match fla {
        TrcFormula::Cmp { left, op, right } => write!(f, "{left} {} {right}", op.symbol())?,
        TrcFormula::And(a, b) => {
            write_formula(f, a, 2)?;
            write!(f, " and ")?;
            write_formula(f, b, 3)?;
        }
        TrcFormula::Or(a, b) => {
            write_formula(f, a, 1)?;
            write!(f, " or ")?;
            write_formula(f, b, 2)?;
        }
        TrcFormula::Not(a) => {
            write!(f, "not ")?;
            write_formula(f, a, 4)?;
        }
        TrcFormula::Exists { bindings, body } => {
            write!(f, "exists ")?;
            for (i, b) in bindings.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{b}")?;
            }
            write!(f, ": (")?;
            write_formula(f, body, 0)?;
            write!(f, ")")?;
        }
        TrcFormula::Forall { bindings, body } => {
            write!(f, "forall ")?;
            for (i, b) in bindings.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{b}")?;
            }
            write!(f, ": (")?;
            write_formula(f, body, 0)?;
            write!(f, ")")?;
        }
        TrcFormula::Const(b) => write!(f, "{}", if *b { "true" } else { "false" })?,
    }
    if parens {
        write!(f, ")")?;
    }
    Ok(())
}

impl std::fmt::Display for TrcBranch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, (_, t)) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, " | ")?;
        for (i, b) in self.bindings.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}({})", b.rel, b.var)?;
        }
        if let Some(body) = &self.body {
            write!(f, " and {body}")?;
        }
        write!(f, "}}")
    }
}

impl std::fmt::Display for TrcQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, b) in self.branches.iter().enumerate() {
            if i > 0 {
                write!(f, " union ")?;
            }
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q5_body() -> TrcFormula {
        // forall b in Boat: (b.color = 'red' -> exists r: …) written ¬∃¬:
        TrcFormula::exists(
            vec![Binding::new("b", "Boat")],
            TrcFormula::eq(TrcTerm::attr("b", "color"), TrcTerm::val("red")).and(
                TrcFormula::exists(
                    vec![Binding::new("r", "Reserves")],
                    TrcFormula::eq(TrcTerm::attr("r", "sid"), TrcTerm::attr("q", "sid")).and(
                        TrcFormula::eq(TrcTerm::attr("r", "bid"), TrcTerm::attr("b", "bid")),
                    ),
                )
                .not(),
            ),
        )
        .not()
    }

    #[test]
    fn display_shapes() {
        let q = TrcQuery::single(TrcBranch {
            bindings: vec![Binding::new("q", "Sailor")],
            head: vec![("sname".into(), TrcTerm::attr("q", "sname"))],
            body: Some(q5_body()),
        });
        let s = q.to_string();
        assert!(s.starts_with("{q.sname | Sailor(q) and not exists b in Boat"), "{s}");
    }

    #[test]
    fn forall_elimination() {
        let fa = TrcFormula::forall(
            vec![Binding::new("b", "Boat")],
            TrcFormula::eq(TrcTerm::attr("b", "color"), TrcTerm::val("red")),
        );
        let e = fa.eliminate_forall();
        let TrcFormula::Not(inner) = e else { panic!("{e:?}") };
        let TrcFormula::Exists { body, .. } = *inner else { panic!() };
        assert!(matches!(*body, TrcFormula::Not(_)));
    }

    #[test]
    fn quantifier_count() {
        assert_eq!(q5_body().quantifier_count(), 2);
    }

    #[test]
    fn conj_of_lists() {
        assert_eq!(TrcFormula::conj(vec![]), TrcFormula::Const(true));
        let one = TrcFormula::eq(TrcTerm::attr("a", "x"), TrcTerm::val(1));
        assert_eq!(TrcFormula::conj(vec![one.clone()]), one);
        let two = TrcFormula::conj(vec![one.clone(), one.clone()]);
        assert!(matches!(two, TrcFormula::And(_, _)));
    }

    #[test]
    fn term_vars() {
        let body = q5_body();
        let vars = body.term_vars();
        assert!(vars.contains(&"q"));
        assert!(vars.contains(&"b"));
        assert!(vars.contains(&"r"));
    }
}
