//! Parser for the textual DRC notation.
//!
//! ```text
//! query   := '{' var (',' var)* '|' formula '}'
//! formula := or ; or := and (OR and)* ; and := unary (AND unary)*
//! unary   := NOT unary
//!          | (EXISTS | FORALL) var (',' var)* ':' '(' formula ')'
//!          | '(' formula ')'
//!          | TRUE | FALSE
//!          | Rel '(' term (',' term)* ')'      -- positional atom
//!          | term cmpop term
//! term    := var | literal
//! ```
//!
//! A leading-uppercase identifier followed by `(` is an atom; everything
//! else is a variable. Unicode (`∃ ∀ ∧ ∨ ¬ ≠ ≤ ≥`) accepted; `Display` on
//! [`DrcQuery`] round-trips.

use relviz_model::{CmpOp, Value};

use crate::drc::{DrcFormula, DrcQuery, DrcTerm};
use crate::error::{RcError, RcResult};

/// Parses the textual DRC syntax.
pub fn parse_drc(input: &str) -> RcResult<DrcQuery> {
    let toks = tokenize(input)?;
    let mut p = P { toks, pos: 0 };
    p.expect(T::LBrace, "`{`")?;
    // An empty head (`{ | φ}`) is a *Boolean query* — a logical statement,
    // the form the Part-4 diagrammatic reasoning systems assert.
    let mut head = Vec::new();
    if !matches!(p.peek(), T::Pipe) {
        head.push(p.ident("head variable")?);
        while p.eat(&T::Comma) {
            head.push(p.ident("head variable")?);
        }
    }
    p.expect(T::Pipe, "`|`")?;
    let body = p.formula()?;
    p.expect(T::RBrace, "`}`")?;
    p.expect_eof()?;
    Ok(DrcQuery { head, body })
}

#[derive(Debug, Clone, PartialEq)]
enum T {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    LBrace,
    RBrace,
    LParen,
    RParen,
    Comma,
    Pipe,
    Colon,
    Cmp(CmpOp),
    Eof,
}

fn tokenize(input: &str) -> RcResult<Vec<T>> {
    let chars: Vec<char> = input.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '{' => {
                out.push(T::LBrace);
                i += 1;
            }
            '}' => {
                out.push(T::RBrace);
                i += 1;
            }
            '(' => {
                out.push(T::LParen);
                i += 1;
            }
            ')' => {
                out.push(T::RParen);
                i += 1;
            }
            ',' => {
                out.push(T::Comma);
                i += 1;
            }
            '|' => {
                out.push(T::Pipe);
                i += 1;
            }
            ':' => {
                out.push(T::Colon);
                i += 1;
            }
            '∃' => {
                out.push(T::Ident("exists".into()));
                i += 1;
            }
            '∀' => {
                out.push(T::Ident("forall".into()));
                i += 1;
            }
            '∧' => {
                out.push(T::Ident("and".into()));
                i += 1;
            }
            '∨' => {
                out.push(T::Ident("or".into()));
                i += 1;
            }
            '¬' => {
                out.push(T::Ident("not".into()));
                i += 1;
            }
            '=' => {
                out.push(T::Cmp(CmpOp::Eq));
                i += 1;
            }
            '≠' => {
                out.push(T::Cmp(CmpOp::Neq));
                i += 1;
            }
            '≤' => {
                out.push(T::Cmp(CmpOp::Le));
                i += 1;
            }
            '≥' => {
                out.push(T::Cmp(CmpOp::Ge));
                i += 1;
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(T::Cmp(CmpOp::Le));
                    i += 2;
                } else if chars.get(i + 1) == Some(&'>') {
                    out.push(T::Cmp(CmpOp::Neq));
                    i += 2;
                } else {
                    out.push(T::Cmp(CmpOp::Lt));
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(T::Cmp(CmpOp::Ge));
                    i += 2;
                } else {
                    out.push(T::Cmp(CmpOp::Gt));
                    i += 1;
                }
            }
            '!' if chars.get(i + 1) == Some(&'=') => {
                out.push(T::Cmp(CmpOp::Neq));
                i += 2;
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        Some('\'') if chars.get(i + 1) == Some(&'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                        None => return Err(RcError::Parse("unterminated string".into())),
                    }
                }
                out.push(T::Str(s));
            }
            c if c.is_ascii_digit()
                || (c == '-' && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())) =>
            {
                let start = i;
                if c == '-' {
                    i += 1;
                }
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if chars.get(i) == Some(&'.') && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())
                {
                    is_float = true;
                    i += 1;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                if is_float {
                    out.push(T::Float(
                        text.parse().map_err(|_| RcError::Parse(format!("bad float {text}")))?,
                    ));
                } else {
                    out.push(T::Int(
                        text.parse().map_err(|_| RcError::Parse(format!("bad int {text}")))?,
                    ));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(T::Ident(chars[start..i].iter().collect()));
            }
            other => return Err(RcError::Parse(format!("unexpected character `{other}`"))),
        }
    }
    out.push(T::Eof);
    Ok(out)
}

struct P {
    toks: Vec<T>,
    pos: usize,
}

impl P {
    fn peek(&self) -> &T {
        &self.toks[self.pos]
    }
    fn peek2(&self) -> &T {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)]
    }
    fn next(&mut self) -> T {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }
    fn eat(&mut self, t: &T) -> bool {
        if self.peek() == t {
            self.next();
            true
        } else {
            false
        }
    }
    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), T::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.is_kw(kw) {
            self.next();
            true
        } else {
            false
        }
    }
    fn expect(&mut self, t: T, what: &str) -> RcResult<()> {
        if self.peek() == &t {
            self.next();
            Ok(())
        } else {
            Err(RcError::Parse(format!("expected {what}, found {:?}", self.peek())))
        }
    }
    fn expect_eof(&mut self) -> RcResult<()> {
        if self.peek() == &T::Eof {
            Ok(())
        } else {
            Err(RcError::Parse(format!("trailing input: {:?}", self.peek())))
        }
    }
    fn ident(&mut self, what: &str) -> RcResult<String> {
        match self.next() {
            T::Ident(s) => Ok(s),
            other => Err(RcError::Parse(format!("expected {what}, found {other:?}"))),
        }
    }

    fn formula(&mut self) -> RcResult<DrcFormula> {
        let mut left = self.formula_and()?;
        while self.eat_kw("or") {
            let right = self.formula_and()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn formula_and(&mut self) -> RcResult<DrcFormula> {
        let mut left = self.formula_unary()?;
        while self.eat_kw("and") {
            let right = self.formula_unary()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn formula_unary(&mut self) -> RcResult<DrcFormula> {
        if self.eat_kw("not") {
            return Ok(self.formula_unary()?.not());
        }
        if self.is_kw("exists") || self.is_kw("forall") {
            let is_exists = self.is_kw("exists");
            self.next();
            let mut vars = vec![self.ident("variable")?];
            while self.eat(&T::Comma) {
                vars.push(self.ident("variable")?);
            }
            self.expect(T::Colon, "`:` after quantifier variables")?;
            self.expect(T::LParen, "`(` after quantifier `:`")?;
            let body = self.formula()?;
            self.expect(T::RParen, "`)` closing quantifier body")?;
            return Ok(if is_exists {
                DrcFormula::exists(vars, body)
            } else {
                DrcFormula::forall(vars, body)
            });
        }
        if self.eat(&T::LParen) {
            let f = self.formula()?;
            self.expect(T::RParen, "`)`")?;
            return Ok(f);
        }
        if self.eat_kw("true") {
            return Ok(DrcFormula::Const(true));
        }
        if self.eat_kw("false") {
            return Ok(DrcFormula::Const(false));
        }
        // Atom or comparison. `Ident (` ⇒ atom.
        if matches!(self.peek(), T::Ident(_)) && self.peek2() == &T::LParen {
            let rel = self.ident("relation")?;
            self.expect(T::LParen, "`(`")?;
            let mut terms = vec![self.term()?];
            while self.eat(&T::Comma) {
                terms.push(self.term()?);
            }
            self.expect(T::RParen, "`)` closing atom")?;
            return Ok(DrcFormula::Atom { rel, terms });
        }
        let left = self.term()?;
        let op = match self.next() {
            T::Cmp(op) => op,
            other => {
                return Err(RcError::Parse(format!(
                    "expected comparison operator, found {other:?}"
                )))
            }
        };
        let right = self.term()?;
        Ok(DrcFormula::Cmp { left, op, right })
    }

    fn term(&mut self) -> RcResult<DrcTerm> {
        match self.next() {
            T::Ident(v) => Ok(DrcTerm::Var(v)),
            T::Int(i) => Ok(DrcTerm::Const(Value::Int(i))),
            T::Float(x) => Ok(DrcTerm::Const(Value::Float(x))),
            T::Str(s) => Ok(DrcTerm::Const(Value::Str(s))),
            other => Err(RcError::Parse(format!("expected term, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drc_eval::eval_drc;
    use relviz_model::catalog::sailors_sample;

    fn rt(src: &str) -> DrcQuery {
        let q = parse_drc(src).unwrap_or_else(|e| panic!("{src}: {e}"));
        let printed = q.to_string();
        let back = parse_drc(&printed).unwrap_or_else(|e| panic!("`{printed}`: {e}"));
        assert_eq!(q, back, "round trip failed for `{src}`");
        q
    }

    #[test]
    fn q1_parse_eval() {
        let q = rt("{n | exists s, rt, a, d: (Sailor(s, n, rt, a) and Reserves(s, 102, d))}");
        let out = eval_drc(&q, &sailors_sample()).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn q5_nested_negation() {
        let q = rt("{n | exists s, rt, a: (Sailor(s, n, rt, a) and not exists b, bn: \
                    (Boat(b, bn, 'red') and not exists d: (Reserves(s, b, d))))}");
        let out = eval_drc(&q, &sailors_sample()).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn unicode() {
        let a = parse_drc("{x | ∃y, z: (Boat(x, y, z) ∧ ¬(z = 'red'))}").unwrap();
        let b = parse_drc("{x | exists y, z: (Boat(x, y, z) and not (z = 'red'))}").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn forall_round_trip() {
        rt("{n | exists s, rt, a: (Sailor(s, n, rt, a) and forall b, bn: \
            (not Boat(b, bn, 'red') or exists d: (Reserves(s, b, d))))}");
    }

    #[test]
    fn errors() {
        assert!(parse_drc("{x | }").is_err());
        assert!(parse_drc("{x | R(x) extra}").is_err());
        // An empty head is a Boolean query, not an error.
        let boolean = parse_drc("{| exists x: (R(x))}").unwrap();
        assert!(boolean.head.is_empty());
        assert!(parse_drc("{x | exists: (R(x))}").is_err());
        assert!(parse_drc("{x | x}").is_err());
    }
}
