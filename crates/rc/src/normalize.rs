//! Normalization of TRC queries, most importantly **disjunction lifting**
//! (union normal form).
//!
//! The tutorial's Part 5 observes that disjunction is "the greatest
//! challenge for diagrammatic representations": QueryVis has no element
//! for `OR` at all, and Relational Diagrams only support it as a union of
//! partitions. [`lift_disjunctions`] rewrites a TRC query so that every
//! *liftable* `OR` becomes a union branch:
//!
//! * `OR` in a positive, top-level position of a branch body splits the
//!   branch (`φ ∧ (α ∨ β)` ⇒ two branches `φ∧α`, `φ∧β` — DNF distribution);
//! * `OR` under a negation De-Morgans into a conjunction
//!   (`¬(α ∨ β)` ⇒ `¬α ∧ ¬β`) and disappears;
//! * `OR` under a **positive existential** distributes over the quantifier
//!   (`∃x̄:(α ∨ β)` ⇒ `(∃x̄:α) ∨ (∃x̄:β)`, sound because ∃ distributes over
//!   ∨) and then lifts;
//! * `OR` under a *negated* existential is handled by the De Morgan step.
//!
//! The result is a query whose branch bodies are OR-free — exactly the
//! fragment the box/arrow formalisms draw. The cost is a possibly
//! exponential number of branches (DNF), which is the *quantified* version
//! of the tutorial's qualitative claim: diagrams pay for disjunction in
//! area. Experiment E5's ablation prints the matrix before and after
//! normalization.

use std::collections::BTreeSet;

use crate::trc::{Binding, TrcBranch, TrcFormula, TrcQuery};

/// Rewrites the query into union normal form (OR-free branch bodies).
pub fn lift_disjunctions(q: &TrcQuery) -> TrcQuery {
    let mut branches = Vec::new();
    for b in &q.branches {
        match &b.body {
            None => branches.push(b.clone()),
            Some(body) => {
                let body = body.eliminate_forall();
                for alt in disjuncts(&body) {
                    branches.push(TrcBranch {
                        bindings: b.bindings.clone(),
                        head: b.head.clone(),
                        body: Some(alt),
                    });
                }
            }
        }
    }
    TrcQuery { branches }
}

/// Returns the OR-free alternatives of a formula (its DNF "rows", with
/// quantifiers handled as documented above).
fn disjuncts(f: &TrcFormula) -> Vec<TrcFormula> {
    match f {
        TrcFormula::Or(a, b) => {
            let mut out = disjuncts(a);
            out.extend(disjuncts(b));
            out
        }
        TrcFormula::And(a, b) => {
            let das = disjuncts(a);
            let dbs = disjuncts(b);
            let mut out = Vec::with_capacity(das.len() * dbs.len());
            for x in &das {
                for y in &dbs {
                    out.push(x.clone().and(y.clone()));
                }
            }
            out
        }
        TrcFormula::Exists { bindings, body } => {
            // ∃ distributes over ∨.
            disjuncts(body)
                .into_iter()
                .map(|alt| TrcFormula::exists(bindings.clone(), alt))
                .collect()
        }
        TrcFormula::Not(inner) => vec![push_negation(inner)],
        other => vec![other.clone()],
    }
}

/// `¬inner` with the negation pushed far enough that no `OR` survives
/// underneath in liftable position.
fn push_negation(inner: &TrcFormula) -> TrcFormula {
    match inner {
        // ¬(α ∨ β) = ¬α ∧ ¬β
        TrcFormula::Or(a, b) => push_negation(a).and(push_negation(b)),
        // ¬¬φ: recurse back into the positive world.
        TrcFormula::Not(g) => {
            let alts = disjuncts(g);
            alts.into_iter()
                .reduce(|x, y| x.or(y))
                .expect("disjuncts is never empty")
        }
        // ¬(α ∧ β) = ¬α ∨ ¬β would *create* a disjunction: keep the
        // conjunction opaque under the negation but normalize inside.
        TrcFormula::And(_, _) => {
            let alts = disjuncts(inner);
            // ¬(d1 ∨ … ∨ dk) = ¬d1 ∧ … ∧ ¬dk
            alts.into_iter()
                .map(|d| normalize_inside_not(&d))
                .map(TrcFormula::not)
                .reduce(|x, y| x.and(y))
                .expect("disjuncts is never empty")
        }
        TrcFormula::Exists { bindings, body } => {
            // ¬∃x̄:(d1 ∨ … ∨ dk) = ∧ᵢ ¬∃x̄: dᵢ
            disjuncts(body)
                .into_iter()
                .map(|d| TrcFormula::exists(bindings.clone(), d).not())
                .reduce(|x, y| x.and(y))
                .expect("disjuncts is never empty")
        }
        other => other.clone().not(),
    }
}

/// Within an already-OR-free conjunct that sits under ¬, make sure nested
/// quantifier bodies are OR-free too.
fn normalize_inside_not(f: &TrcFormula) -> TrcFormula {
    match f {
        TrcFormula::And(a, b) => normalize_inside_not(a).and(normalize_inside_not(b)),
        TrcFormula::Exists { bindings, body } => {
            // ∃ distributed: if multiple alternatives survive we keep a
            // disjunction here — it sits under ¬, where the caller De
            // Morgans it away via push_negation on demand.
            disjuncts(body)
                .into_iter()
                .map(|d| TrcFormula::exists(bindings.clone(), normalize_inside_not(&d)))
                .reduce(|x, y| x.or(y))
                .expect("disjuncts is never empty")
        }
        TrcFormula::Not(inner) => push_negation(inner),
        other => other.clone(),
    }
}

/// Flattens **positive existential nesting**: `∃x̄: (φ ∧ ∃ȳ: ψ)` becomes
/// `∃x̄ȳ: (φ ∧ ψ)`, and a positive top-level `∃x̄: φ` conjunct of a branch
/// body is hoisted into the branch's bindings (sound under set
/// semantics — the head never projects the hoisted variables).
///
/// This is the normalization behind the *relational query pattern* notion
/// of Gatterbauer & Dunne [26]: positive nesting is a syntactic accident
/// (SQL's `IN`-chains), not a pattern feature, so pattern comparison and
/// the logic-based diagrams should not see it. Negation boundaries are
/// never crossed — `¬∃` nesting *is* pattern structure. Bound variables
/// are α-renamed when merging would capture a name visible in the target
/// scope.
pub fn flatten_exists(q: &TrcQuery) -> TrcQuery {
    let mut out = TrcQuery { branches: Vec::new() };
    for b in &q.branches {
        let mut ctx: BTreeSet<String> = b.bindings.iter().map(|x| x.var.clone()).collect();
        for (_, term) in &b.head {
            if let Some(v) = term.var() {
                ctx.insert(v.to_string());
            }
        }
        let mut bindings = b.bindings.clone();
        let mut rest = Vec::new();
        if let Some(body) = &b.body {
            let body = flatten(body, &ctx);
            let mut scope_names: BTreeSet<String> = ctx.clone();
            merge_conjuncts(&body, &mut scope_names, &mut bindings, &mut rest);
        }
        out.branches.push(TrcBranch {
            bindings,
            head: b.head.clone(),
            body: if rest.is_empty() { None } else { Some(TrcFormula::conj(rest)) },
        });
    }
    out
}

/// Flattens nested positive existentials inside `f`. `ctx` holds the
/// names visible from enclosing scopes (for capture-free renames).
fn flatten(f: &TrcFormula, ctx: &BTreeSet<String>) -> TrcFormula {
    match f {
        TrcFormula::And(a, b) => flatten(a, ctx).and(flatten(b, ctx)),
        TrcFormula::Or(a, b) => flatten(a, ctx).or(flatten(b, ctx)),
        TrcFormula::Not(a) => flatten(a, ctx).not(),
        TrcFormula::Forall { bindings, body } => {
            let mut inner_ctx = ctx.clone();
            inner_ctx.extend(bindings.iter().map(|b| b.var.clone()));
            TrcFormula::forall(bindings.clone(), flatten(body, &inner_ctx))
        }
        TrcFormula::Exists { bindings, body } => {
            let mut inner_ctx = ctx.clone();
            inner_ctx.extend(bindings.iter().map(|b| b.var.clone()));
            let body = flatten(body, &inner_ctx);
            let mut merged = bindings.clone();
            let mut scope_names = inner_ctx;
            let mut rest = Vec::new();
            merge_conjuncts(&body, &mut scope_names, &mut merged, &mut rest);
            TrcFormula::exists(merged, TrcFormula::conj(rest))
        }
        other => other.clone(),
    }
}

/// Splits `body` into conjuncts and merges every directly-existential
/// conjunct into `bindings`, renaming its binders when they collide with
/// a name already visible in the target scope or with *any* name a
/// sibling conjunct uses — including the siblings' bound names, because
/// this TRC dialect forbids shadowing (a hoisted `r` must not overlap a
/// sibling's `¬∃r`).
fn merge_conjuncts(
    body: &TrcFormula,
    scope_names: &mut BTreeSet<String>,
    bindings: &mut Vec<Binding>,
    rest: &mut Vec<TrcFormula>,
) {
    let parts = conjunct_list(body);
    let part_names: Vec<BTreeSet<String>> = parts.iter().map(all_names).collect();
    // Occurrence counts across the unprocessed parts, so "names of every
    // other part" stays cheap to consult as we walk.
    let mut remaining: std::collections::BTreeMap<String, usize> =
        std::collections::BTreeMap::new();
    for ns in &part_names {
        for n in ns {
            *remaining.entry(n.clone()).or_default() += 1;
        }
    }
    for (part, names) in parts.into_iter().zip(part_names) {
        // This part's names no longer count as "other parts'" names.
        for n in &names {
            if let Some(c) = remaining.get_mut(n) {
                *c -= 1;
                if *c == 0 {
                    remaining.remove(n);
                }
            }
        }
        if let TrcFormula::Exists { bindings: inner, body: ib } = &part {
            let mut ib = (**ib).clone();
            for b in inner {
                let collides =
                    scope_names.contains(&b.var) || remaining.contains_key(&b.var);
                let name = if collides {
                    let mut avoid: BTreeSet<String> = scope_names.clone();
                    avoid.extend(remaining.keys().cloned());
                    avoid.extend(all_names(&ib));
                    let fresh = fresh_name(&b.var, &avoid);
                    ib = rename_var(&ib, &b.var, &fresh);
                    fresh
                } else {
                    b.var.clone()
                };
                scope_names.insert(name.clone());
                bindings.push(Binding::new(name, b.rel.clone()));
            }
            // The merged body's names (free refs and deep binders) now
            // belong to the scope; deep binders must stay unshadowed too.
            scope_names.extend(all_names(&ib));
            rest.extend(conjunct_list(&ib));
        } else {
            scope_names.extend(names);
            rest.push(part);
        }
    }
}

/// Every variable name occurring in the formula: term references and
/// quantifier binders, at any depth.
fn all_names(f: &TrcFormula) -> BTreeSet<String> {
    let mut out: BTreeSet<String> =
        f.term_vars().into_iter().map(str::to_string).collect();
    fn binders(f: &TrcFormula, out: &mut BTreeSet<String>) {
        match f {
            TrcFormula::And(a, b) | TrcFormula::Or(a, b) => {
                binders(a, out);
                binders(b, out);
            }
            TrcFormula::Not(a) => binders(a, out),
            TrcFormula::Exists { bindings, body } | TrcFormula::Forall { bindings, body } => {
                for b in bindings {
                    out.insert(b.var.clone());
                }
                binders(body, out);
            }
            _ => {}
        }
    }
    binders(f, &mut out);
    out
}

fn fresh_name(base: &str, used: &BTreeSet<String>) -> String {
    for i in 2.. {
        let cand = format!("{base}{i}");
        if !used.contains(&cand) {
            return cand;
        }
    }
    unreachable!("unbounded counter")
}

/// Renames tuple variable `from` to `to`, respecting shadowing.
fn rename_var(f: &TrcFormula, from: &str, to: &str) -> TrcFormula {
    use crate::trc::TrcTerm;
    let term = |t: &TrcTerm| match t {
        TrcTerm::Attr { var, attr } if var == from => {
            TrcTerm::Attr { var: to.to_string(), attr: attr.clone() }
        }
        other => other.clone(),
    };
    match f {
        TrcFormula::Cmp { left, op, right } => {
            TrcFormula::Cmp { left: term(left), op: *op, right: term(right) }
        }
        TrcFormula::And(a, b) => rename_var(a, from, to).and(rename_var(b, from, to)),
        TrcFormula::Or(a, b) => rename_var(a, from, to).or(rename_var(b, from, to)),
        TrcFormula::Not(a) => rename_var(a, from, to).not(),
        TrcFormula::Exists { bindings, body } | TrcFormula::Forall { bindings, body } => {
            let is_forall = matches!(f, TrcFormula::Forall { .. });
            if bindings.iter().any(|b| b.var == from) {
                // Shadowed: the inner binder owns the name.
                f.clone()
            } else {
                let body = rename_var(body, from, to);
                if is_forall {
                    TrcFormula::forall(bindings.clone(), body)
                } else {
                    TrcFormula::exists(bindings.clone(), body)
                }
            }
        }
        TrcFormula::Const(b) => TrcFormula::Const(*b),
    }
}

/// Owned conjunct list of a formula (AND-spine flattened).
fn conjunct_list(f: &TrcFormula) -> Vec<TrcFormula> {
    match f {
        TrcFormula::And(a, b) => {
            let mut out = conjunct_list(a);
            out.extend(conjunct_list(b));
            out
        }
        TrcFormula::Const(true) => Vec::new(),
        other => vec![other.clone()],
    }
}

/// True iff no `Or` node occurs anywhere in the query.
pub fn is_or_free(q: &TrcQuery) -> bool {
    fn check(f: &TrcFormula) -> bool {
        match f {
            TrcFormula::Or(_, _) => false,
            TrcFormula::And(a, b) => check(a) && check(b),
            TrcFormula::Not(a) => check(a),
            TrcFormula::Exists { body, .. } | TrcFormula::Forall { body, .. } => check(body),
            _ => true,
        }
    }
    q.branches.iter().all(|b| b.body.as_ref().is_none_or(check))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::from_sql::parse_sql_to_trc;
    use crate::trc_eval::eval_trc;
    use relviz_model::catalog::sailors_sample;

    fn check(sql: &str, expect_branches: usize) {
        let db = sailors_sample();
        let q = parse_sql_to_trc(sql, &db).unwrap();
        let n = lift_disjunctions(&q);
        assert!(is_or_free(&n), "normalization left an OR:\n{n}");
        assert_eq!(n.branches.len(), expect_branches, "{n}");
        let a = eval_trc(&q, &db).unwrap();
        let b = eval_trc(&n, &db).unwrap();
        assert!(a.same_contents(&b), "normalization changed semantics\n{q}\n{n}");
    }

    #[test]
    fn simple_or_splits_into_branches() {
        check(
            "SELECT B.bid FROM Boat B WHERE B.color = 'red' OR B.color = 'green'",
            2,
        );
    }

    #[test]
    fn or_under_exists_distributes() {
        check(
            "SELECT DISTINCT S.sname FROM Sailor S WHERE EXISTS \
             (SELECT * FROM Reserves R, Boat B WHERE R.sid = S.sid AND R.bid = B.bid \
              AND (B.color = 'red' OR B.color = 'green'))",
            2,
        );
    }

    #[test]
    fn or_in_join_block_distributes() {
        // Q3 in its OR form: 2 branches.
        check(
            "SELECT DISTINCT S.sname FROM Sailor S, Reserves R, Boat B \
             WHERE S.sid = R.sid AND R.bid = B.bid AND (B.color = 'red' OR B.color = 'green')",
            2,
        );
    }

    #[test]
    fn or_under_negation_demorgans_away() {
        check(
            "SELECT B.bid FROM Boat B WHERE NOT (B.color = 'red' OR B.color = 'green')",
            1,
        );
    }

    #[test]
    fn or_under_not_exists_demorgans() {
        check(
            "SELECT S.sname FROM Sailor S WHERE NOT EXISTS \
             (SELECT * FROM Reserves R, Boat B WHERE R.sid = S.sid AND R.bid = B.bid \
              AND (B.color = 'red' OR B.color = 'green'))",
            1,
        );
    }

    #[test]
    fn conjunctions_of_ors_multiply() {
        check(
            "SELECT B.bid FROM Boat B WHERE (B.color = 'red' OR B.color = 'green') \
             AND (B.bname = 'Interlake' OR B.bname = 'Clipper')",
            4,
        );
    }

    #[test]
    fn or_free_queries_untouched() {
        let db = sailors_sample();
        let q5 = relviz_core_suite_q5(&db);
        let n = lift_disjunctions(&q5);
        assert_eq!(n.branches.len(), 1);
        let a = eval_trc(&q5, &db).unwrap();
        let b = eval_trc(&n, &db).unwrap();
        assert!(a.same_contents(&b));
    }

    fn relviz_core_suite_q5(db: &relviz_model::Database) -> TrcQuery {
        parse_sql_to_trc(
            "SELECT S.sname FROM Sailor S WHERE NOT EXISTS \
             (SELECT * FROM Boat B WHERE B.color = 'red' AND NOT EXISTS \
               (SELECT * FROM Reserves R WHERE R.sid = S.sid AND R.bid = B.bid))",
            db,
        )
        .unwrap()
    }

    #[test]
    fn normalized_queries_become_drawable() {
        // The payoff: Q3's OR form is rejected by Relational Diagrams
        // as-is, accepted after normalization.
        let db = sailors_sample();
        let q = parse_sql_to_trc(
            "SELECT DISTINCT S.sname FROM Sailor S, Reserves R, Boat B \
             WHERE S.sid = R.sid AND R.bid = B.bid AND (B.color = 'red' OR B.color = 'green')",
            &db,
        )
        .unwrap();
        let n = lift_disjunctions(&q);
        assert!(is_or_free(&n));
        assert_eq!(n.branches.len(), 2);
    }

    // ---- flatten_exists ---------------------------------------------------

    /// Asserts flatten_exists preserves semantics and reaches the
    /// expected (branch bindings, remaining quantifiers) shape.
    fn check_flat(sql: &str, bindings: usize, remaining_quants: usize) {
        let db = sailors_sample();
        let q = parse_sql_to_trc(sql, &db).unwrap();
        let f = flatten_exists(&q);
        assert_eq!(f.branches[0].bindings.len(), bindings, "{f}");
        assert_eq!(f.quantifier_count(), remaining_quants, "{f}");
        let a = eval_trc(&q, &db).unwrap();
        let b = eval_trc(&f, &db).unwrap();
        assert!(a.same_contents(&b), "flattening changed semantics\n{q}\n{f}");
        crate::trc_check::check_query(&f, &db).expect("flattened query still checks");
    }

    #[test]
    fn in_chain_flattens_to_the_join_form() {
        // Q2 phrased as an IN-chain: two nested positive ∃ disappear.
        check_flat(
            "SELECT DISTINCT S.sname FROM Sailor S WHERE S.sid IN \
             (SELECT R.sid FROM Reserves R WHERE R.bid IN \
               (SELECT B.bid FROM Boat B WHERE B.color = 'red'))",
            3,
            0,
        );
    }

    #[test]
    fn flat_join_untouched() {
        check_flat(
            "SELECT DISTINCT S.sname FROM Sailor S, Reserves R, Boat B \
             WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'red'",
            3,
            0,
        );
    }

    #[test]
    fn negation_boundaries_not_crossed() {
        // Q5: the ¬∃¬∃ pattern must survive; only nothing to hoist here.
        check_flat(
            "SELECT S.sname FROM Sailor S WHERE NOT EXISTS \
             (SELECT * FROM Boat B WHERE B.color = 'red' AND NOT EXISTS \
               (SELECT * FROM Reserves R WHERE R.sid = S.sid AND R.bid = B.bid))",
            1,
            2,
        );
    }

    #[test]
    fn positive_exists_inside_negation_flattens_locally() {
        // ¬∃r(… ∧ ∃b ψ): the inner positive pair merges, the ¬ stays.
        check_flat(
            "SELECT S.sname FROM Sailor S WHERE NOT EXISTS \
             (SELECT * FROM Reserves R WHERE R.sid = S.sid AND R.bid IN \
               (SELECT B.bid FROM Boat B WHERE B.color = 'red'))",
            1,
            1,
        );
    }

    #[test]
    fn flatten_renames_on_capture() {
        // The inner block reuses alias S: hoisting must rename it, not
        // capture the outer sailor.
        let db = sailors_sample();
        let q = parse_sql_to_trc(
            "SELECT DISTINCT S.sname FROM Sailor S WHERE S.sid IN \
             (SELECT S.sid FROM Reserves S WHERE S.bid = 102)",
            &db,
        )
        .unwrap();
        let f = flatten_exists(&q);
        assert_eq!(f.branches[0].bindings.len(), 2);
        let names: Vec<&str> =
            f.branches[0].bindings.iter().map(|b| b.var.as_str()).collect();
        assert_eq!(names.iter().collect::<std::collections::BTreeSet<_>>().len(), 2);
        let a = eval_trc(&q, &db).unwrap();
        let b = eval_trc(&f, &db).unwrap();
        assert!(a.same_contents(&b));
    }

    #[test]
    fn flatten_then_lift_compose() {
        // Disjunction lifting then flattening gives OR-free, prenex-positive
        // branches — the canonical pattern form.
        let db = sailors_sample();
        let q = parse_sql_to_trc(
            "SELECT DISTINCT S.sname FROM Sailor S WHERE S.sid IN \
             (SELECT R.sid FROM Reserves R, Boat B WHERE R.bid = B.bid AND \
              (B.color = 'red' OR B.color = 'green'))",
            &db,
        )
        .unwrap();
        let n = flatten_exists(&lift_disjunctions(&q));
        assert!(is_or_free(&n));
        assert_eq!(n.branches.len(), 2);
        assert_eq!(n.quantifier_count(), 0);
        let a = eval_trc(&q, &db).unwrap();
        let b = eval_trc(&n, &db).unwrap();
        assert!(a.same_contents(&b));
    }

    #[test]
    fn deep_mixed_nesting() {
        // ¬∃ containing an OR of an ∃ and a comparison.
        check(
            "SELECT S.sname FROM Sailor S WHERE NOT EXISTS \
             (SELECT * FROM Reserves R WHERE R.sid = S.sid AND \
              (R.bid = 102 OR EXISTS (SELECT * FROM Boat B WHERE B.bid = R.bid AND B.color = 'green')))",
            1,
        );
    }
}
