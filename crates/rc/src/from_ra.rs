//! RA → TRC: from procedural algebra to declarative calculus.
//!
//! Each base-relation occurrence becomes a tuple variable; the algebra's
//! operators act on *branch summaries* `(bindings, conditions, column map)`:
//!
//! * `σ_p`   adds `p` (with attributes resolved through the column map),
//! * `π`     restricts/reorders the column map (variables stay bound —
//!   projection is implicit existential quantification in TRC),
//! * `ρ`     renames a column-map key,
//! * `×`/`⋈` merge summaries (natural join adds equality conditions),
//! * `∪`     concatenates branches,
//! * `∩`/`−` become (negated) head-equating existentials,
//! * `÷`     is expanded by the textbook identity
//!   `l ÷ r = π_q(l) − π_q((π_q(l) × r) − π_{q,r}(l))` first.
//!
//! Variables are numbered `t1, t2, …` in discovery order, so translated
//! queries read like the tutorial's examples.

use relviz_model::Database;
use relviz_ra::typing::schema_of;
use relviz_ra::{Operand, Predicate, RaExpr};

use crate::error::{RcError, RcResult};
use crate::trc::{Binding, TrcBranch, TrcFormula, TrcQuery, TrcTerm};

/// Translates an RA expression to a TRC query.
pub fn ra_to_trc(e: &RaExpr, db: &Database) -> RcResult<TrcQuery> {
    schema_of(e, db).map_err(|err| RcError::Check(err.to_string()))?;
    let mut counter = 0usize;
    let branches = translate(e, db, &mut counter)?;
    Ok(TrcQuery {
        branches: branches
            .into_iter()
            .map(|s| TrcBranch {
                bindings: s.bindings,
                head: s.columns,
                body: if s.conds.is_empty() {
                    None
                } else {
                    Some(TrcFormula::conj(s.conds))
                },
            })
            .collect(),
    })
}

/// A branch under construction.
#[derive(Debug, Clone)]
struct Summary {
    bindings: Vec<Binding>,
    conds: Vec<TrcFormula>,
    /// Ordered output columns: (attribute name, term).
    columns: Vec<(String, TrcTerm)>,
}

impl Summary {
    fn term_of(&self, attr: &str) -> RcResult<TrcTerm> {
        self.columns
            .iter()
            .find(|(n, _)| n == attr)
            .map(|(_, t)| t.clone())
            .ok_or_else(|| RcError::Check(format!("attribute `{attr}` not in scope")))
    }
}

fn fresh(counter: &mut usize) -> String {
    *counter += 1;
    format!("t{counter}")
}

fn translate(e: &RaExpr, db: &Database, counter: &mut usize) -> RcResult<Vec<Summary>> {
    match e {
        RaExpr::Relation(name) => {
            let schema = db
                .schema(name)
                .map_err(|_| RcError::Check(format!("unknown relation `{name}`")))?;
            let var = fresh(counter);
            let columns = schema
                .attrs()
                .iter()
                .map(|a| (a.name.clone(), TrcTerm::attr(var.clone(), a.name.clone())))
                .collect();
            Ok(vec![Summary {
                bindings: vec![Binding::new(var, name.clone())],
                conds: Vec::new(),
                columns,
            }])
        }
        RaExpr::Select { pred, input } => {
            let mut branches = translate(input, db, counter)?;
            for s in &mut branches {
                let f = predicate_to_formula(pred, s)?;
                s.conds.push(f);
            }
            Ok(branches)
        }
        RaExpr::Project { attrs, input } => {
            let mut branches = translate(input, db, counter)?;
            for s in &mut branches {
                let mut cols = Vec::with_capacity(attrs.len());
                for a in attrs {
                    cols.push((a.clone(), s.term_of(a)?));
                }
                s.columns = cols;
            }
            Ok(branches)
        }
        RaExpr::Rename { from, to, input } => {
            let mut branches = translate(input, db, counter)?;
            for s in &mut branches {
                let col = s
                    .columns
                    .iter_mut()
                    .find(|(n, _)| n == from)
                    .ok_or_else(|| RcError::Check(format!("attribute `{from}` not in scope")))?;
                col.0.clone_from(to);
            }
            Ok(branches)
        }
        RaExpr::Product(l, r) => merge_products(l, r, None, db, counter),
        RaExpr::ThetaJoin { pred, left, right } => {
            merge_products(left, right, Some(pred), db, counter)
        }
        RaExpr::NaturalJoin(l, r) => {
            let lbs = translate(l, db, counter)?;
            let rbs = translate(r, db, counter)?;
            let mut out = Vec::with_capacity(lbs.len() * rbs.len());
            for lb in &lbs {
                for rb in &rbs {
                    let mut s = lb.clone();
                    s.bindings.extend(rb.bindings.iter().cloned());
                    s.conds.extend(rb.conds.iter().cloned());
                    for (name, term) in &rb.columns {
                        match lb.columns.iter().find(|(n, _)| n == name) {
                            Some((_, lterm)) => {
                                s.conds.push(TrcFormula::eq(lterm.clone(), term.clone()));
                            }
                            None => s.columns.push((name.clone(), term.clone())),
                        }
                    }
                    out.push(s);
                }
            }
            Ok(out)
        }
        RaExpr::Union(l, r) => {
            let mut lbs = translate(l, db, counter)?;
            let rbs = translate(r, db, counter)?;
            // Align right column names with the left's (positional).
            let names: Vec<String> = lbs[0].columns.iter().map(|(n, _)| n.clone()).collect();
            for mut rb in rbs {
                for (i, (n, _)) in rb.columns.iter_mut().enumerate() {
                    n.clone_from(&names[i]);
                }
                lbs.push(rb);
            }
            Ok(lbs)
        }
        RaExpr::Intersect(l, r) => setop_filter(l, r, false, db, counter),
        RaExpr::Difference(l, r) => setop_filter(l, r, true, db, counter),
        RaExpr::Division(l, r) => {
            let expanded = expand_division(l, r, db)?;
            translate(&expanded, db, counter)
        }
    }
}

fn merge_products(
    l: &RaExpr,
    r: &RaExpr,
    pred: Option<&Predicate>,
    db: &Database,
    counter: &mut usize,
) -> RcResult<Vec<Summary>> {
    let lbs = translate(l, db, counter)?;
    let rbs = translate(r, db, counter)?;
    let mut out = Vec::with_capacity(lbs.len() * rbs.len());
    for lb in &lbs {
        for rb in &rbs {
            let mut s = lb.clone();
            s.bindings.extend(rb.bindings.iter().cloned());
            s.conds.extend(rb.conds.iter().cloned());
            s.columns.extend(rb.columns.iter().cloned());
            if let Some(p) = pred {
                let f = predicate_to_formula(p, &s)?;
                s.conds.push(f);
            }
            out.push(s);
        }
    }
    Ok(out)
}

/// `INTERSECT` / `EXCEPT` via (negated) membership existentials.
fn setop_filter(
    l: &RaExpr,
    r: &RaExpr,
    negated: bool,
    db: &Database,
    counter: &mut usize,
) -> RcResult<Vec<Summary>> {
    let lbs = translate(l, db, counter)?;
    let rbs = translate(r, db, counter)?;
    let mut out = Vec::with_capacity(lbs.len());
    for lb in &lbs {
        let mut alts = Vec::with_capacity(rbs.len());
        for rb in &rbs {
            let mut parts = rb.conds.clone();
            for ((_, lt), (_, rt)) in lb.columns.iter().zip(&rb.columns) {
                parts.push(TrcFormula::eq(rt.clone(), lt.clone()));
            }
            alts.push(TrcFormula::exists(rb.bindings.clone(), TrcFormula::conj(parts)));
        }
        let membership = alts
            .into_iter()
            .reduce(|a, b| a.or(b))
            .unwrap_or(TrcFormula::Const(false));
        let mut s = lb.clone();
        s.conds.push(if negated { membership.not() } else { membership });
        out.push(s);
    }
    Ok(out)
}

/// `l ÷ r  =  π_q(l) − π_q((π_q(l) × ρ(r)) − π_{q∪r}(l))` where `q` is the
/// quotient attribute list.
fn expand_division(l: &RaExpr, r: &RaExpr, db: &Database) -> RcResult<RaExpr> {
    let ls = schema_of(l, db).map_err(|e| RcError::Check(e.to_string()))?;
    let rs = schema_of(r, db).map_err(|e| RcError::Check(e.to_string()))?;
    let q_attrs: Vec<String> = ls
        .attrs()
        .iter()
        .filter(|a| rs.index_of(&a.name).is_none())
        .map(|a| a.name.clone())
        .collect();
    let r_attrs: Vec<String> = rs.attrs().iter().map(|a| a.name.clone()).collect();
    let mut ordered = q_attrs.clone();
    ordered.extend(r_attrs.iter().cloned());

    let pi_q_l = RaExpr::Project { attrs: q_attrs.clone(), input: Box::new(l.clone()) };
    let all_pairs = pi_q_l.clone().product(r.clone());
    let l_reordered = RaExpr::Project { attrs: ordered, input: Box::new(l.clone()) };
    let missing = all_pairs.difference(l_reordered);
    let bad_keys = RaExpr::Project { attrs: q_attrs, input: Box::new(missing) };
    Ok(pi_q_l.difference(bad_keys))
}

fn predicate_to_formula(p: &Predicate, s: &Summary) -> RcResult<TrcFormula> {
    Ok(match p {
        Predicate::Const(b) => TrcFormula::Const(*b),
        Predicate::Cmp { left, op, right } => {
            TrcFormula::cmp(operand_to_term(left, s)?, *op, operand_to_term(right, s)?)
        }
        Predicate::And(a, b) => predicate_to_formula(a, s)?.and(predicate_to_formula(b, s)?),
        Predicate::Or(a, b) => predicate_to_formula(a, s)?.or(predicate_to_formula(b, s)?),
        Predicate::Not(a) => predicate_to_formula(a, s)?.not(),
    })
}

fn operand_to_term(o: &Operand, s: &Summary) -> RcResult<TrcTerm> {
    Ok(match o {
        Operand::Attr(a) => s.term_of(a)?,
        Operand::Const(v) => TrcTerm::Const(v.clone()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trc_check::check_query;
    use crate::trc_eval::eval_trc;
    use relviz_model::catalog::sailors_sample;
    use relviz_ra::eval::eval as ra_eval;
    use relviz_ra::parse::parse_ra;

    fn check_equiv(src: &str) {
        let db = sailors_sample();
        let e = parse_ra(src).unwrap();
        let trc = ra_to_trc(&e, &db).unwrap_or_else(|err| panic!("{src}: {err}"));
        check_query(&trc, &db).unwrap_or_else(|err| panic!("{src} produced ill-formed TRC: {err}\n{trc}"));
        let via_ra = ra_eval(&e, &db).unwrap();
        let via_trc = eval_trc(&trc, &db).unwrap();
        assert!(
            via_ra.same_contents(&via_trc),
            "RA vs TRC mismatch for `{src}`\n{trc}\nra={via_ra}\ntrc={via_trc}"
        );
    }

    #[test]
    fn operators_round_trip_semantically() {
        for src in [
            "Sailor",
            "Project[sname](Select[rating > 7](Sailor))",
            "Select[s_sid = sid AND bid = 102](Product(Rename[sid -> s_sid](Sailor), Reserves))",
            "Project[sname](Join(Sailor, Join(Reserves, Select[color = 'red'](Boat))))",
            "ThetaJoin[s_sid = sid](Rename[sid -> s_sid](Sailor), Reserves)",
            "Union(Project[sid](Sailor), Project[bid](Boat))",
            "Intersect(Project[sid](Sailor), Project[sid](Reserves))",
            "Difference(Project[sid](Sailor), Project[sid](Reserves))",
            "Division(Project[sid, bid](Reserves), Project[bid](Select[color = 'red'](Boat)))",
            "Select[color = 'red' OR color = 'green'](Boat)",
            "Select[NOT color = 'red'](Boat)",
        ] {
            check_equiv(src);
        }
    }

    #[test]
    fn division_names_sailors() {
        let db = sailors_sample();
        let e = parse_ra(
            "Project[sname](Join(Sailor, Division(Project[sid, bid](Reserves), \
             Project[bid](Select[color = 'red'](Boat)))))",
        )
        .unwrap();
        let trc = ra_to_trc(&e, &db).unwrap();
        let out = eval_trc(&trc, &db).unwrap();
        assert_eq!(out.len(), 2); // dustin, lubber
    }

    #[test]
    fn variables_are_sequentially_named() {
        let db = sailors_sample();
        let e = parse_ra("Join(Sailor, Reserves)").unwrap();
        let trc = ra_to_trc(&e, &db).unwrap();
        let vars: Vec<&str> =
            trc.branches[0].bindings.iter().map(|b| b.var.as_str()).collect();
        assert_eq!(vars, vec!["t1", "t2"]);
    }

    #[test]
    fn union_aligns_head_names() {
        let db = sailors_sample();
        let e = parse_ra("Union(Project[sid](Sailor), Project[bid](Boat))").unwrap();
        let trc = ra_to_trc(&e, &db).unwrap();
        assert_eq!(trc.branches.len(), 2);
        assert_eq!(trc.branches[0].head[0].0, "sid");
        assert_eq!(trc.branches[1].head[0].0, "sid"); // aligned with left
    }
}
