//! Domain Relational Calculus: domain variables, positional atoms.
//!
//! DRC is the calculus closest to plain first-order logic and therefore the
//! reference point for the *diagrammatic reasoning* half of the tutorial:
//! Peirce's beta existential graphs, string diagrams and QBE are all
//! DRC-shaped (variables denote domain elements, predicates are applied
//! positionally).

use relviz_model::{CmpOp, Value};

/// A DRC term: a domain variable or a constant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DrcTerm {
    Var(String),
    Const(Value),
}

impl DrcTerm {
    pub fn var(name: impl Into<String>) -> Self {
        DrcTerm::Var(name.into())
    }
    pub fn val(v: impl Into<Value>) -> Self {
        DrcTerm::Const(v.into())
    }
    pub fn as_var(&self) -> Option<&str> {
        match self {
            DrcTerm::Var(v) => Some(v),
            DrcTerm::Const(_) => None,
        }
    }
}

impl std::fmt::Display for DrcTerm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DrcTerm::Var(v) => write!(f, "{v}"),
            DrcTerm::Const(c) => write!(f, "{}", c.to_literal()),
        }
    }
}

/// DRC formulas.
#[derive(Debug, Clone, PartialEq)]
pub enum DrcFormula {
    /// Positional atom `R(t₁, …, tₖ)`.
    Atom { rel: String, terms: Vec<DrcTerm> },
    /// Comparison between terms.
    Cmp { left: DrcTerm, op: CmpOp, right: DrcTerm },
    And(Box<DrcFormula>, Box<DrcFormula>),
    Or(Box<DrcFormula>, Box<DrcFormula>),
    Not(Box<DrcFormula>),
    /// `∃ x₁, …, xₙ : body` (plain domain quantification).
    Exists { vars: Vec<String>, body: Box<DrcFormula> },
    /// `∀ x₁, …, xₙ : body`.
    Forall { vars: Vec<String>, body: Box<DrcFormula> },
    Const(bool),
}

impl DrcFormula {
    pub fn atom(rel: impl Into<String>, terms: Vec<DrcTerm>) -> Self {
        DrcFormula::Atom { rel: rel.into(), terms }
    }
    pub fn cmp(left: DrcTerm, op: CmpOp, right: DrcTerm) -> Self {
        DrcFormula::Cmp { left, op, right }
    }
    pub fn eq(left: DrcTerm, right: DrcTerm) -> Self {
        DrcFormula::cmp(left, CmpOp::Eq, right)
    }
    pub fn and(self, other: DrcFormula) -> Self {
        DrcFormula::And(Box::new(self), Box::new(other))
    }
    pub fn or(self, other: DrcFormula) -> Self {
        DrcFormula::Or(Box::new(self), Box::new(other))
    }
    #[allow(clippy::should_implement_trait)] // DSL: ¬ builder, not std::ops::Not
    pub fn not(self) -> Self {
        DrcFormula::Not(Box::new(self))
    }
    pub fn exists(vars: Vec<String>, body: DrcFormula) -> Self {
        DrcFormula::Exists { vars, body: Box::new(body) }
    }
    pub fn forall(vars: Vec<String>, body: DrcFormula) -> Self {
        DrcFormula::Forall { vars, body: Box::new(body) }
    }

    /// Conjunction of a list (TRUE when empty).
    pub fn conj(mut parts: Vec<DrcFormula>) -> DrcFormula {
        match parts.len() {
            0 => DrcFormula::Const(true),
            1 => parts.pop().expect("len checked"),
            _ => {
                let first = parts.remove(0);
                parts.into_iter().fold(first, |acc, p| acc.and(p))
            }
        }
    }

    /// Rewrites `∀x̄: φ` as `¬∃x̄: ¬φ` throughout.
    pub fn eliminate_forall(&self) -> DrcFormula {
        match self {
            DrcFormula::Forall { vars, body } => DrcFormula::Exists {
                vars: vars.clone(),
                body: Box::new(body.eliminate_forall().not()),
            }
            .not(),
            DrcFormula::And(a, b) => a.eliminate_forall().and(b.eliminate_forall()),
            DrcFormula::Or(a, b) => a.eliminate_forall().or(b.eliminate_forall()),
            DrcFormula::Not(a) => a.eliminate_forall().not(),
            DrcFormula::Exists { vars, body } => DrcFormula::Exists {
                vars: vars.clone(),
                body: Box::new(body.eliminate_forall()),
            },
            other => other.clone(),
        }
    }

    /// Pushes negations inward (De Morgan; double negations cancel) so the
    /// formula approaches *safe-range normal form* (SRNF): negation ends up
    /// directly on atoms, comparisons, or quantifiers. Both the safe-range
    /// analysis and the guard-driven evaluator rely on this.
    pub fn push_negations(&self) -> DrcFormula {
        match self {
            DrcFormula::Not(inner) => match &**inner {
                DrcFormula::Not(f) => f.push_negations(),
                DrcFormula::And(a, b) => {
                    a.push_negations().not().or(b.push_negations().not()).push_negations()
                }
                DrcFormula::Or(a, b) => {
                    a.push_negations().not().and(b.push_negations().not()).push_negations()
                }
                DrcFormula::Const(b) => DrcFormula::Const(!b),
                DrcFormula::Forall { vars, body } => {
                    // ¬∀x̄ φ = ∃x̄ ¬φ
                    DrcFormula::exists(vars.clone(), body.push_negations().not().push_negations())
                }
                other => other.push_negations().not(),
            },
            DrcFormula::And(a, b) => a.push_negations().and(b.push_negations()),
            DrcFormula::Or(a, b) => a.push_negations().or(b.push_negations()),
            DrcFormula::Exists { vars, body } => {
                DrcFormula::exists(vars.clone(), body.push_negations())
            }
            DrcFormula::Forall { vars, body } => {
                DrcFormula::forall(vars.clone(), body.push_negations())
            }
            other => other.clone(),
        }
    }

    /// Free variables of the formula.
    pub fn free_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_free(&mut Vec::new(), &mut out);
        out
    }

    fn collect_free(&self, bound: &mut Vec<String>, out: &mut Vec<String>) {
        let push = |t: &DrcTerm, bound: &Vec<String>, out: &mut Vec<String>| {
            if let DrcTerm::Var(v) = t {
                if !bound.contains(v) && !out.contains(v) {
                    out.push(v.clone());
                }
            }
        };
        match self {
            DrcFormula::Atom { terms, .. } => {
                for t in terms {
                    push(t, bound, out);
                }
            }
            DrcFormula::Cmp { left, right, .. } => {
                push(left, bound, out);
                push(right, bound, out);
            }
            DrcFormula::And(a, b) | DrcFormula::Or(a, b) => {
                a.collect_free(bound, out);
                b.collect_free(bound, out);
            }
            DrcFormula::Not(a) => a.collect_free(bound, out),
            DrcFormula::Exists { vars, body } | DrcFormula::Forall { vars, body } => {
                let depth = bound.len();
                bound.extend(vars.iter().cloned());
                body.collect_free(bound, out);
                bound.truncate(depth);
            }
            DrcFormula::Const(_) => {}
        }
    }
}

/// A DRC query `{ (x₁, …, xₖ) | φ }` with free head variables.
#[derive(Debug, Clone, PartialEq)]
pub struct DrcQuery {
    pub head: Vec<String>,
    pub body: DrcFormula,
}

impl DrcQuery {
    pub fn new(head: Vec<impl Into<String>>, body: DrcFormula) -> Self {
        DrcQuery { head: head.into_iter().map(Into::into).collect(), body }
    }
}

// ---- Display --------------------------------------------------------------

fn prec(f: &DrcFormula) -> u8 {
    match f {
        DrcFormula::Or(_, _) => 1,
        DrcFormula::And(_, _) => 2,
        DrcFormula::Not(_) => 3,
        _ => 4,
    }
}

fn write_formula(
    f: &mut std::fmt::Formatter<'_>,
    fla: &DrcFormula,
    parent: u8,
) -> std::fmt::Result {
    let p = prec(fla);
    let parens = p < parent;
    if parens {
        write!(f, "(")?;
    }
    match fla {
        DrcFormula::Atom { rel, terms } => {
            write!(f, "{rel}(")?;
            for (i, t) in terms.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{t}")?;
            }
            write!(f, ")")?;
        }
        DrcFormula::Cmp { left, op, right } => write!(f, "{left} {} {right}", op.symbol())?,
        DrcFormula::And(a, b) => {
            write_formula(f, a, 2)?;
            write!(f, " and ")?;
            write_formula(f, b, 3)?;
        }
        DrcFormula::Or(a, b) => {
            write_formula(f, a, 1)?;
            write!(f, " or ")?;
            write_formula(f, b, 2)?;
        }
        DrcFormula::Not(a) => {
            write!(f, "not ")?;
            write_formula(f, a, 4)?;
        }
        DrcFormula::Exists { vars, body } => {
            write!(f, "exists {}: (", vars.join(", "))?;
            write_formula(f, body, 0)?;
            write!(f, ")")?;
        }
        DrcFormula::Forall { vars, body } => {
            write!(f, "forall {}: (", vars.join(", "))?;
            write_formula(f, body, 0)?;
            write!(f, ")")?;
        }
        DrcFormula::Const(b) => write!(f, "{}", if *b { "true" } else { "false" })?,
    }
    if parens {
        write!(f, ")")?;
    }
    Ok(())
}

impl std::fmt::Display for DrcFormula {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write_formula(f, self, 0)
    }
}

impl std::fmt::Display for DrcQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{{} | {}}}", self.head.join(", "), self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_free_vars() {
        // { n | exists s, r, a: Sailor(s, n, r, a) }
        let q = DrcQuery::new(
            vec!["n"],
            DrcFormula::exists(
                vec!["s".into(), "r".into(), "a".into()],
                DrcFormula::atom(
                    "Sailor",
                    vec![
                        DrcTerm::var("s"),
                        DrcTerm::var("n"),
                        DrcTerm::var("r"),
                        DrcTerm::var("a"),
                    ],
                ),
            ),
        );
        assert_eq!(q.to_string(), "{n | exists s, r, a: (Sailor(s, n, r, a))}");
        assert_eq!(q.body.free_vars(), vec!["n"]);
    }

    #[test]
    fn forall_elimination() {
        let f = DrcFormula::forall(
            vec!["x".into()],
            DrcFormula::atom("R", vec![DrcTerm::var("x")]),
        );
        let e = f.eliminate_forall();
        assert_eq!(e.to_string(), "not exists x: (not R(x))");
    }

    #[test]
    fn free_vars_respect_scoping() {
        let f = DrcFormula::atom("R", vec![DrcTerm::var("x")]).and(DrcFormula::exists(
            vec!["x".into()],
            DrcFormula::atom("S", vec![DrcTerm::var("x"), DrcTerm::var("y")]),
        ));
        assert_eq!(f.free_vars(), vec!["x", "y"]);
    }
}
