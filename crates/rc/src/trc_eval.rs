//! Direct TRC evaluator (independent of the RA/SQL engines).
//!
//! Branch semantics: enumerate all assignments of the free bindings over
//! their relations, keep those satisfying the body, project the head.
//! Quantifiers enumerate their relation's tuples — the natural operational
//! reading of relation-bound quantification.

use relviz_model::{Database, DataType, Relation, Schema, Tuple, Value};

use crate::error::{RcError, RcResult};
use crate::trc::{Binding, TrcFormula, TrcQuery, TrcTerm};
use crate::trc_check::check_query;

/// Evaluates a TRC query (checking well-formedness first).
pub fn eval_trc(q: &TrcQuery, db: &Database) -> RcResult<Relation> {
    let head_types = check_query(q, db)?;
    let schema = Schema::of(
        &head_types
            .iter()
            .map(|(n, t)| (n.as_str(), *t))
            .collect::<Vec<(&str, DataType)>>(),
    );
    let mut out = Relation::empty(schema);

    for branch in &q.branches {
        let mut env = Env { vars: Vec::new() };
        enumerate_bindings(&branch.bindings, 0, db, &mut env, &mut |env| {
            let keep = match &branch.body {
                Some(f) => eval_formula(f, db, env)?,
                None => true,
            };
            if keep {
                let mut values = Vec::with_capacity(branch.head.len());
                for (_, term) in &branch.head {
                    values.push(term_value(term, env)?);
                }
                out.insert_unchecked(Tuple::new(values));
            }
            Ok(())
        })?;
    }
    Ok(out)
}

struct Env {
    vars: Vec<(String, Schema, Tuple)>,
}

impl Env {
    fn lookup(&self, var: &str, attr: &str) -> RcResult<Value> {
        for (v, schema, tuple) in self.vars.iter().rev() {
            if v == var {
                let idx = schema.index_of(attr).ok_or_else(|| {
                    RcError::Eval(format!("variable `{var}` has no attribute `{attr}`"))
                })?;
                return Ok(tuple.values()[idx].clone());
            }
        }
        Err(RcError::Eval(format!("unbound variable `{var}`")))
    }
}

fn term_value(term: &TrcTerm, env: &Env) -> RcResult<Value> {
    match term {
        TrcTerm::Const(v) => Ok(v.clone()),
        TrcTerm::Attr { var, attr } => env.lookup(var, attr),
    }
}

/// Depth-first enumeration of binding assignments, invoking `f` per leaf.
fn enumerate_bindings(
    bindings: &[Binding],
    idx: usize,
    db: &Database,
    env: &mut Env,
    f: &mut dyn FnMut(&mut Env) -> RcResult<()>,
) -> RcResult<()> {
    if idx == bindings.len() {
        return f(env);
    }
    let b = &bindings[idx];
    let rel = db.relation(&b.rel)?;
    let schema = rel.schema().clone();
    for t in rel.iter() {
        env.vars.push((b.var.clone(), schema.clone(), t.clone()));
        let r = enumerate_bindings(bindings, idx + 1, db, env, f);
        env.vars.pop();
        r?;
    }
    Ok(())
}

fn eval_formula(f: &TrcFormula, db: &Database, env: &mut Env) -> RcResult<bool> {
    match f {
        TrcFormula::Const(b) => Ok(*b),
        TrcFormula::Cmp { left, op, right } => {
            let l = term_value(left, env)?;
            let r = term_value(right, env)?;
            Ok(op.apply(&l, &r))
        }
        TrcFormula::And(a, b) => Ok(eval_formula(a, db, env)? && eval_formula(b, db, env)?),
        TrcFormula::Or(a, b) => Ok(eval_formula(a, db, env)? || eval_formula(b, db, env)?),
        TrcFormula::Not(a) => Ok(!eval_formula(a, db, env)?),
        TrcFormula::Exists { bindings, body } => {
            let mut found = false;
            enumerate_bindings(bindings, 0, db, env, &mut |env| {
                if !found && eval_formula(body, db, env)? {
                    found = true;
                }
                Ok(())
            })?;
            Ok(found)
        }
        TrcFormula::Forall { bindings, body } => {
            let mut all = true;
            enumerate_bindings(bindings, 0, db, env, &mut |env| {
                if all && !eval_formula(body, db, env)? {
                    all = false;
                }
                Ok(())
            })?;
            Ok(all)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trc::TrcBranch;
    use relviz_model::catalog::sailors_sample;

    fn names(rel: &Relation) -> Vec<String> {
        rel.iter().map(|t| t.values()[0].to_string()).collect()
    }

    /// Q5, the division query: sailors who reserved all red boats, in the
    /// ¬∃¬ normal form the tutorial favors.
    fn q5() -> TrcQuery {
        TrcQuery::single(TrcBranch {
            bindings: vec![Binding::new("q", "Sailor")],
            head: vec![("sname".into(), TrcTerm::attr("q", "sname"))],
            body: Some(
                TrcFormula::exists(
                    vec![Binding::new("b", "Boat")],
                    TrcFormula::eq(TrcTerm::attr("b", "color"), TrcTerm::val("red")).and(
                        TrcFormula::exists(
                            vec![Binding::new("r", "Reserves")],
                            TrcFormula::eq(TrcTerm::attr("r", "sid"), TrcTerm::attr("q", "sid"))
                                .and(TrcFormula::eq(
                                    TrcTerm::attr("r", "bid"),
                                    TrcTerm::attr("b", "bid"),
                                )),
                        )
                        .not(),
                    ),
                )
                .not(),
            ),
        })
    }

    #[test]
    fn q5_division() {
        let out = eval_trc(&q5(), &sailors_sample()).unwrap();
        assert_eq!(names(&out), vec!["dustin", "lubber"]);
    }

    #[test]
    fn q5_forall_form_equivalent() {
        // ∀b ∈ Boat: ¬(color=red) ∨ ∃r…  (implication unfolded)
        let forall_form = TrcQuery::single(TrcBranch {
            bindings: vec![Binding::new("q", "Sailor")],
            head: vec![("sname".into(), TrcTerm::attr("q", "sname"))],
            body: Some(TrcFormula::forall(
                vec![Binding::new("b", "Boat")],
                TrcFormula::eq(TrcTerm::attr("b", "color"), TrcTerm::val("red"))
                    .not()
                    .or(TrcFormula::exists(
                        vec![Binding::new("r", "Reserves")],
                        TrcFormula::eq(TrcTerm::attr("r", "sid"), TrcTerm::attr("q", "sid")).and(
                            TrcFormula::eq(TrcTerm::attr("r", "bid"), TrcTerm::attr("b", "bid")),
                        ),
                    )),
            )),
        });
        let db = sailors_sample();
        let a = eval_trc(&q5(), &db).unwrap();
        let b = eval_trc(&forall_form, &db).unwrap();
        assert!(a.same_contents(&b));
        // and eliminate_forall preserves semantics too
        let c = eval_trc(&forall_form.eliminate_forall(), &db).unwrap();
        assert!(a.same_contents(&c));
    }

    #[test]
    fn multi_binding_join() {
        // Q1: sailors who reserved boat 102, two free bindings.
        let q = TrcQuery::single(TrcBranch {
            bindings: vec![Binding::new("s", "Sailor"), Binding::new("r", "Reserves")],
            head: vec![("sname".into(), TrcTerm::attr("s", "sname"))],
            body: Some(
                TrcFormula::eq(TrcTerm::attr("s", "sid"), TrcTerm::attr("r", "sid"))
                    .and(TrcFormula::eq(TrcTerm::attr("r", "bid"), TrcTerm::val(102))),
            ),
        });
        let out = eval_trc(&q, &sailors_sample()).unwrap();
        assert_eq!(names(&out), vec!["dustin", "horatio", "lubber"]);
    }

    #[test]
    fn union_branches() {
        // Q3 as a two-branch union: red-reservers ∪ green-reservers.
        let mk = |color: &str| TrcBranch {
            bindings: vec![Binding::new("s", "Sailor")],
            head: vec![("sname".into(), TrcTerm::attr("s", "sname"))],
            body: Some(TrcFormula::exists(
                vec![Binding::new("r", "Reserves"), Binding::new("b", "Boat")],
                TrcFormula::conj(vec![
                    TrcFormula::eq(TrcTerm::attr("s", "sid"), TrcTerm::attr("r", "sid")),
                    TrcFormula::eq(TrcTerm::attr("r", "bid"), TrcTerm::attr("b", "bid")),
                    TrcFormula::eq(TrcTerm::attr("b", "color"), TrcTerm::val(color)),
                ]),
            )),
        };
        let q = TrcQuery { branches: vec![mk("red"), mk("green")] };
        let out = eval_trc(&q, &sailors_sample()).unwrap();
        assert_eq!(names(&out), vec!["dustin", "horatio", "lubber"]);
    }

    #[test]
    fn constant_head_term() {
        let q = TrcQuery::single(TrcBranch {
            bindings: vec![Binding::new("s", "Sailor")],
            head: vec![
                ("sname".into(), TrcTerm::attr("s", "sname")),
                ("tag".into(), TrcTerm::val("sailor")),
            ],
            body: None,
        });
        let out = eval_trc(&q, &sailors_sample()).unwrap();
        assert_eq!(out.len(), 9); // 10 sailors, two horatios collapse by (name, tag)
        assert_eq!(out.schema().names(), vec!["sname", "tag"]);
    }

    #[test]
    fn empty_exists_is_false_empty_forall_is_true() {
        let db = {
            let mut db = sailors_sample();
            db.set("Boat", Relation::empty(relviz_model::catalog::boat_schema()));
            db
        };
        let exists_q = TrcQuery::single(TrcBranch {
            bindings: vec![Binding::new("s", "Sailor")],
            head: vec![("sid".into(), TrcTerm::attr("s", "sid"))],
            body: Some(TrcFormula::exists(
                vec![Binding::new("b", "Boat")],
                TrcFormula::Const(true),
            )),
        });
        assert!(eval_trc(&exists_q, &db).unwrap().is_empty());

        let forall_q = TrcQuery::single(TrcBranch {
            bindings: vec![Binding::new("s", "Sailor")],
            head: vec![("sid".into(), TrcTerm::attr("s", "sid"))],
            body: Some(TrcFormula::forall(
                vec![Binding::new("b", "Boat")],
                TrcFormula::Const(false),
            )),
        });
        assert_eq!(eval_trc(&forall_q, &db).unwrap().len(), 10);
    }
}
