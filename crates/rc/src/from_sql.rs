//! SQL → TRC translation: the front door of the visualization pipeline
//! (the tutorial's Figs. 1–2 — a dictated/typed SQL query becomes a logical
//! form from which diagrams are built).
//!
//! Translation sketch (on the *resolved* AST):
//!
//! * each FROM table becomes a tuple variable (uniquified across nesting),
//! * `WHERE` maps homomorphically on ∧/∨/¬ and comparisons,
//! * `EXISTS (sub)` → `∃ sub-vars: sub-body`,
//! * `e IN (sub)` → `∃ sub-vars: sub-body ∧ sub-head = e` (and ¬∃ for `NOT IN`),
//! * `e op ALL (sub)` → `¬∃ sub-vars: sub-body ∧ ¬(e op head)`,
//! * `e op ANY (sub)` → `∃ sub-vars: sub-body ∧ (e op head)`,
//! * `UNION` concatenates branches; `INTERSECT`/`EXCEPT` become
//!   (negated) existentials equating heads.
//!
//! The result is always in the ∃/¬∃ normal form (no ∀), matching how
//! QueryVis and Relational Diagrams read their inputs.
//!
//! NULL-dependent conditions (`IS NULL`) have no calculus counterpart (the
//! calculi are two-valued); they are rejected with
//! [`RcError::Unsupported`]. On NULL-free databases — the setting of the
//! tutorial — SQL and TRC semantics then coincide (checked by E2).

use std::collections::HashSet;

use relviz_model::Database;
use relviz_sql::analyze::{resolve, resolved_select_schema};
use relviz_sql::ast::{Cond, Quant, Query, Scalar, SelectItem, SelectStmt, SetOpKind};

use crate::error::{RcError, RcResult};
use crate::trc::{Binding, TrcBranch, TrcFormula, TrcQuery, TrcTerm};

/// Translates a SQL query (any nesting) to a TRC query.
pub fn sql_to_trc(q: &Query, db: &Database) -> RcResult<TrcQuery> {
    let resolved = resolve(q, db)?;
    let mut tr = Translator { db, used: HashSet::new(), scopes: Vec::new() };
    tr.query(&resolved)
}

/// Convenience: parse a SQL string and translate.
pub fn parse_sql_to_trc(sql: &str, db: &Database) -> RcResult<TrcQuery> {
    let q = relviz_sql::parse_query(sql)?;
    sql_to_trc(&q, db)
}

struct Translator<'a> {
    db: &'a Database,
    /// Every TRC variable name handed out so far (global uniqueness —
    /// TRC forbids shadowing; SQL allows it).
    used: HashSet<String>,
    /// Alias → TRC variable, one frame per SELECT block.
    scopes: Vec<Vec<(String, String)>>,
}

impl<'a> Translator<'a> {
    fn fresh_var(&mut self, alias: &str) -> String {
        let mut name = alias.to_string();
        let mut k = 2;
        while self.used.contains(&name) {
            name = format!("{alias}_{k}");
            k += 1;
        }
        self.used.insert(name.clone());
        name
    }

    fn lookup_var(&self, alias: &str) -> RcResult<String> {
        for frame in self.scopes.iter().rev() {
            if let Some((_, v)) = frame.iter().find(|(a, _)| a.eq_ignore_ascii_case(alias)) {
                return Ok(v.clone());
            }
        }
        Err(RcError::Check(format!("untranslated alias `{alias}`")))
    }

    fn query(&mut self, q: &Query) -> RcResult<TrcQuery> {
        match q {
            Query::Select(s) => Ok(TrcQuery::single(self.select(s)?)),
            Query::SetOp { op, left, right } => {
                let l = self.query(left)?;
                let r = self.query(right)?;
                match op {
                    SetOpKind::Union => {
                        let mut branches = l.branches;
                        // Align right head names with the left's.
                        let names: Vec<String> = branches[0]
                            .head
                            .iter()
                            .map(|(n, _)| n.clone())
                            .collect();
                        for mut b in r.branches {
                            for (i, (n, _)) in b.head.iter_mut().enumerate() {
                                n.clone_from(&names[i]);
                            }
                            branches.push(b);
                        }
                        Ok(TrcQuery { branches })
                    }
                    SetOpKind::Intersect => self.setop_filter(l, &r, false),
                    SetOpKind::Except => self.setop_filter(l, &r, true),
                }
            }
        }
    }

    /// `INTERSECT` / `EXCEPT` as (negated) head-equating existentials.
    fn setop_filter(
        &mut self,
        left: TrcQuery,
        right: &TrcQuery,
        negated: bool,
    ) -> RcResult<TrcQuery> {
        let mut branches = Vec::with_capacity(left.branches.len());
        for lb in left.branches {
            let mut membership_alts = Vec::new();
            for rb in &right.branches {
                // Existential over the right branch's bindings with head
                // equality. Right-branch variable names are globally fresh
                // already (fresh_var), so no capture is possible.
                let mut parts = Vec::new();
                if let Some(body) = &rb.body {
                    parts.push(body.clone());
                }
                for ((_, lt), (_, rt)) in lb.head.iter().zip(&rb.head) {
                    parts.push(TrcFormula::eq(rt.clone(), lt.clone()));
                }
                membership_alts.push(TrcFormula::exists(
                    rb.bindings.clone(),
                    TrcFormula::conj(parts),
                ));
            }
            let membership = membership_alts
                .into_iter()
                .reduce(|a, b| a.or(b))
                .unwrap_or(TrcFormula::Const(false));
            let cond = if negated { membership.not() } else { membership };
            let body = match lb.body {
                Some(b) => b.and(cond),
                None => cond,
            };
            branches.push(TrcBranch { bindings: lb.bindings, head: lb.head, body: Some(body) });
        }
        Ok(TrcQuery { branches })
    }

    fn select(&mut self, s: &SelectStmt) -> RcResult<TrcBranch> {
        // New scope: assign a fresh TRC variable to every FROM table.
        let mut frame = Vec::with_capacity(s.from.len());
        let mut bindings = Vec::with_capacity(s.from.len());
        for tr in &s.from {
            let alias = tr.effective_name().to_string();
            let var = self.fresh_var(&alias);
            frame.push((alias, var.clone()));
            bindings.push(Binding::new(var, tr.table.clone()));
        }
        self.scopes.push(frame);

        let result = (|| {
            let out_schema = resolved_select_schema(s, self.db)?;
            let mut head = Vec::with_capacity(s.items.len());
            for (item, attr) in s.items.iter().zip(out_schema.attrs()) {
                let SelectItem::Expr { expr, .. } = item else {
                    return Err(RcError::Check("unresolved wildcard in select".into()));
                };
                head.push((attr.name.clone(), self.scalar(expr)?));
            }
            let body = match &s.where_clause {
                Some(c) => Some(self.cond(c)?),
                None => None,
            };
            Ok(TrcBranch { bindings: bindings.clone(), head, body })
        })();

        self.scopes.pop();
        result
    }

    fn scalar(&mut self, sc: &Scalar) -> RcResult<TrcTerm> {
        match sc {
            Scalar::Literal(v) => {
                if v.is_null() {
                    return Err(RcError::Unsupported(
                        "NULL literals have no calculus counterpart".into(),
                    ));
                }
                Ok(TrcTerm::Const(v.clone()))
            }
            Scalar::Column { qualifier: Some(q), name } => {
                Ok(TrcTerm::Attr { var: self.lookup_var(q)?, attr: name.clone() })
            }
            Scalar::Column { qualifier: None, name } => {
                Err(RcError::Check(format!("unresolved column `{name}`")))
            }
        }
    }

    /// Translates a subquery into "membership formula" parts: for each
    /// branch, (bindings, body∧…, head terms).
    fn subquery_parts(&mut self, q: &Query) -> RcResult<Vec<SubqueryPart>> {
        let tq = self.query(q)?;
        Ok(tq
            .branches
            .into_iter()
            .map(|b| {
                let heads = b.head.into_iter().map(|(_, t)| t).collect();
                (b.bindings, b.body, heads)
            })
            .collect())
    }

    fn cond(&mut self, c: &Cond) -> RcResult<TrcFormula> {
        Ok(match c {
            Cond::Literal(b) => TrcFormula::Const(*b),
            Cond::Cmp { left, op, right } => {
                TrcFormula::cmp(self.scalar(left)?, *op, self.scalar(right)?)
            }
            Cond::And(a, b) => self.cond(a)?.and(self.cond(b)?),
            Cond::Or(a, b) => self.cond(a)?.or(self.cond(b)?),
            Cond::Not(a) => self.cond(a)?.not(),
            Cond::Between { expr, negated, low, high } => {
                let e = self.scalar(expr)?;
                let f = TrcFormula::cmp(e.clone(), relviz_model::CmpOp::Ge, self.scalar(low)?)
                    .and(TrcFormula::cmp(e, relviz_model::CmpOp::Le, self.scalar(high)?));
                if *negated {
                    f.not()
                } else {
                    f
                }
            }
            Cond::InList { expr, negated, list } => {
                let e = self.scalar(expr)?;
                let mut alts = Vec::with_capacity(list.len());
                for v in list {
                    if v.is_null() {
                        return Err(RcError::Unsupported(
                            "NULL in IN-list has no calculus counterpart".into(),
                        ));
                    }
                    alts.push(TrcFormula::eq(e.clone(), TrcTerm::Const(v.clone())));
                }
                let f = alts
                    .into_iter()
                    .reduce(|a, b| a.or(b))
                    .unwrap_or(TrcFormula::Const(false));
                if *negated {
                    f.not()
                } else {
                    f
                }
            }
            Cond::Exists { negated, query } => {
                let parts = self.subquery_parts(query)?;
                let f = or_of_exists(parts, |_heads| None);
                if *negated {
                    f.not()
                } else {
                    f
                }
            }
            Cond::InSubquery { expr, negated, query } => {
                let e = self.scalar(expr)?;
                let parts = self.subquery_parts(query)?;
                let f = or_of_exists(parts, |heads| {
                    Some(TrcFormula::eq(e.clone(), heads[0].clone()))
                });
                if *negated {
                    f.not()
                } else {
                    f
                }
            }
            Cond::QuantCmp { left, op, quant, query } => {
                let e = self.scalar(left)?;
                let parts = self.subquery_parts(query)?;
                match quant {
                    Quant::Any => or_of_exists(parts, |heads| {
                        Some(TrcFormula::cmp(e.clone(), *op, heads[0].clone()))
                    }),
                    Quant::All => or_of_exists(parts, |heads| {
                        Some(TrcFormula::cmp(e.clone(), *op, heads[0].clone()).not())
                    })
                    .not(),
                }
            }
            Cond::IsNull { .. } => {
                return Err(RcError::Unsupported(
                    "IS NULL has no counterpart in two-valued calculus".into(),
                ))
            }
        })
    }
}

/// One subquery branch, decomposed: (bindings, body, head terms).
type SubqueryPart = (Vec<Binding>, Option<TrcFormula>, Vec<TrcTerm>);

/// `∨` over branches of `∃ bindings: body ∧ extra(head)`.
fn or_of_exists(
    parts: Vec<SubqueryPart>,
    mut extra: impl FnMut(&[TrcTerm]) -> Option<TrcFormula>,
) -> TrcFormula {
    let mut alts = Vec::with_capacity(parts.len());
    for (bindings, body, heads) in parts {
        let mut conj = Vec::new();
        if let Some(b) = body {
            conj.push(b);
        }
        if let Some(e) = extra(&heads) {
            conj.push(e);
        }
        alts.push(TrcFormula::exists(bindings, TrcFormula::conj(conj)));
    }
    alts.into_iter().reduce(|a, b| a.or(b)).unwrap_or(TrcFormula::Const(false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trc_eval::eval_trc;
    use relviz_model::catalog::sailors_sample;
    use relviz_sql::eval::run_sql;

    /// The crucial invariant: SQL evaluation and TRC evaluation of the
    /// translated query agree (on NULL-free databases).
    fn check_equiv(sql: &str) {
        let db = sailors_sample();
        let trc = parse_sql_to_trc(sql, &db).unwrap_or_else(|e| panic!("{sql}: {e}"));
        let via_sql = run_sql(sql, &db).unwrap();
        let via_trc = eval_trc(&trc, &db).unwrap_or_else(|e| panic!("{trc}: {e}"));
        assert!(
            via_sql.same_contents(&via_trc),
            "SQL vs TRC mismatch for `{sql}`\nTRC: {trc}\nsql={via_sql}\ntrc={via_trc}"
        );
    }

    #[test]
    fn suite_queries_equivalent() {
        for sql in [
            // Q1
            "SELECT DISTINCT S.sname FROM Sailor S, Reserves R WHERE S.sid = R.sid AND R.bid = 102",
            // Q2
            "SELECT DISTINCT S.sname FROM Sailor S, Reserves R, Boat B \
             WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'red'",
            // Q3 union + Q3 or
            "SELECT S.sname FROM Sailor S, Reserves R, Boat B \
             WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'red' \
             UNION SELECT S.sname FROM Sailor S, Reserves R, Boat B \
             WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'green'",
            "SELECT DISTINCT S.sname FROM Sailor S, Reserves R, Boat B \
             WHERE S.sid = R.sid AND R.bid = B.bid AND (B.color = 'red' OR B.color = 'green')",
            // Q4
            "SELECT S.sname FROM Sailor S WHERE NOT EXISTS \
             (SELECT * FROM Reserves R, Boat B \
              WHERE R.sid = S.sid AND R.bid = B.bid AND B.color = 'red')",
            // Q5 (division)
            "SELECT S.sname FROM Sailor S WHERE NOT EXISTS \
             (SELECT * FROM Boat B WHERE B.color = 'red' AND NOT EXISTS \
               (SELECT * FROM Reserves R WHERE R.sid = S.sid AND R.bid = B.bid))",
            // IN / NOT IN
            "SELECT S.sname FROM Sailor S WHERE S.sid IN (SELECT R.sid FROM Reserves R)",
            "SELECT S.sname FROM Sailor S WHERE S.sid NOT IN (SELECT R.sid FROM Reserves R)",
            // ANY / ALL
            "SELECT S.sname FROM Sailor S WHERE S.rating >= ALL (SELECT S2.rating FROM Sailor S2)",
            "SELECT S.sname FROM Sailor S WHERE S.rating > ANY (SELECT S2.rating FROM Sailor S2)",
            // INTERSECT / EXCEPT
            "SELECT S.sid FROM Sailor S INTERSECT SELECT R.sid FROM Reserves R",
            "SELECT S.sid FROM Sailor S EXCEPT SELECT R.sid FROM Reserves R",
            // IN-list, BETWEEN
            "SELECT S.sname FROM Sailor S WHERE S.rating IN (7, 9) AND S.age BETWEEN 30 AND 50",
            // nested set op under EXISTS
            "SELECT S.sname FROM Sailor S WHERE EXISTS \
             (SELECT R.sid FROM Reserves R WHERE R.sid = S.sid \
              UNION SELECT B.bid FROM Boat B WHERE B.bid = S.sid)",
        ] {
            check_equiv(sql);
        }
    }

    #[test]
    fn shadowed_aliases_are_uniquified() {
        let db = sailors_sample();
        let trc = parse_sql_to_trc(
            "SELECT S.sname FROM Sailor S WHERE EXISTS \
             (SELECT * FROM Sailor S WHERE S.rating > 9)",
            &db,
        )
        .unwrap();
        // The inner S must have been renamed (TRC forbids shadowing).
        let b = &trc.branches[0];
        assert_eq!(b.bindings[0].var, "S");
        let TrcFormula::Exists { bindings, .. } = b.body.as_ref().unwrap() else {
            panic!("{trc}")
        };
        assert_eq!(bindings[0].var, "S_2");
        // and the inner comparison references S_2, not S:
        assert!(trc.to_string().contains("S_2.rating"), "{trc}");
        // well-formed per the checker:
        crate::trc_check::check_query(&trc, &db).unwrap();
    }

    #[test]
    fn correlated_reference_points_at_outer_var() {
        let db = sailors_sample();
        let trc = parse_sql_to_trc(
            "SELECT S.sname FROM Sailor S WHERE EXISTS \
             (SELECT * FROM Reserves R WHERE R.sid = S.sid)",
            &db,
        )
        .unwrap();
        let s = trc.to_string();
        assert!(s.contains("R.sid = S.sid"), "{s}");
    }

    #[test]
    fn is_null_rejected() {
        let db = sailors_sample();
        let r = parse_sql_to_trc("SELECT S.sname FROM Sailor S WHERE S.sname IS NULL", &db);
        assert!(matches!(r, Err(RcError::Unsupported(_))));
    }

    #[test]
    fn union_branch_count() {
        let db = sailors_sample();
        let trc = parse_sql_to_trc(
            "SELECT S.sid FROM Sailor S UNION SELECT B.bid FROM Boat B \
             UNION SELECT R.sid FROM Reserves R",
            &db,
        )
        .unwrap();
        assert_eq!(trc.branches.len(), 3);
    }
}
