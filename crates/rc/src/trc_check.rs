//! Well-formedness and safety checking for TRC queries.
//!
//! Checks performed:
//! * every variable reference is in scope (bound by the branch's free
//!   bindings or by an enclosing quantifier),
//! * no variable is bound twice in overlapping scopes,
//! * every referenced attribute exists in the variable's relation,
//! * comparisons are type-compatible,
//! * all branches have the same head arity and unifiable types.
//!
//! The relation-bound quantifier syntax makes *range restriction* (safety)
//! structural: a well-scoped query in this fragment is automatically safe,
//! which this module's existence turns into a checkable invariant rather
//! than a hand-waved convention. (Contrast with DRC, where safe-range is a
//! real analysis — see [`crate::drc_eval::safe_range_check`].)

use relviz_model::{Database, DataType, Schema};

use crate::error::{RcError, RcResult};
use crate::trc::{Binding, TrcFormula, TrcQuery, TrcTerm};

/// Scope: stack of (var, schema) bindings.
struct Scope<'a> {
    vars: Vec<(String, &'a Schema)>,
}

impl<'a> Scope<'a> {
    fn lookup(&self, var: &str) -> Option<&'a Schema> {
        self.vars
            .iter()
            .rev()
            .find(|(v, _)| v == var)
            .map(|(_, s)| *s)
    }
}

/// Checks a whole query; returns the output schema names/types on success.
pub fn check_query(q: &TrcQuery, db: &Database) -> RcResult<Vec<(String, DataType)>> {
    if q.branches.is_empty() {
        return Err(RcError::Check("query has no branches".into()));
    }
    let mut head_types: Option<Vec<(String, DataType)>> = None;
    for branch in &q.branches {
        let mut scope = Scope { vars: Vec::new() };
        bind(&mut scope, &branch.bindings, db)?;

        let mut types = Vec::with_capacity(branch.head.len());
        for (name, term) in &branch.head {
            types.push((name.clone(), term_type(term, &scope)?));
        }
        if let Some(body) = &branch.body {
            check_formula(body, &mut scope, db)?;
        }

        match &head_types {
            None => head_types = Some(types),
            Some(prev) => {
                if prev.len() != types.len() {
                    return Err(RcError::Check(format!(
                        "branches have different head arities: {} vs {}",
                        prev.len(),
                        types.len()
                    )));
                }
                for ((_, a), (_, b)) in prev.iter().zip(&types) {
                    if a.unify(*b).is_none() {
                        return Err(RcError::Check(format!(
                            "branch head types incompatible: {a} vs {b}"
                        )));
                    }
                }
            }
        }
    }
    Ok(head_types.expect("at least one branch"))
}

fn bind<'a>(scope: &mut Scope<'a>, bindings: &[Binding], db: &'a Database) -> RcResult<()> {
    for b in bindings {
        if scope.lookup(&b.var).is_some() {
            return Err(RcError::Check(format!(
                "variable `{}` bound twice in overlapping scopes",
                b.var
            )));
        }
        let schema = db
            .schema(&b.rel)
            .map_err(|_| RcError::Check(format!("unknown relation `{}`", b.rel)))?;
        scope.vars.push((b.var.clone(), schema));
    }
    Ok(())
}

fn term_type(term: &TrcTerm, scope: &Scope<'_>) -> RcResult<DataType> {
    match term {
        TrcTerm::Const(v) => Ok(v.data_type()),
        TrcTerm::Attr { var, attr } => {
            let schema = scope
                .lookup(var)
                .ok_or_else(|| RcError::Check(format!("unbound variable `{var}`")))?;
            schema
                .attr(attr)
                .map(|a| a.ty)
                .ok_or_else(|| RcError::Check(format!("variable `{var}` has no attribute `{attr}`")))
        }
    }
}

fn check_formula<'a>(
    f: &TrcFormula,
    scope: &mut Scope<'a>,
    db: &'a Database,
) -> RcResult<()> {
    match f {
        TrcFormula::Const(_) => Ok(()),
        TrcFormula::Cmp { left, op: _, right } => {
            let lt = term_type(left, scope)?;
            let rt = term_type(right, scope)?;
            if lt.unify(rt).is_none() {
                return Err(RcError::Check(format!(
                    "comparison `{left} … {right}` has incompatible types {lt} vs {rt}"
                )));
            }
            Ok(())
        }
        TrcFormula::And(a, b) | TrcFormula::Or(a, b) => {
            check_formula(a, scope, db)?;
            check_formula(b, scope, db)
        }
        TrcFormula::Not(a) => check_formula(a, scope, db),
        TrcFormula::Exists { bindings, body } | TrcFormula::Forall { bindings, body } => {
            let depth = scope.vars.len();
            bind(scope, bindings, db)?;
            let r = check_formula(body, scope, db);
            scope.vars.truncate(depth);
            r
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trc::{TrcBranch, TrcQuery};
    use relviz_model::catalog::sailors_sample;

    fn branch(bindings: Vec<Binding>, head: Vec<(&str, TrcTerm)>, body: Option<TrcFormula>) -> TrcQuery {
        TrcQuery::single(TrcBranch {
            bindings,
            head: head.into_iter().map(|(n, t)| (n.to_string(), t)).collect(),
            body,
        })
    }

    #[test]
    fn accepts_well_formed() {
        let q = branch(
            vec![Binding::new("q", "Sailor")],
            vec![("sname", TrcTerm::attr("q", "sname"))],
            Some(TrcFormula::exists(
                vec![Binding::new("r", "Reserves")],
                TrcFormula::eq(TrcTerm::attr("r", "sid"), TrcTerm::attr("q", "sid")),
            )),
        );
        let tys = check_query(&q, &sailors_sample()).unwrap();
        assert_eq!(tys[0].0, "sname");
        assert_eq!(tys[0].1, DataType::Str);
    }

    #[test]
    fn rejects_unbound_variable() {
        let q = branch(
            vec![Binding::new("q", "Sailor")],
            vec![("x", TrcTerm::attr("ghost", "sid"))],
            None,
        );
        assert!(matches!(check_query(&q, &sailors_sample()), Err(RcError::Check(_))));
    }

    #[test]
    fn rejects_unknown_relation_and_attr() {
        let q = branch(
            vec![Binding::new("q", "NoSuch")],
            vec![("x", TrcTerm::attr("q", "a"))],
            None,
        );
        assert!(check_query(&q, &sailors_sample()).is_err());

        let q = branch(
            vec![Binding::new("q", "Sailor")],
            vec![("x", TrcTerm::attr("q", "ghost"))],
            None,
        );
        assert!(check_query(&q, &sailors_sample()).is_err());
    }

    #[test]
    fn rejects_shadowing() {
        let q = branch(
            vec![Binding::new("q", "Sailor")],
            vec![("x", TrcTerm::attr("q", "sid"))],
            Some(TrcFormula::exists(
                vec![Binding::new("q", "Boat")],
                TrcFormula::Const(true),
            )),
        );
        assert!(check_query(&q, &sailors_sample()).is_err());
    }

    #[test]
    fn scope_pops_after_quantifier() {
        // `r` is out of scope after its Exists ends.
        let q = branch(
            vec![Binding::new("q", "Sailor")],
            vec![("x", TrcTerm::attr("q", "sid"))],
            Some(
                TrcFormula::exists(
                    vec![Binding::new("r", "Reserves")],
                    TrcFormula::Const(true),
                )
                .and(TrcFormula::eq(TrcTerm::attr("r", "sid"), TrcTerm::val(1))),
            ),
        );
        assert!(check_query(&q, &sailors_sample()).is_err());
    }

    #[test]
    fn rejects_type_mismatch() {
        let q = branch(
            vec![Binding::new("q", "Sailor")],
            vec![("x", TrcTerm::attr("q", "sid"))],
            Some(TrcFormula::eq(TrcTerm::attr("q", "sname"), TrcTerm::val(5))),
        );
        assert!(check_query(&q, &sailors_sample()).is_err());
    }

    #[test]
    fn rejects_mismatched_branches() {
        let b1 = TrcBranch {
            bindings: vec![Binding::new("q", "Sailor")],
            head: vec![("a".into(), TrcTerm::attr("q", "sid"))],
            body: None,
        };
        let b2 = TrcBranch {
            bindings: vec![Binding::new("b", "Boat")],
            head: vec![("a".into(), TrcTerm::attr("b", "color"))],
            body: None,
        };
        let q = TrcQuery { branches: vec![b1.clone(), b2] };
        assert!(check_query(&q, &sailors_sample()).is_err());

        let b3 = TrcBranch {
            bindings: vec![Binding::new("b", "Boat")],
            head: vec![
                ("a".into(), TrcTerm::attr("b", "bid")),
                ("c".into(), TrcTerm::attr("b", "color")),
            ],
            body: None,
        };
        let q = TrcQuery { branches: vec![b1, b3] };
        assert!(check_query(&q, &sailors_sample()).is_err());
    }

    #[test]
    fn forall_scopes_like_exists() {
        let q = branch(
            vec![Binding::new("q", "Sailor")],
            vec![("x", TrcTerm::attr("q", "sid"))],
            Some(TrcFormula::forall(
                vec![Binding::new("b", "Boat")],
                TrcFormula::eq(TrcTerm::attr("b", "color"), TrcTerm::val("red")),
            )),
        );
        assert!(check_query(&q, &sailors_sample()).is_ok());
    }
}
