//! TRC → DRC: tuple variables explode into one domain variable per
//! attribute, relation bindings become positional atoms.
//!
//! A tuple variable `v` over relation `R(a₁,…,aₖ)` becomes domain variables
//! `v_a₁ … v_aₖ` plus the atom `R(v_a₁, …, v_aₖ)`; attribute terms `v.aᵢ`
//! become `v_aᵢ`. Quantifiers carry their atoms inside:
//!
//! ```text
//! ∃v ∈ R: φ   ⇒   ∃ v_a₁ … v_aₖ: R(v_a₁, …, v_aₖ) ∧ φ'
//! ```
//!
//! The output is always safe-range (atoms restrict every introduced
//! variable), which the tests verify via
//! [`crate::drc_eval::safe_range_check`]. Multi-branch queries become a
//! disjunction equating fresh head variables with each branch's head terms
//! — the standard way DRC expresses union.

use relviz_model::Database;

use crate::drc::{DrcFormula, DrcQuery, DrcTerm};
use crate::error::{RcError, RcResult};
use crate::trc::{Binding, TrcFormula, TrcQuery, TrcTerm};
use crate::trc_check::check_query;

/// Translates a (checked) TRC query to DRC.
pub fn trc_to_drc(q: &TrcQuery, db: &Database) -> RcResult<DrcQuery> {
    check_query(q, db)?;
    let q = q.eliminate_forall();

    // Fresh head variables h1..hk shared by all branches.
    let arity = q.arity();
    let head: Vec<String> = (1..=arity).map(|i| format!("h{i}")).collect();

    let mut alternatives = Vec::with_capacity(q.branches.len());
    for branch in &q.branches {
        let (vars, atoms) = bind_vars(&branch.bindings, db)?;
        let mut parts = atoms;
        if let Some(body) = &branch.body {
            parts.push(formula(body, db)?);
        }
        for (hv, (_, term)) in head.iter().zip(&branch.head) {
            parts.push(DrcFormula::eq(DrcTerm::var(hv.clone()), term_to_drc(term)));
        }
        alternatives.push(DrcFormula::exists(vars, DrcFormula::conj(parts)));
    }
    let body = alternatives
        .into_iter()
        .reduce(|a, b| a.or(b))
        .ok_or_else(|| RcError::Check("query has no branches".into()))?;
    Ok(DrcQuery { head, body })
}

/// `v.a` ⇒ domain variable `v_a`.
fn dvar(var: &str, attr: &str) -> String {
    format!("{var}_{attr}")
}

fn term_to_drc(t: &TrcTerm) -> DrcTerm {
    match t {
        TrcTerm::Attr { var, attr } => DrcTerm::Var(dvar(var, attr)),
        TrcTerm::Const(v) => DrcTerm::Const(v.clone()),
    }
}

/// Expands bindings into (domain variables, positional atoms).
fn bind_vars(
    bindings: &[Binding],
    db: &Database,
) -> RcResult<(Vec<String>, Vec<DrcFormula>)> {
    let mut vars = Vec::new();
    let mut atoms = Vec::new();
    for b in bindings {
        let schema = db
            .schema(&b.rel)
            .map_err(|_| RcError::Check(format!("unknown relation `{}`", b.rel)))?;
        let mut terms = Vec::with_capacity(schema.arity());
        for a in schema.attrs() {
            let v = dvar(&b.var, &a.name);
            vars.push(v.clone());
            terms.push(DrcTerm::Var(v));
        }
        atoms.push(DrcFormula::Atom { rel: b.rel.clone(), terms });
    }
    Ok((vars, atoms))
}

fn formula(f: &TrcFormula, db: &Database) -> RcResult<DrcFormula> {
    Ok(match f {
        TrcFormula::Const(b) => DrcFormula::Const(*b),
        TrcFormula::Cmp { left, op, right } => {
            DrcFormula::cmp(term_to_drc(left), *op, term_to_drc(right))
        }
        TrcFormula::And(a, b) => formula(a, db)?.and(formula(b, db)?),
        TrcFormula::Or(a, b) => formula(a, db)?.or(formula(b, db)?),
        TrcFormula::Not(a) => formula(a, db)?.not(),
        TrcFormula::Exists { bindings, body } => {
            let (vars, atoms) = bind_vars(bindings, db)?;
            let mut parts = atoms;
            parts.push(formula(body, db)?);
            DrcFormula::exists(vars, DrcFormula::conj(parts))
        }
        TrcFormula::Forall { .. } => {
            return Err(RcError::Check("∀ must be eliminated first (internal)".into()))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drc_eval::{eval_drc, safe_range_check};
    use crate::from_sql::parse_sql_to_trc;
    use crate::trc_eval::eval_trc;
    use relviz_model::catalog::sailors_sample;

    fn check_equiv(sql: &str) {
        let db = sailors_sample();
        let trc = parse_sql_to_trc(sql, &db).unwrap();
        let drc = trc_to_drc(&trc, &db).unwrap_or_else(|e| panic!("{sql}: {e}"));
        safe_range_check(&drc).unwrap_or_else(|e| panic!("{sql} produced unsafe DRC: {e}\n{drc}"));
        let via_trc = eval_trc(&trc, &db).unwrap();
        let via_drc = eval_drc(&drc, &db).unwrap();
        assert!(
            via_trc.same_contents(&via_drc),
            "TRC vs DRC mismatch for `{sql}`\n{drc}\ntrc={via_trc}\ndrc={via_drc}"
        );
    }

    #[test]
    fn suite_queries_translate_and_agree() {
        for sql in [
            "SELECT DISTINCT S.sname FROM Sailor S, Reserves R WHERE S.sid = R.sid AND R.bid = 102",
            "SELECT DISTINCT S.sname FROM Sailor S, Reserves R, Boat B \
             WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'red'",
            "SELECT S.sname FROM Sailor S, Reserves R, Boat B \
             WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'red' \
             UNION SELECT S.sname FROM Sailor S, Reserves R, Boat B \
             WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'green'",
            "SELECT S.sname FROM Sailor S WHERE NOT EXISTS \
             (SELECT * FROM Reserves R, Boat B \
              WHERE R.sid = S.sid AND R.bid = B.bid AND B.color = 'red')",
            "SELECT S.sname FROM Sailor S WHERE NOT EXISTS \
             (SELECT * FROM Boat B WHERE B.color = 'red' AND NOT EXISTS \
               (SELECT * FROM Reserves R WHERE R.sid = S.sid AND R.bid = B.bid))",
            "SELECT S.sname FROM Sailor S WHERE S.rating >= ALL (SELECT S2.rating FROM Sailor S2)",
        ] {
            check_equiv(sql);
        }
    }

    #[test]
    fn atom_shape() {
        let db = sailors_sample();
        let trc = crate::trc_parse::parse_trc("{s.sname | Sailor(s) and s.rating > 7}").unwrap();
        let drc = trc_to_drc(&trc, &db).unwrap();
        let text = drc.to_string();
        assert!(
            text.contains("Sailor(s_sid, s_sname, s_rating, s_age)"),
            "{text}"
        );
        assert!(text.contains("s_rating > 7"), "{text}");
        assert!(text.contains("h1 = s_sname"), "{text}");
    }

    #[test]
    fn constant_head_supported_in_drc() {
        // Unlike RA, DRC can equate a head variable with a constant.
        let db = sailors_sample();
        let trc = crate::trc_parse::parse_trc("{s.sid, 'tag' | Sailor(s)}").unwrap();
        let drc = trc_to_drc(&trc, &db).unwrap();
        safe_range_check(&drc).unwrap();
        let out = eval_drc(&drc, &db).unwrap();
        assert_eq!(out.len(), 10);
    }
}
