//! Parser for the textual TRC notation.
//!
//! ```text
//! query   := branch (UNION branch)*
//! branch  := '{' head '|' atoms [AND formula] '}'
//! head    := term (',' term)*
//! atoms   := Rel '(' var ')' ((',' | AND) Rel '(' var ')')*
//! formula := or ; or := and (OR and)* ; and := unary (AND unary)*
//! unary   := NOT unary
//!          | (EXISTS | FORALL) var IN Rel (',' var IN Rel)* ':' '(' formula ')'
//!          | '(' formula ')'
//!          | TRUE | FALSE
//!          | term cmpop term
//! term    := var '.' attr | literal
//! ```
//!
//! Unicode aliases are accepted: `∃`/`∀`/`∧`/`∨`/`¬`/`∈`/`≠`/`≤`/`≥`.
//! `Display` on [`TrcQuery`] produces this syntax, so `parse ∘ print = id`.

use relviz_model::{CmpOp, Value};

use crate::error::{RcError, RcResult};
use crate::trc::{Binding, TrcBranch, TrcFormula, TrcQuery, TrcTerm};

/// Parses the textual TRC syntax.
pub fn parse_trc(input: &str) -> RcResult<TrcQuery> {
    let toks = tokenize(input)?;
    let mut p = P { toks, pos: 0 };
    let mut branches = vec![p.branch()?];
    while p.eat_kw("union") {
        branches.push(p.branch()?);
    }
    p.expect_eof()?;
    Ok(TrcQuery { branches })
}

#[derive(Debug, Clone, PartialEq)]
enum T {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    LBrace,
    RBrace,
    LParen,
    RParen,
    Comma,
    Dot,
    Pipe,
    Colon,
    Cmp(CmpOp),
    Eof,
}

fn tokenize(input: &str) -> RcResult<Vec<T>> {
    let chars: Vec<char> = input.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '{' => {
                out.push(T::LBrace);
                i += 1;
            }
            '}' => {
                out.push(T::RBrace);
                i += 1;
            }
            '(' => {
                out.push(T::LParen);
                i += 1;
            }
            ')' => {
                out.push(T::RParen);
                i += 1;
            }
            ',' => {
                out.push(T::Comma);
                i += 1;
            }
            '.' => {
                out.push(T::Dot);
                i += 1;
            }
            '|' => {
                out.push(T::Pipe);
                i += 1;
            }
            ':' => {
                out.push(T::Colon);
                i += 1;
            }
            '∃' => {
                out.push(T::Ident("exists".into()));
                i += 1;
            }
            '∀' => {
                out.push(T::Ident("forall".into()));
                i += 1;
            }
            '∧' => {
                out.push(T::Ident("and".into()));
                i += 1;
            }
            '∨' => {
                out.push(T::Ident("or".into()));
                i += 1;
            }
            '¬' => {
                out.push(T::Ident("not".into()));
                i += 1;
            }
            '∈' => {
                out.push(T::Ident("in".into()));
                i += 1;
            }
            '=' => {
                out.push(T::Cmp(CmpOp::Eq));
                i += 1;
            }
            '≠' => {
                out.push(T::Cmp(CmpOp::Neq));
                i += 1;
            }
            '≤' => {
                out.push(T::Cmp(CmpOp::Le));
                i += 1;
            }
            '≥' => {
                out.push(T::Cmp(CmpOp::Ge));
                i += 1;
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(T::Cmp(CmpOp::Le));
                    i += 2;
                } else if chars.get(i + 1) == Some(&'>') {
                    out.push(T::Cmp(CmpOp::Neq));
                    i += 2;
                } else {
                    out.push(T::Cmp(CmpOp::Lt));
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(T::Cmp(CmpOp::Ge));
                    i += 2;
                } else {
                    out.push(T::Cmp(CmpOp::Gt));
                    i += 1;
                }
            }
            '!' if chars.get(i + 1) == Some(&'=') => {
                out.push(T::Cmp(CmpOp::Neq));
                i += 2;
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        Some('\'') if chars.get(i + 1) == Some(&'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                        None => return Err(RcError::Parse("unterminated string".into())),
                    }
                }
                out.push(T::Str(s));
            }
            c if c.is_ascii_digit()
                || (c == '-' && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())) =>
            {
                let start = i;
                if c == '-' {
                    i += 1;
                }
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if chars.get(i) == Some(&'.') && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())
                {
                    is_float = true;
                    i += 1;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                if is_float {
                    out.push(T::Float(
                        text.parse().map_err(|_| RcError::Parse(format!("bad float {text}")))?,
                    ));
                } else {
                    out.push(T::Int(
                        text.parse().map_err(|_| RcError::Parse(format!("bad int {text}")))?,
                    ));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(T::Ident(chars[start..i].iter().collect()));
            }
            other => return Err(RcError::Parse(format!("unexpected character `{other}`"))),
        }
    }
    out.push(T::Eof);
    Ok(out)
}

struct P {
    toks: Vec<T>,
    pos: usize,
}

impl P {
    fn peek(&self) -> &T {
        &self.toks[self.pos]
    }
    fn peek2(&self) -> &T {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)]
    }
    fn next(&mut self) -> T {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }
    fn eat(&mut self, t: &T) -> bool {
        if self.peek() == t {
            self.next();
            true
        } else {
            false
        }
    }
    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), T::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.is_kw(kw) {
            self.next();
            true
        } else {
            false
        }
    }
    fn expect(&mut self, t: T, what: &str) -> RcResult<()> {
        if self.peek() == &t {
            self.next();
            Ok(())
        } else {
            Err(RcError::Parse(format!("expected {what}, found {:?}", self.peek())))
        }
    }
    fn expect_eof(&mut self) -> RcResult<()> {
        if self.peek() == &T::Eof {
            Ok(())
        } else {
            Err(RcError::Parse(format!("trailing input: {:?}", self.peek())))
        }
    }
    fn ident(&mut self, what: &str) -> RcResult<String> {
        match self.next() {
            T::Ident(s) => Ok(s),
            other => Err(RcError::Parse(format!("expected {what}, found {other:?}"))),
        }
    }

    fn branch(&mut self) -> RcResult<TrcBranch> {
        self.expect(T::LBrace, "`{`")?;
        // head
        let mut head = Vec::new();
        loop {
            let term = self.term()?;
            let name = match &term {
                TrcTerm::Attr { attr, .. } => attr.clone(),
                TrcTerm::Const(_) => format!("col{}", head.len() + 1),
            };
            head.push((name, term));
            if !self.eat(&T::Comma) {
                break;
            }
        }
        // dedup head names
        let mut seen: Vec<String> = Vec::new();
        for (name, _) in head.iter_mut() {
            let base = name.clone();
            let mut k = 2;
            while seen.contains(name) {
                *name = format!("{base}_{k}");
                k += 1;
            }
            seen.push(name.clone());
        }
        self.expect(T::Pipe, "`|`")?;
        // binding atoms: Rel(var)
        let mut bindings = Vec::new();
        loop {
            let rel = self.ident("relation name")?;
            self.expect(T::LParen, "`(` after relation name")?;
            let var = self.ident("variable")?;
            self.expect(T::RParen, "`)` after variable")?;
            bindings.push(Binding::new(var, rel));
            // another binding atom follows a `,` or an `and` + Ident + `(`
            if self.eat(&T::Comma) {
                continue;
            }
            if self.is_kw("and")
                && matches!(self.peek2(), T::Ident(_))
                && self.toks.get(self.pos + 2) == Some(&T::LParen)
            {
                // lookahead further: Rel(var) has exactly Ident LParen Ident RParen
                if matches!(self.toks.get(self.pos + 3), Some(T::Ident(_)))
                    && self.toks.get(self.pos + 4) == Some(&T::RParen)
                {
                    self.next(); // consume `and`
                    continue;
                }
            }
            break;
        }
        let body = if self.eat_kw("and") { Some(self.formula()?) } else { None };
        self.expect(T::RBrace, "`}`")?;
        Ok(TrcBranch { bindings, head, body })
    }

    fn formula(&mut self) -> RcResult<TrcFormula> {
        let mut left = self.formula_and()?;
        while self.eat_kw("or") {
            let right = self.formula_and()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn formula_and(&mut self) -> RcResult<TrcFormula> {
        let mut left = self.formula_unary()?;
        while self.eat_kw("and") {
            let right = self.formula_unary()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn formula_unary(&mut self) -> RcResult<TrcFormula> {
        if self.eat_kw("not") {
            return Ok(self.formula_unary()?.not());
        }
        if self.is_kw("exists") || self.is_kw("forall") {
            let is_exists = self.is_kw("exists");
            self.next();
            let mut bindings = Vec::new();
            loop {
                let var = self.ident("variable")?;
                if !self.eat_kw("in") {
                    return Err(RcError::Parse(format!("expected `in` after variable `{var}`")));
                }
                let rel = self.ident("relation")?;
                bindings.push(Binding::new(var, rel));
                if !self.eat(&T::Comma) {
                    break;
                }
            }
            self.expect(T::Colon, "`:` after quantifier bindings")?;
            self.expect(T::LParen, "`(` after quantifier `:`")?;
            let body = self.formula()?;
            self.expect(T::RParen, "`)` closing quantifier body")?;
            return Ok(if is_exists {
                TrcFormula::exists(bindings, body)
            } else {
                TrcFormula::forall(bindings, body)
            });
        }
        if self.eat(&T::LParen) {
            let f = self.formula()?;
            self.expect(T::RParen, "`)`")?;
            return Ok(f);
        }
        if self.eat_kw("true") {
            return Ok(TrcFormula::Const(true));
        }
        if self.eat_kw("false") {
            return Ok(TrcFormula::Const(false));
        }
        let left = self.term()?;
        let op = match self.next() {
            T::Cmp(op) => op,
            other => {
                return Err(RcError::Parse(format!(
                    "expected comparison operator, found {other:?}"
                )))
            }
        };
        let right = self.term()?;
        Ok(TrcFormula::Cmp { left, op, right })
    }

    fn term(&mut self) -> RcResult<TrcTerm> {
        match self.next() {
            T::Ident(var) => {
                self.expect(T::Dot, "`.` after variable")?;
                let attr = self.ident("attribute")?;
                Ok(TrcTerm::Attr { var, attr })
            }
            T::Int(i) => Ok(TrcTerm::Const(Value::Int(i))),
            T::Float(x) => Ok(TrcTerm::Const(Value::Float(x))),
            T::Str(s) => Ok(TrcTerm::Const(Value::Str(s))),
            other => Err(RcError::Parse(format!("expected term, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trc_eval::eval_trc;
    use relviz_model::catalog::sailors_sample;

    fn rt(src: &str) -> TrcQuery {
        let q = parse_trc(src).unwrap_or_else(|e| panic!("{src}: {e}"));
        let printed = q.to_string();
        let back = parse_trc(&printed).unwrap_or_else(|e| panic!("`{printed}`: {e}"));
        assert_eq!(q, back, "round trip failed for `{src}`");
        q
    }

    #[test]
    fn q1_parses_and_evaluates() {
        let q = rt("{s.sname | Sailor(s), Reserves(r) and s.sid = r.sid and r.bid = 102}");
        let out = eval_trc(&q, &sailors_sample()).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn q5_nested_not_exists() {
        let q = rt("{q.sname | Sailor(q) and not exists b in Boat: (b.color = 'red' and \
                    not exists r in Reserves: (r.sid = q.sid and r.bid = b.bid))}");
        let out = eval_trc(&q, &sailors_sample()).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn unicode_flavour() {
        let a = parse_trc("{q.sname | Sailor(q) ∧ ∃r ∈ Reserves: (r.sid = q.sid)}").unwrap();
        let b = parse_trc("{q.sname | Sailor(q) and exists r in Reserves: (r.sid = q.sid)}")
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn union_of_branches() {
        let q = rt("{s.sname | Sailor(s) and s.rating > 9} union {s.sname | Sailor(s) and s.age < 20}");
        assert_eq!(q.branches.len(), 2);
        let out = eval_trc(&q, &sailors_sample()).unwrap();
        assert_eq!(out.len(), 2); // rusty/zorba(rating 10) ∪ zorba(16.0) = {rusty, zorba}
    }

    #[test]
    fn forall_and_multi_bindings() {
        let q = rt("{q.sname | Sailor(q) and forall b in Boat, r in Reserves: \
                    (b.bid = r.bid or b.color = 'red' or true)}");
        assert_eq!(q.branches[0].body.as_ref().unwrap().quantifier_count(), 1);
    }

    #[test]
    fn head_with_constant_and_dedup() {
        let q = parse_trc("{s.sname, s.sname, 'x' | Sailor(s)}").unwrap();
        let names: Vec<&str> = q.branches[0].head.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["sname", "sname_2", "col3"]);
    }

    #[test]
    fn multiple_binding_atoms_with_and() {
        // `Sailor(s) and Reserves(r) and s.sid = r.sid` — binding atoms
        // joined by `and` must be recognized as bindings, not formula.
        let q = parse_trc("{s.sname | Sailor(s) and Reserves(r) and s.sid = r.sid}").unwrap();
        assert_eq!(q.branches[0].bindings.len(), 2);
    }

    #[test]
    fn errors() {
        assert!(parse_trc("{s.sname | }").is_err());
        assert!(parse_trc("{s.sname Sailor(s)}").is_err());
        assert!(parse_trc("{s.sname | Sailor(s) and exists r: (true)}").is_err());
        assert!(parse_trc("{s | Sailor(s)}").is_err()); // bare var term
        assert!(parse_trc("{s.sname | Sailor(s)} trailing").is_err());
    }
}
