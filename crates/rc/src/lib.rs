//! # relviz-rc
//!
//! Relational Calculus — the declarative side of the tutorial's language
//! pentad, in both flavors:
//!
//! * **TRC** (Tuple Relational Calculus, [`trc`]): tuple variables bound to
//!   relations, with relation-bound quantifiers `∃t ∈ R` / `∀t ∈ R`. This is
//!   the *safe* fragment by construction and is the input language of the
//!   QueryVis and Relational Diagrams builders — each quantified tuple
//!   variable is exactly one table box in those diagrams.
//! * **DRC** (Domain Relational Calculus, [`drc`]): domain variables and
//!   positional atoms, the language closest to first-order logic and to
//!   Peirce's beta existential graphs. Comes with an active-domain
//!   evaluator and a **safe-range** checker.
//!
//! The crate is also the workspace's translation hub:
//!
//! | Translation | Module | Notes |
//! |---|---|---|
//! | SQL → TRC | [`from_sql`] | the pipeline front door (Figs. 1–2) |
//! | TRC → RA  | [`to_ra`]   | classical compilation; proves safety |
//! | TRC → DRC | [`to_drc`]  | tuple vars explode into domain vars |
//! | RA → TRC  | [`from_ra`] | procedural → declarative |
//!
//! Each language keeps its own independent evaluator so experiment E2 can
//! cross-check them all.

pub mod drc;
pub mod drc_eval;
pub mod drc_parse;
pub mod error;
pub mod from_drc;
pub mod from_ra;
pub mod from_sql;
pub mod normalize;
pub mod to_drc;
pub mod to_ra;
pub mod trc;
pub mod trc_check;
pub mod trc_eval;
pub mod trc_parse;

pub use drc::{DrcFormula, DrcQuery, DrcTerm};
pub use error::{RcError, RcResult};
pub use trc::{TrcBranch, TrcFormula, TrcQuery, TrcTerm};
