//! **Relational query patterns** (Gatterbauer & Dunne 2024, the notion the
//! tutorial's Part 2 "correspondence principle" builds on): the structure
//! of a query abstracted from incidental choices — variable names,
//! attribute order, conjunct order, and (optionally) the actual constants.
//!
//! A pattern here is a canonicalized labelled forest extracted from the
//! TRC form: nodes are table variables (labelled by relation and nesting
//! polarity), plus selection and join predicates re-expressed against
//! canonical variable indices. Two queries *match* when their patterns
//! are isomorphic ([`patterns_isomorphic`]), decided by backtracking over
//! table-variable bijections (queries are small; the search is tiny).

use std::collections::BTreeSet;

use relviz_model::Database;
use relviz_rc::trc::{TrcFormula, TrcQuery, TrcTerm};

use relviz_diagrams::{DiagError, DiagResult};

/// One table variable occurrence in the pattern.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct PatternTable {
    pub rel: String,
    /// Nesting depth (0 = free/root block).
    pub depth: usize,
    /// Polarity: `true` under an odd number of negations.
    pub negated: bool,
}

/// A predicate in the pattern; table references are indices into
/// `QueryPattern::tables`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum PatternPred {
    /// attribute–constant selection; constants are abstracted to their
    /// type when `abstract_constants` is chosen at extraction.
    Selection { table: usize, attr: String, op: String, constant: String },
    /// attribute–attribute join.
    Join { left: (usize, String), op: String, right: (usize, String) },
}

/// The pattern of one TRC branch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchPattern {
    pub tables: Vec<PatternTable>,
    pub preds: Vec<PatternPred>,
    /// Head: (table index, attribute) per output column.
    pub head: Vec<(usize, String)>,
}

/// A query pattern: one branch pattern per union branch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPattern {
    pub branches: Vec<BranchPattern>,
    /// Whether constants were abstracted to their types at extraction.
    pub constants_abstracted: bool,
}

/// Extracts the pattern of a query.
///
/// With `abstract_constants`, `= 'red'` and `= 'green'` yield the same
/// pattern element (`= <str>`): two queries asking the "same shape"
/// question about different constants then match — precisely the notion
/// of a query *pattern* as opposed to a query.
pub fn extract_pattern(
    q: &TrcQuery,
    db: &Database,
    abstract_constants: bool,
) -> DiagResult<QueryPattern> {
    relviz_rc::trc_check::check_query(q, db).map_err(|e| DiagError::Lang(e.to_string()))?;
    let q = q.eliminate_forall();
    let mut branches = Vec::with_capacity(q.branches.len());
    for b in &q.branches {
        let mut tables = Vec::new();
        let mut var_index: Vec<(String, usize)> = Vec::new();
        for binding in &b.bindings {
            var_index.push((binding.var.clone(), tables.len()));
            tables.push(PatternTable { rel: binding.rel.clone(), depth: 0, negated: false });
        }
        let mut preds = Vec::new();
        if let Some(body) = &b.body {
            walk(body, 1, false, &mut tables, &mut var_index, &mut preds, abstract_constants)?;
        }
        let head = b
            .head
            .iter()
            .map(|(_, t)| match t {
                TrcTerm::Attr { var, attr } => {
                    let idx = var_index
                        .iter()
                        .find(|(v, _)| v == var)
                        .map(|(_, i)| *i)
                        .ok_or_else(|| DiagError::Invalid(format!("unbound head var `{var}`")))?;
                    Ok((idx, attr.clone()))
                }
                TrcTerm::Const(_) => {
                    Err(DiagError::Invalid("constant head terms have no pattern anchor".into()))
                }
            })
            .collect::<DiagResult<Vec<_>>>()?;
        preds.sort();
        branches.push(BranchPattern { tables, preds, head });
    }
    Ok(QueryPattern { branches, constants_abstracted: abstract_constants })
}

#[allow(clippy::too_many_arguments)]
fn walk(
    f: &TrcFormula,
    depth: usize,
    negated: bool,
    tables: &mut Vec<PatternTable>,
    var_index: &mut Vec<(String, usize)>,
    preds: &mut Vec<PatternPred>,
    abstract_constants: bool,
) -> DiagResult<()> {
    match f {
        TrcFormula::Const(_) => Ok(()),
        TrcFormula::And(a, b) => {
            walk(a, depth, negated, tables, var_index, preds, abstract_constants)?;
            walk(b, depth, negated, tables, var_index, preds, abstract_constants)
        }
        TrcFormula::Or(_, _) => Err(DiagError::unsupported(
            "query patterns",
            "disjunction inside a branch (normalize to UNION first)",
        )),
        TrcFormula::Not(inner) => {
            walk(inner, depth, !negated, tables, var_index, preds, abstract_constants)
        }
        TrcFormula::Exists { bindings, body } => {
            let before = var_index.len();
            for b in bindings {
                var_index.push((b.var.clone(), tables.len()));
                tables.push(PatternTable { rel: b.rel.clone(), depth, negated });
            }
            let r = walk(body, depth + 1, negated, tables, var_index, preds, abstract_constants);
            var_index.truncate(before);
            r
        }
        TrcFormula::Forall { .. } => {
            Err(DiagError::Invalid("∀ should have been eliminated".into()))
        }
        TrcFormula::Cmp { left, op, right } => {
            let lookup = |var: &str, var_index: &Vec<(String, usize)>| {
                var_index
                    .iter()
                    .rev()
                    .find(|(v, _)| v == var)
                    .map(|(_, i)| *i)
                    .ok_or_else(|| DiagError::Invalid(format!("unbound var `{var}`")))
            };
            // Negated comparisons fold the negation into the operator so
            // `NOT a < b` and `a >= b` share a pattern.
            let op = if negated { op.negate() } else { *op };
            match (left, right) {
                (TrcTerm::Attr { var, attr }, TrcTerm::Const(c)) => {
                    let t = lookup(var, var_index)?;
                    let constant = if abstract_constants {
                        format!("<{}>", c.data_type())
                    } else {
                        c.to_literal()
                    };
                    preds.push(PatternPred::Selection {
                        table: t,
                        attr: attr.clone(),
                        op: op.symbol().into(),
                        constant,
                    });
                }
                (TrcTerm::Const(c), TrcTerm::Attr { var, attr }) => {
                    let t = lookup(var, var_index)?;
                    let constant = if abstract_constants {
                        format!("<{}>", c.data_type())
                    } else {
                        c.to_literal()
                    };
                    preds.push(PatternPred::Selection {
                        table: t,
                        attr: attr.clone(),
                        op: op.flip().symbol().into(),
                        constant,
                    });
                }
                (TrcTerm::Attr { var: v1, attr: a1 }, TrcTerm::Attr { var: v2, attr: a2 }) => {
                    let t1 = lookup(v1, var_index)?;
                    let t2 = lookup(v2, var_index)?;
                    // Canonical orientation: smaller (table, attr) first.
                    let (l, o, r) = if (t1, a1) <= (t2, a2) {
                        ((t1, a1.clone()), op, (t2, a2.clone()))
                    } else {
                        ((t2, a2.clone()), op.flip(), (t1, a1.clone()))
                    };
                    preds.push(PatternPred::Join { left: l, op: o.symbol().into(), right: r });
                }
                (TrcTerm::Const(_), TrcTerm::Const(_)) => {}
            }
            Ok(())
        }
    }
}

/// Pattern isomorphism: a bijection between table occurrences (per
/// branch, with branches matched in some order) preserving relation
/// names, depth, polarity, predicates, and head positions.
pub fn patterns_isomorphic(a: &QueryPattern, b: &QueryPattern) -> bool {
    if a.branches.len() != b.branches.len() {
        return false;
    }
    // Match branches in any order (union is commutative).
    let mut used: BTreeSet<usize> = BTreeSet::new();
    branch_match(&a.branches, &b.branches, 0, &mut used)
}

fn branch_match(
    xs: &[BranchPattern],
    ys: &[BranchPattern],
    i: usize,
    used: &mut BTreeSet<usize>,
) -> bool {
    if i == xs.len() {
        return true;
    }
    for j in 0..ys.len() {
        if !used.contains(&j) && branches_isomorphic(&xs[i], &ys[j]) {
            used.insert(j);
            if branch_match(xs, ys, i + 1, used) {
                return true;
            }
            used.remove(&j);
        }
    }
    false
}

fn branches_isomorphic(a: &BranchPattern, b: &BranchPattern) -> bool {
    if a.tables.len() != b.tables.len()
        || a.preds.len() != b.preds.len()
        || a.head.len() != b.head.len()
    {
        return false;
    }
    let mut mapping: Vec<Option<usize>> = vec![None; a.tables.len()];
    let mut taken = vec![false; b.tables.len()];
    try_map(a, b, 0, &mut mapping, &mut taken)
}

fn try_map(
    a: &BranchPattern,
    b: &BranchPattern,
    i: usize,
    mapping: &mut Vec<Option<usize>>,
    taken: &mut Vec<bool>,
) -> bool {
    if i == a.tables.len() {
        return check_mapping(a, b, mapping);
    }
    for j in 0..b.tables.len() {
        if !taken[j] && a.tables[i] == b.tables[j] {
            mapping[i] = Some(j);
            taken[j] = true;
            if try_map(a, b, i + 1, mapping, taken) {
                return true;
            }
            taken[j] = false;
            mapping[i] = None;
        }
    }
    false
}

fn check_mapping(a: &BranchPattern, b: &BranchPattern, mapping: &[Option<usize>]) -> bool {
    let map = |i: usize| mapping[i].expect("complete mapping");
    // Heads must correspond positionally.
    for ((ti, attr), (tj, battr)) in a.head.iter().zip(&b.head) {
        if map(*ti) != *tj || attr != battr {
            return false;
        }
    }
    // Predicates as multisets after mapping.
    let mapped: BTreeSet<PatternPred> = a
        .preds
        .iter()
        .map(|p| match p {
            PatternPred::Selection { table, attr, op, constant } => PatternPred::Selection {
                table: map(*table),
                attr: attr.clone(),
                op: op.clone(),
                constant: constant.clone(),
            },
            PatternPred::Join { left, op, right } => {
                let l = (map(left.0), left.1.clone());
                let r = (map(right.0), right.1.clone());
                if l <= r {
                    PatternPred::Join { left: l, op: op.clone(), right: r }
                } else {
                    PatternPred::Join {
                        left: r,
                        op: flip_sym(op),
                        right: l,
                    }
                }
            }
        })
        .collect();
    let expected: BTreeSet<PatternPred> = b.preds.iter().cloned().collect();
    mapped == expected
}

fn flip_sym(op: &str) -> String {
    match op {
        "<" => ">".into(),
        "<=" => ">=".into(),
        ">" => "<".into(),
        ">=" => "<=".into(),
        other => other.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relviz_model::catalog::sailors_sample;
    use relviz_rc::from_sql::parse_sql_to_trc;

    fn pat(sql: &str, abstract_constants: bool) -> QueryPattern {
        let db = sailors_sample();
        let trc = parse_sql_to_trc(sql, &db).unwrap();
        extract_pattern(&trc, &db, abstract_constants).unwrap()
    }

    #[test]
    fn alpha_renaming_preserves_pattern() {
        let a = pat(
            "SELECT S.sname FROM Sailor S, Reserves R WHERE S.sid = R.sid AND R.bid = 102",
            false,
        );
        let b = pat(
            "SELECT x.sname FROM Sailor x, Reserves y WHERE y.sid = x.sid AND y.bid = 102",
            false,
        );
        assert!(patterns_isomorphic(&a, &b));
    }

    #[test]
    fn different_constants_differ_unless_abstracted() {
        let red = "SELECT S.sname FROM Sailor S, Reserves R, Boat B \
                   WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'red'";
        let green = "SELECT S.sname FROM Sailor S, Reserves R, Boat B \
                     WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'green'";
        assert!(!patterns_isomorphic(&pat(red, false), &pat(green, false)));
        assert!(patterns_isomorphic(&pat(red, true), &pat(green, true)));
    }

    #[test]
    fn structure_differences_detected() {
        let q2 = "SELECT S.sname FROM Sailor S, Reserves R, Boat B \
                  WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'red'";
        let q4 = "SELECT S.sname FROM Sailor S WHERE NOT EXISTS \
                  (SELECT * FROM Reserves R, Boat B \
                   WHERE R.sid = S.sid AND R.bid = B.bid AND B.color = 'red')";
        assert!(!patterns_isomorphic(&pat(q2, true), &pat(q4, true)));
    }

    #[test]
    fn nesting_depth_and_polarity_matter() {
        let exists = "SELECT S.sname FROM Sailor S WHERE EXISTS \
                      (SELECT * FROM Reserves R WHERE R.sid = S.sid)";
        let not_exists = "SELECT S.sname FROM Sailor S WHERE NOT EXISTS \
                          (SELECT * FROM Reserves R WHERE R.sid = S.sid)";
        assert!(!patterns_isomorphic(&pat(exists, true), &pat(not_exists, true)));
    }

    #[test]
    fn join_orientation_is_canonical() {
        let a = pat("SELECT S.sname FROM Sailor S, Reserves R WHERE S.sid = R.sid", false);
        let b = pat("SELECT S.sname FROM Sailor S, Reserves R WHERE R.sid = S.sid", false);
        assert!(patterns_isomorphic(&a, &b));
        // flipped inequality still matches:
        let c = pat("SELECT S.sname FROM Sailor S, Reserves R WHERE S.sid < R.sid", false);
        let d = pat("SELECT S.sname FROM Sailor S, Reserves R WHERE R.sid > S.sid", false);
        assert!(patterns_isomorphic(&c, &d));
    }

    #[test]
    fn union_branches_match_in_any_order() {
        let ab = pat(
            "SELECT B.bid FROM Boat B WHERE B.color = 'red' \
             UNION SELECT B.bid FROM Boat B WHERE B.bname = 'Clipper'",
            false,
        );
        let ba = pat(
            "SELECT B.bid FROM Boat B WHERE B.bname = 'Clipper' \
             UNION SELECT B.bid FROM Boat B WHERE B.color = 'red'",
            false,
        );
        assert!(patterns_isomorphic(&ab, &ba));
    }

    #[test]
    fn self_join_automorphism_found() {
        // Two Sailor tables are interchangeable only respecting the head.
        let a = pat(
            "SELECT S1.sname FROM Sailor S1, Sailor S2 WHERE S1.rating < S2.rating",
            false,
        );
        let b = pat(
            "SELECT T2.sname FROM Sailor T1, Sailor T2 WHERE T2.rating < T1.rating",
            false,
        );
        assert!(patterns_isomorphic(&a, &b));
        // but projecting the *greater* sailor is a different pattern:
        let c = pat(
            "SELECT S2.sname FROM Sailor S1, Sailor S2 WHERE S1.rating < S2.rating",
            false,
        );
        assert!(!patterns_isomorphic(&a, &c));
    }
}
