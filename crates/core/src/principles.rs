//! The tutorial's Part 2 — **principles of query visualization** — as
//! executable checkers rather than slideware. Phrased after the
//! "Algebraic Visualization Design" vocabulary the tutorial adopts: a good
//! visualization is a mapping whose failures are either *hallucinators*
//! (different queries, same picture) or *confusers* (same query,
//! different pictures). The three checkers below probe both directions:
//!
//! * [`check_invertibility`] — the diagram determines the query: building
//!   a Relational Diagram and reading it back preserves semantics
//!   (no information is lost in the picture);
//! * [`check_unambiguity`] — the diagram has exactly one reading (beta
//!   graphs fail this; Relational Diagrams pass by construction);
//! * [`check_pattern_preservation`] — syntactic variants of the same
//!   query pattern produce the same diagram structure (no confusers from
//!   formatting or alias choices).

use relviz_diagrams::peirce::beta::BetaGraph;
use relviz_diagrams::reldiag::RelationalDiagram;
use relviz_diagrams::{DiagError, DiagResult};
use relviz_model::Database;

use crate::patterns::{extract_pattern, patterns_isomorphic};

/// Result of a principle check.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    Holds,
    /// The principle fails, with an explanation of the witness.
    Fails(String),
}

impl Verdict {
    pub fn holds(&self) -> bool {
        matches!(self, Verdict::Holds)
    }
}

/// Invertibility: `to_trc(from_trc(q))` evaluates identically to `q` on
/// the given database (and on a couple of generated ones, for paranoia).
pub fn check_invertibility(sql: &str, db: &Database) -> DiagResult<Verdict> {
    let trc = relviz_rc::from_sql::parse_sql_to_trc(sql, db)?;
    let diagram = RelationalDiagram::from_trc(&trc, db)?;
    let back = diagram.to_trc();
    let mut dbs = vec![db.clone()];
    dbs.push(relviz_model::generate::generate_sailors(
        &relviz_model::generate::GenConfig { seed: 7, ..Default::default() },
    ));
    for (i, d) in dbs.iter().enumerate() {
        let orig = relviz_rc::trc_eval::eval_trc(&trc, d)
            .map_err(|e| DiagError::Lang(e.to_string()))?;
        let rt = relviz_rc::trc_eval::eval_trc(&back, d)
            .map_err(|e| DiagError::Lang(e.to_string()))?;
        if !orig.same_contents(&rt) {
            return Ok(Verdict::Fails(format!(
                "round trip diverges on database #{i}: {} vs {} tuples",
                orig.len(),
                rt.len()
            )));
        }
    }
    Ok(Verdict::Holds)
}

/// Unambiguity of beta graphs for the given DRC sentence: exactly one
/// scope-consistent reading. (Relational Diagrams are unambiguous by
/// construction — their check is trivially [`Verdict::Holds`] whenever
/// construction succeeds.)
pub fn check_beta_unambiguity(g: &BetaGraph) -> DiagResult<Verdict> {
    let n = g.readings()?.len();
    if n == 1 {
        Ok(Verdict::Holds)
    } else {
        Ok(Verdict::Fails(format!("{n} scope-consistent readings")))
    }
}

/// Pattern preservation: two SQL texts with isomorphic *query patterns*
/// must produce structurally identical Relational Diagrams (equal up to
/// the same isomorphism — we compare element censuses and re-extracted
/// patterns, which fully determine the diagram).
pub fn check_pattern_preservation(
    sql_a: &str,
    sql_b: &str,
    db: &Database,
) -> DiagResult<Verdict> {
    let ta = relviz_rc::from_sql::parse_sql_to_trc(sql_a, db)?;
    let tb = relviz_rc::from_sql::parse_sql_to_trc(sql_b, db)?;
    let pa = extract_pattern(&ta, db, false)?;
    let pb = extract_pattern(&tb, db, false)?;
    if !patterns_isomorphic(&pa, &pb) {
        return Ok(Verdict::Fails("inputs are not pattern-isomorphic to begin with".into()));
    }
    let da = RelationalDiagram::from_trc(&ta, db)?;
    let db_diag = RelationalDiagram::from_trc(&tb, db)?;
    if da.census() != db_diag.census() {
        return Ok(Verdict::Fails(format!(
            "diagram censuses differ: {:?} vs {:?}",
            da.census(),
            db_diag.census()
        )));
    }
    // The diagrams' own TRC readings must be pattern-isomorphic too.
    let ra = extract_pattern(&da.to_trc(), db, false)?;
    let rb = extract_pattern(&db_diag.to_trc(), db, false)?;
    if !patterns_isomorphic(&ra, &rb) {
        return Ok(Verdict::Fails("diagram readings have different patterns".into()));
    }
    Ok(Verdict::Holds)
}

/// A canonical structural fingerprint of a query's Relational Diagram
/// (branch/box/table/condition shape with canonicalized names) — the
/// injectivity probe for [`check_no_hallucinators`].
pub fn reldiag_fingerprint(sql: &str, db: &Database) -> DiagResult<String> {
    let trc = relviz_rc::from_sql::parse_sql_to_trc(sql, db)?;
    let pattern = extract_pattern(&trc, db, false)?;
    Ok(format!("{pattern:?}"))
}

/// No hallucinators: among `queries`, any two that *evaluate differently*
/// (on the given database and two generated ones) must produce different
/// diagram fingerprints. In the Algebraic-Visualization-Design vocabulary
/// the tutorial adopts, a hallucinator is a visualization that shows the
/// same picture for different data — here, for semantically different
/// queries.
pub fn check_no_hallucinators(
    queries: &[&str],
    db: &Database,
    fingerprint: &dyn Fn(&str, &Database) -> DiagResult<String>,
) -> DiagResult<Verdict> {
    let mut probes = vec![db.clone()];
    for seed in [11u64, 23] {
        probes.push(relviz_model::generate::generate_sailors(
            &relviz_model::generate::GenConfig { seed, ..Default::default() },
        ));
    }
    // Semantic signature: the result sets on every probe database.
    let mut sigs = Vec::with_capacity(queries.len());
    let mut fps = Vec::with_capacity(queries.len());
    for q in queries {
        let mut sig = String::new();
        for d in &probes {
            let rel = relviz_sql::eval::run_sql(q, d)
                .map_err(|e| DiagError::Lang(e.to_string()))?;
            let mut rows: Vec<String> =
                rel.iter().map(|t| format!("{t}")).collect();
            rows.sort();
            sig.push_str(&rows.join(";"));
            sig.push('|');
        }
        sigs.push(sig);
        fps.push(fingerprint(q, db)?);
    }
    for i in 0..queries.len() {
        for j in (i + 1)..queries.len() {
            if sigs[i] != sigs[j] && fps[i] == fps[j] {
                return Ok(Verdict::Fails(format!(
                    "hallucinator: queries #{i} and #{j} differ semantically but share \
                     one picture"
                )));
            }
        }
    }
    Ok(Verdict::Holds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relviz_diagrams::peirce::beta::{BetaItem, Hook, Line};
    use relviz_model::catalog::sailors_sample;

    #[test]
    fn invertibility_on_the_suite() {
        let db = sailors_sample();
        for q in crate::suite::SUITE {
            // Q3's OR-free SQL forms and all ¬∃ forms must round trip.
            let v = check_invertibility(q.sql, &db)
                .unwrap_or_else(|e| panic!("{}: {e}", q.id));
            assert!(v.holds(), "{}: {v:?}", q.id);
        }
    }

    #[test]
    fn beta_ambiguity_detected() {
        let ambiguous = BetaGraph {
            items: vec![BetaItem::Cut {
                id: 0,
                items: vec![BetaItem::pred("P", vec![Hook::Line(0)])],
            }],
            lines: vec![Line { scope: None }],
        };
        let v = check_beta_unambiguity(&ambiguous).unwrap();
        assert!(!v.holds());

        let mut clear = ambiguous.clone();
        clear.lines[0].scope = Some(vec![]);
        assert!(check_beta_unambiguity(&clear).unwrap().holds());
    }

    #[test]
    fn pattern_preservation_across_aliases() {
        let db = sailors_sample();
        let v = check_pattern_preservation(
            "SELECT S.sname FROM Sailor S, Reserves R WHERE S.sid = R.sid AND R.bid = 102",
            "SELECT a.sname FROM Sailor a, Reserves b WHERE b.sid = a.sid AND b.bid = 102",
            &db,
        )
        .unwrap();
        assert!(v.holds(), "{v:?}");
    }

    #[test]
    fn no_hallucinators_on_the_suite_pool() {
        // The suite, plus near-miss variants that differ in exactly one
        // constant or comparison — the classic place for a lossy
        // visualization to collapse distinct queries.
        let db = sailors_sample();
        let pool: Vec<&str> = crate::suite::SUITE
            .iter()
            .map(|q| q.sql)
            .chain([
                "SELECT DISTINCT S.sname FROM Sailor S, Reserves R, Boat B \
                 WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'green'",
                "SELECT S.sname FROM Sailor S WHERE S.rating > 7",
                "SELECT S.sname FROM Sailor S WHERE S.rating < 7",
            ])
            .collect();
        let v = check_no_hallucinators(&pool, &db, &reldiag_fingerprint).unwrap();
        assert!(v.holds(), "{v:?}");
    }

    #[test]
    fn hallucinator_detected_for_a_lossy_fingerprint() {
        // A fingerprint that forgets the comparison operator *is* a
        // hallucinator on > vs <.
        let db = sailors_sample();
        let lossy = |sql: &str, db: &Database| {
            reldiag_fingerprint(sql, db)
                .map(|f| f.replace("op: \">\"", "op: CMP").replace("op: \"<\"", "op: CMP"))
        };
        let v = check_no_hallucinators(
            &[
                "SELECT S.sname FROM Sailor S WHERE S.rating > 7",
                "SELECT S.sname FROM Sailor S WHERE S.rating < 7",
            ],
            &db,
            &lossy,
        )
        .unwrap();
        assert!(!v.holds(), "lossy fingerprint must be flagged");
    }

    #[test]
    fn pattern_preservation_rejects_different_queries() {
        let db = sailors_sample();
        let v = check_pattern_preservation(
            "SELECT S.sname FROM Sailor S WHERE S.rating > 7",
            "SELECT S.sname FROM Sailor S WHERE S.rating < 7",
            &db,
        )
        .unwrap();
        assert!(!v.holds());
    }
}
