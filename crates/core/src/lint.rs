//! Part 6's "lessons learned": **the three abuses of the line**.
//!
//! Across a century of diagram systems, the humble line (as a geometric
//! mark) has been overloaded with at least three distinct semantic roles:
//!
//! 1. **Identity / equality** — Peirce's lines of identity, string-diagram
//!    wires, join edges;
//! 2. **Set containment / membership boundary** — Euler and Venn curves,
//!    Peirce's cuts, bounding boxes;
//! 3. **Flow / reading order** — dataflow arcs (DFQL), QueryVis's
//!    reading-order arrows.
//!
//! A formalism that uses the *same* visual mark kind for more than one of
//! these roles forces the reader to disambiguate from context — the
//! tutorial's closing design guideline is to avoid exactly that. This
//! module encodes each formalism's line-role census and a linter that
//! flags overloads; experiment E7 prints the resulting table.

/// The semantic roles a line can play. The tutorial's "three abuses"
/// are the first three; [`LineRole::Connective`] is the historical
/// fourth, unique to Frege's Begriffsschrift, whose strokes *are* the
/// logical connectives — the extreme answer to overloading (one role,
/// distinguished purely by geometry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LineRole {
    Identity,
    Containment,
    Flow,
    Connective,
}

impl LineRole {
    pub fn name(&self) -> &'static str {
        match self {
            LineRole::Identity => "identity/equality",
            LineRole::Containment => "containment boundary",
            LineRole::Flow => "flow/reading order",
            LineRole::Connective => "logical connective",
        }
    }
}

/// The visual mark kinds diagrams draw lines with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MarkKind {
    /// Open curve / straight stroke.
    Stroke,
    /// Closed curve (circle, oval, rounded box outline).
    ClosedCurve,
    /// Stroke with an arrowhead.
    Arrow,
}

impl MarkKind {
    pub fn name(&self) -> &'static str {
        match self {
            MarkKind::Stroke => "stroke",
            MarkKind::ClosedCurve => "closed curve",
            MarkKind::Arrow => "arrow",
        }
    }
}

/// How one formalism uses line marks: `(mark kind, role)` pairs.
#[derive(Debug, Clone)]
pub struct LineUsage {
    pub formalism: &'static str,
    pub uses: Vec<(MarkKind, LineRole)>,
}

/// The line-role census of every formalism in the workspace. Kept in one
/// table (rather than scattered per crate) because it *is* the artifact:
/// Part 6's comparison, with each row justified by the corresponding
/// module's scene construction.
pub fn census() -> Vec<LineUsage> {
    use LineRole::*;
    use MarkKind::*;
    vec![
        LineUsage {
            formalism: "Euler circles",
            uses: vec![(ClosedCurve, Containment)],
        },
        LineUsage {
            formalism: "Venn-I/II",
            // closed curves bound sets; the ⊗-sequence connector is a
            // stroke expressing disjunction across regions (an identity-
            // of-possibilities line — counted as identity of the asserted
            // individual).
            uses: vec![(ClosedCurve, Containment), (Stroke, Identity)],
        },
        LineUsage {
            formalism: "Peirce beta graphs",
            // cuts are closed curves (containment-as-negation); lines of
            // identity are heavy strokes (identity) — and crucially the
            // *interaction* of the two is what creates the scope
            // ambiguity E3 demonstrates.
            uses: vec![(ClosedCurve, Containment), (Stroke, Identity)],
        },
        LineUsage {
            formalism: "Constraint diagrams",
            uses: vec![(ClosedCurve, Containment), (Arrow, Identity), (Stroke, Identity)],
        },
        LineUsage {
            formalism: "Conceptual graphs",
            uses: vec![(Stroke, Identity)],
        },
        LineUsage {
            formalism: "QueryVis",
            // strokes are join (identity) edges; arrows are reading order;
            // group borders are closed curves.
            uses: vec![(Stroke, Identity), (Arrow, Flow), (ClosedCurve, Containment)],
        },
        LineUsage {
            formalism: "Relational Diagrams",
            uses: vec![(Stroke, Identity), (ClosedCurve, Containment)],
        },
        LineUsage {
            formalism: "QBE",
            // skeleton grids only; example-element repetition replaces
            // lines entirely (that is its own lesson).
            uses: vec![],
        },
        LineUsage {
            formalism: "DFQL",
            uses: vec![(Arrow, Flow), (ClosedCurve, Containment)],
        },
        LineUsage {
            formalism: "String diagrams",
            uses: vec![(Stroke, Identity), (ClosedCurve, Containment)],
        },
        LineUsage {
            formalism: "Begriffsschrift",
            // Content/condition/negation strokes and the concavity are
            // all strokes whose single role is *being* the connective.
            uses: vec![(Stroke, Connective)],
        },
        LineUsage {
            formalism: "Visual SQL",
            // Frames are closed curves; the edge hanging a subquery off
            // its host strip orders the reading.
            uses: vec![(ClosedCurve, Containment), (Stroke, Flow)],
        },
        LineUsage {
            formalism: "SQLVis",
            uses: vec![(ClosedCurve, Containment), (Stroke, Identity)],
        },
        LineUsage {
            formalism: "TableTalk",
            // The spine arrows carry the top-down flow; tiles are mere
            // boxes (no set semantics).
            uses: vec![(Arrow, Flow), (Stroke, Flow)],
        },
        LineUsage {
            formalism: "DataPlay",
            uses: vec![(Stroke, Flow)],
        },
        LineUsage {
            formalism: "SIEUFERD",
            // A spreadsheet grid: no line carries logic.
            uses: vec![],
        },
        LineUsage {
            formalism: "QBD (ER-based)",
            // ER edges assert key identity between entity and relationship.
            uses: vec![(Stroke, Identity)],
        },
    ]
}

/// An overload finding: one mark kind, several roles.
#[derive(Debug, Clone, PartialEq)]
pub struct Overload {
    pub formalism: &'static str,
    pub mark: MarkKind,
    pub roles: Vec<LineRole>,
}

/// Flags formalisms where a single mark kind carries ≥2 roles.
pub fn find_overloads(usages: &[LineUsage]) -> Vec<Overload> {
    let mut out = Vec::new();
    for u in usages {
        for mark in [MarkKind::Stroke, MarkKind::ClosedCurve, MarkKind::Arrow] {
            let mut roles: Vec<LineRole> =
                u.uses.iter().filter(|(m, _)| *m == mark).map(|(_, r)| *r).collect();
            roles.sort();
            roles.dedup();
            if roles.len() >= 2 {
                out.push(Overload { formalism: u.formalism, mark, roles });
            }
        }
    }
    out
}

/// A per-scene dynamic census: counts the mark kinds actually drawn.
/// Useful to sanity-check the static table against real renderings.
pub fn scene_mark_counts(scene: &relviz_render::Scene) -> (usize, usize, usize) {
    let mut strokes = 0;
    let mut closed = 0;
    let mut arrows = 0;
    for item in &scene.items {
        match item {
            relviz_render::Item::Polyline { arrow, .. } => {
                if *arrow {
                    arrows += 1;
                } else {
                    strokes += 1;
                }
            }
            relviz_render::Item::Rect { .. } | relviz_render::Item::Ellipse { .. } => {
                closed += 1;
            }
            relviz_render::Item::Text { .. } => {}
        }
    }
    (strokes, closed, arrows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_formalism_overloads_a_single_mark() {
        // The (perhaps surprising) punchline: each system disambiguates
        // by mark *kind* — the abuses arise across systems, where the
        // same kind of mark means three different things to differently
        // trained readers.
        let o = find_overloads(&census());
        assert!(o.is_empty(), "{o:?}");
    }

    #[test]
    fn synthetic_overload_detected() {
        let bad = vec![LineUsage {
            formalism: "strawman",
            uses: vec![
                (MarkKind::Stroke, LineRole::Identity),
                (MarkKind::Stroke, LineRole::Flow),
            ],
        }];
        let o = find_overloads(&bad);
        assert_eq!(o.len(), 1);
        assert_eq!(o[0].roles.len(), 2);
    }

    #[test]
    fn cross_system_roles_of_the_stroke() {
        // The same stroke mark means identity in 6 systems — the reader
        // retrains per system: that is the "abuse".
        let uses = census();
        let stroke_roles: Vec<&str> = uses
            .iter()
            .filter(|u| u.uses.iter().any(|(m, _)| *m == MarkKind::Stroke))
            .map(|u| u.formalism)
            .collect();
        assert!(stroke_roles.len() >= 5, "{stroke_roles:?}");
    }

    #[test]
    fn dynamic_census_matches_scene() {
        let mut s = relviz_render::Scene::new(10.0, 10.0);
        s.rect(0.0, 0.0, 5.0, 5.0);
        s.line(0.0, 0.0, 3.0, 3.0);
        s.arrow(vec![(0.0, 0.0), (2.0, 2.0)]);
        s.ellipse(1.0, 1.0, 1.0, 1.0);
        assert_eq!(scene_mark_counts(&s), (1, 2, 1));
    }
}
