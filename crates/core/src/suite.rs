//! The canonical query suite: the tutorial's running examples over the
//! sailors–reserves–boats schema, each given in all **five textual
//! languages** (SQL, RA, TRC, DRC, Datalog).
//!
//! Q1–Q5 are the classics the tutorial walks through; Q6–Q8 exercise the
//! corner cases the historical comparison turns on (nested negation,
//! self-join, quantified comparison). Experiment E2 evaluates every
//! query in every language through that language's own evaluator and
//! checks that all five agree — the "one semantics, five syntaxes" table
//! of Part 3.

/// One suite query with its five textual forms.
#[derive(Debug, Clone, Copy)]
pub struct SuiteQuery {
    pub id: &'static str,
    pub description: &'static str,
    pub sql: &'static str,
    pub ra: &'static str,
    pub trc: &'static str,
    pub drc: &'static str,
    pub datalog: &'static str,
}

/// The suite. All forms are parseable by the respective crates and agree
/// on every database (property-tested on generated instances).
pub const SUITE: &[SuiteQuery] = &[
    SuiteQuery {
        id: "Q1",
        description: "Names of sailors who reserved boat 102",
        sql: "SELECT DISTINCT S.sname FROM Sailor S, Reserves R \
              WHERE S.sid = R.sid AND R.bid = 102",
        ra: "Project[sname](Join(Sailor, Select[bid = 102](Reserves)))",
        trc: "{s.sname | Sailor(s) and exists r in Reserves: (r.sid = s.sid and r.bid = 102)}",
        drc: "{n | exists s, rt, a, d: (Sailor(s, n, rt, a) and Reserves(s, 102, d))}",
        datalog: "ans(N) :- Sailor(S, N, R, A), Reserves(S, 102, D).",
    },
    SuiteQuery {
        id: "Q2",
        description: "Names of sailors who reserved a red boat",
        sql: "SELECT DISTINCT S.sname FROM Sailor S, Reserves R, Boat B \
              WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'red'",
        ra: "Project[sname](Join(Sailor, Join(Reserves, \
             Project[bid](Select[color = 'red'](Boat)))))",
        trc: "{s.sname | Sailor(s) and exists r in Reserves, b in Boat: \
              (r.sid = s.sid and r.bid = b.bid and b.color = 'red')}",
        drc: "{n | exists s, rt, a, b, d, bn: (Sailor(s, n, rt, a) and \
              Reserves(s, b, d) and Boat(b, bn, 'red'))}",
        datalog: "ans(N) :- Sailor(S, N, R, A), Reserves(S, B, D), Boat(B, BN, 'red').",
    },
    SuiteQuery {
        id: "Q3",
        description: "Names of sailors who reserved a red or a green boat (disjunction)",
        sql: "SELECT S.sname FROM Sailor S, Reserves R, Boat B \
              WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'red' \
              UNION \
              SELECT S.sname FROM Sailor S, Reserves R, Boat B \
              WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'green'",
        ra: "Project[sname](Join(Sailor, Join(Reserves, Project[bid](\
             Select[color = 'red' OR color = 'green'](Boat)))))",
        trc: "{s.sname | Sailor(s) and exists r in Reserves, b in Boat: \
              (r.sid = s.sid and r.bid = b.bid and b.color = 'red')} \
              union \
              {s.sname | Sailor(s) and exists r in Reserves, b in Boat: \
              (r.sid = s.sid and r.bid = b.bid and b.color = 'green')}",
        drc: "{n | exists s, rt, a, b, d, bn, c: (Sailor(s, n, rt, a) and \
              Reserves(s, b, d) and Boat(b, bn, c) and (c = 'red' or c = 'green'))}",
        datalog: "ans(N) :- Sailor(S, N, R, A), Reserves(S, B, D), Boat(B, BN, 'red').\n\
                  ans(N) :- Sailor(S, N, R, A), Reserves(S, B, D), Boat(B, BN, 'green').",
    },
    SuiteQuery {
        id: "Q4",
        description: "Names of sailors who reserved no red boat (negation)",
        sql: "SELECT S.sname FROM Sailor S WHERE NOT EXISTS \
              (SELECT * FROM Reserves R, Boat B \
               WHERE R.sid = S.sid AND R.bid = B.bid AND B.color = 'red')",
        ra: "Project[sname](Join(Sailor, Difference(Project[sid](Sailor), \
             Project[sid](Join(Reserves, Project[bid](Select[color = 'red'](Boat)))))))",
        trc: "{s.sname | Sailor(s) and not exists r in Reserves, b in Boat: \
              (r.sid = s.sid and r.bid = b.bid and b.color = 'red')}",
        drc: "{n | exists s, rt, a: (Sailor(s, n, rt, a) and \
              not exists b, d, bn: (Reserves(s, b, d) and Boat(b, bn, 'red')))}",
        datalog: "% query: ans\n\
                  redres(S) :- Reserves(S, B, D), Boat(B, BN, 'red').\n\
                  ans(N) :- Sailor(S, N, R, A), not redres(S).",
    },
    SuiteQuery {
        id: "Q5",
        description: "Names of sailors who reserved ALL red boats (division / ∀)",
        sql: "SELECT S.sname FROM Sailor S WHERE NOT EXISTS \
              (SELECT * FROM Boat B WHERE B.color = 'red' AND NOT EXISTS \
                (SELECT * FROM Reserves R WHERE R.sid = S.sid AND R.bid = B.bid))",
        ra: "Project[sname](Join(Sailor, Division(Project[sid, bid](Reserves), \
             Project[bid](Select[color = 'red'](Boat)))))",
        trc: "{s.sname | Sailor(s) and not exists b in Boat: (b.color = 'red' and \
              not exists r in Reserves: (r.sid = s.sid and r.bid = b.bid))}",
        drc: "{n | exists s, rt, a: (Sailor(s, n, rt, a) and \
              not exists b, bn: (Boat(b, bn, 'red') and \
              not exists d: (Reserves(s, b, d))))}",
        datalog: "% query: ans\n\
                  res2(S, B) :- Reserves(S, B, D).\n\
                  missing(S) :- Sailor(S, N, R, A), Boat(B, BN, 'red'), not res2(S, B).\n\
                  ans(N) :- Sailor(S, N, R, A), not missing(S).",
    },
    SuiteQuery {
        id: "Q6",
        description: "Sailors who reserved ONLY red boats (nested negation)",
        sql: "SELECT S.sname FROM Sailor S WHERE NOT EXISTS \
              (SELECT * FROM Reserves R, Boat B \
               WHERE R.sid = S.sid AND R.bid = B.bid AND B.color <> 'red') \
              AND EXISTS (SELECT * FROM Reserves R2 WHERE R2.sid = S.sid)",
        ra: "Project[sname](Join(Sailor, Difference(Project[sid](Reserves), \
             Project[sid](Join(Reserves, Project[bid](Select[NOT color = 'red'](Boat)))))))",
        trc: "{s.sname | Sailor(s) and not exists r in Reserves, b in Boat: \
              (r.sid = s.sid and r.bid = b.bid and b.color <> 'red') \
              and exists r2 in Reserves: (r2.sid = s.sid)}",
        drc: "{n | exists s, rt, a: (Sailor(s, n, rt, a) and \
              not exists b, d, bn, c: (Reserves(s, b, d) and Boat(b, bn, c) and not c = 'red') \
              and exists b2, d2: (Reserves(s, b2, d2)))}",
        datalog: "% query: ans\n\
                  nonred(S) :- Reserves(S, B, D), Boat(B, BN, C), C != 'red'.\n\
                  hasres(S) :- Reserves(S, B, D).\n\
                  ans(N) :- Sailor(S, N, R, A), hasres(S), not nonred(S).",
    },
    SuiteQuery {
        id: "Q7",
        description: "Pairs of distinct sailors with the same rating (self-join)",
        sql: "SELECT S1.sname, S2.sname FROM Sailor S1, Sailor S2 \
              WHERE S1.rating = S2.rating AND S1.sid < S2.sid",
        ra: "Project[n1, n2](Select[r1 = r2 AND sid1 < sid2](Product(\
             Rename[sid -> sid1, sname -> n1, rating -> r1, age -> a1](Sailor), \
             Rename[sid -> sid2, sname -> n2, rating -> r2, age -> a2](Sailor))))",
        trc: "{s1.sname, s2.sname | Sailor(s1), Sailor(s2) and \
              s1.rating = s2.rating and s1.sid < s2.sid}",
        drc: "{n1, n2 | exists s1, r1, a1, s2, r2, a2: (Sailor(s1, n1, r1, a1) and \
              Sailor(s2, n2, r2, a2) and r1 = r2 and s1 < s2)}",
        datalog: "ans(N1, N2) :- Sailor(S1, N1, R1, A1), Sailor(S2, N2, R2, A2), \
                  R1 = R2, S1 < S2.",
    },
    SuiteQuery {
        id: "Q8",
        description: "Sailors with the highest rating (quantified comparison / ≥ ALL)",
        sql: "SELECT S.sname FROM Sailor S WHERE S.rating >= ALL \
              (SELECT S2.rating FROM Sailor S2)",
        ra: "Project[sname](Join(Sailor, Difference(Project[rating](Sailor), \
             Project[rating](Select[rating < r2](Product(Project[rating](Sailor), \
             Rename[rating -> r2](Project[rating](Sailor)))))))) ",
        trc: "{s.sname | Sailor(s) and not exists s2 in Sailor: (s.rating < s2.rating)}",
        drc: "{n | exists s, rt, a: (Sailor(s, n, rt, a) and \
              not exists s2, n2, rt2, a2: (Sailor(s2, n2, rt2, a2) and rt < rt2))}",
        datalog: "% query: ans\n\
                  beaten(R1) :- Sailor(S1, N1, R1, A1), Sailor(S2, N2, R2, A2), R1 < R2.\n\
                  ans(N) :- Sailor(S, N, R, A), not beaten(R).",
    },
];

/// Looks up a suite query by id (`"Q1"` … `"Q8"`).
pub fn by_id(id: &str) -> Option<&'static SuiteQuery> {
    SUITE.iter().find(|q| q.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relviz_model::catalog::sailors_sample;
    use relviz_model::Relation;

    /// Every form parses; all five evaluators agree.
    #[test]
    fn all_languages_agree_on_the_sample() {
        let db = sailors_sample();
        for q in SUITE {
            let via_sql = relviz_sql::eval::run_sql(q.sql, &db)
                .unwrap_or_else(|e| panic!("{} sql: {e}", q.id));
            let check = |name: &str, rel: Relation| {
                assert!(
                    via_sql.same_contents(&rel),
                    "{} {name} disagrees with SQL\nsql={via_sql}\n{name}={rel}",
                    q.id
                );
            };
            let ra = relviz_ra::parse::parse_ra(q.ra)
                .unwrap_or_else(|e| panic!("{} ra parse: {e}", q.id));
            check(
                "ra",
                relviz_ra::eval::eval(&ra, &db).unwrap_or_else(|e| panic!("{} ra: {e}", q.id)),
            );
            let trc = relviz_rc::trc_parse::parse_trc(q.trc)
                .unwrap_or_else(|e| panic!("{} trc parse: {e}", q.id));
            check(
                "trc",
                relviz_rc::trc_eval::eval_trc(&trc, &db)
                    .unwrap_or_else(|e| panic!("{} trc: {e}", q.id)),
            );
            let drc = relviz_rc::drc_parse::parse_drc(q.drc)
                .unwrap_or_else(|e| panic!("{} drc parse: {e}", q.id));
            check(
                "drc",
                relviz_rc::drc_eval::eval_drc(&drc, &db)
                    .unwrap_or_else(|e| panic!("{} drc: {e}", q.id)),
            );
            let dl = relviz_datalog::parse::parse_program(q.datalog)
                .unwrap_or_else(|e| panic!("{} datalog parse: {e}", q.id));
            check(
                "datalog",
                relviz_datalog::eval::eval_program(&dl, &db)
                    .unwrap_or_else(|e| panic!("{} datalog: {e}", q.id)),
            );
        }
    }

    #[test]
    fn expected_answers_on_the_sample() {
        let db = sailors_sample();
        let expect = [
            ("Q1", 3), // dustin, lubber, horatio
            ("Q2", 3),
            ("Q3", 3),
            ("Q4", 7),
            ("Q5", 2), // dustin, lubber
            ("Q7", 4),
            ("Q8", 2), // rusty, zorba
        ];
        for (id, n) in expect {
            let q = by_id(id).unwrap();
            let rel = relviz_sql::eval::run_sql(q.sql, &db).unwrap();
            assert_eq!(rel.len(), n, "{id}: {rel}");
        }
    }

    #[test]
    fn lookup() {
        assert!(by_id("Q5").is_some());
        assert!(by_id("Q99").is_none());
        assert_eq!(SUITE.len(), 8);
    }
}
