//! # relviz-core
//!
//! The unifying layer of the workspace — what the tutorial's Parts 1, 2
//! and 6 describe:
//!
//! * [`suite`] — the canonical sailors–reserves–boats queries (Q1–Q8) in
//!   all five textual languages, with machine-checked cross-language
//!   equivalence (experiment E2's substrate),
//! * [`pipeline`] — the end-to-end *query visualization* pipeline of
//!   Figs. 1–2: SQL → TRC → diagram → layout → SVG/ASCII,
//! * [`patterns`] — *relational query patterns* and pattern isomorphism
//!   (the "correspondence principle" of Part 2),
//! * [`principles`] — the principles of query visualization as executable
//!   checkers (unambiguity, invertibility, pattern preservation),
//! * [`lint`] — Part 6's "three abuses of the line" as a diagram linter.

pub mod lint;
pub mod patterns;
pub mod pipeline;
pub mod principles;
pub mod suite;

pub use pipeline::{Backend, Engine, PipelineOutput, QueryVisualizer, VisFormalism};
pub use suite::{SuiteQuery, SUITE};
