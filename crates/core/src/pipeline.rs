//! The end-to-end query-visualization pipeline of the tutorial's Figs. 1–2:
//! a (possibly machine-generated) SQL query comes in, a diagram the user
//! can verify comes out.
//!
//! ```text
//! SQL ──parse──▶ AST ──resolve──▶ TRC ──build──▶ diagram IR ──layout──▶ scene ──render──▶ SVG/ASCII
//! ```
//!
//! [`QueryVisualizer`] caches rendered queries (keyed by canonicalized
//! SQL plus formalism) behind a [`parking_lot::RwLock`], since interactive
//! use — the voice-assistant loop of Fig. 1 — re-renders the same query as
//! the user refines it.
//!
//! The pipeline also *executes* queries ([`QueryVisualizer::run`]): the
//! interactive path defaults to the physical engine
//! ([`Engine::Indexed`]) — diagrams explain the query, the engine
//! answers it — with [`QueryVisualizer::with_engine`] switching back to
//! the reference evaluator when an oracle is wanted.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use relviz_diagrams::{dataplay, dfql, qbd, qbe, queryvis, reldiag, sieuferd, sqlvis, stringdiag, tabletalk, visualsql};
pub use relviz_exec::{Engine, OptConfig};
use relviz_model::{Database, Relation};
use relviz_render::Scene;

use relviz_diagrams::{DiagError, DiagResult};

/// Which formalism to draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VisFormalism {
    QueryVis,
    RelationalDiagrams,
    Dfql,
    Qbe,
    StringDiagrams,
    VisualSql,
    SqlVis,
    TableTalk,
    DataPlay,
    Sieuferd,
    Qbd,
}

impl VisFormalism {
    pub const ALL: [VisFormalism; 11] = [
        VisFormalism::QueryVis,
        VisFormalism::RelationalDiagrams,
        VisFormalism::Dfql,
        VisFormalism::Qbe,
        VisFormalism::StringDiagrams,
        VisFormalism::VisualSql,
        VisFormalism::SqlVis,
        VisFormalism::TableTalk,
        VisFormalism::DataPlay,
        VisFormalism::Sieuferd,
        VisFormalism::Qbd,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            VisFormalism::QueryVis => "QueryVis",
            VisFormalism::RelationalDiagrams => "Relational Diagrams",
            VisFormalism::Dfql => "DFQL",
            VisFormalism::Qbe => "QBE",
            VisFormalism::StringDiagrams => "String diagrams",
            VisFormalism::VisualSql => "Visual SQL",
            VisFormalism::SqlVis => "SQLVis",
            VisFormalism::TableTalk => "TableTalk",
            VisFormalism::DataPlay => "DataPlay",
            VisFormalism::Sieuferd => "SIEUFERD",
            VisFormalism::Qbd => "QBD",
        }
    }
}

/// Output encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    Svg,
    Ascii,
}

/// A pipeline result.
#[derive(Debug, Clone)]
pub struct PipelineOutput {
    /// The canonicalized SQL (printer output of the parsed query).
    pub canonical_sql: String,
    /// The TRC form the diagram was built from (displayable).
    pub trc: String,
    /// The rendered diagram.
    pub rendering: String,
    /// The scene (for further processing).
    pub scene: Scene,
}

/// The visualizer: formalism + backend + execution engine + cache.
pub struct QueryVisualizer {
    formalism: VisFormalism,
    backend: Backend,
    engine: Engine,
    /// Explicit optimizer configuration; `None` defers to the
    /// process-wide default at call time.
    opt: Option<OptConfig>,
    cache: RwLock<HashMap<(String, VisFormalism, Backend), Arc<PipelineOutput>>>,
}

impl QueryVisualizer {
    /// A visualizer whose interactive execution path runs on the
    /// physical engine ([`Engine::Indexed`]).
    pub fn new(formalism: VisFormalism, backend: Backend) -> Self {
        QueryVisualizer {
            formalism,
            backend,
            engine: Engine::Indexed,
            opt: None,
            cache: RwLock::new(HashMap::new()),
        }
    }

    /// Overrides the execution engine (e.g. the reference oracle).
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Pins this visualizer's optimizer configuration, instead of the
    /// process-wide default — what concurrent hosts (the `relviz serve`
    /// daemon) use so one pipeline's `--no-opt` can't leak into
    /// another's execution.
    pub fn with_opt(mut self, cfg: OptConfig) -> Self {
        self.opt = Some(cfg);
        self
    }

    /// The engine [`run`](Self::run) executes on.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// The optimizer configuration execution uses: the pinned one, else
    /// the process-wide default.
    pub fn opt_config(&self) -> OptConfig {
        self.opt.unwrap_or_else(OptConfig::current)
    }

    /// Executes the SQL query on the pipeline's engine.
    ///
    /// [`Engine::Indexed`] runs the physical engine through the same
    /// SQL → TRC front door the visualization path uses (two-valued
    /// logic over the total order of values), and [`Engine::Parallel`]
    /// the partitioned parallel runtime over the same plans (results
    /// bit-identical to `Indexed`). [`Engine::Reference`] is the SQL
    /// *language's* own reference evaluator — including SQL's
    /// three-valued treatment of `NULL`, which the calculus translation
    /// does not model — so it remains the oracle for NULL-bearing data.
    pub fn run(&self, sql: &str, db: &Database) -> DiagResult<Relation> {
        match self.engine {
            Engine::Reference => relviz_sql::eval::run_sql(sql, db)
                .map_err(|e| DiagError::Lang(e.to_string())),
            engine @ (Engine::Indexed | Engine::Parallel(_)) => {
                relviz_exec::run_sql_with(engine, sql, db, self.opt_config())
                    .map_err(|e| DiagError::Lang(e.to_string()))
            }
        }
    }

    /// [`run`](Self::run), analyzed: executes the SQL query on the
    /// pipeline's engine with the exec layer's runtime instrumentation
    /// attached, returning the result alongside the per-operator stats
    /// report (`EXPLAIN ANALYZE`). The reference engine has no physical
    /// plan to instrument and surfaces as [`DiagError::Lang`].
    pub fn run_analyzed(
        &self,
        sql: &str,
        db: &Database,
    ) -> DiagResult<(Relation, relviz_exec::StatsReport)> {
        relviz_exec::run_sql_analyzed_with(self.engine, sql, db, self.opt_config())
            .map_err(|e| DiagError::Lang(e.to_string()))
    }

    /// Statically verifies the query's physical plan **without running
    /// it**: SQL goes through the same front door as
    /// [`run`](Self::run) (SQL → TRC → physical plan), then the exec
    /// layer's verifier ([`relviz_exec::verify_plan`]) walks every
    /// operator checking the IR contract — column bounds, join-key and
    /// set-operation arities, shared-subplan back-references. Returns
    /// the rendered verification report (the same footer `EXPLAIN`
    /// prints); a plan that fails — impossible for planner-emitted
    /// plans unless an engine invariant broke — surfaces as
    /// [`DiagError::Lang`] carrying the diagnostics.
    pub fn check(&self, sql: &str, db: &Database) -> DiagResult<String> {
        let parsed =
            relviz_sql::parse_query(sql).map_err(|e| DiagError::Lang(e.to_string()))?;
        let trc = relviz_rc::from_sql::sql_to_trc(&parsed, db)?;
        let plan = relviz_exec::plan_trc(&trc, db)
            .map_err(|e| DiagError::Lang(e.to_string()))?;
        let diags = relviz_exec::verify_plan(&plan, Some(db));
        let report = relviz_exec::verification_footer(plan.node_count(), &diags);
        if relviz_exec::error_count(&diags) > 0 {
            return Err(DiagError::Lang(report));
        }
        Ok(report)
    }

    /// Runs the full pipeline on a SQL string.
    pub fn visualize(&self, sql: &str, db: &Database) -> DiagResult<Arc<PipelineOutput>> {
        // Canonicalize first so syntactic variants share cache entries —
        // and, per the "syntax independence" principle, share diagrams.
        let parsed =
            relviz_sql::parse_query(sql).map_err(|e| DiagError::Lang(e.to_string()))?;
        let canonical = relviz_sql::print_query(&parsed);
        let key = (canonical.clone(), self.formalism, self.backend);
        if let Some(hit) = self.cache.read().get(&key) {
            return Ok(hit.clone());
        }

        let trc = relviz_rc::from_sql::sql_to_trc(&parsed, db)?;
        let scene = build_scene(self.formalism, &canonical, &trc, db)?;
        let rendering = match self.backend {
            Backend::Svg => relviz_render::svg::to_svg(&scene),
            Backend::Ascii => relviz_render::ascii::to_ascii(&scene),
        };
        let out = Arc::new(PipelineOutput {
            canonical_sql: canonical,
            trc: trc.to_string(),
            rendering,
            scene,
        });
        self.cache.write().insert(key, out.clone());
        Ok(out)
    }

    /// Cache entry count (for tests and cache-hit benchmarks).
    pub fn cached(&self) -> usize {
        self.cache.read().len()
    }
}

fn build_scene(
    formalism: VisFormalism,
    sql: &str,
    trc: &relviz_rc::TrcQuery,
    db: &Database,
) -> DiagResult<Scene> {
    match formalism {
        VisFormalism::QueryVis => {
            Ok(queryvis::QueryVisDiagram::from_trc(trc, db)?.scene())
        }
        VisFormalism::RelationalDiagrams => {
            Ok(reldiag::RelationalDiagram::from_trc(trc, db)?.scene())
        }
        VisFormalism::Dfql => {
            let ra = relviz_rc::to_ra::trc_to_ra(trc, db)?;
            let ra = relviz_ra::rewrite::optimize(&ra);
            Ok(dfql::DfqlDiagram::from_ra(&ra)?.scene())
        }
        VisFormalism::Qbe => {
            let ra = relviz_rc::to_ra::trc_to_ra(trc, db)?;
            let prog = relviz_datalog::translate::ra_to_datalog(&ra, db)?;
            Ok(qbe::QbeProgram::from_datalog(&prog, db)?.scene())
        }
        VisFormalism::StringDiagrams => {
            let drc = relviz_rc::to_drc::trc_to_drc(trc, db)?;
            Ok(stringdiag::StringDiagram::from_drc(&drc)?.scene())
        }
        // The syntax-mirroring family builds from the SQL text itself —
        // that is the point (E9).
        VisFormalism::VisualSql => Ok(visualsql::VisualSqlDiagram::from_sql(sql, db)?.scene()),
        VisFormalism::SqlVis => Ok(sqlvis::SqlVisDiagram::from_sql(sql, db)?.scene()),
        VisFormalism::TableTalk => Ok(tabletalk::TableTalkDiagram::from_sql(sql, db)?.scene()),
        VisFormalism::DataPlay => Ok(dataplay::DataPlayTree::from_trc(trc, db)?.scene()),
        VisFormalism::Sieuferd => Ok(sieuferd::SieuferdSheet::from_sql(sql, db)?.scene()),
        VisFormalism::Qbd => {
            Ok(qbd::QbdQuery::from_sql(sql, &qbd::ErSchema::sailors(), db)?.scene())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relviz_model::catalog::sailors_sample;

    const Q5: &str = "SELECT S.sname FROM Sailor S WHERE NOT EXISTS \
        (SELECT * FROM Boat B WHERE B.color = 'red' AND NOT EXISTS \
          (SELECT * FROM Reserves R WHERE R.sid = S.sid AND R.bid = B.bid))";

    #[test]
    fn pipeline_produces_svg_for_every_formalism() {
        // Q5 (division) for the FOL-complete and syntax-mirroring
        // formalisms; the conjunctive Q2 for the interfaces whose
        // fragment is conjunctive navigation (SIEUFERD, QBD).
        let db = sailors_sample();
        const Q2: &str = "SELECT DISTINCT S.sname FROM Sailor S, Reserves R, Boat B \
            WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'red'";
        for f in VisFormalism::ALL {
            let conjunctive_only =
                matches!(f, VisFormalism::Sieuferd | VisFormalism::Qbd);
            let sql = if conjunctive_only { Q2 } else { Q5 };
            let viz = QueryVisualizer::new(f, Backend::Svg);
            let out = viz
                .visualize(sql, &db)
                .unwrap_or_else(|e| panic!("{}: {e}", f.name()));
            assert!(out.rendering.starts_with("<svg"), "{}", f.name());
            if !conjunctive_only {
                assert!(out.trc.contains("not exists"), "{}", f.name());
            }
        }
    }

    #[test]
    fn conjunctive_interfaces_reject_q5_with_named_feature() {
        let db = sailors_sample();
        for f in [VisFormalism::Sieuferd, VisFormalism::Qbd] {
            let viz = QueryVisualizer::new(f, Backend::Svg);
            let err = viz.visualize(Q5, &db).unwrap_err();
            assert!(
                matches!(err, DiagError::Unsupported { .. }),
                "{}: {err}",
                f.name()
            );
        }
    }

    #[test]
    fn run_defaults_to_the_physical_engine_and_agrees_with_the_oracle() {
        let db = sailors_sample();
        let viz = QueryVisualizer::new(VisFormalism::RelationalDiagrams, Backend::Ascii);
        assert_eq!(viz.engine(), Engine::Indexed);
        let fast = viz.run(Q5, &db).unwrap();
        let oracle = QueryVisualizer::new(VisFormalism::RelationalDiagrams, Backend::Ascii)
            .with_engine(Engine::Reference)
            .run(Q5, &db)
            .unwrap();
        assert!(fast.same_contents(&oracle));
        assert_eq!(fast.len(), 2); // dustin, lubber
        // The reference engine is the SQL evaluator itself (3VL oracle).
        let sql_direct = relviz_sql::eval::run_sql(Q5, &db).unwrap();
        assert!(oracle.same_contents(&sql_direct));
    }

    #[test]
    fn parallel_engine_runs_through_the_pipeline_bit_identically() {
        let db = sailors_sample();
        let exec = QueryVisualizer::new(VisFormalism::RelationalDiagrams, Backend::Ascii)
            .run(Q5, &db)
            .unwrap();
        for threads in [1, 4] {
            let par = QueryVisualizer::new(VisFormalism::RelationalDiagrams, Backend::Ascii)
                .with_engine(Engine::Parallel(threads))
                .run(Q5, &db)
                .unwrap();
            assert!(par.same_contents(&exec));
            assert_eq!(format!("{par}"), format!("{exec}"), "threads={threads}");
        }
    }

    #[test]
    fn with_opt_pins_the_configuration_per_visualizer() {
        let db = sailors_sample();
        let q = "SELECT S.sname FROM Sailor S WHERE S.rating > 7";
        let plain = QueryVisualizer::new(VisFormalism::RelationalDiagrams, Backend::Ascii)
            .with_opt(OptConfig::unoptimized());
        let tuned = QueryVisualizer::new(VisFormalism::RelationalDiagrams, Backend::Ascii)
            .with_opt(OptConfig::optimized());
        let (rel_a, rep_a) = plain.run_analyzed(q, &db).unwrap();
        let (rel_b, rep_b) = tuned.run_analyzed(q, &db).unwrap();
        assert!(!rep_a.optimized);
        assert!(rep_b.optimized);
        assert!(rel_a.same_contents(&rel_b));
    }

    #[test]
    fn ascii_backend_renders() {
        let db = sailors_sample();
        let viz = QueryVisualizer::new(VisFormalism::RelationalDiagrams, Backend::Ascii);
        let out = viz.visualize("SELECT S.sname FROM Sailor S WHERE S.rating > 7", &db).unwrap();
        assert!(out.rendering.contains("Sailor"), "{}", out.rendering);
    }

    #[test]
    fn syntactic_variants_share_cache_entries() {
        let db = sailors_sample();
        let viz = QueryVisualizer::new(VisFormalism::QueryVis, Backend::Svg);
        let a = viz.visualize("SELECT S.sname FROM Sailor S WHERE S.rating > 7", &db).unwrap();
        // whitespace/case variants canonicalize identically
        let b = viz
            .visualize("select  S.sname  from Sailor S  where S.rating > 7", &db)
            .unwrap();
        assert_eq!(viz.cached(), 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn unsupported_features_surface_cleanly() {
        let db = sailors_sample();
        let viz = QueryVisualizer::new(VisFormalism::QueryVis, Backend::Svg);
        let r = viz.visualize(
            "SELECT S.sid FROM Sailor S UNION SELECT B.bid FROM Boat B",
            &db,
        );
        assert!(matches!(r, Err(DiagError::Unsupported { .. })));
    }
}
