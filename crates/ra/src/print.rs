//! Pretty-printers for RA expressions.
//!
//! * [`print_ra`] — ASCII linear notation; `parse_ra ∘ print_ra = id`
//!   (property-tested).
//! * [`print_ra_unicode`] — σ/π/ρ/⋈ blackboard style for display; also
//!   re-parseable because the parser accepts the unicode aliases.
//! * [`print_ra_tree`] — indented operator tree, the textual skeleton of
//!   the DFQL dataflow view.

use std::fmt::Write as _;

use crate::expr::{Predicate, RaExpr};

/// ASCII function-style notation.
pub fn print_ra(e: &RaExpr) -> String {
    let mut s = String::new();
    write_expr(&mut s, e, false);
    s
}

/// Unicode operator symbols (σ, π, ρ, ×, ⋈, ∪, ∩, −, ÷).
pub fn print_ra_unicode(e: &RaExpr) -> String {
    let mut s = String::new();
    write_expr(&mut s, e, true);
    s
}

fn op_name(ascii: &'static str, uni: &'static str, unicode: bool) -> &'static str {
    if unicode {
        uni
    } else {
        ascii
    }
}

fn write_expr(out: &mut String, e: &RaExpr, uni: bool) {
    match e {
        RaExpr::Relation(n) => out.push_str(n),
        RaExpr::Select { pred, input } => {
            let _ = write!(out, "{}[", op_name("Select", "σ", uni));
            write_pred(out, pred, 0, uni);
            out.push_str("](");
            write_expr(out, input, uni);
            out.push(')');
        }
        RaExpr::Project { attrs, input } => {
            let _ = write!(out, "{}[{}](", op_name("Project", "π", uni), attrs.join(", "));
            write_expr(out, input, uni);
            out.push(')');
        }
        RaExpr::Rename { from, to, input } => {
            let arrow = if uni { "→" } else { "->" };
            let _ = write!(out, "{}[{from} {arrow} {to}](", op_name("Rename", "ρ", uni));
            write_expr(out, input, uni);
            out.push(')');
        }
        RaExpr::ThetaJoin { pred, left, right } => {
            out.push_str("ThetaJoin[");
            write_pred(out, pred, 0, uni);
            out.push_str("](");
            write_expr(out, left, uni);
            out.push_str(", ");
            write_expr(out, right, uni);
            out.push(')');
        }
        RaExpr::Product(l, r) => write_binary(out, op_name("Product", "×", uni), l, r, uni),
        RaExpr::NaturalJoin(l, r) => write_binary(out, op_name("Join", "⋈", uni), l, r, uni),
        RaExpr::Union(l, r) => write_binary(out, op_name("Union", "∪", uni), l, r, uni),
        RaExpr::Intersect(l, r) => write_binary(out, op_name("Intersect", "∩", uni), l, r, uni),
        RaExpr::Difference(l, r) => write_binary(out, op_name("Difference", "−", uni), l, r, uni),
        RaExpr::Division(l, r) => write_binary(out, op_name("Division", "÷", uni), l, r, uni),
    }
}

fn write_binary(out: &mut String, name: &str, l: &RaExpr, r: &RaExpr, uni: bool) {
    let _ = write!(out, "{name}(");
    write_expr(out, l, uni);
    out.push_str(", ");
    write_expr(out, r, uni);
    out.push(')');
}

/// Precedence: OR = 1, AND = 2, NOT = 3, atoms = 4.
fn pred_prec(p: &Predicate) -> u8 {
    match p {
        Predicate::Or(_, _) => 1,
        Predicate::And(_, _) => 2,
        Predicate::Not(_) => 3,
        _ => 4,
    }
}

fn write_pred(out: &mut String, p: &Predicate, parent: u8, uni: bool) {
    let prec = pred_prec(p);
    let parens = prec < parent;
    if parens {
        out.push('(');
    }
    match p {
        Predicate::Or(a, b) => {
            write_pred(out, a, 1, uni);
            out.push_str(if uni { " ∨ " } else { " OR " });
            write_pred(out, b, 2, uni);
        }
        Predicate::And(a, b) => {
            write_pred(out, a, 2, uni);
            out.push_str(if uni { " ∧ " } else { " AND " });
            write_pred(out, b, 3, uni);
        }
        Predicate::Not(a) => {
            out.push_str(if uni { "¬" } else { "NOT " });
            write_pred(out, a, 4, uni);
        }
        Predicate::Cmp { left, op, right } => {
            let sym = if uni { op.math_symbol() } else { op.symbol() };
            let _ = write!(out, "{left} {sym} {right}");
        }
        Predicate::Const(b) => out.push_str(if *b { "TRUE" } else { "FALSE" }),
    }
    if parens {
        out.push(')');
    }
}

/// Indented operator-tree rendering (one node per line).
pub fn print_ra_tree(e: &RaExpr) -> String {
    let mut s = String::new();
    tree(&mut s, e, 0);
    s
}

fn tree(out: &mut String, e: &RaExpr, depth: usize) {
    let pad = "  ".repeat(depth);
    match e {
        RaExpr::Relation(n) => {
            let _ = writeln!(out, "{pad}{n}");
        }
        RaExpr::Select { pred, input } => {
            let mut ps = String::new();
            write_pred(&mut ps, pred, 0, true);
            let _ = writeln!(out, "{pad}σ[{ps}]");
            tree(out, input, depth + 1);
        }
        RaExpr::Project { attrs, input } => {
            let _ = writeln!(out, "{pad}π[{}]", attrs.join(", "));
            tree(out, input, depth + 1);
        }
        RaExpr::Rename { from, to, input } => {
            let _ = writeln!(out, "{pad}ρ[{from} → {to}]");
            tree(out, input, depth + 1);
        }
        RaExpr::ThetaJoin { pred, left, right } => {
            let mut ps = String::new();
            write_pred(&mut ps, pred, 0, true);
            let _ = writeln!(out, "{pad}⋈θ[{ps}]");
            tree(out, left, depth + 1);
            tree(out, right, depth + 1);
        }
        RaExpr::Product(l, r) => tree_binary(out, "×", l, r, depth),
        RaExpr::NaturalJoin(l, r) => tree_binary(out, "⋈", l, r, depth),
        RaExpr::Union(l, r) => tree_binary(out, "∪", l, r, depth),
        RaExpr::Intersect(l, r) => tree_binary(out, "∩", l, r, depth),
        RaExpr::Difference(l, r) => tree_binary(out, "−", l, r, depth),
        RaExpr::Division(l, r) => tree_binary(out, "÷", l, r, depth),
    }
}

fn tree_binary(out: &mut String, name: &str, l: &RaExpr, r: &RaExpr, depth: usize) {
    let pad = "  ".repeat(depth);
    let _ = writeln!(out, "{pad}{name}");
    tree(out, l, depth + 1);
    tree(out, r, depth + 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_ra;

    fn rt(s: &str) {
        let e = parse_ra(s).unwrap();
        let printed = print_ra(&e);
        let back = parse_ra(&printed).unwrap_or_else(|err| panic!("`{printed}`: {err}"));
        assert_eq!(e, back, "ascii round trip failed for `{s}`");
        // unicode form must re-parse to the same tree, too
        let uni = print_ra_unicode(&e);
        let back2 = parse_ra(&uni).unwrap_or_else(|err| panic!("`{uni}`: {err}"));
        assert_eq!(e, back2, "unicode round trip failed for `{s}`");
    }

    #[test]
    fn round_trips() {
        for s in [
            "Sailor",
            "Project[sname](Select[rating > 7](Sailor))",
            "Rename[sid -> sid2](Sailor)",
            "ThetaJoin[s_sid = sid AND (bid = 102 OR NOT color = 'red')](Sailor, Reserves)",
            "Division(Project[sid, bid](Reserves), Project[bid](Select[color = 'red'](Boat)))",
            "Union(Project[sid](Sailor), Intersect(Project[sid](Reserves), Project[sid](Sailor)))",
            "Select[TRUE AND NOT FALSE](Sailor)",
            "Select[age >= 35.5 OR sname = 'it''s'](Sailor)",
        ] {
            rt(s);
        }
    }

    #[test]
    fn tree_rendering() {
        let e = parse_ra("Project[sname](Join(Sailor, Reserves))").unwrap();
        let t = print_ra_tree(&e);
        assert_eq!(t, "π[sname]\n  ⋈\n    Sailor\n    Reserves\n");
    }

    #[test]
    fn unicode_output_shape() {
        let e = parse_ra("Project[sname](Select[rating > 7](Sailor))").unwrap();
        assert_eq!(print_ra_unicode(&e), "π[sname](σ[rating > 7](Sailor))");
    }
}
