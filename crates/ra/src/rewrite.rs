//! Algebraic rewrites: the classic equivalences of Relational Algebra,
//! applied bottom-up to a fixpoint.
//!
//! These serve two purposes in the workspace:
//! 1. a small optimizer (selection pushdown, cascade merging) exercised by
//!    benchmark S1, and
//! 2. a *semantic test bed*: property tests check `eval(e) = eval(rewrite(e))`
//!    on random expressions — the algebra's laws, machine-checked.

use crate::expr::{Predicate, RaExpr};

/// Applies all rewrites bottom-up until a fixpoint is reached.
pub fn optimize(e: &RaExpr) -> RaExpr {
    let mut cur = e.clone();
    loop {
        let next = pass(&cur);
        if next == cur {
            return cur;
        }
        cur = next;
    }
}

/// One bottom-up rewrite pass.
fn pass(e: &RaExpr) -> RaExpr {
    // Rewrite children first.
    let e = map_children(e, &pass);
    rewrite_node(&e)
}

fn map_children(e: &RaExpr, f: &dyn Fn(&RaExpr) -> RaExpr) -> RaExpr {
    match e {
        RaExpr::Relation(_) => e.clone(),
        RaExpr::Select { pred, input } => {
            RaExpr::Select { pred: simplify_pred(pred), input: Box::new(f(input)) }
        }
        RaExpr::Project { attrs, input } => {
            RaExpr::Project { attrs: attrs.clone(), input: Box::new(f(input)) }
        }
        RaExpr::Rename { from, to, input } => {
            RaExpr::Rename { from: from.clone(), to: to.clone(), input: Box::new(f(input)) }
        }
        RaExpr::ThetaJoin { pred, left, right } => RaExpr::ThetaJoin {
            pred: simplify_pred(pred),
            left: Box::new(f(left)),
            right: Box::new(f(right)),
        },
        RaExpr::Product(l, r) => RaExpr::Product(Box::new(f(l)), Box::new(f(r))),
        RaExpr::NaturalJoin(l, r) => RaExpr::NaturalJoin(Box::new(f(l)), Box::new(f(r))),
        RaExpr::Union(l, r) => RaExpr::Union(Box::new(f(l)), Box::new(f(r))),
        RaExpr::Intersect(l, r) => RaExpr::Intersect(Box::new(f(l)), Box::new(f(r))),
        RaExpr::Difference(l, r) => RaExpr::Difference(Box::new(f(l)), Box::new(f(r))),
        RaExpr::Division(l, r) => RaExpr::Division(Box::new(f(l)), Box::new(f(r))),
    }
}

fn rewrite_node(e: &RaExpr) -> RaExpr {
    match e {
        // σ_true(e) = e
        RaExpr::Select { pred: Predicate::Const(true), input } => (**input).clone(),
        // σ_p(σ_q(e)) = σ_{p ∧ q}(e)   (cascade of selections)
        RaExpr::Select { pred, input } => match &**input {
            RaExpr::Select { pred: inner, input: inner_input } => RaExpr::Select {
                pred: pred.clone().and(inner.clone()),
                input: inner_input.clone(),
            },
            // σ_p(A × B) = A ⋈_p B     (selection over product becomes θ-join)
            RaExpr::Product(l, r) => {
                RaExpr::ThetaJoin { pred: pred.clone(), left: l.clone(), right: r.clone() }
            }
            // σ_p(A ∪ B) = σ_p(A) ∪ σ_p(B), same for ∩ and −
            RaExpr::Union(l, r) => RaExpr::Union(
                Box::new(RaExpr::Select { pred: pred.clone(), input: l.clone() }),
                Box::new(RaExpr::Select { pred: pred.clone(), input: r.clone() }),
            ),
            RaExpr::Intersect(l, r) => RaExpr::Intersect(
                Box::new(RaExpr::Select { pred: pred.clone(), input: l.clone() }),
                Box::new(RaExpr::Select { pred: pred.clone(), input: r.clone() }),
            ),
            RaExpr::Difference(l, r) => RaExpr::Difference(
                Box::new(RaExpr::Select { pred: pred.clone(), input: l.clone() }),
                Box::new(RaExpr::Select { pred: pred.clone(), input: r.clone() }),
            ),
            // σ_p(σθ-join) with conjunctive merge
            RaExpr::ThetaJoin { pred: jp, left, right } => RaExpr::ThetaJoin {
                pred: pred.clone().and(jp.clone()),
                left: left.clone(),
                right: right.clone(),
            },
            _ => e.clone(),
        },
        // π_a(π_b(e)) = π_a(e) when a ⊆ b   (cascade of projections)
        RaExpr::Project { attrs, input } => match &**input {
            RaExpr::Project { attrs: inner_attrs, input: inner_input }
                if attrs.iter().all(|a| inner_attrs.contains(a)) =>
            {
                RaExpr::Project { attrs: attrs.clone(), input: inner_input.clone() }
            }
            _ => e.clone(),
        },
        _ => e.clone(),
    }
}

/// Boolean simplifications on predicates.
pub fn simplify_pred(p: &Predicate) -> Predicate {
    match p {
        Predicate::Not(inner) => match simplify_pred(inner) {
            // ¬¬p = p
            Predicate::Not(q) => *q,
            // ¬(a op b) = a negate(op) b
            Predicate::Cmp { left, op, right } => {
                Predicate::Cmp { left, op: op.negate(), right }
            }
            Predicate::Const(b) => Predicate::Const(!b),
            other => other.not(),
        },
        Predicate::And(a, b) => {
            let (a, b) = (simplify_pred(a), simplify_pred(b));
            match (&a, &b) {
                (Predicate::Const(true), _) => b,
                (_, Predicate::Const(true)) => a,
                (Predicate::Const(false), _) | (_, Predicate::Const(false)) => {
                    Predicate::Const(false)
                }
                _ => a.and(b),
            }
        }
        Predicate::Or(a, b) => {
            let (a, b) = (simplify_pred(a), simplify_pred(b));
            match (&a, &b) {
                (Predicate::Const(false), _) => b,
                (_, Predicate::Const(false)) => a,
                (Predicate::Const(true), _) | (_, Predicate::Const(true)) => {
                    Predicate::Const(true)
                }
                _ => a.or(b),
            }
        }
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use crate::expr::{Operand as O, Predicate as P};
    use crate::parse::parse_ra;
    use relviz_model::catalog::sailors_sample;
    use relviz_model::CmpOp;

    fn check_preserves(src: &str) {
        let db = sailors_sample();
        let e = parse_ra(src).unwrap();
        let o = optimize(&e);
        let before = eval(&e, &db).unwrap();
        let after = eval(&o, &db).unwrap();
        assert!(
            before.same_contents(&after),
            "optimize changed semantics of `{src}`:\nbefore={before}\nafter={after}"
        );
    }

    #[test]
    fn select_over_product_becomes_join() {
        let e = parse_ra(
            "Select[s_sid = sid](Product(Rename[sid -> s_sid](Sailor), Reserves))",
        )
        .unwrap();
        let o = optimize(&e);
        assert!(matches!(o, RaExpr::ThetaJoin { .. }), "{o:?}");
        check_preserves("Select[s_sid = sid](Product(Rename[sid -> s_sid](Sailor), Reserves))");
    }

    #[test]
    fn selection_cascade_merges() {
        let e = parse_ra("Select[rating > 7](Select[age < 60](Sailor))").unwrap();
        let o = optimize(&e);
        let RaExpr::Select { pred, input } = &o else { panic!("{o:?}") };
        assert_eq!(pred.conjuncts().len(), 2);
        assert!(matches!(**input, RaExpr::Relation(_)));
        check_preserves("Select[rating > 7](Select[age < 60](Sailor))");
    }

    #[test]
    fn projection_cascade() {
        let e = parse_ra("Project[sname](Project[sname, rating](Sailor))").unwrap();
        let o = optimize(&e);
        assert_eq!(o, parse_ra("Project[sname](Sailor)").unwrap());
        check_preserves("Project[sname](Project[sname, rating](Sailor))");
    }

    #[test]
    fn projection_cascade_requires_subset() {
        // π_{sname,rating}(π_sname(…)) is ill-typed; the subset guard must
        // not fire in the other direction. Here attrs ⊄ inner, no rewrite:
        let e = RaExpr::relation("Sailor")
            .project(vec!["sname"])
            .project(vec!["sname"]);
        assert_eq!(optimize(&e), parse_ra("Project[sname](Sailor)").unwrap());
    }

    #[test]
    fn select_distributes_over_set_ops() {
        for op in ["Union", "Intersect", "Difference"] {
            let src = format!(
                "Select[sid > 30]({op}(Project[sid](Sailor), Project[sid](Reserves)))"
            );
            let e = parse_ra(&src).unwrap();
            let o = optimize(&e);
            // selection must have been pushed below the set operation
            assert!(
                !matches!(o, RaExpr::Select { .. }),
                "selection not pushed for {op}: {o:?}"
            );
            check_preserves(&src);
        }
    }

    #[test]
    fn true_selection_removed() {
        let e = parse_ra("Select[TRUE](Sailor)").unwrap();
        assert_eq!(optimize(&e), RaExpr::relation("Sailor"));
    }

    #[test]
    fn predicate_simplification() {
        // ¬¬p = p
        let p = P::eq(O::attr("a"), O::val(1)).not().not();
        assert_eq!(simplify_pred(&p), P::eq(O::attr("a"), O::val(1)));
        // ¬(a < b) = a >= b
        let p = P::cmp(O::attr("a"), CmpOp::Lt, O::val(1)).not();
        assert_eq!(simplify_pred(&p), P::cmp(O::attr("a"), CmpOp::Ge, O::val(1)));
        // constants fold
        let p = P::Const(true).and(P::eq(O::attr("a"), O::val(1)));
        assert_eq!(simplify_pred(&p), P::eq(O::attr("a"), O::val(1)));
        let p = P::Const(false).or(P::Const(false));
        assert_eq!(simplify_pred(&p), P::Const(false));
    }

    #[test]
    fn division_and_joins_untouched_but_preserved() {
        check_preserves(
            "Division(Project[sid, bid](Reserves), Project[bid](Select[color = 'red'](Boat)))",
        );
        check_preserves("Join(Sailor, Reserves)");
    }

    #[test]
    fn optimizer_is_idempotent() {
        for src in [
            "Select[rating > 7](Select[age < 60](Sailor))",
            "Select[s_sid = sid](Product(Rename[sid -> s_sid](Sailor), Reserves))",
            "Project[sname](Project[sname, rating](Sailor))",
        ] {
            let o1 = optimize(&parse_ra(src).unwrap());
            let o2 = optimize(&o1);
            assert_eq!(o1, o2);
        }
    }
}
