//! Set-semantics evaluator for RA expressions.
//!
//! Straightforward operational semantics: every operator materializes its
//! result relation. Joins use hash partitioning on the join attributes;
//! everything else is a scan. This is the *reference* engine — the rewrite
//! module's property tests check optimized plans against it.

use std::collections::HashMap;

use relviz_model::{Database, Relation, Schema, Tuple, Value};

use crate::error::{RaError, RaResult};
use crate::expr::{Operand, Predicate, RaExpr};
use crate::typing::schema_of;

/// Evaluates `expr` against `db` (type-checking first).
pub fn eval(expr: &RaExpr, db: &Database) -> RaResult<Relation> {
    schema_of(expr, db)?; // surface type errors with good messages first
    eval_unchecked(expr, db)
}

/// Evaluates without the upfront type check (used internally/recursively —
/// the public [`eval`] checks once at the root).
pub fn eval_unchecked(expr: &RaExpr, db: &Database) -> RaResult<Relation> {
    match expr {
        RaExpr::Relation(name) => Ok(db.relation(name)?.clone()),
        RaExpr::Select { pred, input } => {
            let rel = eval_unchecked(input, db)?;
            let mut out = Relation::empty(rel.schema().clone());
            let compiled = compile_predicate(pred, rel.schema())?;
            for t in rel.iter() {
                if eval_predicate(&compiled, t) {
                    out.insert_unchecked(t.clone());
                }
            }
            Ok(out)
        }
        RaExpr::Project { attrs, input } => {
            let rel = eval_unchecked(input, db)?;
            let names: Vec<&str> = attrs.iter().map(String::as_str).collect();
            let schema = rel
                .schema()
                .project(&names)
                .map_err(|e| RaError::Type(e.to_string()))?;
            let positions: Vec<usize> = names
                .iter()
                .map(|n| rel.schema().index_of(n).expect("validated by project"))
                .collect();
            let mut out = Relation::empty(schema);
            for t in rel.iter() {
                out.insert_unchecked(t.project(&positions));
            }
            Ok(out)
        }
        RaExpr::Rename { from, to, input } => {
            let rel = eval_unchecked(input, db)?;
            let schema = rel
                .schema()
                .rename(from, to)
                .map_err(|e| RaError::Type(e.to_string()))?;
            rel.with_schema(schema).map_err(|e| RaError::Eval(e.to_string()))
        }
        RaExpr::Product(l, r) => {
            let lr = eval_unchecked(l, db)?;
            let rr = eval_unchecked(r, db)?;
            let schema = lr
                .schema()
                .product(rr.schema())
                .map_err(|e| RaError::Type(e.to_string()))?;
            let mut out = Relation::empty(schema);
            for a in lr.iter() {
                for b in rr.iter() {
                    out.insert_unchecked(a.concat(b));
                }
            }
            Ok(out)
        }
        RaExpr::NaturalJoin(l, r) => {
            let lr = eval_unchecked(l, db)?;
            let rr = eval_unchecked(r, db)?;
            natural_join(&lr, &rr)
        }
        RaExpr::ThetaJoin { pred, left, right } => {
            let lr = eval_unchecked(left, db)?;
            let rr = eval_unchecked(right, db)?;
            let schema = lr
                .schema()
                .product(rr.schema())
                .map_err(|e| RaError::Type(e.to_string()))?;
            let compiled = compile_predicate(pred, &schema)?;
            let mut out = Relation::empty(schema);
            for a in lr.iter() {
                for b in rr.iter() {
                    let t = a.concat(b);
                    if eval_predicate(&compiled, &t) {
                        out.insert_unchecked(t);
                    }
                }
            }
            Ok(out)
        }
        RaExpr::Union(l, r) => {
            let lr = eval_unchecked(l, db)?;
            let rr = eval_unchecked(r, db)?;
            let mut out = Relation::empty(lr.schema().clone());
            for t in lr.iter().chain(rr.iter()) {
                out.insert_unchecked(t.clone());
            }
            Ok(out)
        }
        RaExpr::Intersect(l, r) => {
            let lr = eval_unchecked(l, db)?;
            let rr = eval_unchecked(r, db)?;
            let mut out = Relation::empty(lr.schema().clone());
            for t in lr.iter() {
                if rr.contains(t) {
                    out.insert_unchecked(t.clone());
                }
            }
            Ok(out)
        }
        RaExpr::Difference(l, r) => {
            let lr = eval_unchecked(l, db)?;
            let rr = eval_unchecked(r, db)?;
            let mut out = Relation::empty(lr.schema().clone());
            for t in lr.iter() {
                if !rr.contains(t) {
                    out.insert_unchecked(t.clone());
                }
            }
            Ok(out)
        }
        RaExpr::Division(l, r) => {
            let lr = eval_unchecked(l, db)?;
            let rr = eval_unchecked(r, db)?;
            division(&lr, &rr)
        }
    }
}

/// Natural join via hashing on the shared attributes.
fn natural_join(lr: &Relation, rr: &Relation) -> RaResult<Relation> {
    let shared: Vec<String> = lr
        .schema()
        .common_names(rr.schema())
        .into_iter()
        .map(String::from)
        .collect();
    let l_pos: Vec<usize> = shared
        .iter()
        .map(|n| lr.schema().index_of(n).expect("shared name"))
        .collect();
    let r_pos: Vec<usize> = shared
        .iter()
        .map(|n| rr.schema().index_of(n).expect("shared name"))
        .collect();
    // Right-only attribute positions, for concatenation.
    let r_only: Vec<usize> = rr
        .schema()
        .attrs()
        .iter()
        .enumerate()
        .filter(|(_, a)| lr.schema().index_of(&a.name).is_none())
        .map(|(i, _)| i)
        .collect();

    let mut attrs = lr.schema().attrs().to_vec();
    for &i in &r_only {
        attrs.push(rr.schema().attrs()[i].clone());
    }
    let schema = Schema::new(attrs).map_err(|e| RaError::Type(e.to_string()))?;

    // Build hash index on the right side.
    let mut index: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::new();
    for t in rr.iter() {
        let key: Vec<Value> = r_pos.iter().map(|&i| t.values()[i].clone()).collect();
        index.entry(key).or_default().push(t);
    }

    let mut out = Relation::empty(schema);
    for a in lr.iter() {
        let key: Vec<Value> = l_pos.iter().map(|&i| a.values()[i].clone()).collect();
        if let Some(matches) = index.get(&key) {
            for b in matches {
                let mut vals = a.values().to_vec();
                for &i in &r_only {
                    vals.push(b.values()[i].clone());
                }
                out.insert_unchecked(Tuple::new(vals));
            }
        }
    }
    Ok(out)
}

/// Relational division `lr ÷ rr`.
fn division(lr: &Relation, rr: &Relation) -> RaResult<Relation> {
    // Quotient = attributes of lr not in rr (by name).
    let quot_pos: Vec<usize> = lr
        .schema()
        .attrs()
        .iter()
        .enumerate()
        .filter(|(_, a)| rr.schema().index_of(&a.name).is_none())
        .map(|(i, _)| i)
        .collect();
    let div_pos_l: Vec<usize> = rr
        .schema()
        .attrs()
        .iter()
        .map(|a| {
            lr.schema()
                .index_of(&a.name)
                .ok_or_else(|| RaError::Type(format!("divisor attribute `{}` missing", a.name)))
        })
        .collect::<RaResult<_>>()?;

    let quot_attrs: Vec<_> = quot_pos.iter().map(|&i| lr.schema().attrs()[i].clone()).collect();
    let schema = Schema::new(quot_attrs).map_err(|e| RaError::Type(e.to_string()))?;

    // Group divisor-part tuples by quotient-part key.
    let mut groups: HashMap<Vec<Value>, Vec<Vec<Value>>> = HashMap::new();
    for t in lr.iter() {
        let key: Vec<Value> = quot_pos.iter().map(|&i| t.values()[i].clone()).collect();
        let val: Vec<Value> = div_pos_l.iter().map(|&i| t.values()[i].clone()).collect();
        groups.entry(key).or_default().push(val);
    }

    let divisor: Vec<Vec<Value>> = rr.iter().map(|t| t.values().to_vec()).collect();
    let mut out = Relation::empty(schema);
    for (key, vals) in groups {
        if divisor.iter().all(|d| vals.contains(d)) {
            out.insert_unchecked(Tuple::new(key));
        }
    }
    Ok(out)
}

/// A predicate with attribute names resolved to positions.
pub(crate) enum CompiledPred {
    Cmp { left: CompiledOperand, op: relviz_model::CmpOp, right: CompiledOperand },
    And(Box<CompiledPred>, Box<CompiledPred>),
    Or(Box<CompiledPred>, Box<CompiledPred>),
    Not(Box<CompiledPred>),
    Const(bool),
}

pub(crate) enum CompiledOperand {
    Pos(usize),
    Const(Value),
}

pub(crate) fn compile_predicate(pred: &Predicate, schema: &Schema) -> RaResult<CompiledPred> {
    Ok(match pred {
        Predicate::Const(b) => CompiledPred::Const(*b),
        Predicate::Not(p) => CompiledPred::Not(Box::new(compile_predicate(p, schema)?)),
        Predicate::And(a, b) => CompiledPred::And(
            Box::new(compile_predicate(a, schema)?),
            Box::new(compile_predicate(b, schema)?),
        ),
        Predicate::Or(a, b) => CompiledPred::Or(
            Box::new(compile_predicate(a, schema)?),
            Box::new(compile_predicate(b, schema)?),
        ),
        Predicate::Cmp { left, op, right } => CompiledPred::Cmp {
            left: compile_operand(left, schema)?,
            op: *op,
            right: compile_operand(right, schema)?,
        },
    })
}

fn compile_operand(op: &Operand, schema: &Schema) -> RaResult<CompiledOperand> {
    Ok(match op {
        Operand::Const(v) => CompiledOperand::Const(v.clone()),
        Operand::Attr(name) => CompiledOperand::Pos(
            schema
                .index_of(name)
                .ok_or_else(|| RaError::Type(format!("unknown attribute `{name}`")))?,
        ),
    })
}

pub(crate) fn eval_predicate(pred: &CompiledPred, t: &Tuple) -> bool {
    match pred {
        CompiledPred::Const(b) => *b,
        CompiledPred::Not(p) => !eval_predicate(p, t),
        CompiledPred::And(a, b) => eval_predicate(a, t) && eval_predicate(b, t),
        CompiledPred::Or(a, b) => eval_predicate(a, t) || eval_predicate(b, t),
        CompiledPred::Cmp { left, op, right } => {
            let l = operand_value(left, t);
            let r = operand_value(right, t);
            op.apply(l, r)
        }
    }
}

fn operand_value<'a>(op: &'a CompiledOperand, t: &'a Tuple) -> &'a Value {
    match op {
        CompiledOperand::Pos(i) => &t.values()[*i],
        CompiledOperand::Const(v) => v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relviz_model::catalog::sailors_sample;
    use relviz_model::CmpOp;

    use crate::expr::{Operand as O, Predicate as P, RaExpr as E};

    fn db() -> Database {
        sailors_sample()
    }

    fn names(rel: &Relation) -> Vec<String> {
        rel.iter().map(|t| t.values()[0].to_string()).collect()
    }

    #[test]
    fn q1_via_theta_join() {
        // π_sname(Sailor ⋈_{Sailor.sid=Reserves.sid ∧ bid=102} Reserves)
        let e = E::relation("Sailor")
            .rename("sid", "s_sid")
            .theta_join(
                P::eq(O::attr("s_sid"), O::attr("sid")).and(P::eq(O::attr("bid"), O::val(102))),
                E::relation("Reserves"),
            )
            .project(vec!["sname"]);
        assert_eq!(names(&eval(&e, &db()).unwrap()), vec!["dustin", "horatio", "lubber"]);
    }

    #[test]
    fn q2_natural_join_chain() {
        let e = E::relation("Sailor")
            .natural_join(E::relation("Reserves"))
            .natural_join(E::relation("Boat").select(P::eq(O::attr("color"), O::val("red"))))
            .project(vec!["sname"]);
        assert_eq!(names(&eval(&e, &db()).unwrap()), vec!["dustin", "horatio", "lubber"]);
    }

    #[test]
    fn q5_division() {
        // π_{sid,bid}(Reserves) ÷ π_bid(σ_{color='red'}(Boat)), joined back for names
        let quotient = E::relation("Reserves")
            .project(vec!["sid", "bid"])
            .divide(E::relation("Boat").select(P::eq(O::attr("color"), O::val("red"))).project(vec!["bid"]));
        let e = quotient.natural_join(E::relation("Sailor")).project(vec!["sname"]);
        assert_eq!(names(&eval(&e, &db()).unwrap()), vec!["dustin", "lubber"]);
    }

    #[test]
    fn division_by_empty_returns_all_keys() {
        // x ÷ ∅ = π_quotient(x): vacuous universal quantification.
        let e = E::relation("Reserves").project(vec!["sid", "bid"]).divide(
            E::relation("Boat")
                .select(P::eq(O::attr("color"), O::val("purple")))
                .project(vec!["bid"]),
        );
        let out = eval(&e, &db()).unwrap();
        assert_eq!(out.len(), 4); // each sid that appears in Reserves
    }

    #[test]
    fn set_operations() {
        let s = E::relation("Sailor").project(vec!["sid"]);
        let r = E::relation("Reserves").project(vec!["sid"]);
        assert_eq!(eval(&s.clone().intersect(r.clone()), &db()).unwrap().len(), 4);
        assert_eq!(eval(&s.clone().difference(r.clone()), &db()).unwrap().len(), 6);
        assert_eq!(eval(&s.clone().union(r), &db()).unwrap().len(), 10);
    }

    #[test]
    fn product_vs_natural_join_on_disjoint() {
        // With disjoint schemas natural join degenerates to product.
        let l = E::relation("Sailor").project(vec!["sid"]);
        let r = E::relation("Boat").project(vec!["bid"]);
        let p = eval(&l.clone().product(r.clone()), &db()).unwrap();
        let j = eval(&l.natural_join(r), &db()).unwrap();
        assert!(p.same_contents(&j));
        assert_eq!(p.len(), 10 * 4);
    }

    #[test]
    fn rename_then_self_join() {
        // pairs of sailors with equal rating
        let s1 = E::relation("Sailor")
            .project(vec!["sid", "rating"])
            .rename_all(&[("sid", "sid1"), ("rating", "r1")]);
        let s2 = E::relation("Sailor")
            .project(vec!["sid", "rating"])
            .rename_all(&[("sid", "sid2"), ("rating", "r2")]);
        let e = s1.theta_join(
            P::eq(O::attr("r1"), O::attr("r2"))
                .and(P::cmp(O::attr("sid1"), CmpOp::Lt, O::attr("sid2"))),
            s2,
        );
        assert_eq!(eval(&e, &db()).unwrap().len(), 4);
    }

    #[test]
    fn select_or_and_not() {
        let e = E::relation("Boat").select(
            P::eq(O::attr("color"), O::val("red"))
                .or(P::eq(O::attr("color"), O::val("green")))
                .and(P::eq(O::attr("bname"), O::val("Interlake")).not()),
        );
        let out = eval(&e, &db()).unwrap();
        assert_eq!(out.len(), 2); // 103 green Clipper, 104 red Marine
    }

    #[test]
    fn eval_type_checks_first() {
        let e = E::relation("Sailor").select(P::eq(O::attr("ghost"), O::val(1)));
        assert!(matches!(eval(&e, &db()), Err(RaError::Type(_))));
    }

    #[test]
    fn boolean_constants() {
        let t = E::relation("Sailor").select(Predicate::Const(true));
        let f = E::relation("Sailor").select(Predicate::Const(false));
        assert_eq!(eval(&t, &db()).unwrap().len(), 10);
        assert!(eval(&f, &db()).unwrap().is_empty());
    }
}
