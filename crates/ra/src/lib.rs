//! # relviz-ra
//!
//! Relational Algebra: the procedural member of the tutorial's five textual
//! query languages, and the semantic target most relationally complete
//! visual formalisms (DFQL in particular) are defined against.
//!
//! The crate provides
//! * the RA expression tree ([`RaExpr`]) with the classic operators
//!   σ, π, ρ, ×, ⋈, ⋈θ, ∪, ∩, −, ÷,
//! * static typing ([`typing::schema_of`]) — every well-formed expression
//!   has a derivable output schema,
//! * a set-semantics evaluator ([`eval::eval`]),
//! * a linear-notation parser ([`parse::parse_ra`]) and pretty-printer
//!   ([`print::print_ra`], ASCII and Unicode flavors), and
//! * algebraic rewrites ([`rewrite`]) used by the optimizer-lite and the
//!   property tests ("rewrites preserve semantics").
//!
//! ```
//! use relviz_model::catalog::sailors_sample;
//! use relviz_ra::{parse::parse_ra, eval::eval};
//!
//! let db = sailors_sample();
//! let e = parse_ra("Project[sname](Select[rating > 7](Sailor))").unwrap();
//! let out = eval(&e, &db).unwrap();
//! assert_eq!(out.len(), 5); // lubber, andy, rusty, zorba, horatio
//! ```

pub mod error;
pub mod eval;
pub mod expr;
pub mod parse;
pub mod print;
pub mod rewrite;
pub mod typing;

pub use error::{RaError, RaResult};
pub use expr::{Operand, Predicate, RaExpr};
