//! The Relational Algebra expression tree.

use relviz_model::{CmpOp, Value};

/// A predicate operand: attribute reference or constant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Operand {
    Attr(String),
    Const(Value),
}

impl Operand {
    pub fn attr(name: impl Into<String>) -> Self {
        Operand::Attr(name.into())
    }
    pub fn val(v: impl Into<Value>) -> Self {
        Operand::Const(v.into())
    }
}

impl std::fmt::Display for Operand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Operand::Attr(a) => write!(f, "{a}"),
            Operand::Const(v) => write!(f, "{}", v.to_literal()),
        }
    }
}

/// Selection predicates: boolean combinations of comparisons.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    Cmp { left: Operand, op: CmpOp, right: Operand },
    And(Box<Predicate>, Box<Predicate>),
    Or(Box<Predicate>, Box<Predicate>),
    Not(Box<Predicate>),
    Const(bool),
}

impl Predicate {
    pub fn cmp(left: Operand, op: CmpOp, right: Operand) -> Self {
        Predicate::Cmp { left, op, right }
    }
    pub fn eq(left: Operand, right: Operand) -> Self {
        Predicate::cmp(left, CmpOp::Eq, right)
    }
    pub fn and(self, other: Predicate) -> Self {
        Predicate::And(Box::new(self), Box::new(other))
    }
    pub fn or(self, other: Predicate) -> Self {
        Predicate::Or(Box::new(self), Box::new(other))
    }
    #[allow(clippy::should_implement_trait)] // DSL: ¬ builder, not std::ops::Not
    pub fn not(self) -> Self {
        Predicate::Not(Box::new(self))
    }

    /// Attribute names referenced by the predicate.
    pub fn attrs(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_attrs(&mut out);
        out
    }

    fn collect_attrs<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Predicate::Cmp { left, right, .. } => {
                if let Operand::Attr(a) = left {
                    out.push(a);
                }
                if let Operand::Attr(a) = right {
                    out.push(a);
                }
            }
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.collect_attrs(out);
                b.collect_attrs(out);
            }
            Predicate::Not(a) => a.collect_attrs(out),
            Predicate::Const(_) => {}
        }
    }

    /// Splits a conjunction into its top-level conjuncts.
    pub fn conjuncts(&self) -> Vec<&Predicate> {
        match self {
            Predicate::And(a, b) => {
                let mut v = a.conjuncts();
                v.extend(b.conjuncts());
                v
            }
            other => vec![other],
        }
    }
}

/// A Relational Algebra expression.
///
/// The operator set is the tutorial's Part 3 set: the six primitives
/// (σ, π, ρ, ×, ∪, −) plus the derived operators ∩, ⋈ (natural), ⋈θ and ÷
/// as first-class nodes — derived operators matter here because visual
/// formalisms like DFQL give each its own icon.
#[derive(Debug, Clone, PartialEq)]
pub enum RaExpr {
    /// Base relation by name.
    Relation(String),
    /// σ_pred(input)
    Select { pred: Predicate, input: Box<RaExpr> },
    /// π_attrs(input)
    Project { attrs: Vec<String>, input: Box<RaExpr> },
    /// ρ_{from→to}(input): rename one attribute.
    Rename { from: String, to: String, input: Box<RaExpr> },
    /// Cartesian product (schemas must be disjoint).
    Product(Box<RaExpr>, Box<RaExpr>),
    /// Natural join on shared attribute names.
    NaturalJoin(Box<RaExpr>, Box<RaExpr>),
    /// θ-join: product + selection in one node.
    ThetaJoin { pred: Predicate, left: Box<RaExpr>, right: Box<RaExpr> },
    Union(Box<RaExpr>, Box<RaExpr>),
    Intersect(Box<RaExpr>, Box<RaExpr>),
    Difference(Box<RaExpr>, Box<RaExpr>),
    /// Relational division: tuples of (left − right attributes) paired in
    /// `left` with *every* tuple of `right`.
    Division(Box<RaExpr>, Box<RaExpr>),
}

impl RaExpr {
    pub fn relation(name: impl Into<String>) -> Self {
        RaExpr::Relation(name.into())
    }
    pub fn select(self, pred: Predicate) -> Self {
        RaExpr::Select { pred, input: Box::new(self) }
    }
    pub fn project<S: Into<String>>(self, attrs: Vec<S>) -> Self {
        RaExpr::Project {
            attrs: attrs.into_iter().map(Into::into).collect(),
            input: Box::new(self),
        }
    }
    pub fn rename(self, from: impl Into<String>, to: impl Into<String>) -> Self {
        RaExpr::Rename { from: from.into(), to: to.into(), input: Box::new(self) }
    }
    /// Applies a chain of renames, one per `(from, to)` pair.
    pub fn rename_all(self, pairs: &[(&str, &str)]) -> Self {
        pairs
            .iter()
            .fold(self, |e, (f, t)| e.rename(*f, *t))
    }
    pub fn product(self, other: RaExpr) -> Self {
        RaExpr::Product(Box::new(self), Box::new(other))
    }
    pub fn natural_join(self, other: RaExpr) -> Self {
        RaExpr::NaturalJoin(Box::new(self), Box::new(other))
    }
    pub fn theta_join(self, pred: Predicate, other: RaExpr) -> Self {
        RaExpr::ThetaJoin { pred, left: Box::new(self), right: Box::new(other) }
    }
    pub fn union(self, other: RaExpr) -> Self {
        RaExpr::Union(Box::new(self), Box::new(other))
    }
    pub fn intersect(self, other: RaExpr) -> Self {
        RaExpr::Intersect(Box::new(self), Box::new(other))
    }
    pub fn difference(self, other: RaExpr) -> Self {
        RaExpr::Difference(Box::new(self), Box::new(other))
    }
    pub fn divide(self, other: RaExpr) -> Self {
        RaExpr::Division(Box::new(self), Box::new(other))
    }

    /// Number of operator nodes (size metric for benches/pattern stats).
    pub fn node_count(&self) -> usize {
        match self {
            RaExpr::Relation(_) => 1,
            RaExpr::Select { input, .. }
            | RaExpr::Project { input, .. }
            | RaExpr::Rename { input, .. } => 1 + input.node_count(),
            RaExpr::Product(l, r)
            | RaExpr::NaturalJoin(l, r)
            | RaExpr::Union(l, r)
            | RaExpr::Intersect(l, r)
            | RaExpr::Difference(l, r)
            | RaExpr::Division(l, r) => 1 + l.node_count() + r.node_count(),
            RaExpr::ThetaJoin { left, right, .. } => 1 + left.node_count() + right.node_count(),
        }
    }

    /// Names of all base relations referenced (with repetition).
    pub fn base_relations(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_bases(&mut out);
        out
    }

    fn collect_bases<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            RaExpr::Relation(n) => out.push(n),
            RaExpr::Select { input, .. }
            | RaExpr::Project { input, .. }
            | RaExpr::Rename { input, .. } => input.collect_bases(out),
            RaExpr::Product(l, r)
            | RaExpr::NaturalJoin(l, r)
            | RaExpr::Union(l, r)
            | RaExpr::Intersect(l, r)
            | RaExpr::Difference(l, r)
            | RaExpr::Division(l, r) => {
                l.collect_bases(out);
                r.collect_bases(out);
            }
            RaExpr::ThetaJoin { left, right, .. } => {
                left.collect_bases(out);
                right.collect_bases(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let e = RaExpr::relation("Sailor")
            .select(Predicate::cmp(Operand::attr("rating"), CmpOp::Gt, Operand::val(7)))
            .project(vec!["sname"]);
        assert_eq!(e.node_count(), 3);
        assert_eq!(e.base_relations(), vec!["Sailor"]);
    }

    #[test]
    fn conjunct_splitting() {
        let p = Predicate::eq(Operand::attr("a"), Operand::val(1))
            .and(Predicate::eq(Operand::attr("b"), Operand::val(2)))
            .and(Predicate::eq(Operand::attr("c"), Operand::val(3)));
        assert_eq!(p.conjuncts().len(), 3);
    }

    #[test]
    fn predicate_attrs() {
        let p = Predicate::cmp(Operand::attr("x"), CmpOp::Lt, Operand::attr("y"))
            .or(Predicate::eq(Operand::attr("z"), Operand::val("red")));
        assert_eq!(p.attrs(), vec!["x", "y", "z"]);
    }

    #[test]
    fn rename_all_chains() {
        let e = RaExpr::relation("R").rename_all(&[("a", "x"), ("b", "y")]);
        assert_eq!(e.node_count(), 3);
    }
}
