//! Static typing of RA expressions: derive the output schema of an
//! expression against a database catalog, rejecting ill-formed expressions
//! before evaluation.

use relviz_model::{Database, DataType, Schema};

use crate::error::{RaError, RaResult};
use crate::expr::{Operand, Predicate, RaExpr};

/// Computes the output schema of `expr`, or a type error.
pub fn schema_of(expr: &RaExpr, db: &Database) -> RaResult<Schema> {
    match expr {
        RaExpr::Relation(name) => db
            .schema(name)
            .cloned()
            .map_err(|_| RaError::Type(format!("unknown relation `{name}`"))),
        RaExpr::Select { pred, input } => {
            let schema = schema_of(input, db)?;
            check_predicate(pred, &schema)?;
            Ok(schema)
        }
        RaExpr::Project { attrs, input } => {
            let schema = schema_of(input, db)?;
            let names: Vec<&str> = attrs.iter().map(String::as_str).collect();
            schema
                .project(&names)
                .map_err(|e| RaError::Type(format!("projection: {e}")))
        }
        RaExpr::Rename { from, to, input } => {
            let schema = schema_of(input, db)?;
            schema
                .rename(from, to)
                .map_err(|e| RaError::Type(format!("rename: {e}")))
        }
        RaExpr::Product(l, r) => {
            let ls = schema_of(l, db)?;
            let rs = schema_of(r, db)?;
            ls.product(&rs).map_err(|e| {
                RaError::Type(format!(
                    "product requires disjoint attribute names ({e}); use Rename"
                ))
            })
        }
        RaExpr::NaturalJoin(l, r) => {
            let ls = schema_of(l, db)?;
            let rs = schema_of(r, db)?;
            // Shared attributes must be type-compatible; result keeps the
            // left schema plus right-only attributes.
            let mut attrs = ls.attrs().to_vec();
            for a in rs.attrs() {
                match ls.attr(&a.name) {
                    Some(b) => {
                        if b.ty.unify(a.ty).is_none() {
                            return Err(RaError::Type(format!(
                                "natural join: attribute `{}` has incompatible types {} vs {}",
                                a.name, b.ty, a.ty
                            )));
                        }
                    }
                    None => attrs.push(a.clone()),
                }
            }
            Schema::new(attrs).map_err(|e| RaError::Type(e.to_string()))
        }
        RaExpr::ThetaJoin { pred, left, right } => {
            let ls = schema_of(left, db)?;
            let rs = schema_of(right, db)?;
            let product = ls.product(&rs).map_err(|e| {
                RaError::Type(format!("θ-join requires disjoint attribute names ({e})"))
            })?;
            check_predicate(pred, &product)?;
            Ok(product)
        }
        RaExpr::Union(l, r) | RaExpr::Intersect(l, r) | RaExpr::Difference(l, r) => {
            let ls = schema_of(l, db)?;
            let rs = schema_of(r, db)?;
            if !ls.union_compatible(&rs) {
                return Err(RaError::Type(format!(
                    "set operation on non-union-compatible schemas {ls} vs {rs}"
                )));
            }
            Ok(ls)
        }
        RaExpr::Division(l, r) => {
            let ls = schema_of(l, db)?;
            let rs = schema_of(r, db)?;
            // Divisor attributes must all appear (by name) in the dividend,
            // and the quotient must be non-empty.
            let mut quotient = Vec::new();
            for a in rs.attrs() {
                match ls.attr(&a.name) {
                    Some(b) if b.ty.unify(a.ty).is_some() => {}
                    Some(b) => {
                        return Err(RaError::Type(format!(
                            "division: `{}` has incompatible types {} vs {}",
                            a.name, b.ty, a.ty
                        )))
                    }
                    None => {
                        return Err(RaError::Type(format!(
                            "division: divisor attribute `{}` missing from dividend",
                            a.name
                        )))
                    }
                }
            }
            for a in ls.attrs() {
                if rs.attr(&a.name).is_none() {
                    quotient.push(a.clone());
                }
            }
            if quotient.is_empty() {
                return Err(RaError::Type(
                    "division: dividend must have attributes beyond the divisor".into(),
                ));
            }
            Schema::new(quotient).map_err(|e| RaError::Type(e.to_string()))
        }
    }
}

/// Checks that a predicate only references attributes of `schema` with
/// compatible comparison types.
pub fn check_predicate(pred: &Predicate, schema: &Schema) -> RaResult<()> {
    match pred {
        Predicate::Const(_) => Ok(()),
        Predicate::Not(p) => check_predicate(p, schema),
        Predicate::And(a, b) | Predicate::Or(a, b) => {
            check_predicate(a, schema)?;
            check_predicate(b, schema)
        }
        Predicate::Cmp { left, right, .. } => {
            let lt = operand_type(left, schema)?;
            let rt = operand_type(right, schema)?;
            if lt.unify(rt).is_none() {
                return Err(RaError::Type(format!(
                    "comparison `{left} … {right}` has incompatible types {lt} vs {rt}"
                )));
            }
            Ok(())
        }
    }
}

fn operand_type(op: &Operand, schema: &Schema) -> RaResult<DataType> {
    match op {
        Operand::Const(v) => Ok(v.data_type()),
        Operand::Attr(name) => schema
            .attr(name)
            .map(|a| a.ty)
            .ok_or_else(|| RaError::Type(format!("unknown attribute `{name}` in {schema}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relviz_model::catalog::sailors_sample;
    use relviz_model::CmpOp;

    use crate::expr::{Operand as O, Predicate as P, RaExpr as E};

    fn db() -> Database {
        sailors_sample()
    }

    #[test]
    fn base_and_select_project() {
        let e = E::relation("Sailor")
            .select(P::cmp(O::attr("rating"), CmpOp::Gt, O::val(7)))
            .project(vec!["sname"]);
        let s = schema_of(&e, &db()).unwrap();
        assert_eq!(s.names(), vec!["sname"]);
    }

    #[test]
    fn unknown_things_fail() {
        assert!(schema_of(&E::relation("Nope"), &db()).is_err());
        let e = E::relation("Sailor").project(vec!["ghost"]);
        assert!(schema_of(&e, &db()).is_err());
        let e = E::relation("Sailor").select(P::eq(O::attr("ghost"), O::val(1)));
        assert!(schema_of(&e, &db()).is_err());
    }

    #[test]
    fn product_needs_disjoint_names() {
        let e = E::relation("Sailor").product(E::relation("Reserves"));
        assert!(schema_of(&e, &db()).is_err()); // both have `sid`
        let e = E::relation("Sailor")
            .rename("sid", "s_sid")
            .product(E::relation("Reserves"));
        assert!(schema_of(&e, &db()).is_ok());
    }

    #[test]
    fn natural_join_schema() {
        let e = E::relation("Sailor").natural_join(E::relation("Reserves"));
        let s = schema_of(&e, &db()).unwrap();
        assert_eq!(s.names(), vec!["sid", "sname", "rating", "age", "bid", "day"]);
    }

    #[test]
    fn theta_join_checks_predicate() {
        let e = E::relation("Sailor").rename("sid", "s_sid").theta_join(
            P::eq(O::attr("s_sid"), O::attr("sid")),
            E::relation("Reserves"),
        );
        assert!(schema_of(&e, &db()).is_ok());
    }

    #[test]
    fn set_ops_union_compat() {
        let sids = E::relation("Sailor").project(vec!["sid"]);
        let bids = E::relation("Boat").project(vec!["bid"]);
        assert!(schema_of(&sids.clone().union(bids), &db()).is_ok());
        let colors = E::relation("Boat").project(vec!["color"]);
        assert!(schema_of(&sids.union(colors), &db()).is_err());
    }

    #[test]
    fn division_schema() {
        let num = E::relation("Reserves").project(vec!["sid", "bid"]);
        let den = E::relation("Boat")
            .select(P::eq(O::attr("color"), O::val("red")))
            .project(vec!["bid"]);
        let s = schema_of(&num.clone().divide(den), &db()).unwrap();
        assert_eq!(s.names(), vec!["sid"]);
        // divisor attr missing from dividend
        let bad = num.clone().divide(E::relation("Boat").project(vec!["color"]));
        assert!(schema_of(&bad, &db()).is_err());
        // empty quotient
        let bad2 = E::relation("Reserves")
            .project(vec!["bid"])
            .divide(E::relation("Boat").project(vec!["bid"]));
        assert!(schema_of(&bad2, &db()).is_err());
    }

    #[test]
    fn type_mismatch_in_comparison() {
        let e = E::relation("Sailor").select(P::eq(O::attr("sname"), O::val(5)));
        assert!(schema_of(&e, &db()).is_err());
        let ok = E::relation("Sailor").select(P::cmp(O::attr("age"), CmpOp::Gt, O::val(30)));
        assert!(schema_of(&ok, &db()).is_ok()); // int vs float unifies
    }
}
