//! Parser for the linear RA notation.
//!
//! ```text
//! expr    := Op '[' … ']' '(' expr {',' expr} ')'   -- parameterized ops
//!          | Op '(' expr, expr ')'                  -- binary ops
//!          | ident                                  -- base relation
//!
//! Select[pred](e)            σ   (also accepted: `Sigma`, `σ`)
//! Project[a, b](e)           π   (`Pi`, `π`)
//! Rename[a -> b](e)          ρ   (`Rho`, `ρ`)
//! Product(e1, e2)            ×   (`Times`)
//! Join(e1, e2)               ⋈   natural join
//! ThetaJoin[pred](e1, e2)    ⋈θ
//! Union | Intersect | Difference | Division (e1, e2)
//! ```
//!
//! Predicates: comparisons over attributes/constants combined with
//! `AND`/`OR`/`NOT` (or `∧`/`∨`/`¬`), parentheses allowed.

use relviz_model::{CmpOp, Value};

use crate::error::{RaError, RaResult};
use crate::expr::{Operand, Predicate, RaExpr};

/// Parses the linear notation into an [`RaExpr`].
pub fn parse_ra(input: &str) -> RaResult<RaExpr> {
    let toks = tokenize(input)?;
    let mut p = P { toks, pos: 0 };
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

/// Parses a predicate alone (handy for tests and tools).
pub fn parse_predicate(input: &str) -> RaResult<Predicate> {
    let toks = tokenize(input)?;
    let mut p = P { toks, pos: 0 };
    let pred = p.pred()?;
    p.expect_eof()?;
    Ok(pred)
}

#[derive(Debug, Clone, PartialEq)]
enum T {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Arrow,
    Cmp(CmpOp),
    And,
    Or,
    Not,
    Eof,
}

fn tokenize(input: &str) -> RaResult<Vec<T>> {
    let mut out = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                out.push(T::LParen);
                i += 1;
            }
            ')' => {
                out.push(T::RParen);
                i += 1;
            }
            '[' => {
                out.push(T::LBracket);
                i += 1;
            }
            ']' => {
                out.push(T::RBracket);
                i += 1;
            }
            ',' => {
                out.push(T::Comma);
                i += 1;
            }
            '-' if chars.get(i + 1) == Some(&'>') => {
                out.push(T::Arrow);
                i += 2;
            }
            '→' => {
                out.push(T::Arrow);
                i += 1;
            }
            '=' => {
                out.push(T::Cmp(CmpOp::Eq));
                i += 1;
            }
            '≠' => {
                out.push(T::Cmp(CmpOp::Neq));
                i += 1;
            }
            '≤' => {
                out.push(T::Cmp(CmpOp::Le));
                i += 1;
            }
            '≥' => {
                out.push(T::Cmp(CmpOp::Ge));
                i += 1;
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(T::Cmp(CmpOp::Le));
                    i += 2;
                } else if chars.get(i + 1) == Some(&'>') {
                    out.push(T::Cmp(CmpOp::Neq));
                    i += 2;
                } else {
                    out.push(T::Cmp(CmpOp::Lt));
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(T::Cmp(CmpOp::Ge));
                    i += 2;
                } else {
                    out.push(T::Cmp(CmpOp::Gt));
                    i += 1;
                }
            }
            '!' if chars.get(i + 1) == Some(&'=') => {
                out.push(T::Cmp(CmpOp::Neq));
                i += 2;
            }
            '∧' => {
                out.push(T::And);
                i += 1;
            }
            '∨' => {
                out.push(T::Or);
                i += 1;
            }
            '¬' => {
                out.push(T::Not);
                i += 1;
            }
            'σ' | 'π' | 'ρ' | '×' | '⋈' | '∪' | '∩' | '−' | '÷' => {
                out.push(T::Ident(c.to_string()));
                i += 1;
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        Some('\'') if chars.get(i + 1) == Some(&'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                        None => return Err(RaError::Parse("unterminated string".into())),
                    }
                }
                out.push(T::Str(s));
            }
            c if c.is_ascii_digit()
                || (c == '-' && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())) =>
            {
                let start = i;
                if c == '-' {
                    i += 1;
                }
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if chars.get(i) == Some(&'.') && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())
                {
                    is_float = true;
                    i += 1;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                if is_float {
                    out.push(T::Float(
                        text.parse().map_err(|_| RaError::Parse(format!("bad float {text}")))?,
                    ));
                } else {
                    out.push(T::Int(
                        text.parse().map_err(|_| RaError::Parse(format!("bad int {text}")))?,
                    ));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                match word.to_ascii_uppercase().as_str() {
                    "AND" => out.push(T::And),
                    "OR" => out.push(T::Or),
                    "NOT" => out.push(T::Not),
                    _ => out.push(T::Ident(word)),
                }
            }
            other => return Err(RaError::Parse(format!("unexpected character `{other}`"))),
        }
    }
    out.push(T::Eof);
    Ok(out)
}

struct P {
    toks: Vec<T>,
    pos: usize,
}

impl P {
    fn peek(&self) -> &T {
        &self.toks[self.pos]
    }
    fn next(&mut self) -> T {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }
    fn eat(&mut self, t: &T) -> bool {
        if self.peek() == t {
            self.next();
            true
        } else {
            false
        }
    }
    fn expect(&mut self, t: T, what: &str) -> RaResult<()> {
        if self.peek() == &t {
            self.next();
            Ok(())
        } else {
            Err(RaError::Parse(format!("expected {what}, found {:?}", self.peek())))
        }
    }
    fn expect_eof(&mut self) -> RaResult<()> {
        if self.peek() == &T::Eof {
            Ok(())
        } else {
            Err(RaError::Parse(format!("trailing input: {:?}", self.peek())))
        }
    }

    fn ident(&mut self, what: &str) -> RaResult<String> {
        match self.next() {
            T::Ident(s) => Ok(s),
            other => Err(RaError::Parse(format!("expected {what}, found {other:?}"))),
        }
    }

    fn expr(&mut self) -> RaResult<RaExpr> {
        let name = self.ident("operator or relation name")?;
        let canonical = canonical_op(&name);
        match canonical {
            Some(op) => self.operator(op),
            None => {
                // Plain identifier: base relation (no parens follow).
                if matches!(self.peek(), T::LParen | T::LBracket) {
                    // Unknown operator applied like a function.
                    Err(RaError::Parse(format!("unknown operator `{name}`")))
                } else {
                    Ok(RaExpr::Relation(name))
                }
            }
        }
    }

    fn operator(&mut self, op: &'static str) -> RaResult<RaExpr> {
        match op {
            "Select" => {
                self.expect(T::LBracket, "`[` after Select")?;
                let pred = self.pred()?;
                self.expect(T::RBracket, "`]` after predicate")?;
                let input = self.parenthesized_one()?;
                Ok(RaExpr::Select { pred, input: Box::new(input) })
            }
            "Project" => {
                self.expect(T::LBracket, "`[` after Project")?;
                let mut attrs = vec![self.ident("attribute")?];
                while self.eat(&T::Comma) {
                    attrs.push(self.ident("attribute")?);
                }
                self.expect(T::RBracket, "`]` after attributes")?;
                let input = self.parenthesized_one()?;
                Ok(RaExpr::Project { attrs, input: Box::new(input) })
            }
            "Rename" => {
                self.expect(T::LBracket, "`[` after Rename")?;
                let mut pairs = Vec::new();
                loop {
                    let from = self.ident("attribute")?;
                    self.expect(T::Arrow, "`->`")?;
                    let to = self.ident("attribute")?;
                    pairs.push((from, to));
                    if !self.eat(&T::Comma) {
                        break;
                    }
                }
                self.expect(T::RBracket, "`]` after renames")?;
                let input = self.parenthesized_one()?;
                let mut e = input;
                for (from, to) in pairs {
                    e = RaExpr::Rename { from, to, input: Box::new(e) };
                }
                Ok(e)
            }
            "ThetaJoin" => {
                self.expect(T::LBracket, "`[` after ThetaJoin")?;
                let pred = self.pred()?;
                self.expect(T::RBracket, "`]` after predicate")?;
                let (l, r) = self.parenthesized_two()?;
                Ok(RaExpr::ThetaJoin { pred, left: Box::new(l), right: Box::new(r) })
            }
            "Product" | "Join" | "Union" | "Intersect" | "Difference" | "Division" => {
                let (l, r) = self.parenthesized_two()?;
                let (l, r) = (Box::new(l), Box::new(r));
                Ok(match op {
                    "Product" => RaExpr::Product(l, r),
                    "Join" => RaExpr::NaturalJoin(l, r),
                    "Union" => RaExpr::Union(l, r),
                    "Intersect" => RaExpr::Intersect(l, r),
                    "Difference" => RaExpr::Difference(l, r),
                    "Division" => RaExpr::Division(l, r),
                    _ => unreachable!("covered by match arm"),
                })
            }
            _ => unreachable!("canonical_op returns known ops"),
        }
    }

    fn parenthesized_one(&mut self) -> RaResult<RaExpr> {
        self.expect(T::LParen, "`(`")?;
        let e = self.expr()?;
        self.expect(T::RParen, "`)`")?;
        Ok(e)
    }

    fn parenthesized_two(&mut self) -> RaResult<(RaExpr, RaExpr)> {
        self.expect(T::LParen, "`(`")?;
        let l = self.expr()?;
        self.expect(T::Comma, "`,` between operands")?;
        let r = self.expr()?;
        self.expect(T::RParen, "`)`")?;
        Ok((l, r))
    }

    // Predicates ---------------------------------------------------------

    fn pred(&mut self) -> RaResult<Predicate> {
        let mut left = self.pred_and()?;
        while self.eat(&T::Or) {
            let right = self.pred_and()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn pred_and(&mut self) -> RaResult<Predicate> {
        let mut left = self.pred_not()?;
        while self.eat(&T::And) {
            let right = self.pred_not()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn pred_not(&mut self) -> RaResult<Predicate> {
        if self.eat(&T::Not) {
            return Ok(self.pred_not()?.not());
        }
        if self.eat(&T::LParen) {
            let p = self.pred()?;
            self.expect(T::RParen, "`)`")?;
            return Ok(p);
        }
        if let T::Ident(w) = self.peek() {
            let up = w.to_ascii_uppercase();
            if up == "TRUE" || up == "FALSE" {
                self.next();
                return Ok(Predicate::Const(up == "TRUE"));
            }
        }
        let left = self.operand()?;
        let op = match self.next() {
            T::Cmp(op) => op,
            other => {
                return Err(RaError::Parse(format!(
                    "expected comparison operator, found {other:?}"
                )))
            }
        };
        let right = self.operand()?;
        Ok(Predicate::Cmp { left, op, right })
    }

    fn operand(&mut self) -> RaResult<Operand> {
        match self.next() {
            T::Ident(s) => Ok(Operand::Attr(s)),
            T::Int(i) => Ok(Operand::Const(Value::Int(i))),
            T::Float(f) => Ok(Operand::Const(Value::Float(f))),
            T::Str(s) => Ok(Operand::Const(Value::Str(s))),
            other => Err(RaError::Parse(format!("expected operand, found {other:?}"))),
        }
    }
}

fn canonical_op(name: &str) -> Option<&'static str> {
    Some(match name {
        "Select" | "Sigma" | "σ" => "Select",
        "Project" | "Pi" | "π" => "Project",
        "Rename" | "Rho" | "ρ" => "Rename",
        "Product" | "Times" | "×" => "Product",
        "Join" | "NaturalJoin" | "⋈" => "Join",
        "ThetaJoin" => "ThetaJoin",
        "Union" | "∪" => "Union",
        "Intersect" | "∩" => "Intersect",
        "Difference" | "Diff" | "Minus" | "−" => "Difference",
        "Division" | "Divide" | "÷" => "Division",
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Operand as O, Predicate as Pr, RaExpr as E};

    #[test]
    fn parses_basic_pipeline() {
        let e = parse_ra("Project[sname](Select[rating > 7](Sailor))").unwrap();
        assert_eq!(
            e,
            E::relation("Sailor")
                .select(Pr::cmp(O::attr("rating"), CmpOp::Gt, O::val(7)))
                .project(vec!["sname"])
        );
    }

    #[test]
    fn unicode_aliases() {
        let a = parse_ra("π[sname](σ[rating ≥ 7](Sailor))").unwrap();
        let b = parse_ra("Project[sname](Select[rating >= 7](Sailor))").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rename_multi_pair() {
        let e = parse_ra("Rename[sid -> sid2, sname -> n2](Sailor)").unwrap();
        assert_eq!(e, E::relation("Sailor").rename_all(&[("sid", "sid2"), ("sname", "n2")]));
    }

    #[test]
    fn binary_ops() {
        let e = parse_ra("Union(Project[sid](Sailor), Project[sid](Reserves))").unwrap();
        assert!(matches!(e, E::Union(_, _)));
        let e = parse_ra("Division(Project[sid, bid](Reserves), Project[bid](Boat))").unwrap();
        assert!(matches!(e, E::Division(_, _)));
    }

    #[test]
    fn theta_join_with_complex_pred() {
        let e = parse_ra(
            "ThetaJoin[s_sid = sid AND (bid = 102 OR NOT color = 'red')](Sailor, Reserves)",
        )
        .unwrap();
        let E::ThetaJoin { pred, .. } = e else { panic!() };
        assert_eq!(pred.conjuncts().len(), 2);
    }

    #[test]
    fn string_and_float_literals() {
        let p = parse_predicate("color = 'it''s' OR age >= 35.5").unwrap();
        assert!(matches!(p, Pr::Or(_, _)));
    }

    #[test]
    fn negative_numbers() {
        let p = parse_predicate("x > -5").unwrap();
        assert_eq!(p, Pr::cmp(O::attr("x"), CmpOp::Gt, O::val(-5)));
    }

    #[test]
    fn errors() {
        assert!(parse_ra("Project[](Sailor)").is_err());
        assert!(parse_ra("Select[x=1]").is_err());
        assert!(parse_ra("Frobnicate(Sailor, Boat)").is_err());
        assert!(parse_ra("Union(Sailor)").is_err());
        assert!(parse_ra("Sailor extra").is_err());
        assert!(parse_predicate("x ==").is_err());
    }

    #[test]
    fn bare_relation() {
        assert_eq!(parse_ra("Sailor").unwrap(), E::relation("Sailor"));
    }
}
