//! Errors of the RA subsystem.

use std::fmt;

/// Errors raised while typing, parsing or evaluating RA expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum RaError {
    /// Typing failure (unknown attribute/relation, incompatible schemas…).
    Type(String),
    /// Parse failure of the linear notation.
    Parse(String),
    /// Evaluation failure (delegated model errors).
    Eval(String),
}

impl fmt::Display for RaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaError::Type(m) => write!(f, "RA type error: {m}"),
            RaError::Parse(m) => write!(f, "RA parse error: {m}"),
            RaError::Eval(m) => write!(f, "RA evaluation error: {m}"),
        }
    }
}

impl std::error::Error for RaError {}

impl From<relviz_model::ModelError> for RaError {
    fn from(e: relviz_model::ModelError) -> Self {
        RaError::Eval(e.to_string())
    }
}

pub type RaResult<T> = std::result::Result<T, RaError>;
