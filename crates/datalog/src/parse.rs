//! Parser for classic Datalog syntax.
//!
//! ```text
//! program := rule+
//! rule    := atom [':-' literal (',' literal)*] '.'
//! literal := ['not'|'!'] atom | term cmpop term
//! atom    := ident '(' term (',' term)* ')' | ident
//! term    := Variable | constant
//! ```
//!
//! Identifiers starting with an uppercase letter or `_` **in term
//! position** are variables; lowercase identifiers there are symbolic
//! constants (strings). Relation names may be any identifier — position
//! disambiguates (`Sailor(S, …)`: `Sailor` is a predicate, `S` a variable).
//! The answer predicate is the head of the **last** rule unless a
//! `% query: name` comment says otherwise.

use relviz_model::{CmpOp, Value};

use crate::ast::{Atom, Literal, Program, Rule, Term};
use crate::error::{DlError, DlResult};

/// Parses a Datalog program.
pub fn parse_program(input: &str) -> DlResult<Program> {
    // Directive comments first.
    let mut query_override: Option<String> = None;
    for line in input.lines() {
        let l = line.trim();
        if let Some(rest) = l.strip_prefix("% query:") {
            query_override = Some(rest.trim().to_string());
        }
    }

    let toks = tokenize(input)?;
    let mut p = P { toks, pos: 0 };
    let mut rules = Vec::new();
    while p.peek() != &T::Eof {
        rules.push(p.rule()?);
    }
    if rules.is_empty() {
        return Err(DlError::Parse("empty program".into()));
    }
    let query = query_override
        .unwrap_or_else(|| rules.last().expect("nonempty").head.rel.clone());
    let program = Program { rules, query };
    check_range_restriction(&program)?;
    Ok(program)
}

/// Range restriction: every variable in a rule head, a negated atom or a
/// comparison must also occur in a positive body atom.
pub fn check_range_restriction(p: &Program) -> DlResult<()> {
    for r in &p.rules {
        let positive: Vec<&str> = r
            .body
            .iter()
            .filter_map(|l| match l {
                Literal::Pos(a) => Some(a.vars()),
                _ => None,
            })
            .flatten()
            .collect();
        let check = |v: &str, what: &str| -> DlResult<()> {
            if positive.contains(&v) {
                Ok(())
            } else {
                Err(DlError::Check(format!(
                    "variable `{v}` in {what} of rule `{r}` is not range-restricted"
                )))
            }
        };
        for v in r.head.vars() {
            check(v, "head")?;
        }
        for l in &r.body {
            match l {
                Literal::Neg(a) => {
                    for v in a.vars() {
                        check(v, "negated atom")?;
                    }
                }
                Literal::Cmp { left, right, .. } => {
                    for t in [left, right] {
                        if let Term::Var(v) = t {
                            check(v, "comparison")?;
                        }
                    }
                }
                Literal::Pos(_) => {}
            }
        }
    }
    Ok(())
}

#[derive(Debug, Clone, PartialEq)]
enum T {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Implies, // :-
    Not,
    Cmp(CmpOp),
    Eof,
}

fn tokenize(input: &str) -> DlResult<Vec<T>> {
    let chars: Vec<char> = input.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '%' => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(T::LParen);
                i += 1;
            }
            ')' => {
                out.push(T::RParen);
                i += 1;
            }
            ',' => {
                out.push(T::Comma);
                i += 1;
            }
            '.' => {
                out.push(T::Dot);
                i += 1;
            }
            ':' if chars.get(i + 1) == Some(&'-') => {
                out.push(T::Implies);
                i += 2;
            }
            '!' if chars.get(i + 1) == Some(&'=') => {
                out.push(T::Cmp(CmpOp::Neq));
                i += 2;
            }
            '!' => {
                out.push(T::Not);
                i += 1;
            }
            '¬' => {
                out.push(T::Not);
                i += 1;
            }
            '=' => {
                out.push(T::Cmp(CmpOp::Eq));
                i += 1;
            }
            '≠' => {
                out.push(T::Cmp(CmpOp::Neq));
                i += 1;
            }
            '≤' => {
                out.push(T::Cmp(CmpOp::Le));
                i += 1;
            }
            '≥' => {
                out.push(T::Cmp(CmpOp::Ge));
                i += 1;
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(T::Cmp(CmpOp::Le));
                    i += 2;
                } else if chars.get(i + 1) == Some(&'>') {
                    out.push(T::Cmp(CmpOp::Neq));
                    i += 2;
                } else {
                    out.push(T::Cmp(CmpOp::Lt));
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(T::Cmp(CmpOp::Ge));
                    i += 2;
                } else {
                    out.push(T::Cmp(CmpOp::Gt));
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        Some('\'') if chars.get(i + 1) == Some(&'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                        None => return Err(DlError::Parse("unterminated string".into())),
                    }
                }
                out.push(T::Str(s));
            }
            c if c.is_ascii_digit()
                || (c == '-' && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())) =>
            {
                let start = i;
                if c == '-' {
                    i += 1;
                }
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if chars.get(i) == Some(&'.') && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())
                {
                    is_float = true;
                    i += 1;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                if is_float {
                    out.push(T::Float(
                        text.parse().map_err(|_| DlError::Parse(format!("bad float {text}")))?,
                    ));
                } else {
                    out.push(T::Int(
                        text.parse().map_err(|_| DlError::Parse(format!("bad int {text}")))?,
                    ));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                if word == "not" || word == "NOT" {
                    out.push(T::Not);
                } else {
                    out.push(T::Ident(word));
                }
            }
            other => return Err(DlError::Parse(format!("unexpected character `{other}`"))),
        }
    }
    out.push(T::Eof);
    Ok(out)
}

struct P {
    toks: Vec<T>,
    pos: usize,
}

impl P {
    fn peek(&self) -> &T {
        &self.toks[self.pos]
    }
    fn peek2(&self) -> &T {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)]
    }
    fn next(&mut self) -> T {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }
    fn eat(&mut self, t: &T) -> bool {
        if self.peek() == t {
            self.next();
            true
        } else {
            false
        }
    }
    fn expect(&mut self, t: T, what: &str) -> DlResult<()> {
        if self.peek() == &t {
            self.next();
            Ok(())
        } else {
            Err(DlError::Parse(format!("expected {what}, found {:?}", self.peek())))
        }
    }
    fn ident(&mut self, what: &str) -> DlResult<String> {
        match self.next() {
            T::Ident(s) => Ok(s),
            other => Err(DlError::Parse(format!("expected {what}, found {other:?}"))),
        }
    }

    fn rule(&mut self) -> DlResult<Rule> {
        let head = self.atom()?;
        let mut body = Vec::new();
        if self.eat(&T::Implies) {
            body.push(self.literal()?);
            while self.eat(&T::Comma) {
                body.push(self.literal()?);
            }
        }
        self.expect(T::Dot, "`.` terminating rule")?;
        Ok(Rule { head, body })
    }

    fn literal(&mut self) -> DlResult<Literal> {
        if self.eat(&T::Not) {
            return Ok(Literal::Neg(self.atom()?));
        }
        // Atom (Ident + LParen or bare Ident not followed by cmp)?
        if matches!(self.peek(), T::Ident(_)) && self.peek2() == &T::LParen {
            return Ok(Literal::Pos(self.atom()?));
        }
        // comparison
        let left = self.term()?;
        let op = match self.next() {
            T::Cmp(op) => op,
            other => {
                return Err(DlError::Parse(format!(
                    "expected comparison operator, found {other:?}"
                )))
            }
        };
        let right = self.term()?;
        Ok(Literal::Cmp { left, op, right })
    }

    fn atom(&mut self) -> DlResult<Atom> {
        let rel = self.ident("predicate name")?;
        let mut terms = Vec::new();
        if self.eat(&T::LParen) {
            terms.push(self.term()?);
            while self.eat(&T::Comma) {
                terms.push(self.term()?);
            }
            self.expect(T::RParen, "`)` closing atom")?;
        }
        Ok(Atom { rel, terms })
    }

    fn term(&mut self) -> DlResult<Term> {
        match self.next() {
            T::Ident(s) => {
                let first = s.chars().next().expect("idents are nonempty");
                if first.is_uppercase() || first == '_' {
                    Ok(Term::Var(s))
                } else {
                    // lowercase symbol ⇒ string constant
                    Ok(Term::Const(Value::Str(s)))
                }
            }
            T::Int(i) => Ok(Term::Const(Value::Int(i))),
            T::Float(x) => Ok(Term::Const(Value::Float(x))),
            T::Str(s) => Ok(Term::Const(Value::Str(s))),
            other => Err(DlError::Parse(format!("expected term, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_q1() {
        let p = parse_program("ans(N) :- Sailor(S, N, R, A), Reserves(S, 102, D).").unwrap();
        assert_eq!(p.query, "ans");
        assert_eq!(p.rules.len(), 1);
        assert_eq!(p.rules[0].body.len(), 2);
    }

    #[test]
    fn variables_vs_constants() {
        let p = parse_program("ans(N) :- Boat(B, N, red), B >= 100.").unwrap();
        let Literal::Pos(atom) = &p.rules[0].body[0] else { panic!() };
        assert_eq!(atom.terms[2], Term::Const(Value::Str("red".into())));
        assert_eq!(atom.terms[0], Term::Var("B".into()));
    }

    #[test]
    fn negation_and_query_directive() {
        let p = parse_program(
            "% query: good\n\
             bad(S) :- Reserves(S, B, D), Boat(B, N, 'red').\n\
             good(S) :- Sailor(S, N, R, A), not bad(S).",
        )
        .unwrap();
        assert_eq!(p.query, "good");
        assert!(matches!(p.rules[1].body[1], Literal::Neg(_)));
    }

    #[test]
    fn default_query_is_last_head() {
        let p = parse_program(
            "a(X) :- e(X, Y).\n\
             b(X) :- a(X).",
        )
        .unwrap();
        assert_eq!(p.query, "b");
    }

    #[test]
    fn range_restriction_enforced() {
        // head var not in body
        assert!(matches!(
            parse_program("ans(Z) :- Sailor(S, N, R, A)."),
            Err(DlError::Check(_))
        ));
        // negated-only var
        assert!(matches!(
            parse_program("ans(S) :- Sailor(S, N, R, A), not Reserves(S, B, D)."),
            Err(DlError::Check(_))
        ));
        // comparison-only var
        assert!(matches!(
            parse_program("ans(S) :- Sailor(S, N, R, A), Z > 1."),
            Err(DlError::Check(_))
        ));
    }

    #[test]
    fn facts_and_zero_arity() {
        let p = parse_program("p(1).\nq :- p(X).").unwrap();
        assert!(p.rules[0].body.is_empty());
        assert_eq!(p.rules[1].head.terms.len(), 0);
    }

    #[test]
    fn comments_ignored() {
        let p = parse_program("% hello\nans(N) :- Boat(B, N, C). % trailing").unwrap();
        assert_eq!(p.rules.len(), 1);
    }

    #[test]
    fn parse_errors() {
        assert!(parse_program("").is_err());
        assert!(parse_program("ans(N) :- Sailor(S, N").is_err());
        assert!(parse_program("ans(N)").is_err()); // missing dot
        assert!(parse_program("ans(N) :- .").is_err());
    }
}
