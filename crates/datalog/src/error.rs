//! Errors of the Datalog subsystem.

use std::fmt;

/// Errors from parsing, checking, stratifying, translating or evaluating
/// Datalog programs.
#[derive(Debug, Clone, PartialEq)]
pub enum DlError {
    Parse(String),
    /// Range-restriction or arity/scoping violation.
    Check(String),
    /// No stratification exists (negation through recursion).
    NotStratifiable(String),
    /// Feature unavailable in a translation target.
    Unsupported(String),
    Eval(String),
}

impl fmt::Display for DlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DlError::Parse(m) => write!(f, "datalog parse error: {m}"),
            DlError::Check(m) => write!(f, "datalog check error: {m}"),
            DlError::NotStratifiable(m) => write!(f, "not stratifiable: {m}"),
            DlError::Unsupported(m) => write!(f, "unsupported: {m}"),
            DlError::Eval(m) => write!(f, "datalog evaluation error: {m}"),
        }
    }
}

impl std::error::Error for DlError {}

impl From<relviz_model::ModelError> for DlError {
    fn from(e: relviz_model::ModelError) -> Self {
        DlError::Eval(e.to_string())
    }
}

pub type DlResult<T> = std::result::Result<T, DlError>;
