//! Stratification: layering the predicate dependency graph so that
//! negation never crosses a cycle.
//!
//! A program is *stratifiable* iff no cycle of the dependency graph
//! contains a negative edge. The algorithm is the classic fixpoint on
//! stratum numbers: `stratum(p) ≥ stratum(q)` for positive edges p→q and
//! `stratum(p) ≥ stratum(q) + 1` for negative edges; failure to converge
//! within |IDB| iterations ⇔ not stratifiable.

use std::collections::HashMap;

use crate::ast::{Literal, Program, Rule};
use crate::error::{DlError, DlResult};

/// Assigns a stratum (0-based) to every IDB predicate, or fails.
pub fn stratify(p: &Program) -> DlResult<HashMap<String, usize>> {
    let idb: Vec<String> = p.idb_predicates().into_iter().map(String::from).collect();
    let mut stratum: HashMap<String, usize> =
        idb.iter().map(|n| (n.clone(), 0usize)).collect();

    let max_rounds = idb.len() + 1;
    for _ in 0..max_rounds {
        let mut changed = false;
        for rule in &p.rules {
            let head = &rule.head.rel;
            for lit in &rule.body {
                match lit {
                    Literal::Pos(a) if stratum.contains_key(&a.rel) => {
                        let need = stratum[&a.rel];
                        if stratum[head] < need {
                            stratum.insert(head.clone(), need);
                            changed = true;
                        }
                    }
                    Literal::Neg(a) if stratum.contains_key(&a.rel) => {
                        let need = stratum[&a.rel] + 1;
                        if stratum[head] < need {
                            stratum.insert(head.clone(), need);
                            changed = true;
                        }
                    }
                    _ => {}
                }
            }
        }
        if !changed {
            return Ok(stratum);
        }
    }
    Err(DlError::NotStratifiable(
        "negation crosses a recursive cycle (stratum numbers diverge)".into(),
    ))
}

/// Groups IDB predicates by stratum, lowest first.
pub fn strata_order(stratum: &HashMap<String, usize>) -> Vec<Vec<String>> {
    let max = stratum.values().copied().max().unwrap_or(0);
    let mut out = vec![Vec::new(); max + 1];
    let mut names: Vec<_> = stratum.iter().collect();
    names.sort();
    for (name, &s) in names {
        out[s].push(name.clone());
    }
    out
}

/// One stratum of a stratified program: its predicates, the rules
/// defining them (in program order), and whether any rule reads a
/// same-stratum predicate positively — the condition under which the
/// stratum needs semi-naive iteration rather than a single pass.
///
/// This is the structure both the reference evaluator
/// ([`crate::eval::eval_all`]) and the physical engine's Datalog planner
/// consume, so the two agree on layering by construction.
#[derive(Debug, Clone)]
pub struct Stratum<'a> {
    /// The IDB predicates assigned to this stratum (sorted).
    pub predicates: Vec<String>,
    /// The rules whose heads belong to this stratum, in program order.
    pub rules: Vec<&'a Rule>,
    /// True iff some rule body reads a same-stratum predicate positively.
    pub recursive: bool,
}

impl Stratum<'_> {
    /// Body positions of positive same-stratum occurrences in `rule` —
    /// the occurrences semi-naive evaluation restricts to the delta.
    pub fn delta_occurrences(&self, rule: &Rule) -> Vec<usize> {
        rule.body
            .iter()
            .enumerate()
            .filter_map(|(i, l)| match l {
                Literal::Pos(a) if self.predicates.iter().any(|p| p == &a.rel) => Some(i),
                _ => None,
            })
            .collect()
    }
}

/// Stratifies `p` and groups its rules into evaluation-ordered strata.
pub fn strata(p: &Program) -> DlResult<Vec<Stratum<'_>>> {
    let stratum = stratify(p)?;
    let order = strata_order(&stratum);
    Ok(order
        .into_iter()
        .map(|predicates| {
            let rules: Vec<&Rule> =
                p.rules.iter().filter(|r| predicates.contains(&r.head.rel)).collect();
            let recursive = rules.iter().any(|r| {
                r.body.iter().any(
                    |l| matches!(l, Literal::Pos(a) if predicates.contains(&a.rel)),
                )
            });
            Stratum { predicates, rules, recursive }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;

    #[test]
    fn linear_negation_two_strata() {
        let p = parse_program(
            "bad(S) :- Reserves(S, B, D), Boat(B, N, 'red').\n\
             good(S) :- Sailor(S, N, R, A), not bad(S).",
        )
        .unwrap();
        let s = stratify(&p).unwrap();
        assert_eq!(s["bad"], 0);
        assert_eq!(s["good"], 1);
        let order = strata_order(&s);
        assert_eq!(order, vec![vec!["bad".to_string()], vec!["good".to_string()]]);
    }

    #[test]
    fn positive_recursion_is_fine() {
        let p = parse_program(
            "tc(X, Y) :- e(X, Y).\n\
             tc(X, Z) :- tc(X, Y), e(Y, Z).",
        )
        .unwrap();
        let s = stratify(&p).unwrap();
        assert_eq!(s["tc"], 0);
    }

    #[test]
    fn negation_through_recursion_rejected() {
        let p = parse_program(
            "win(X) :- move(X, Y), not win(Y).",
        )
        .unwrap();
        assert!(matches!(stratify(&p), Err(DlError::NotStratifiable(_))));
    }

    #[test]
    fn chained_negations_stack_strata() {
        let p = parse_program(
            "a(X) :- e(X, Y).\n\
             b(X) :- e(X, Y), not a(X).\n\
             c(X) :- e(X, Y), not b(X).",
        )
        .unwrap();
        let s = stratify(&p).unwrap();
        assert_eq!((s["a"], s["b"], s["c"]), (0, 1, 2));
    }

    #[test]
    fn edb_negation_is_stratum_zero() {
        let p = parse_program("ans(X) :- e(X, Y), not f(X, Y).").unwrap();
        // f is EDB (no rules) so negation imposes nothing.
        let s = stratify(&p).unwrap();
        assert_eq!(s["ans"], 0);
    }

    #[test]
    fn strata_expose_rules_and_recursion() {
        let p = parse_program(
            "% query: ans\n\
             tc(X, Y) :- e(X, Y).\n\
             tc(X, Z) :- tc(X, Y), e(Y, Z).\n\
             ans(X) :- e(X, Y), not tc(Y, X).",
        )
        .unwrap();
        let layers = strata(&p).unwrap();
        assert_eq!(layers.len(), 2);
        assert_eq!(layers[0].predicates, vec!["tc"]);
        assert_eq!(layers[0].rules.len(), 2);
        assert!(layers[0].recursive);
        assert_eq!(layers[0].delta_occurrences(layers[0].rules[1]), vec![0]);
        assert_eq!(layers[0].delta_occurrences(layers[0].rules[0]), Vec::<usize>::new());
        assert_eq!(layers[1].predicates, vec!["ans"]);
        assert!(!layers[1].recursive);
    }

    #[test]
    fn same_stratum_positive_dependency_without_cycle_is_recursive() {
        // a reads b positively; both land in stratum 0 — semi-naive
        // rounds are what propagate b's facts into a.
        let p = parse_program(
            "% query: a\n\
             a(X) :- b(X).\n\
             b(X) :- e(X, Y).",
        )
        .unwrap();
        let layers = strata(&p).unwrap();
        assert_eq!(layers.len(), 1);
        assert!(layers[0].recursive);
    }
}
