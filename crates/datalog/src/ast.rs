//! Abstract syntax of Datalog programs.

use relviz_model::{CmpOp, Value};

/// A term: variable (Uppercase-initial by convention) or constant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    Var(String),
    Const(Value),
}

impl Term {
    pub fn var(name: impl Into<String>) -> Self {
        Term::Var(name.into())
    }
    pub fn val(v: impl Into<Value>) -> Self {
        Term::Const(v.into())
    }
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }
}

impl std::fmt::Display for Term {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{}", c.to_literal()),
        }
    }
}

/// A predicate applied to terms.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    pub rel: String,
    pub terms: Vec<Term>,
}

impl Atom {
    pub fn new(rel: impl Into<String>, terms: Vec<Term>) -> Self {
        Atom { rel: rel.into(), terms }
    }
    pub fn vars(&self) -> impl Iterator<Item = &str> {
        self.terms.iter().filter_map(Term::as_var)
    }
}

impl std::fmt::Display for Atom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}(", self.rel)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// A body literal: positive atom, negated atom, or comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    Pos(Atom),
    Neg(Atom),
    Cmp { left: Term, op: CmpOp, right: Term },
}

impl std::fmt::Display for Literal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Literal::Pos(a) => write!(f, "{a}"),
            Literal::Neg(a) => write!(f, "not {a}"),
            Literal::Cmp { left, op, right } => write!(f, "{left} {} {right}", op.symbol()),
        }
    }
}

/// A rule `head :- body.` (facts have empty bodies).
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    pub head: Atom,
    pub body: Vec<Literal>,
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() {
            write!(f, " :- ")?;
            for (i, l) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{l}")?;
            }
        }
        write!(f, ".")
    }
}

/// A program: rules plus the name of the answer predicate (defaults to the
/// head predicate of the last rule).
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    pub rules: Vec<Rule>,
    pub query: String,
}

impl Program {
    /// Predicates defined by rule heads (the IDB).
    pub fn idb_predicates(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for r in &self.rules {
            if !out.contains(&r.head.rel.as_str()) {
                out.push(&r.head.rel);
            }
        }
        out
    }

    /// True iff some predicate (transitively) depends on itself.
    pub fn is_recursive(&self) -> bool {
        let idb = self.idb_predicates();
        // DFS over the dependency graph restricted to IDB predicates.
        let deps = |p: &str| -> Vec<&str> {
            let mut out = Vec::new();
            for r in &self.rules {
                if r.head.rel == p {
                    for l in &r.body {
                        if let Literal::Pos(a) | Literal::Neg(a) = l {
                            if idb.contains(&a.rel.as_str()) && !out.contains(&a.rel.as_str()) {
                                out.push(a.rel.as_str());
                            }
                        }
                    }
                }
            }
            out
        };
        for &start in &idb {
            let mut stack = deps(start);
            let mut seen: Vec<&str> = Vec::new();
            while let Some(p) = stack.pop() {
                if p == start {
                    return true;
                }
                if !seen.contains(&p) {
                    seen.push(p);
                    stack.extend(deps(p));
                }
            }
        }
        false
    }
}

impl std::fmt::Display for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(head: Atom, body: Vec<Literal>) -> Rule {
        Rule { head, body }
    }

    #[test]
    fn display_round() {
        let r = rule(
            Atom::new("ans", vec![Term::var("N")]),
            vec![
                Literal::Pos(Atom::new(
                    "Sailor",
                    vec![Term::var("S"), Term::var("N"), Term::var("R"), Term::var("A")],
                )),
                Literal::Neg(Atom::new("bad", vec![Term::var("S")])),
                Literal::Cmp {
                    left: Term::var("R"),
                    op: relviz_model::CmpOp::Gt,
                    right: Term::val(7),
                },
            ],
        );
        assert_eq!(
            r.to_string(),
            "ans(N) :- Sailor(S, N, R, A), not bad(S), R > 7."
        );
    }

    #[test]
    fn recursion_detection() {
        let tc = Program {
            rules: vec![
                rule(
                    Atom::new("tc", vec![Term::var("X"), Term::var("Y")]),
                    vec![Literal::Pos(Atom::new("e", vec![Term::var("X"), Term::var("Y")]))],
                ),
                rule(
                    Atom::new("tc", vec![Term::var("X"), Term::var("Z")]),
                    vec![
                        Literal::Pos(Atom::new("tc", vec![Term::var("X"), Term::var("Y")])),
                        Literal::Pos(Atom::new("e", vec![Term::var("Y"), Term::var("Z")])),
                    ],
                ),
            ],
            query: "tc".into(),
        };
        assert!(tc.is_recursive());

        let flat = Program {
            rules: vec![rule(
                Atom::new("ans", vec![Term::var("X")]),
                vec![Literal::Pos(Atom::new("e", vec![Term::var("X"), Term::var("Y")]))],
            )],
            query: "ans".into(),
        };
        assert!(!flat.is_recursive());
    }

    #[test]
    fn idb_listing() {
        let p = Program {
            rules: vec![
                rule(Atom::new("a", vec![]), vec![]),
                rule(Atom::new("b", vec![]), vec![]),
                rule(Atom::new("a", vec![]), vec![]),
            ],
            query: "a".into(),
        };
        assert_eq!(p.idb_predicates(), vec!["a", "b"]);
    }
}
