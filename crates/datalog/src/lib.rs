//! # relviz-datalog
//!
//! Datalog with stratified negation — the rule-based member of the
//! tutorial's five textual languages, and the language QBE secretly embeds
//! (Part 5 asks "is QBE really more visual than Datalog?"; experiment E6
//! makes the comparison concrete).
//!
//! Features:
//! * classic syntax ([`parse::parse_program`]):
//!   `ans(N) :- Sailor(S, N, R, A), Reserves(S, 102, D).`
//! * **range-restriction** checking (every head/negated/compared variable
//!   must occur in a positive body atom),
//! * **stratification** ([`stratify`]) — negation must not cross a
//!   recursive cycle; the tutorial's fragment (non-recursive programs) is
//!   always stratifiable,
//! * **semi-naive** bottom-up evaluation per stratum ([`eval::eval_program`]),
//! * translations RA → Datalog and (non-recursive) Datalog → RA
//!   ([`translate`]).
//!
//! ```
//! use relviz_model::catalog::sailors_sample;
//! use relviz_datalog::{parse::parse_program, eval::eval_program};
//!
//! let db = sailors_sample();
//! let prog = parse_program(
//!     "ans(N) :- Sailor(S, N, R, A), Reserves(S, 102, D).",
//! ).unwrap();
//! let out = eval_program(&prog, &db).unwrap();
//! assert_eq!(out.len(), 3);
//! ```

pub mod ast;
pub mod error;
pub mod eval;
pub mod parse;
pub mod stratify;
pub mod translate;

pub use ast::{Atom, Literal, Program, Rule, Term};
pub use error::{DlError, DlResult};
pub use eval::{idb_arities, idb_schema};
pub use stratify::{strata, stratify, Stratum};
