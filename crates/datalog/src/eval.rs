//! Bottom-up evaluation: stratum by stratum, **semi-naive** within each
//! stratum.
//!
//! Within a stratum, the naive fixpoint re-derives every fact every round;
//! semi-naive evaluation instead evaluates each rule once per occurrence of
//! a same-stratum IDB predicate, with that occurrence restricted to the
//! *delta* (facts new in the previous round). For non-recursive programs —
//! the tutorial's fragment — each stratum converges after one round.

use std::collections::HashMap;

use relviz_model::{Database, DataType, Relation, Schema, Tuple, Value};

use crate::ast::{Atom, Literal, Program, Rule, Term};
use crate::error::{DlError, DlResult};
use crate::parse::check_range_restriction;
use crate::stratify::strata;

/// Evaluates `program` against `db`, returning the answer predicate's
/// relation.
pub fn eval_program(program: &Program, db: &Database) -> DlResult<Relation> {
    let all = eval_all(program, db)?;
    all.get(&program.query)
        .cloned()
        .ok_or_else(|| DlError::Eval(format!("query predicate `{}` was never derived", program.query)))
}

/// IDB arities from rule heads, with the arity-consistency check every
/// consumer needs (a predicate used at two arities is a check error).
///
/// Shared by the reference evaluator and the physical engine's Datalog
/// planner, so both derive identical IDB shapes.
pub fn idb_arities(program: &Program) -> DlResult<HashMap<String, usize>> {
    let mut arity: HashMap<String, usize> = HashMap::new();
    for r in &program.rules {
        match arity.get(&r.head.rel) {
            Some(&a) if a != r.head.terms.len() => {
                return Err(DlError::Check(format!(
                    "predicate `{}` used with arities {a} and {}",
                    r.head.rel,
                    r.head.terms.len()
                )))
            }
            _ => {
                arity.insert(r.head.rel.clone(), r.head.terms.len());
            }
        }
    }
    Ok(arity)
}

/// The schema of a derived (IDB) relation of the given arity: columns
/// `arg1..argk`, untyped (`Any`) — Datalog rules carry no declarations.
/// The single source of truth for IDB column naming; the reference
/// evaluator and the physical engine's planner both use it.
pub fn idb_schema(arity: usize) -> Schema {
    let names: Vec<String> = (1..=arity).map(|i| format!("arg{i}")).collect();
    Schema::of(
        &names
            .iter()
            .map(|n| (n.as_str(), DataType::Any))
            .collect::<Vec<_>>(),
    )
}

/// Evaluates the whole program, returning every IDB relation.
pub fn eval_all(program: &Program, db: &Database) -> DlResult<HashMap<String, Relation>> {
    check_range_restriction(program)?;
    let arity = idb_arities(program)?;

    let mut idb: HashMap<String, Relation> = arity
        .iter()
        .map(|(name, &k)| (name.clone(), Relation::empty(idb_schema(k))))
        .collect();

    for layer in strata(program)? {
        // Round 0: evaluate every rule fully.
        let mut delta: HashMap<String, Relation> = HashMap::new();
        for name in &layer.predicates {
            delta.insert(name.clone(), Relation::empty(idb_schema(arity[name])));
        }
        for rule in &layer.rules {
            let derived = eval_rule(rule, db, &idb, None)?;
            let target = idb.get_mut(&rule.head.rel).expect("idb pre-populated");
            let d = delta.get_mut(&rule.head.rel).expect("delta pre-populated");
            for t in derived {
                if target.insert_unchecked(t.clone()) {
                    d.insert_unchecked(t);
                }
            }
        }

        // A stratum with no same-stratum positive occurrence converges
        // in round 0.
        if !layer.recursive {
            continue;
        }

        // Semi-naive rounds until no delta.
        loop {
            let mut new_delta: HashMap<String, Relation> = HashMap::new();
            for name in &layer.predicates {
                new_delta.insert(name.clone(), Relation::empty(idb_schema(arity[name])));
            }
            let mut any = false;
            for rule in &layer.rules {
                // One evaluation per same-stratum positive occurrence,
                // with that occurrence reading from the delta.
                for occ in layer.delta_occurrences(rule) {
                    let derived = eval_rule(rule, db, &idb, Some((occ, &delta)))?;
                    let target = idb.get_mut(&rule.head.rel).expect("idb pre-populated");
                    let nd = new_delta.get_mut(&rule.head.rel).expect("delta pre-populated");
                    for t in derived {
                        if target.insert_unchecked(t.clone()) {
                            nd.insert_unchecked(t);
                            any = true;
                        }
                    }
                }
            }
            if !any {
                break;
            }
            delta = new_delta;
        }
    }
    Ok(idb)
}

/// Looks up a predicate: IDB first, then the database (EDB).
fn fetch<'a>(
    name: &str,
    db: &'a Database,
    idb: &'a HashMap<String, Relation>,
) -> DlResult<&'a Relation> {
    if let Some(r) = idb.get(name) {
        return Ok(r);
    }
    db.relation(name)
        .map_err(|_| DlError::Eval(format!("unknown predicate `{name}` (neither IDB nor EDB)")))
}

/// Evaluates one rule body, returning derived head tuples. If
/// `delta_at = Some((i, deltas))`, body literal `i` reads from the delta
/// relations instead of the full IDB.
fn eval_rule(
    rule: &Rule,
    db: &Database,
    idb: &HashMap<String, Relation>,
    delta_at: Option<(usize, &HashMap<String, Relation>)>,
) -> DlResult<Vec<Tuple>> {
    // Order: positive atoms first (guards), then the rest as filters.
    let mut out = Vec::new();
    let mut env: HashMap<String, Value> = HashMap::new();
    let positives: Vec<(usize, &Atom)> = rule
        .body
        .iter()
        .enumerate()
        .filter_map(|(i, l)| match l {
            Literal::Pos(a) => Some((i, a)),
            _ => None,
        })
        .collect();

    join_positives(rule, &positives, 0, db, idb, delta_at, &mut env, &mut out)?;
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn join_positives(
    rule: &Rule,
    positives: &[(usize, &Atom)],
    idx: usize,
    db: &Database,
    idb: &HashMap<String, Relation>,
    delta_at: Option<(usize, &HashMap<String, Relation>)>,
    env: &mut HashMap<String, Value>,
    out: &mut Vec<Tuple>,
) -> DlResult<()> {
    if idx == positives.len() {
        // All positive atoms satisfied: check filters, emit head.
        for lit in &rule.body {
            match lit {
                Literal::Pos(_) => {}
                Literal::Neg(a) => {
                    let rel = fetch(&a.rel, db, idb)?;
                    if rel.schema().arity() != a.terms.len() {
                        return Err(arity_error(a, rel.schema().arity()));
                    }
                    let tuple = Tuple::new(
                        a.terms
                            .iter()
                            .map(|t| ground(t, env))
                            .collect::<DlResult<_>>()?,
                    );
                    if rel.contains(&tuple) {
                        return Ok(());
                    }
                }
                Literal::Cmp { left, op, right } => {
                    let l = ground(left, env)?;
                    let r = ground(right, env)?;
                    if !op.apply(&l, &r) {
                        return Ok(());
                    }
                }
            }
        }
        let head = Tuple::new(
            rule.head
                .terms
                .iter()
                .map(|t| ground(t, env))
                .collect::<DlResult<_>>()?,
        );
        out.push(head);
        return Ok(());
    }

    let (body_idx, atom) = positives[idx];
    let rel: &Relation = match delta_at {
        Some((i, deltas)) if i == body_idx => deltas
            .get(&atom.rel)
            .ok_or_else(|| DlError::Eval(format!("missing delta for `{}`", atom.rel)))?,
        _ => fetch(&atom.rel, db, idb)?,
    };
    if rel.schema().arity() != atom.terms.len() {
        return Err(arity_error(atom, rel.schema().arity()));
    }

    'tuples: for t in rel.iter() {
        let mut bound: Vec<&str> = Vec::new();
        for (term, value) in atom.terms.iter().zip(t.values()) {
            // Unification compares by the total order of `Value` — the
            // order behind `CmpOp::apply`, set membership, and the
            // physical engine's join keys — not derived `PartialEq`,
            // which disagrees on the numeric edge cases (Int 1 vs
            // Float 1.0, NaN vs an identical NaN).
            match term {
                Term::Const(c) => {
                    if c.cmp(value) != std::cmp::Ordering::Equal {
                        for b in &bound {
                            env.remove(*b);
                        }
                        continue 'tuples;
                    }
                }
                Term::Var(v) => match env.get(v) {
                    Some(existing) => {
                        if existing.cmp(value) != std::cmp::Ordering::Equal {
                            for b in &bound {
                                env.remove(*b);
                            }
                            continue 'tuples;
                        }
                    }
                    None => {
                        env.insert(v.clone(), value.clone());
                        bound.push(v);
                    }
                },
            }
        }
        let r = join_positives(rule, positives, idx + 1, db, idb, delta_at, env, out);
        for b in &bound {
            env.remove(*b);
        }
        r?;
    }
    Ok(())
}

fn arity_error(a: &Atom, actual: usize) -> DlError {
    DlError::Eval(format!(
        "atom `{a}` has {} terms but relation has arity {actual}",
        a.terms.len()
    ))
}

fn ground(t: &Term, env: &HashMap<String, Value>) -> DlResult<Value> {
    match t {
        Term::Const(v) => Ok(v.clone()),
        Term::Var(v) => env
            .get(v)
            .cloned()
            .ok_or_else(|| DlError::Eval(format!("unbound variable `{v}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;
    use relviz_model::catalog::sailors_sample;
    use relviz_model::generate::generate_binary_pair;

    fn run(src: &str) -> Relation {
        eval_program(&parse_program(src).unwrap(), &sailors_sample()).unwrap()
    }

    #[test]
    fn q1_join_with_constant() {
        let out = run("ans(N) :- Sailor(S, N, R, A), Reserves(S, 102, D).");
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn q2_three_way_join() {
        let out = run(
            "ans(N) :- Sailor(S, N, R, A), Reserves(S, B, D), Boat(B, BN, 'red').",
        );
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn q3_union_via_two_rules() {
        let out = run(
            "ans(N) :- Sailor(S, N, R, A), Reserves(S, B, D), Boat(B, BN, 'red').\n\
             ans(N) :- Sailor(S, N, R, A), Reserves(S, B, D), Boat(B, BN, 'green').",
        );
        assert_eq!(out.len(), 3); // dustin, horatio, lubber
    }

    #[test]
    fn q4_negation() {
        let out = run(
            "% query: ans\n\
             redres(S) :- Reserves(S, B, D), Boat(B, BN, 'red').\n\
             ans(N) :- Sailor(S, N, R, A), not redres(S).",
        );
        // Non-red-reservers: brutus, andy, rusty, zorba, horatio(74), art, bob.
        assert_eq!(out.len(), 7);
    }

    #[test]
    fn q5_division_datalog_pattern() {
        // The two-step division idiom the tutorial highlights for QBE.
        let out = run(
            "% query: ans\n\
             missing(S) :- Sailor(S, N, R, A), Boat(B, BN, 'red'), not Reserves2(S, B).\n\
             Reserves2(S, B) :- Reserves(S, B, D).\n\
             ans(N) :- Sailor(S, N, R, A), not missing(S).",
        );
        assert_eq!(out.len(), 2); // dustin, lubber
    }

    #[test]
    fn recursive_transitive_closure() {
        let db = generate_binary_pair(11, 30, 12);
        let prog = parse_program(
            "tc(X, Y) :- R(X, Y).\n\
             tc(X, Z) :- tc(X, Y), R(Y, Z).",
        )
        .unwrap();
        let out = eval_program(&prog, &db).unwrap();
        // tc must contain R and be transitively closed.
        let r = db.relation("R").unwrap();
        for t in r.iter() {
            assert!(out.contains(t));
        }
        // closure property: (a,b),(b,c) ∈ tc ⇒ (a,c) ∈ tc — spot check via recompute
        let mut closed = true;
        'outer: for ab in out.iter() {
            for bc in r.iter() {
                if ab.values()[1] == bc.values()[0] {
                    let ac = Tuple::new(vec![ab.values()[0].clone(), bc.values()[1].clone()]);
                    if !out.contains(&ac) {
                        closed = false;
                        break 'outer;
                    }
                }
            }
        }
        assert!(closed, "tc is not transitively closed");
    }

    /// Regression (found by /code-review): join unification must follow
    /// the total order of `Value`, like every other evaluator's
    /// comparisons — before the fix, `Int 2` refused to unify with
    /// `Float 2.0` while the comparison literal `Y = Y2` accepted it,
    /// and the physical engine's hash joins disagreed with this oracle
    /// on mixed numeric data.
    #[test]
    fn join_unification_follows_the_total_order() {
        use relviz_model::{DataType, Schema};
        let mut db = Database::new();
        let mut r = Relation::empty(Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]));
        r.insert_unchecked(Tuple::of((1, 2)));
        let mut s = Relation::empty(Schema::of(&[("b", DataType::Float), ("c", DataType::Int)]));
        s.insert_unchecked(Tuple::of((2.0, 3)));
        db.add("R", r).unwrap();
        db.add("S", s).unwrap();
        let prog = parse_program("ans(X, Z) :- R(X, Y), S(Y, Z).").unwrap();
        let out = eval_program(&prog, &db).unwrap();
        assert_eq!(out.len(), 1);
        // Constant terms unify the same way.
        let prog = parse_program("ans(Z) :- S(2, Z).").unwrap();
        let out = eval_program(&prog, &db).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn facts_participate() {
        let out = run("vip(22).\nans(N) :- vip(S), Sailor(S, N, R, A).");
        assert_eq!(out.len(), 1);
        assert_eq!(out.iter().next().unwrap().values()[0], Value::str("dustin"));
    }

    #[test]
    fn comparisons_filter() {
        let out = run("ans(N) :- Sailor(S, N, R, A), R > 7, A < 40.");
        // ratings > 7 and age < 40: andy(8, 25.5), rusty(10,35), zorba(10,16), horatio74(9,35)
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn unknown_predicate_errors() {
        let p = parse_program("ans(X) :- NoSuch(X).").unwrap();
        assert!(matches!(eval_program(&p, &sailors_sample()), Err(DlError::Eval(_))));
    }

    #[test]
    fn arity_mismatch_caught() {
        let p = parse_program("ans(S) :- Sailor(S, N).").unwrap();
        assert!(matches!(eval_program(&p, &sailors_sample()), Err(DlError::Eval(_))));
    }

    #[test]
    fn inconsistent_idb_arity_rejected() {
        let p = parse_program("a(X) :- e(X, Y).\na(X, Y) :- e(X, Y).").unwrap();
        assert!(matches!(
            eval_program(&p, &generate_binary_pair(1, 5, 5)),
            Err(DlError::Check(_))
        ));
    }
}
