//! Translations between Datalog and Relational Algebra.
//!
//! * [`ra_to_datalog`]: each RA operator becomes one or two rules — the
//!   dataflow reading of Datalog the tutorial uses when comparing QBE with
//!   Datalog (division expands into the classic two-negation pattern).
//! * [`datalog_to_ra`] (non-recursive programs): rules inline bottom-up;
//!   positive atoms join on shared variables, negated atoms become
//!   anti-joins (`P − (P ⋈ N)`), multiple rules per predicate union.

use std::collections::HashMap;

use relviz_model::{Database, Schema};
use relviz_ra::typing::schema_of;
use relviz_ra::{Operand, Predicate, RaExpr};

use crate::ast::{Atom, Literal, Program, Rule, Term};
use crate::error::{DlError, DlResult};

// =========================================================================
// RA → Datalog
// =========================================================================

/// Translates an RA expression into a Datalog program whose answer
/// predicate is `ans`.
pub fn ra_to_datalog(e: &RaExpr, db: &Database) -> DlResult<Program> {
    schema_of(e, db).map_err(|err| DlError::Check(err.to_string()))?;
    let mut ctx = RaCtx { rules: Vec::new(), counter: 0 };
    let node = ctx.compile(e, db)?;
    // Final aliasing rule so the answer predicate is always `ans`.
    let vars: Vec<Term> = node.attrs.iter().map(|a| Term::var(var_of(a))).collect();
    ctx.rules.push(Rule {
        head: Atom::new("ans", vars.clone()),
        body: vec![Literal::Pos(Atom::new(node.pred, vars))],
    });
    Ok(Program { rules: ctx.rules, query: "ans".into() })
}

/// A compiled node: predicate name + attribute names (defining term order).
struct Node {
    pred: String,
    attrs: Vec<String>,
}

struct RaCtx {
    rules: Vec<Rule>,
    counter: usize,
}

fn var_of(attr: &str) -> String {
    format!("V_{attr}")
}

impl RaCtx {
    fn fresh(&mut self) -> String {
        self.counter += 1;
        format!("q{}", self.counter)
    }

    fn atom(&self, node: &Node) -> Atom {
        Atom::new(
            node.pred.clone(),
            node.attrs.iter().map(|a| Term::var(var_of(a))).collect(),
        )
    }

    fn compile(&mut self, e: &RaExpr, db: &Database) -> DlResult<Node> {
        match e {
            RaExpr::Relation(name) => {
                let schema = db
                    .schema(name)
                    .map_err(|_| DlError::Check(format!("unknown relation `{name}`")))?;
                Ok(Node {
                    pred: name.clone(),
                    attrs: schema.attrs().iter().map(|a| a.name.clone()).collect(),
                })
            }
            RaExpr::Rename { from, to, input } => {
                let mut node = self.compile(input, db)?;
                for a in &mut node.attrs {
                    if a == from {
                        a.clone_from(to);
                    }
                }
                Ok(node)
            }
            RaExpr::Select { pred, input } => {
                let node = self.compile(input, db)?;
                let name = self.fresh();
                let head = Atom::new(
                    name.clone(),
                    node.attrs.iter().map(|a| Term::var(var_of(a))).collect(),
                );
                for conj in predicate_dnf(pred)? {
                    let mut body = vec![Literal::Pos(self.atom(&node))];
                    body.extend(conj.into_iter().map(|(l, op, r)| Literal::Cmp {
                        left: operand_term(&l),
                        op,
                        right: operand_term(&r),
                    }));
                    self.rules.push(Rule { head: head.clone(), body });
                }
                Ok(Node { pred: name, attrs: node.attrs })
            }
            RaExpr::Project { attrs, input } => {
                let node = self.compile(input, db)?;
                let name = self.fresh();
                self.rules.push(Rule {
                    head: Atom::new(
                        name.clone(),
                        attrs.iter().map(|a| Term::var(var_of(a))).collect(),
                    ),
                    body: vec![Literal::Pos(self.atom(&node))],
                });
                Ok(Node { pred: name, attrs: attrs.clone() })
            }
            RaExpr::Product(l, r) | RaExpr::NaturalJoin(l, r) => {
                let ln = self.compile(l, db)?;
                let rn = self.compile(r, db)?;
                // For natural join, shared attribute names produce shared
                // variables — unification is the join. Products have
                // disjoint names by RA typing, so the same code serves both.
                let mut attrs = ln.attrs.clone();
                for a in &rn.attrs {
                    if !attrs.contains(a) {
                        attrs.push(a.clone());
                    }
                }
                let name = self.fresh();
                self.rules.push(Rule {
                    head: Atom::new(
                        name.clone(),
                        attrs.iter().map(|a| Term::var(var_of(a))).collect(),
                    ),
                    body: vec![Literal::Pos(self.atom(&ln)), Literal::Pos(self.atom(&rn))],
                });
                Ok(Node { pred: name, attrs })
            }
            RaExpr::ThetaJoin { pred, left, right } => {
                let product = RaExpr::Product(left.clone(), right.clone());
                let selected =
                    RaExpr::Select { pred: pred.clone(), input: Box::new(product) };
                self.compile(&selected, db)
            }
            RaExpr::Union(l, r) => {
                let ln = self.compile(l, db)?;
                let rn = self.compile(r, db)?;
                let name = self.fresh();
                // Union takes the left's attribute names.
                let head = Atom::new(
                    name.clone(),
                    ln.attrs.iter().map(|a| Term::var(var_of(a))).collect(),
                );
                self.rules.push(Rule {
                    head: head.clone(),
                    body: vec![Literal::Pos(self.atom(&ln))],
                });
                // Right side: same head variables, positional.
                let right_atom = Atom::new(
                    rn.pred.clone(),
                    ln.attrs.iter().map(|a| Term::var(var_of(a))).collect(),
                );
                self.rules.push(Rule { head, body: vec![Literal::Pos(right_atom)] });
                Ok(Node { pred: name, attrs: ln.attrs })
            }
            RaExpr::Intersect(l, r) => {
                let ln = self.compile(l, db)?;
                let rn = self.compile(r, db)?;
                let name = self.fresh();
                let vars: Vec<Term> =
                    ln.attrs.iter().map(|a| Term::var(var_of(a))).collect();
                self.rules.push(Rule {
                    head: Atom::new(name.clone(), vars.clone()),
                    body: vec![
                        Literal::Pos(self.atom(&ln)),
                        Literal::Pos(Atom::new(rn.pred, vars)),
                    ],
                });
                Ok(Node { pred: name, attrs: ln.attrs })
            }
            RaExpr::Difference(l, r) => {
                let ln = self.compile(l, db)?;
                let rn = self.compile(r, db)?;
                let name = self.fresh();
                let vars: Vec<Term> =
                    ln.attrs.iter().map(|a| Term::var(var_of(a))).collect();
                self.rules.push(Rule {
                    head: Atom::new(name.clone(), vars.clone()),
                    body: vec![
                        Literal::Pos(self.atom(&ln)),
                        Literal::Neg(Atom::new(rn.pred, vars)),
                    ],
                });
                Ok(Node { pred: name, attrs: ln.attrs })
            }
            RaExpr::Division(l, r) => {
                // The tutorial's dataflow division pattern:
                //   cand(Q)  :- l(Q, D).
                //   bad(Q)   :- cand(Q), r(D), not l(Q, D).
                //   div(Q)   :- cand(Q), not bad(Q).
                let ln = self.compile(l, db)?;
                let rn = self.compile(r, db)?;
                let q_attrs: Vec<String> = ln
                    .attrs
                    .iter()
                    .filter(|a| !rn.attrs.contains(a))
                    .cloned()
                    .collect();
                let q_vars: Vec<Term> = q_attrs.iter().map(|a| Term::var(var_of(a))).collect();

                let cand = self.fresh();
                self.rules.push(Rule {
                    head: Atom::new(cand.clone(), q_vars.clone()),
                    body: vec![Literal::Pos(self.atom(&ln))],
                });
                let bad = self.fresh();
                self.rules.push(Rule {
                    head: Atom::new(bad.clone(), q_vars.clone()),
                    body: vec![
                        Literal::Pos(Atom::new(cand.clone(), q_vars.clone())),
                        Literal::Pos(self.atom(&rn)),
                        Literal::Neg(self.atom(&ln)),
                    ],
                });
                let div = self.fresh();
                self.rules.push(Rule {
                    head: Atom::new(div.clone(), q_vars.clone()),
                    body: vec![
                        Literal::Pos(Atom::new(cand, q_vars.clone())),
                        Literal::Neg(Atom::new(bad, q_vars)),
                    ],
                });
                Ok(Node { pred: div, attrs: q_attrs })
            }
        }
    }
}

fn operand_term(o: &Operand) -> Term {
    match o {
        Operand::Attr(a) => Term::var(var_of(a)),
        Operand::Const(v) => Term::Const(v.clone()),
    }
}

/// Converts an RA predicate to DNF over comparisons (negation pushed onto
/// comparisons via operator negation).
fn predicate_dnf(
    p: &Predicate,
) -> DlResult<Vec<Vec<(Operand, relviz_model::CmpOp, Operand)>>> {
    match p {
        Predicate::Const(true) => Ok(vec![vec![]]),
        Predicate::Const(false) => Ok(vec![]),
        Predicate::Cmp { left, op, right } => {
            Ok(vec![vec![(left.clone(), *op, right.clone())]])
        }
        Predicate::And(a, b) => {
            let da = predicate_dnf(a)?;
            let db_ = predicate_dnf(b)?;
            let mut out = Vec::with_capacity(da.len() * db_.len());
            for x in &da {
                for y in &db_ {
                    let mut conj = x.clone();
                    conj.extend(y.iter().cloned());
                    out.push(conj);
                }
            }
            Ok(out)
        }
        Predicate::Or(a, b) => {
            let mut out = predicate_dnf(a)?;
            out.extend(predicate_dnf(b)?);
            Ok(out)
        }
        Predicate::Not(inner) => match &**inner {
            Predicate::Cmp { left, op, right } => {
                Ok(vec![vec![(left.clone(), op.negate(), right.clone())]])
            }
            Predicate::Not(inner2) => predicate_dnf(inner2),
            Predicate::And(a, b) => {
                predicate_dnf(&Predicate::Or(
                    Box::new(Predicate::Not(a.clone())),
                    Box::new(Predicate::Not(b.clone())),
                ))
            }
            Predicate::Or(a, b) => {
                predicate_dnf(&Predicate::And(
                    Box::new(Predicate::Not(a.clone())),
                    Box::new(Predicate::Not(b.clone())),
                ))
            }
            Predicate::Const(b) => predicate_dnf(&Predicate::Const(!b)),
        },
    }
}

// =========================================================================
// Datalog → RA (non-recursive programs)
// =========================================================================

/// Translates a non-recursive Datalog program into an RA expression for its
/// answer predicate.
pub fn datalog_to_ra(p: &Program, db: &Database) -> DlResult<RaExpr> {
    if p.is_recursive() {
        return Err(DlError::Unsupported(
            "recursive programs exceed RA (no fixpoint operator)".into(),
        ));
    }
    let mut built: HashMap<String, RaExpr> = HashMap::new();
    // Process predicates in dependency order (simple iteration to fixpoint:
    // non-recursive ⇒ converges).
    let idb: Vec<String> = p.idb_predicates().into_iter().map(String::from).collect();
    let mut remaining: Vec<&String> = idb.iter().collect();
    while !remaining.is_empty() {
        let before = remaining.len();
        remaining.retain(|name| {
            let ready = p.rules.iter().filter(|r| &r.head.rel == *name).all(|r| {
                r.body.iter().all(|l| match l {
                    Literal::Pos(a) | Literal::Neg(a) => {
                        !idb.contains(&a.rel) || built.contains_key(&a.rel)
                    }
                    Literal::Cmp { .. } => true,
                })
            });
            if ready {
                match build_predicate(name, p, db, &built) {
                    Ok(e) => {
                        built.insert((*name).clone(), e);
                        false
                    }
                    Err(_) => true, // keep; will error out below if stuck
                }
            } else {
                true
            }
        });
        if remaining.len() == before {
            // Re-run once to surface the actual error.
            let name = remaining[0];
            build_predicate(name, p, db, &built)?;
            return Err(DlError::Check(format!(
                "could not order predicate `{name}` (internal error)"
            )));
        }
    }
    built
        .remove(&p.query)
        .ok_or_else(|| DlError::Check(format!("no rules for query predicate `{}`", p.query)))
}

fn build_predicate(
    name: &str,
    p: &Program,
    db: &Database,
    built: &HashMap<String, RaExpr>,
) -> DlResult<RaExpr> {
    let mut alternatives = Vec::new();
    for rule in p.rules.iter().filter(|r| r.head.rel == name) {
        alternatives.push(build_rule(rule, db, built)?);
    }
    alternatives
        .into_iter()
        .reduce(|a, b| a.union(b))
        .ok_or_else(|| DlError::Check(format!("no rules for predicate `{name}`")))
}

/// Expression for one atom: the predicate's relation with constants
/// selected, repeated variables equated, and attributes renamed to
/// variable names.
fn atom_expr(
    atom: &Atom,
    db: &Database,
    built: &HashMap<String, RaExpr>,
) -> DlResult<RaExpr> {
    let base = match built.get(&atom.rel) {
        Some(e) => e.clone(),
        None => RaExpr::Relation(atom.rel.clone()),
    };
    let schema = expr_schema(&base, db, built)?;
    if schema.arity() != atom.terms.len() {
        return Err(DlError::Check(format!(
            "atom `{atom}` arity {} vs relation arity {}",
            atom.terms.len(),
            schema.arity()
        )));
    }
    let attr_names: Vec<String> = schema.attrs().iter().map(|a| a.name.clone()).collect();

    let mut e = base;
    let mut first_pos: HashMap<&str, usize> = HashMap::new();
    let mut keep: Vec<usize> = Vec::new();
    for (i, term) in atom.terms.iter().enumerate() {
        match term {
            Term::Const(v) => {
                e = e.select(Predicate::eq(
                    Operand::Attr(attr_names[i].clone()),
                    Operand::Const(v.clone()),
                ));
            }
            Term::Var(v) => match first_pos.get(v.as_str()) {
                Some(&j) => {
                    e = e.select(Predicate::eq(
                        Operand::Attr(attr_names[i].clone()),
                        Operand::Attr(attr_names[j].clone()),
                    ));
                }
                None => {
                    first_pos.insert(v, i);
                    keep.push(i);
                }
            },
        }
    }
    // Project to the first occurrence of each variable, rename to var names.
    let kept_attrs: Vec<String> = keep.iter().map(|&i| attr_names[i].clone()).collect();
    e = RaExpr::Project { attrs: kept_attrs.clone(), input: Box::new(e) };
    for &i in &keep {
        let var = atom.terms[i].as_var().expect("keep holds variable positions");
        if attr_names[i] != var {
            e = e.rename(attr_names[i].clone(), var);
        }
    }
    Ok(e)
}

fn expr_schema(
    e: &RaExpr,
    db: &Database,
    _built: &HashMap<String, RaExpr>,
) -> DlResult<Schema> {
    schema_of(e, db).map_err(|err| DlError::Check(err.to_string()))
}

fn build_rule(
    rule: &Rule,
    db: &Database,
    built: &HashMap<String, RaExpr>,
) -> DlResult<RaExpr> {
    let positives: Vec<&Atom> = rule
        .body
        .iter()
        .filter_map(|l| match l {
            Literal::Pos(a) => Some(a),
            _ => None,
        })
        .collect();
    if positives.is_empty() {
        return Err(DlError::Unsupported(
            "facts/rules without positive atoms have no RA counterpart (no constant relations)"
                .into(),
        ));
    }
    // Join positive atoms on shared variable names (natural join after the
    // per-atom rename to variable names).
    let mut e: Option<RaExpr> = None;
    for atom in positives {
        let ae = atom_expr(atom, db, built)?;
        e = Some(match e {
            None => ae,
            Some(prev) => prev.natural_join(ae),
        });
    }
    let mut e = e.expect("at least one positive atom");

    // Comparisons become selections (variables are attribute names now).
    for lit in &rule.body {
        if let Literal::Cmp { left, op, right } = lit {
            e = e.select(Predicate::cmp(term_operand(left), *op, term_operand(right)));
        }
    }

    // Negated atoms become anti-joins: e := e − π_{attrs(e)}(e ⋈ n).
    for lit in &rule.body {
        if let Literal::Neg(atom) = lit {
            let ne = atom_expr(atom, db, built)?;
            e = e.clone().difference(e.natural_join(ne));
        }
    }

    // Head: project head variables (must be distinct), rename to arg1..k.
    let mut head_vars = Vec::with_capacity(rule.head.terms.len());
    for t in &rule.head.terms {
        match t {
            Term::Var(v) => {
                if head_vars.contains(v) {
                    return Err(DlError::Unsupported(
                        "repeated head variables cannot be expressed as an RA projection".into(),
                    ));
                }
                head_vars.push(v.clone());
            }
            Term::Const(_) => {
                return Err(DlError::Unsupported(
                    "constant head terms need an extension operator absent from RA".into(),
                ))
            }
        }
    }
    if head_vars.is_empty() {
        return Err(DlError::Unsupported(
            "zero-arity predicates (Boolean queries) have no RA counterpart here".into(),
        ));
    }
    let mut out = RaExpr::Project { attrs: head_vars.clone(), input: Box::new(e) };
    for (i, v) in head_vars.iter().enumerate() {
        let target = format!("arg{}", i + 1);
        if v != &target {
            out = out.rename(v.clone(), target);
        }
    }
    Ok(out)
}

fn term_operand(t: &Term) -> Operand {
    match t {
        Term::Var(v) => Operand::Attr(v.clone()),
        Term::Const(c) => Operand::Const(c.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_program;
    use crate::parse::parse_program;
    use relviz_model::catalog::sailors_sample;
    use relviz_ra::eval::eval as ra_eval;
    use relviz_ra::parse::parse_ra;

    fn check_ra_to_dl(src: &str) {
        let db = sailors_sample();
        let e = parse_ra(src).unwrap();
        let prog = ra_to_datalog(&e, &db).unwrap_or_else(|err| panic!("{src}: {err}"));
        let via_ra = ra_eval(&e, &db).unwrap();
        let via_dl = eval_program(&prog, &db)
            .unwrap_or_else(|err| panic!("{src}:\n{prog}\n{err}"));
        assert!(
            via_ra.same_contents(&via_dl),
            "RA vs Datalog mismatch for `{src}`\n{prog}\nra={via_ra}\ndl={via_dl}"
        );
    }

    #[test]
    fn ra_to_datalog_operators() {
        for src in [
            "Sailor",
            "Project[sname](Select[rating > 7](Sailor))",
            "Project[sname](Join(Sailor, Join(Reserves, Select[color = 'red'](Boat))))",
            "Select[color = 'red' OR color = 'green'](Boat)",
            "Select[NOT (color = 'red' AND bid > 102)](Boat)",
            "Union(Project[sid](Sailor), Project[bid](Boat))",
            "Intersect(Project[sid](Sailor), Project[sid](Reserves))",
            "Difference(Project[sid](Sailor), Project[sid](Reserves))",
            "Division(Project[sid, bid](Reserves), Project[bid](Select[color = 'red'](Boat)))",
            "ThetaJoin[s_sid = sid](Rename[sid -> s_sid](Sailor), Reserves)",
        ] {
            check_ra_to_dl(src);
        }
    }

    fn check_dl_to_ra(src: &str) {
        let db = sailors_sample();
        let prog = parse_program(src).unwrap();
        let e = datalog_to_ra(&prog, &db).unwrap_or_else(|err| panic!("{src}: {err}"));
        let via_dl = eval_program(&prog, &db).unwrap();
        let via_ra = ra_eval(&e, &db).unwrap_or_else(|err| panic!("{src}: {err}"));
        assert!(
            via_dl.same_contents(&via_ra),
            "Datalog vs RA mismatch for `{src}`\ndl={via_dl}\nra={via_ra}"
        );
    }

    #[test]
    fn datalog_to_ra_programs() {
        for src in [
            "ans(N) :- Sailor(S, N, R, A), Reserves(S, 102, D).",
            "ans(N) :- Sailor(S, N, R, A), Reserves(S, B, D), Boat(B, BN, 'red').",
            "ans(N) :- Sailor(S, N, R, A), Reserves(S, B, D), Boat(B, BN, 'red').\n\
             ans(N) :- Sailor(S, N, R, A), Reserves(S, B, D), Boat(B, BN, 'green').",
            "% query: ans\n\
             redres(S) :- Reserves(S, B, D), Boat(B, BN, 'red').\n\
             ans(N) :- Sailor(S, N, R, A), not redres(S).",
            "% query: ans\n\
             missing(S) :- Sailor(S, N, R, A), Boat(B, BN, 'red'), not res2(S, B).\n\
             res2(S, B) :- Reserves(S, B, D).\n\
             ans(N) :- Sailor(S, N, R, A), not missing(S).",
            "ans(N) :- Sailor(S, N, R, A), R > 7, A < 40.",
            // repeated variable within an atom: self-referential pairs
            "ans(S) :- Reserves(S, B, D), Reserves(S, B2, D), B < B2.",
        ] {
            check_dl_to_ra(src);
        }
    }

    #[test]
    fn recursion_rejected_for_ra() {
        let prog = parse_program(
            "tc(X, Y) :- R(X, Y).\n\
             tc(X, Z) :- tc(X, Y), R(Y, Z).",
        )
        .unwrap();
        let db = relviz_model::generate::generate_binary_pair(1, 5, 5);
        assert!(matches!(datalog_to_ra(&prog, &db), Err(DlError::Unsupported(_))));
    }

    #[test]
    fn facts_rejected_for_ra() {
        let prog = parse_program("vip(22).\nans(S) :- vip(S).").unwrap();
        assert!(matches!(
            datalog_to_ra(&prog, &sailors_sample()),
            Err(DlError::Unsupported(_))
        ));
    }

    #[test]
    fn division_produces_three_auxiliary_rules() {
        let db = sailors_sample();
        let e = parse_ra(
            "Division(Project[sid, bid](Reserves), Project[bid](Select[color = 'red'](Boat)))",
        )
        .unwrap();
        let prog = ra_to_datalog(&e, &db).unwrap();
        // cand, bad, div + projections + ans — at least 5 rules, with one negation pair.
        let negs = prog
            .rules
            .iter()
            .flat_map(|r| &r.body)
            .filter(|l| matches!(l, Literal::Neg(_)))
            .count();
        assert_eq!(negs, 2, "{prog}");
    }
}
