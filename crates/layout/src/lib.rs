//! # relviz-layout
//!
//! Layout algorithms for the diagram formalisms:
//!
//! * [`layered`] — Sugiyama-style layered layout (layer assignment by
//!   longest path, crossing reduction by barycenter sweeps, coordinate
//!   assignment) for node-link diagrams: DFQL dataflow graphs, QueryVis
//!   quantifier arrows, conceptual graphs.
//! * [`boxes`] — nested-box layout for enclosure formalisms: Peirce cuts,
//!   Relational Diagrams' negated bounding boxes, Higraph-style blobs.
//! * [`geometry`] — shared primitives.
//!
//! Both algorithms are deterministic: identical input produces identical
//! output, which the golden tests rely on.

pub mod boxes;
pub mod geometry;
pub mod layered;

pub use geometry::{Point, Rect, Size};
