//! Geometric primitives shared by the layout algorithms.

/// A 2D point.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }
}

/// A width/height pair.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Size {
    pub w: f64,
    pub h: f64,
}

impl Size {
    pub fn new(w: f64, h: f64) -> Self {
        Size { w, h }
    }
}

/// An axis-aligned rectangle (top-left + size).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Rect {
    pub x: f64,
    pub y: f64,
    pub w: f64,
    pub h: f64,
}

impl Rect {
    pub fn new(x: f64, y: f64, w: f64, h: f64) -> Self {
        Rect { x, y, w, h }
    }

    pub fn right(&self) -> f64 {
        self.x + self.w
    }

    pub fn bottom(&self) -> f64 {
        self.y + self.h
    }

    pub fn center(&self) -> Point {
        Point::new(self.x + self.w / 2.0, self.y + self.h / 2.0)
    }

    /// True iff `other` lies strictly inside `self`.
    pub fn contains(&self, other: &Rect) -> bool {
        self.x <= other.x
            && self.y <= other.y
            && self.right() >= other.right()
            && self.bottom() >= other.bottom()
    }

    /// True iff the rectangles overlap with positive area.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.x < other.right()
            && other.x < self.right()
            && self.y < other.bottom()
            && other.y < self.bottom()
    }

    /// Grows the rectangle by `d` on every side.
    pub fn inflate(&self, d: f64) -> Rect {
        Rect::new(self.x - d, self.y - d, self.w + 2.0 * d, self.h + 2.0 * d)
    }

    /// Translates by (dx, dy).
    pub fn shifted(&self, dx: f64, dy: f64) -> Rect {
        Rect::new(self.x + dx, self.y + dy, self.w, self.h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containment_and_intersection() {
        let outer = Rect::new(0.0, 0.0, 100.0, 100.0);
        let inner = Rect::new(10.0, 10.0, 20.0, 20.0);
        let apart = Rect::new(200.0, 200.0, 5.0, 5.0);
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        assert!(outer.intersects(&inner));
        assert!(!outer.intersects(&apart));
    }

    #[test]
    fn touching_rects_do_not_intersect() {
        let a = Rect::new(0.0, 0.0, 10.0, 10.0);
        let b = Rect::new(10.0, 0.0, 10.0, 10.0);
        assert!(!a.intersects(&b));
    }

    #[test]
    fn inflate_and_center() {
        let r = Rect::new(10.0, 10.0, 20.0, 40.0);
        let g = r.inflate(5.0);
        assert_eq!(g, Rect::new(5.0, 5.0, 30.0, 50.0));
        let c = r.center();
        assert_eq!((c.x, c.y), (20.0, 30.0));
    }
}
