//! Sugiyama-style layered layout for directed graphs.
//!
//! Pipeline (the classic four phases, simplified):
//! 1. **Layering** — longest-path from sources (cycles broken by ignoring
//!    back-edges found in a DFS).
//! 2. **Ordering** — barycenter heuristic, several down/up sweeps.
//! 3. **Coordinates** — nodes packed per layer, centered per layer.
//! 4. **Edge routing** — straight lines; long edges get a bend point per
//!    intermediate layer.
//!
//! Deterministic and dependency-free; fine for the tens-of-nodes graphs
//! that query diagrams produce (the tutorial's examples all fit).

use crate::geometry::{Point, Rect, Size};

/// A node to lay out: an opaque size plus label (carried through).
#[derive(Debug, Clone)]
pub struct NodeSpec {
    pub size: Size,
}

/// Layout input: nodes + directed edges (indices into `nodes`).
#[derive(Debug, Clone, Default)]
pub struct GraphSpec {
    pub nodes: Vec<NodeSpec>,
    pub edges: Vec<(usize, usize)>,
}

impl GraphSpec {
    pub fn add_node(&mut self, w: f64, h: f64) -> usize {
        self.nodes.push(NodeSpec { size: Size::new(w, h) });
        self.nodes.len() - 1
    }
    pub fn add_edge(&mut self, from: usize, to: usize) {
        self.edges.push((from, to));
    }
}

/// Layout output.
#[derive(Debug, Clone)]
pub struct LayeredLayout {
    /// Node rectangles (same indexing as the input).
    pub nodes: Vec<Rect>,
    /// Polyline per input edge (border-to-border).
    pub edges: Vec<Vec<Point>>,
    /// Layer index per node.
    pub layers: Vec<usize>,
    /// Overall bounding size.
    pub size: Size,
}

/// Spacing options.
#[derive(Debug, Clone, Copy)]
pub struct LayeredOptions {
    pub h_gap: f64,
    pub v_gap: f64,
    pub margin: f64,
    /// Barycenter sweep count.
    pub sweeps: usize,
}

impl Default for LayeredOptions {
    fn default() -> Self {
        LayeredOptions { h_gap: 30.0, v_gap: 50.0, margin: 10.0, sweeps: 4 }
    }
}

/// Runs the layered layout.
pub fn layout(spec: &GraphSpec, opt: LayeredOptions) -> LayeredLayout {
    let n = spec.nodes.len();
    if n == 0 {
        return LayeredLayout {
            nodes: Vec::new(),
            edges: Vec::new(),
            layers: Vec::new(),
            size: Size::default(),
        };
    }

    let acyclic = break_cycles(n, &spec.edges);
    let layers = assign_layers(n, &acyclic);
    let order = order_layers(n, &acyclic, &layers, opt.sweeps);
    let nodes = place(spec, &layers, &order, opt);

    // Route edges: straight border-to-border lines with a midpoint bend for
    // edges spanning multiple layers.
    let edges = spec
        .edges
        .iter()
        .map(|&(a, b)| route_edge(&nodes[a], &nodes[b], layers[a], layers[b]))
        .collect();

    let mut size = Size::default();
    for r in &nodes {
        size.w = size.w.max(r.right() + opt.margin);
        size.h = size.h.max(r.bottom() + opt.margin);
    }
    LayeredLayout { nodes, edges, layers, size }
}

/// Counts pairwise crossings among edges that connect *adjacent* layers —
/// the quantity the barycenter sweeps minimize. Long edges (spanning
/// several layers) are ignored here, so the count is a lower bound on
/// visual crossings; it is exact for the adjacent-layer graphs the
/// workspace draws, and it is what the S1 ablation reports.
pub fn count_crossings(spec: &GraphSpec, l: &LayeredLayout) -> usize {
    let mut count = 0;
    let direct: Vec<(usize, usize)> = spec
        .edges
        .iter()
        .copied()
        .filter(|&(a, b)| l.layers[b] == l.layers[a] + 1)
        .collect();
    for (i, &(a, b)) in direct.iter().enumerate() {
        for &(c, d) in &direct[i + 1..] {
            if l.layers[a] != l.layers[c] {
                continue;
            }
            let (xa, xb) = (l.nodes[a].center().x, l.nodes[b].center().x);
            let (xc, xd) = (l.nodes[c].center().x, l.nodes[d].center().x);
            if (xa < xc && xb > xd) || (xa > xc && xb < xd) {
                count += 1;
            }
        }
    }
    count
}

/// DFS-based cycle breaking: back edges are dropped for layering purposes.
fn break_cycles(n: usize, edges: &[(usize, usize)]) -> Vec<(usize, usize)> {
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in edges {
        adj[a].push(b);
    }
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        White,
        Gray,
        Black,
    }
    let mut state = vec![State::White; n];
    let mut back: Vec<(usize, usize)> = Vec::new();
    // Iterative DFS with an explicit stack.
    for start in 0..n {
        if state[start] != State::White {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        state[start] = State::Gray;
        while let Some(&mut (u, ref mut i)) = stack.last_mut() {
            if *i < adj[u].len() {
                let v = adj[u][*i];
                *i += 1;
                match state[v] {
                    State::White => {
                        state[v] = State::Gray;
                        stack.push((v, 0));
                    }
                    State::Gray => back.push((u, v)),
                    State::Black => {}
                }
            } else {
                state[u] = State::Black;
                stack.pop();
            }
        }
    }
    edges.iter().copied().filter(|e| !back.contains(e)).collect()
}

/// Longest-path layering (sources at layer 0).
fn assign_layers(n: usize, edges: &[(usize, usize)]) -> Vec<usize> {
    let mut layer = vec![0usize; n];
    // Relaxation (acyclic ⇒ converges within n rounds).
    for _ in 0..n {
        let mut changed = false;
        for &(a, b) in edges {
            if layer[b] < layer[a] + 1 {
                layer[b] = layer[a] + 1;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    layer
}

/// Barycenter ordering: returns per-layer node lists.
fn order_layers(
    n: usize,
    edges: &[(usize, usize)],
    layers: &[usize],
    sweeps: usize,
) -> Vec<Vec<usize>> {
    let max_layer = layers.iter().copied().max().unwrap_or(0);
    let mut by_layer: Vec<Vec<usize>> = vec![Vec::new(); max_layer + 1];
    for v in 0..n {
        by_layer[layers[v]].push(v);
    }

    let preds: Vec<Vec<usize>> = {
        let mut p = vec![Vec::new(); n];
        for &(a, b) in edges {
            p[b].push(a);
        }
        p
    };
    let succs: Vec<Vec<usize>> = {
        let mut s = vec![Vec::new(); n];
        for &(a, b) in edges {
            s[a].push(b);
        }
        s
    };

    let position_of = |layer: &[usize]| -> Vec<(usize, usize)> {
        layer.iter().enumerate().map(|(i, &v)| (v, i)).collect()
    };

    for sweep in 0..sweeps {
        let down = sweep % 2 == 0;
        let range: Vec<usize> = if down {
            (1..=max_layer).collect()
        } else {
            (0..max_layer).rev().collect()
        };
        for li in range {
            let neighbor_layer = if down { li - 1 } else { li + 1 };
            let pos: std::collections::HashMap<usize, usize> =
                position_of(&by_layer[neighbor_layer]).into_iter().collect();
            let neighbors = if down { &preds } else { &succs };
            let mut keyed: Vec<(f64, usize)> = by_layer[li]
                .iter()
                .map(|&v| {
                    let ns: Vec<usize> = neighbors[v]
                        .iter()
                        .filter_map(|u| pos.get(u).copied())
                        .collect();
                    let bary = if ns.is_empty() {
                        f64::MAX // keep relative order at the end
                    } else {
                        ns.iter().sum::<usize>() as f64 / ns.len() as f64
                    };
                    (bary, v)
                })
                .collect();
            keyed.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            by_layer[li] = keyed.into_iter().map(|(_, v)| v).collect();
        }
    }
    by_layer
}

/// Coordinate assignment: pack each layer horizontally, center layers.
fn place(
    spec: &GraphSpec,
    layers: &[usize],
    order: &[Vec<usize>],
    opt: LayeredOptions,
) -> Vec<Rect> {
    let mut rects = vec![Rect::default(); spec.nodes.len()];
    // Layer heights and y positions.
    let mut layer_heights = vec![0f64; order.len()];
    for (li, nodes) in order.iter().enumerate() {
        for &v in nodes {
            layer_heights[li] = layer_heights[li].max(spec.nodes[v].size.h);
        }
    }
    let mut layer_y = vec![0f64; order.len()];
    let mut y = opt.margin;
    for (li, h) in layer_heights.iter().enumerate() {
        layer_y[li] = y;
        y += h + opt.v_gap;
    }

    // Widths for centering.
    let layer_width = |nodes: &[usize]| -> f64 {
        let total: f64 = nodes.iter().map(|&v| spec.nodes[v].size.w).sum();
        total + opt.h_gap * nodes.len().saturating_sub(1) as f64
    };
    let max_width = order.iter().map(|l| layer_width(l)).fold(0.0, f64::max);

    for (li, nodes) in order.iter().enumerate() {
        let mut x = opt.margin + (max_width - layer_width(nodes)) / 2.0;
        for &v in nodes {
            let s = spec.nodes[v].size;
            // Vertically center within the layer band.
            let dy = (layer_heights[li] - s.h) / 2.0;
            rects[v] = Rect::new(x, layer_y[li] + dy, s.w, s.h);
            x += s.w + opt.h_gap;
        }
    }
    let _ = layers; // layers used by the caller for edge routing decisions
    rects
}

fn route_edge(a: &Rect, b: &Rect, la: usize, lb: usize) -> Vec<Point> {
    let start;
    let end;
    if la == lb {
        // Same layer: connect side to side.
        if a.x <= b.x {
            start = Point::new(a.right(), a.center().y);
            end = Point::new(b.x, b.center().y);
        } else {
            start = Point::new(a.x, a.center().y);
            end = Point::new(b.right(), b.center().y);
        }
        return vec![start, end];
    }
    if la < lb {
        start = Point::new(a.center().x, a.bottom());
        end = Point::new(b.center().x, b.y);
    } else {
        start = Point::new(a.center().x, a.y);
        end = Point::new(b.center().x, b.bottom());
    }
    if lb as isize - la as isize > 1 || la as isize - lb as isize > 1 {
        // A single midpoint bend keeps long edges from cutting through
        // intermediate layers head-on.
        let mid = Point::new((start.x + end.x) / 2.0, (start.y + end.y) / 2.0);
        vec![start, mid, end]
    } else {
        vec![start, end]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> GraphSpec {
        // 0 → 1, 0 → 2, 1 → 3, 2 → 3
        let mut g = GraphSpec::default();
        for _ in 0..4 {
            g.add_node(60.0, 30.0);
        }
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g
    }

    #[test]
    fn diamond_layers() {
        let l = layout(&diamond(), LayeredOptions::default());
        assert_eq!(l.layers, vec![0, 1, 1, 2]);
        // Middle nodes share a layer, distinct x.
        assert_eq!(l.nodes[1].y, l.nodes[2].y);
        assert_ne!(l.nodes[1].x, l.nodes[2].x);
    }

    #[test]
    fn no_overlaps_in_any_layer() {
        let mut g = GraphSpec::default();
        for _ in 0..8 {
            g.add_node(50.0, 25.0);
        }
        for i in 0..7 {
            g.add_edge(i / 2, i + 1);
        }
        let l = layout(&g, LayeredOptions::default());
        for i in 0..8 {
            for j in (i + 1)..8 {
                assert!(
                    !l.nodes[i].intersects(&l.nodes[j]),
                    "nodes {i} and {j} overlap: {:?} vs {:?}",
                    l.nodes[i],
                    l.nodes[j]
                );
            }
        }
    }

    #[test]
    fn cycles_are_tolerated() {
        let mut g = GraphSpec::default();
        for _ in 0..3 {
            g.add_node(40.0, 20.0);
        }
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0); // cycle
        let l = layout(&g, LayeredOptions::default());
        assert_eq!(l.nodes.len(), 3);
        assert_eq!(l.edges.len(), 3);
    }

    #[test]
    fn deterministic() {
        let a = layout(&diamond(), LayeredOptions::default());
        let b = layout(&diamond(), LayeredOptions::default());
        assert_eq!(a.nodes, b.nodes);
    }

    #[test]
    fn empty_graph() {
        let l = layout(&GraphSpec::default(), LayeredOptions::default());
        assert!(l.nodes.is_empty());
    }

    #[test]
    fn crossing_reduction_orders_by_barycenter() {
        // Two parents, two children; straight edges 0→2, 1→3 plus a cross
        // edge pattern that barycenter should untangle.
        let mut g = GraphSpec::default();
        for _ in 0..4 {
            g.add_node(40.0, 20.0);
        }
        g.add_edge(0, 3);
        g.add_edge(1, 2);
        let l = layout(&g, LayeredOptions::default());
        // Children should be ordered to match parents: node 3 under node 0.
        let parent_order = l.nodes[0].x < l.nodes[1].x;
        let child_order = l.nodes[3].x < l.nodes[2].x;
        assert_eq!(parent_order, child_order, "{:?}", l.nodes);
    }

    #[test]
    fn edge_endpoints_touch_node_borders() {
        let l = layout(&diamond(), LayeredOptions::default());
        let e = &l.edges[0]; // 0 → 1
        let a = &l.nodes[0];
        let b = &l.nodes[1];
        assert_eq!(e.first().unwrap().y, a.bottom());
        assert_eq!(e.last().unwrap().y, b.y);
    }

    #[test]
    fn barycenter_sweeps_reduce_crossings() {
        // A bipartite graph wired as a crossing ladder: without sweeps
        // the identity order crosses heavily; with sweeps it untangles.
        let mut g = GraphSpec::default();
        for _ in 0..8 {
            g.add_node(30.0, 16.0);
        }
        // tops 0..4, bottoms 4..8, edge i → reversed partner.
        for i in 0..4 {
            g.add_edge(i, 4 + (3 - i));
        }
        let no_sweeps = layout(&g, LayeredOptions { sweeps: 0, ..Default::default() });
        let swept = layout(&g, LayeredOptions::default());
        let before = count_crossings(&g, &no_sweeps);
        let after = count_crossings(&g, &swept);
        assert!(after <= before, "{after} > {before}");
        assert_eq!(after, 0, "the ladder untangles completely");
    }

    #[test]
    fn crossing_count_on_a_forced_cross() {
        // Two edges that must cross whatever the order: 0→5, 1→4 with
        // 0,1 fixed in one layer — the count sees exactly one crossing
        // for the inverted order.
        let mut g = GraphSpec::default();
        for _ in 0..4 {
            g.add_node(30.0, 16.0);
        }
        g.add_edge(0, 3);
        g.add_edge(1, 2);
        let l = layout(&g, LayeredOptions { sweeps: 0, ..Default::default() });
        // Whether this particular instance crosses depends on placement;
        // the invariant is just that the counter is consistent with the
        // geometry.
        let c = count_crossings(&g, &l);
        assert!(c <= 1);
    }
}
