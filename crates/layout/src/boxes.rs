//! Nested-box layout for enclosure formalisms (Peirce cuts, Relational
//! Diagrams' negation boxes, Higraph blobs).
//!
//! Input is a tree: each box holds *atoms* (fixed-size leaf content, e.g. a
//! table widget or a predicate label) and *child boxes*. The algorithm
//! computes sizes bottom-up (children flow left-to-right, wrapping is the
//! caller's concern at this scale) and positions top-down, producing
//! non-overlapping, strictly nested rectangles — the geometric invariant
//! the property tests assert, because enclosure *is* the semantics in
//! these formalisms (a cut's contents are exactly the negated subformula).

use crate::geometry::Rect;

/// A node in the box tree.
#[derive(Debug, Clone)]
pub struct BoxNode {
    /// Fixed-size atoms (width, height) laid out before child boxes.
    pub atoms: Vec<(f64, f64)>,
    /// Nested boxes.
    pub children: Vec<BoxNode>,
    /// Extra top padding (for header labels).
    pub header: f64,
}

impl BoxNode {
    pub fn leaf(atoms: Vec<(f64, f64)>) -> Self {
        BoxNode { atoms, children: Vec::new(), header: 0.0 }
    }

    pub fn with_children(atoms: Vec<(f64, f64)>, children: Vec<BoxNode>) -> Self {
        BoxNode { atoms, children, header: 0.0 }
    }
}

/// Layout options.
#[derive(Debug, Clone, Copy)]
pub struct BoxOptions {
    /// Padding inside each box.
    pub padding: f64,
    /// Gap between siblings (atoms and boxes).
    pub gap: f64,
}

impl Default for BoxOptions {
    fn default() -> Self {
        BoxOptions { padding: 12.0, gap: 14.0 }
    }
}

/// Result: a rectangle per box (pre-order) and per atom.
#[derive(Debug, Clone)]
pub struct BoxLayout {
    /// Pre-order box rectangles; index 0 is the root.
    pub boxes: Vec<Rect>,
    /// `(box_index, rect)` per atom, in pre-order box order then atom order.
    pub atoms: Vec<(usize, Rect)>,
}

/// Lays out the tree with the root's top-left at (0, 0).
pub fn layout(root: &BoxNode, opt: BoxOptions) -> BoxLayout {
    let mut out = BoxLayout { boxes: Vec::new(), atoms: Vec::new() };
    place(root, 0.0, 0.0, opt, &mut out);
    out
}

/// Computed size of a subtree (including padding).
fn measure(node: &BoxNode, opt: BoxOptions) -> (f64, f64) {
    let mut w = 0.0f64;
    let mut h = 0.0f64;
    let mut first = true;
    for &(aw, ah) in &node.atoms {
        if !first {
            w += opt.gap;
        }
        w += aw;
        h = h.max(ah);
        first = false;
    }
    for child in &node.children {
        let (cw, ch) = measure(child, opt);
        if !first {
            w += opt.gap;
        }
        w += cw;
        h = h.max(ch);
        first = false;
    }
    (w + 2.0 * opt.padding, h + 2.0 * opt.padding + node.header)
}

fn place(node: &BoxNode, x: f64, y: f64, opt: BoxOptions, out: &mut BoxLayout) {
    let (w, h) = measure(node, opt);
    let my_index = out.boxes.len();
    out.boxes.push(Rect::new(x, y, w, h));

    let inner_h = h - 2.0 * opt.padding - node.header;
    let mut cx = x + opt.padding;
    let cy = y + opt.padding + node.header;
    for &(aw, ah) in &node.atoms {
        // Center atoms vertically within the row.
        let ay = cy + (inner_h - ah) / 2.0;
        out.atoms.push((my_index, Rect::new(cx, ay, aw, ah)));
        cx += aw + opt.gap;
    }
    for child in &node.children {
        let (cw, ch) = measure(child, opt);
        let by = cy + (inner_h - ch) / 2.0;
        place(child, cx, by, opt, out);
        cx += cw + opt.gap;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opt() -> BoxOptions {
        BoxOptions::default()
    }

    #[test]
    fn single_leaf() {
        let root = BoxNode::leaf(vec![(100.0, 40.0)]);
        let l = layout(&root, opt());
        assert_eq!(l.boxes.len(), 1);
        assert_eq!(l.atoms.len(), 1);
        assert!(l.boxes[0].contains(&l.atoms[0].1));
    }

    #[test]
    fn nesting_is_strict() {
        // box( atom, box( atom, box(atom) ) )
        let inner2 = BoxNode::leaf(vec![(60.0, 30.0)]);
        let inner1 = BoxNode::with_children(vec![(60.0, 30.0)], vec![inner2]);
        let root = BoxNode::with_children(vec![(60.0, 30.0)], vec![inner1]);
        let l = layout(&root, opt());
        assert_eq!(l.boxes.len(), 3);
        // Pre-order: 0 ⊃ 1 ⊃ 2.
        assert!(l.boxes[0].contains(&l.boxes[1]));
        assert!(l.boxes[1].contains(&l.boxes[2]));
        // strictly: inflated inner must NOT be contained
        assert!(!l.boxes[1].contains(&l.boxes[0]));
    }

    #[test]
    fn siblings_do_not_overlap() {
        let kids: Vec<BoxNode> = (0..4).map(|_| BoxNode::leaf(vec![(50.0, 25.0)])).collect();
        let root = BoxNode::with_children(vec![], kids);
        let l = layout(&root, opt());
        for i in 1..5 {
            for j in (i + 1)..5 {
                assert!(!l.boxes[i].intersects(&l.boxes[j]), "{i} vs {j}");
            }
        }
    }

    #[test]
    fn atoms_respect_padding() {
        let root = BoxNode::leaf(vec![(80.0, 20.0), (80.0, 20.0)]);
        let l = layout(&root, opt());
        for (_, a) in &l.atoms {
            assert!(a.x >= l.boxes[0].x + opt().padding - 1e-9);
            assert!(a.bottom() <= l.boxes[0].bottom() - opt().padding + 1e-9);
        }
    }

    #[test]
    fn header_reserves_space() {
        let mut root = BoxNode::leaf(vec![(50.0, 20.0)]);
        root.header = 18.0;
        let l = layout(&root, opt());
        let (_, atom) = l.atoms[0];
        assert!(atom.y >= l.boxes[0].y + 18.0);
    }

    #[test]
    fn deterministic() {
        let inner = BoxNode::leaf(vec![(60.0, 30.0)]);
        let root = BoxNode::with_children(vec![(60.0, 30.0)], vec![inner]);
        let a = layout(&root, opt());
        let b = layout(&root, opt());
        assert_eq!(a.boxes, b.boxes);
    }
}
