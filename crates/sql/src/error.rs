//! SQL frontend errors with source positions.

use std::fmt;

/// Byte offset + 1-based line/column, attached to lexer/parser errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    pub offset: usize,
    pub line: u32,
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Errors from lexing, parsing, analysis or evaluation of SQL.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Unexpected character or malformed literal during lexing.
    Lex { pos: Pos, msg: String },
    /// Grammar violation during parsing.
    Parse { pos: Pos, msg: String },
    /// Name-resolution failure (unknown table/column, ambiguity…).
    Analyze(String),
    /// Evaluation failure (delegating model errors, unsupported feature).
    Eval(String),
}

impl SqlError {
    pub fn parse(pos: Pos, msg: impl Into<String>) -> Self {
        SqlError::Parse { pos, msg: msg.into() }
    }
    pub fn lex(pos: Pos, msg: impl Into<String>) -> Self {
        SqlError::Lex { pos, msg: msg.into() }
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex { pos, msg } => write!(f, "lex error at {pos}: {msg}"),
            SqlError::Parse { pos, msg } => write!(f, "parse error at {pos}: {msg}"),
            SqlError::Analyze(msg) => write!(f, "analysis error: {msg}"),
            SqlError::Eval(msg) => write!(f, "evaluation error: {msg}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<relviz_model::ModelError> for SqlError {
    fn from(e: relviz_model::ModelError) -> Self {
        SqlError::Eval(e.to_string())
    }
}

pub type SqlResult<T> = std::result::Result<T, SqlError>;
