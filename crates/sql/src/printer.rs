//! Pretty-printer: AST → canonical SQL text.
//!
//! `parse ∘ print = id` on ASTs (checked by property tests), which gives the
//! workspace a canonical SQL surface form — useful for golden files and for
//! the "syntax-sensitivity" comparisons of Visual SQL / SQLVis in Part 5 of
//! the tutorial (same query, different syntax ⇒ different visualization).

use std::fmt::Write as _;

use crate::ast::*;

/// Renders a query as a single-line canonical SQL string.
pub fn print_query(q: &Query) -> String {
    let mut s = String::new();
    write_query(&mut s, q, false);
    s
}

/// Renders a single condition (used by the syntax-mirroring formalisms of
/// Part 5 — Visual SQL, SQLVis, TableTalk — whose visual elements carry
/// predicate text verbatim).
pub fn print_cond(c: &Cond) -> String {
    let mut s = String::new();
    write_cond(&mut s, c, 0);
    s
}

/// Renders a single scalar expression.
pub fn print_scalar(e: &Scalar) -> String {
    let mut s = String::new();
    write_scalar(&mut s, e);
    s
}

fn write_query(out: &mut String, q: &Query, parenthesize_setop: bool) {
    match q {
        Query::Select(sel) => write_select(out, sel),
        Query::SetOp { op, left, right } => {
            if parenthesize_setop {
                out.push('(');
            }
            // Preserve the parse tree: a set-op child on either side is
            // parenthesized so precedence re-parses identically.
            write_query(out, left, matches!(**left, Query::SetOp { .. }));
            let _ = write!(out, " {} ", op.keyword());
            write_query(out, right, matches!(**right, Query::SetOp { .. }));
            if parenthesize_setop {
                out.push(')');
            }
        }
    }
}

fn write_select(out: &mut String, s: &SelectStmt) {
    out.push_str("SELECT ");
    if s.distinct {
        out.push_str("DISTINCT ");
    }
    for (i, item) in s.items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match item {
            SelectItem::Wildcard => out.push('*'),
            SelectItem::QualifiedWildcard(q) => {
                let _ = write!(out, "{q}.*");
            }
            SelectItem::Expr { expr, alias } => {
                write_scalar(out, expr);
                if let Some(a) = alias {
                    let _ = write!(out, " AS {a}");
                }
            }
        }
    }
    out.push_str(" FROM ");
    for (i, tr) in s.from.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&tr.table);
        if let Some(a) = &tr.alias {
            if a != &tr.table {
                let _ = write!(out, " {a}");
            }
        }
    }
    if let Some(c) = &s.where_clause {
        out.push_str(" WHERE ");
        write_cond(out, c, 0);
    }
}

/// Precedence levels: OR = 1, AND = 2, NOT = 3, atoms = 4.
fn cond_prec(c: &Cond) -> u8 {
    match c {
        Cond::Or(_, _) => 1,
        Cond::And(_, _) => 2,
        Cond::Not(_) => 3,
        _ => 4,
    }
}

fn write_cond(out: &mut String, c: &Cond, parent_prec: u8) {
    let prec = cond_prec(c);
    let need_parens = prec < parent_prec;
    if need_parens {
        out.push('(');
    }
    match c {
        Cond::Or(a, b) => {
            write_cond(out, a, 1);
            out.push_str(" OR ");
            write_cond(out, b, 2);
        }
        Cond::And(a, b) => {
            write_cond(out, a, 2);
            out.push_str(" AND ");
            write_cond(out, b, 3);
        }
        Cond::Not(a) => {
            out.push_str("NOT ");
            write_cond(out, a, 4);
        }
        Cond::Cmp { left, op, right } => {
            write_scalar(out, left);
            let _ = write!(out, " {} ", op.symbol());
            write_scalar(out, right);
        }
        Cond::Exists { negated, query } => {
            if *negated {
                out.push_str("NOT ");
            }
            out.push_str("EXISTS (");
            write_query(out, query, false);
            out.push(')');
        }
        Cond::InSubquery { expr, negated, query } => {
            write_scalar(out, expr);
            if *negated {
                out.push_str(" NOT");
            }
            out.push_str(" IN (");
            write_query(out, query, false);
            out.push(')');
        }
        Cond::InList { expr, negated, list } => {
            write_scalar(out, expr);
            if *negated {
                out.push_str(" NOT");
            }
            out.push_str(" IN (");
            for (i, v) in list.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&v.to_literal());
            }
            out.push(')');
        }
        Cond::QuantCmp { left, op, quant, query } => {
            write_scalar(out, left);
            let q = match quant {
                Quant::Any => "ANY",
                Quant::All => "ALL",
            };
            let _ = write!(out, " {} {q} (", op.symbol());
            write_query(out, query, false);
            out.push(')');
        }
        Cond::IsNull { expr, negated } => {
            write_scalar(out, expr);
            out.push_str(if *negated { " IS NOT NULL" } else { " IS NULL" });
        }
        Cond::Between { expr, negated, low, high } => {
            write_scalar(out, expr);
            if *negated {
                out.push_str(" NOT");
            }
            out.push_str(" BETWEEN ");
            write_scalar(out, low);
            out.push_str(" AND ");
            write_scalar(out, high);
        }
        Cond::Literal(b) => out.push_str(if *b { "TRUE" } else { "FALSE" }),
    }
    if need_parens {
        out.push(')');
    }
}

fn write_scalar(out: &mut String, s: &Scalar) {
    match s {
        Scalar::Column { qualifier: Some(q), name } => {
            let _ = write!(out, "{q}.{name}");
        }
        Scalar::Column { qualifier: None, name } => out.push_str(name),
        Scalar::Literal(v) => out.push_str(&v.to_literal()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn round_trip(sql: &str) {
        let q1 = parse_query(sql).unwrap();
        let printed = print_query(&q1);
        let q2 = parse_query(&printed)
            .unwrap_or_else(|e| panic!("re-parse of `{printed}` failed: {e}"));
        assert_eq!(q1, q2, "print/parse round-trip changed the AST for `{sql}`");
    }

    #[test]
    fn round_trips() {
        for sql in [
            "SELECT S.sname FROM Sailor S WHERE S.rating > 7",
            "SELECT DISTINCT S.sname, B.color FROM Sailor S, Boat B",
            "SELECT * FROM Sailor",
            "SELECT S.* FROM Sailor S",
            "SELECT S.sname AS name FROM Sailor S",
            "SELECT S.sname FROM Sailor S WHERE NOT EXISTS (SELECT * FROM Boat B \
             WHERE B.color = 'red' AND NOT EXISTS (SELECT * FROM Reserves R \
             WHERE R.sid = S.sid AND R.bid = B.bid))",
            "SELECT s.a FROM t s WHERE s.a IN (1, 2, 3) OR s.b NOT IN (SELECT u.x FROM u)",
            "SELECT s.a FROM t s WHERE s.a >= ALL (SELECT u.b FROM u) AND s.c < ANY (SELECT u.b FROM u)",
            "SELECT a.x FROM a UNION SELECT b.x FROM b INTERSECT SELECT c.x FROM c",
            "(SELECT a.x FROM a UNION SELECT b.x FROM b) EXCEPT SELECT c.x FROM c",
            "SELECT s.a FROM t s WHERE NOT s.a = 1 AND (s.b = 2 OR s.c = 3)",
            "SELECT s.a FROM t s WHERE s.a BETWEEN 1 AND 10 AND s.b IS NOT NULL",
            "SELECT s.a FROM t s WHERE s.name = 'it''s'",
            "SELECT s.a FROM t s WHERE TRUE AND NOT FALSE",
        ] {
            round_trip(sql);
        }
    }

    #[test]
    fn precedence_parens_emitted() {
        let q = parse_query("SELECT s.a FROM t s WHERE (s.a = 1 OR s.b = 2) AND s.c = 3").unwrap();
        let p = print_query(&q);
        assert!(p.contains("(s.a = 1 OR s.b = 2) AND"), "{p}");
    }

    #[test]
    fn canonicalizes_some_to_any() {
        let q = parse_query("SELECT s.a FROM t s WHERE s.a = SOME (SELECT u.b FROM u)").unwrap();
        assert!(print_query(&q).contains("= ANY ("));
    }
}
