//! Recursive-descent parser for the SQL fragment.
//!
//! Grammar (EBNF, ⟨⟩ are nonterminals):
//!
//! ```text
//! query      := except_term ( (UNION|EXCEPT) except_term )*
//! except_term:= core ( INTERSECT core )*                 -- INTERSECT binds tighter
//! core       := select | '(' query ')'
//! select     := SELECT [DISTINCT] items FROM tables [WHERE cond]
//! items      := item (',' item)* ;  item := '*' | id'.*' | scalar [[AS] id]
//! tables     := table (',' table)* ; table := id [[AS] id]
//! cond       := and_c (OR and_c)*
//! and_c      := not_c (AND not_c)*
//! not_c      := NOT not_c | primary
//! primary    := TRUE | FALSE
//!             | EXISTS '(' query ')'
//!             | '(' cond ')'
//!             | scalar postfix
//! postfix    := IS [NOT] NULL
//!             | [NOT] IN '(' (query | literal_list) ')'
//!             | [NOT] BETWEEN scalar AND scalar
//!             | cmp (ANY|SOME|ALL) '(' query ')'
//!             | cmp scalar
//! scalar     := literal | id ['.' id]
//! ```

use relviz_model::Value;

use crate::ast::*;
use crate::error::{SqlError, SqlResult};
use crate::lexer::{lex, Tok, Token};

/// Parses a single query (optionally `;`-terminated).
pub fn parse_query(input: &str) -> SqlResult<Query> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    if p.peek() == &Tok::Semicolon {
        p.advance();
    }
    p.expect_eof()?;
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].tok
    }

    fn here(&self) -> crate::error::Pos {
        self.tokens[self.pos].pos
    }

    fn advance(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Tok, what: &str) -> SqlResult<()> {
        if self.peek() == &t {
            self.advance();
            Ok(())
        } else {
            Err(SqlError::parse(
                self.here(),
                format!("expected {what}, found {}", self.peek().describe()),
            ))
        }
    }

    fn expect_eof(&mut self) -> SqlResult<()> {
        if self.peek() == &Tok::Eof {
            Ok(())
        } else {
            Err(SqlError::parse(
                self.here(),
                format!("trailing input: {}", self.peek().describe()),
            ))
        }
    }

    fn ident(&mut self, what: &str) -> SqlResult<String> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.advance();
                Ok(s)
            }
            other => Err(SqlError::parse(
                self.here(),
                format!("expected {what}, found {}", other.describe()),
            )),
        }
    }

    // ---- queries -------------------------------------------------------

    fn query(&mut self) -> SqlResult<Query> {
        let mut left = self.intersect_term()?;
        loop {
            let op = match self.peek() {
                Tok::Union => SetOpKind::Union,
                Tok::Except => SetOpKind::Except,
                _ => break,
            };
            self.advance();
            let right = self.intersect_term()?;
            left = Query::SetOp { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn intersect_term(&mut self) -> SqlResult<Query> {
        let mut left = self.query_core()?;
        while self.eat(&Tok::Intersect) {
            let right = self.query_core()?;
            left = Query::SetOp {
                op: SetOpKind::Intersect,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn query_core(&mut self) -> SqlResult<Query> {
        if self.eat(&Tok::LParen) {
            let q = self.query()?;
            self.expect(Tok::RParen, "`)` closing subquery")?;
            Ok(q)
        } else {
            Ok(Query::Select(self.select()?))
        }
    }

    fn select(&mut self) -> SqlResult<SelectStmt> {
        self.expect(Tok::Select, "`SELECT`")?;
        let distinct = self.eat(&Tok::Distinct);
        let mut items = vec![self.select_item()?];
        while self.eat(&Tok::Comma) {
            items.push(self.select_item()?);
        }
        self.expect(Tok::From, "`FROM`")?;
        let mut from = vec![self.table_ref()?];
        while self.eat(&Tok::Comma) {
            from.push(self.table_ref()?);
        }
        let where_clause = if self.eat(&Tok::Where) { Some(self.cond()?) } else { None };
        Ok(SelectStmt { distinct, items, from, where_clause })
    }

    fn select_item(&mut self) -> SqlResult<SelectItem> {
        if self.eat(&Tok::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `alias.*`
        if let (Tok::Ident(q), Tok::Dot) = (self.peek().clone(), self.peek2().clone()) {
            if self.tokens.get(self.pos + 2).map(|t| &t.tok) == Some(&Tok::Star) {
                self.advance();
                self.advance();
                self.advance();
                return Ok(SelectItem::QualifiedWildcard(q));
            }
        }
        let expr = self.scalar()?;
        let alias = if self.eat(&Tok::As) {
            Some(self.ident("alias after AS")?)
        } else if let Tok::Ident(_) = self.peek() {
            Some(self.ident("alias")?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> SqlResult<TableRef> {
        let table = self.ident("table name")?;
        let alias = if self.eat(&Tok::As) {
            Some(self.ident("alias after AS")?)
        } else if let Tok::Ident(_) = self.peek() {
            Some(self.ident("alias")?)
        } else {
            None
        };
        Ok(TableRef { table, alias })
    }

    // ---- conditions ----------------------------------------------------

    fn cond(&mut self) -> SqlResult<Cond> {
        let mut left = self.and_cond()?;
        while self.eat(&Tok::Or) {
            let right = self.and_cond()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn and_cond(&mut self) -> SqlResult<Cond> {
        let mut left = self.not_cond()?;
        while self.eat(&Tok::And) {
            let right = self.not_cond()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn not_cond(&mut self) -> SqlResult<Cond> {
        if self.eat(&Tok::Not) {
            // `NOT EXISTS` / `NOT IN` read better folded into their node.
            if self.peek() == &Tok::Exists {
                self.advance();
                let q = self.parenthesized_query()?;
                return Ok(Cond::Exists { negated: true, query: Box::new(q) });
            }
            return Ok(self.not_cond()?.not());
        }
        self.primary_cond()
    }

    fn primary_cond(&mut self) -> SqlResult<Cond> {
        match self.peek().clone() {
            Tok::True => {
                self.advance();
                Ok(Cond::Literal(true))
            }
            Tok::False => {
                self.advance();
                Ok(Cond::Literal(false))
            }
            Tok::Exists => {
                self.advance();
                let q = self.parenthesized_query()?;
                Ok(Cond::Exists { negated: false, query: Box::new(q) })
            }
            Tok::LParen => {
                self.advance();
                let c = self.cond()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(c)
            }
            _ => {
                let left = self.scalar()?;
                self.postfix(left)
            }
        }
    }

    fn postfix(&mut self, left: Scalar) -> SqlResult<Cond> {
        // IS [NOT] NULL
        if self.eat(&Tok::Is) {
            let negated = self.eat(&Tok::Not);
            self.expect(Tok::Null, "`NULL` after IS")?;
            return Ok(Cond::IsNull { expr: left, negated });
        }
        // [NOT] IN / [NOT] BETWEEN
        let negated = self.eat(&Tok::Not);
        if self.eat(&Tok::In) {
            self.expect(Tok::LParen, "`(` after IN")?;
            if self.peek() == &Tok::Select || self.peek() == &Tok::LParen {
                let q = self.query()?;
                self.expect(Tok::RParen, "`)` closing IN subquery")?;
                return Ok(Cond::InSubquery { expr: left, negated, query: Box::new(q) });
            }
            let mut list = vec![self.literal()?];
            while self.eat(&Tok::Comma) {
                list.push(self.literal()?);
            }
            self.expect(Tok::RParen, "`)` closing IN list")?;
            return Ok(Cond::InList { expr: left, negated, list });
        }
        if self.eat(&Tok::Between) {
            let low = self.scalar()?;
            self.expect(Tok::And, "`AND` in BETWEEN")?;
            let high = self.scalar()?;
            return Ok(Cond::Between { expr: left, negated, low, high });
        }
        if negated {
            return Err(SqlError::parse(
                self.here(),
                "expected `IN` or `BETWEEN` after `NOT` following an expression",
            ));
        }
        // comparison, possibly quantified
        let op = self.cmp_op()?;
        match self.peek() {
            Tok::Any | Tok::Some | Tok::All => {
                let quant =
                    if self.peek() == &Tok::All { Quant::All } else { Quant::Any };
                self.advance();
                let q = self.parenthesized_query()?;
                Ok(Cond::QuantCmp { left, op, quant, query: Box::new(q) })
            }
            _ => {
                let right = self.scalar()?;
                Ok(Cond::Cmp { left, op, right })
            }
        }
    }

    fn cmp_op(&mut self) -> SqlResult<CmpOp> {
        let op = match self.peek() {
            Tok::Eq => CmpOp::Eq,
            Tok::Neq => CmpOp::Neq,
            Tok::Lt => CmpOp::Lt,
            Tok::Le => CmpOp::Le,
            Tok::Gt => CmpOp::Gt,
            Tok::Ge => CmpOp::Ge,
            other => {
                return Err(SqlError::parse(
                    self.here(),
                    format!("expected comparison operator, found {}", other.describe()),
                ))
            }
        };
        self.advance();
        Ok(op)
    }

    fn parenthesized_query(&mut self) -> SqlResult<Query> {
        self.expect(Tok::LParen, "`(` before subquery")?;
        let q = self.query()?;
        self.expect(Tok::RParen, "`)` after subquery")?;
        Ok(q)
    }

    fn scalar(&mut self) -> SqlResult<Scalar> {
        match self.peek().clone() {
            Tok::Ident(first) => {
                self.advance();
                if self.eat(&Tok::Dot) {
                    let name = self.ident("column name after `.`")?;
                    Ok(Scalar::Column { qualifier: Some(first), name })
                } else {
                    Ok(Scalar::Column { qualifier: None, name: first })
                }
            }
            _ => Ok(Scalar::Literal(self.literal()?)),
        }
    }

    fn literal(&mut self) -> SqlResult<Value> {
        let v = match self.peek().clone() {
            Tok::Int(i) => Value::Int(i),
            Tok::Float(x) => Value::Float(x),
            Tok::Str(s) => Value::Str(s),
            Tok::Null => Value::Null,
            Tok::True => Value::Bool(true),
            Tok::False => Value::Bool(false),
            other => {
                return Err(SqlError::parse(
                    self.here(),
                    format!("expected literal, found {}", other.describe()),
                ))
            }
        };
        self.advance();
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(s: &str) -> Query {
        parse_query(s).unwrap_or_else(|e| panic!("{s}: {e}"))
    }

    #[test]
    fn simple_select() {
        let q = ok("SELECT S.sname FROM Sailor S WHERE S.rating > 7");
        let Query::Select(s) = q else { panic!() };
        assert!(!s.distinct);
        assert_eq!(s.from.len(), 1);
        assert!(matches!(
            s.where_clause,
            Some(Cond::Cmp { op: CmpOp::Gt, .. })
        ));
    }

    #[test]
    fn distinct_multi_table_join() {
        let q = ok("SELECT DISTINCT S.sname, B.color FROM Sailor S, Boat AS B, Reserves \
                    WHERE S.sid = Reserves.sid");
        let Query::Select(s) = q else { panic!() };
        assert!(s.distinct);
        assert_eq!(s.from.len(), 3);
        assert_eq!(s.from[1].effective_name(), "B");
        assert_eq!(s.from[2].effective_name(), "Reserves");
    }

    #[test]
    fn wildcard_forms() {
        let q = ok("SELECT *, S.* FROM Sailor S");
        let Query::Select(s) = q else { panic!() };
        assert_eq!(s.items.len(), 2);
        assert!(matches!(s.items[0], SelectItem::Wildcard));
        assert!(matches!(s.items[1], SelectItem::QualifiedWildcard(ref a) if a == "S"));
    }

    #[test]
    fn nested_not_exists() {
        let q = ok("SELECT S.sname FROM Sailor S WHERE NOT EXISTS \
                    (SELECT * FROM Boat B WHERE B.color = 'red' AND NOT EXISTS \
                      (SELECT * FROM Reserves R WHERE R.sid = S.sid AND R.bid = B.bid))");
        assert_eq!(q.block_count(), 3);
    }

    #[test]
    fn in_subquery_and_list() {
        let q = ok("SELECT s.a FROM t s WHERE s.a IN (SELECT u.b FROM u) AND s.c NOT IN (1, 2, 3)");
        let Query::Select(s) = q else { panic!() };
        let Some(Cond::And(l, r)) = s.where_clause else { panic!() };
        assert!(matches!(*l, Cond::InSubquery { negated: false, .. }));
        assert!(matches!(*r, Cond::InList { negated: true, ref list, .. } if list.len() == 3));
    }

    #[test]
    fn quantified_comparisons() {
        let q = ok("SELECT s.a FROM t s WHERE s.a >= ALL (SELECT u.b FROM u) \
                    OR s.a < ANY (SELECT u.b FROM u) OR s.a = SOME (SELECT u.b FROM u)");
        let Query::Select(s) = q else { panic!() };
        let mut quants = Vec::new();
        fn collect(c: &Cond, out: &mut Vec<Quant>) {
            match c {
                Cond::Or(a, b) => {
                    collect(a, out);
                    collect(b, out);
                }
                Cond::QuantCmp { quant, .. } => out.push(*quant),
                _ => {}
            }
        }
        collect(s.where_clause.as_ref().unwrap(), &mut quants);
        assert_eq!(quants, vec![Quant::All, Quant::Any, Quant::Any]);
    }

    #[test]
    fn set_operation_precedence() {
        // INTERSECT binds tighter than UNION.
        let q = ok("SELECT a.x FROM a UNION SELECT b.x FROM b INTERSECT SELECT c.x FROM c");
        let Query::SetOp { op, right, .. } = q else { panic!() };
        assert_eq!(op, SetOpKind::Union);
        assert!(matches!(*right, Query::SetOp { op: SetOpKind::Intersect, .. }));
    }

    #[test]
    fn parenthesized_set_ops() {
        let q = ok("(SELECT a.x FROM a UNION SELECT b.x FROM b) EXCEPT SELECT c.x FROM c");
        let Query::SetOp { op: SetOpKind::Except, left, .. } = q else { panic!() };
        assert!(matches!(*left, Query::SetOp { op: SetOpKind::Union, .. }));
    }

    #[test]
    fn between_is_null_booleans() {
        ok("SELECT s.a FROM t s WHERE s.a BETWEEN 1 AND 10 AND s.b IS NOT NULL AND TRUE");
        ok("SELECT s.a FROM t s WHERE s.a NOT BETWEEN 1 AND 10 OR s.b IS NULL OR FALSE");
    }

    #[test]
    fn not_precedence() {
        // NOT applies to the innermost condition, AND binds tighter than OR.
        let q = ok("SELECT s.a FROM t s WHERE NOT s.a = 1 AND s.b = 2 OR s.c = 3");
        let Query::Select(s) = q else { panic!() };
        assert!(matches!(s.where_clause, Some(Cond::Or(_, _))));
    }

    #[test]
    fn errors() {
        assert!(parse_query("SELECT FROM t").is_err());
        assert!(parse_query("SELECT a.x FROM").is_err());
        assert!(parse_query("SELECT a.x FROM t WHERE").is_err());
        assert!(parse_query("SELECT a.x FROM t extra garbage +").is_err());
        assert!(parse_query("SELECT a.x FROM t WHERE a.x NOT 5").is_err());
        assert!(parse_query("SELECT a.x FROM t WHERE a.x IN ()").is_err());
    }

    #[test]
    fn trailing_semicolon() {
        ok("SELECT s.a FROM t s;");
        assert!(parse_query("SELECT s.a FROM t s; SELECT").is_err());
    }
}
