//! # relviz-sql
//!
//! A from-scratch SQL frontend for the first-order fragment of SQL the
//! tutorial works with: `SELECT [DISTINCT] … FROM … WHERE …` with
//! arbitrary nesting of `EXISTS` / `NOT EXISTS`, `IN` / `NOT IN`
//! (subquery or literal list), quantified comparisons (`ANY`/`ALL`),
//! correlated subqueries, and the set operations
//! `UNION` / `INTERSECT` / `EXCEPT`.
//!
//! The pipeline is: [`lexer`] → [`parser`] → [`analyze`] (name resolution
//! against a [`relviz_model::Database`] catalog) → downstream translation
//! (in `relviz-rc`) or direct evaluation ([`eval`]).
//!
//! ```
//! use relviz_model::catalog::sailors_sample;
//! use relviz_sql::{parse_query, eval::eval_query};
//!
//! let db = sailors_sample();
//! let q = parse_query(
//!     "SELECT DISTINCT S.sname FROM Sailor S, Reserves R \
//!      WHERE S.sid = R.sid AND R.bid = 102",
//! ).unwrap();
//! let result = eval_query(&q, &db).unwrap();
//! assert_eq!(result.len(), 3); // dustin, lubber, horatio
//! ```

pub mod analyze;
pub mod ast;
pub mod error;
pub mod eval;
pub mod lexer;
pub mod parser;
pub mod printer;

pub use ast::{Query, SelectStmt};
pub use error::{SqlError, SqlResult};
pub use parser::parse_query;
pub use printer::print_query;
