//! Name resolution and semantic analysis.
//!
//! [`resolve`] normalizes a parsed query against a catalog:
//!
//! * every table reference gets an explicit alias (its effective name),
//! * every column reference becomes fully qualified,
//! * wildcards (`*`, `alias.*`) are expanded into explicit items,
//! * subqueries used with `IN` / quantified comparisons are checked to have
//!   arity 1, set-operation operands are checked union-compatible,
//! * comparison operands are checked type-compatible.
//!
//! Correlated subqueries are resolved against a scope *stack*: the innermost
//! scope wins, then enclosing scopes are searched outward — mirroring SQL's
//! scoping rules and, not coincidentally, the "default reading order" that
//! QueryVis borrows from diagrammatic reasoning systems.

use relviz_model::{Database, DataType, Schema};

use crate::ast::*;
use crate::error::{SqlError, SqlResult};

/// One FROM-clause scope: `(effective name, base table, schema)` triples.
#[derive(Debug, Clone)]
struct Frame {
    entries: Vec<(String, String, Schema)>,
}

impl Frame {
    fn lookup(&self, name: &str) -> Option<&(String, String, Schema)> {
        self.entries.iter().find(|(n, _, _)| n.eq_ignore_ascii_case(name))
    }
}

/// Resolves a query against `db`, returning the normalized query.
pub fn resolve(query: &Query, db: &Database) -> SqlResult<Query> {
    let mut scopes: Vec<Frame> = Vec::new();
    let (q, _) = resolve_query(query, db, &mut scopes)?;
    Ok(q)
}

/// The output schema of a (resolvable) query.
pub fn output_schema(query: &Query, db: &Database) -> SqlResult<Schema> {
    let mut scopes: Vec<Frame> = Vec::new();
    let (_, schema) = resolve_query(query, db, &mut scopes)?;
    Ok(schema)
}

fn resolve_query(
    query: &Query,
    db: &Database,
    scopes: &mut Vec<Frame>,
) -> SqlResult<(Query, Schema)> {
    match query {
        Query::Select(s) => {
            let (s, schema) = resolve_select(s, db, scopes)?;
            Ok((Query::Select(s), schema))
        }
        Query::SetOp { op, left, right } => {
            let (l, ls) = resolve_query(left, db, scopes)?;
            let (r, rs) = resolve_query(right, db, scopes)?;
            if !ls.union_compatible(&rs) {
                return Err(SqlError::Analyze(format!(
                    "operands of {} are not union-compatible: {ls} vs {rs}",
                    op.keyword()
                )));
            }
            Ok((Query::SetOp { op: *op, left: Box::new(l), right: Box::new(r) }, ls))
        }
    }
}

fn resolve_select(
    s: &SelectStmt,
    db: &Database,
    scopes: &mut Vec<Frame>,
) -> SqlResult<(SelectStmt, Schema)> {
    // Build this block's frame.
    let mut frame = Frame { entries: Vec::with_capacity(s.from.len()) };
    let mut from = Vec::with_capacity(s.from.len());
    for tr in &s.from {
        let schema = db
            .schema(&tr.table)
            .map_err(|_| SqlError::Analyze(format!("unknown table `{}`", tr.table)))?
            .clone();
        let name = tr.effective_name().to_string();
        if frame.lookup(&name).is_some() {
            return Err(SqlError::Analyze(format!(
                "duplicate table name/alias `{name}` in FROM clause"
            )));
        }
        frame.entries.push((name.clone(), tr.table.clone(), schema));
        from.push(TableRef { table: tr.table.clone(), alias: Some(name) });
    }
    scopes.push(frame);

    let result = (|| {
        // Expand and resolve select items.
        let mut items = Vec::new();
        let mut out_attrs: Vec<(String, DataType)> = Vec::new();
        for item in &s.items {
            match item {
                SelectItem::Wildcard => {
                    let frame = scopes.last().expect("frame was just pushed").clone();
                    for (alias, _, schema) in &frame.entries {
                        for a in schema.attrs() {
                            items.push(SelectItem::Expr {
                                expr: Scalar::col(alias.clone(), a.name.clone()),
                                alias: None,
                            });
                            out_attrs.push((a.name.clone(), a.ty));
                        }
                    }
                }
                SelectItem::QualifiedWildcard(q) => {
                    let frame = scopes.last().expect("frame was just pushed");
                    let (alias, _, schema) = frame
                        .lookup(q)
                        .ok_or_else(|| {
                            SqlError::Analyze(format!("unknown table alias `{q}` in `{q}.*`"))
                        })?
                        .clone();
                    for a in schema.attrs() {
                        items.push(SelectItem::Expr {
                            expr: Scalar::col(alias.clone(), a.name.clone()),
                            alias: None,
                        });
                        out_attrs.push((a.name.clone(), a.ty));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let (expr, ty) = resolve_scalar(expr, scopes)?;
                    let name = alias.clone().unwrap_or_else(|| match &expr {
                        Scalar::Column { name, .. } => name.clone(),
                        Scalar::Literal(v) => v.to_literal(),
                    });
                    items.push(SelectItem::Expr { expr, alias: alias.clone() });
                    out_attrs.push((name, ty));
                }
            }
        }
        if items.is_empty() {
            return Err(SqlError::Analyze("empty select list".into()));
        }

        let where_clause = match &s.where_clause {
            Some(c) => Some(resolve_cond(c, db, scopes)?),
            None => None,
        };

        // Disambiguate duplicate output names (`sname`, `sname_2`, …).
        let mut seen: Vec<String> = Vec::new();
        let attrs: Vec<(String, DataType)> = out_attrs
            .into_iter()
            .map(|(n, t)| {
                let mut name = n.clone();
                let mut k = 2;
                while seen.iter().any(|s| s.eq_ignore_ascii_case(&name)) {
                    name = format!("{n}_{k}");
                    k += 1;
                }
                seen.push(name.clone());
                (name, t)
            })
            .collect();
        let schema = Schema::of(
            &attrs.iter().map(|(n, t)| (n.as_str(), *t)).collect::<Vec<_>>(),
        );

        Ok((SelectStmt { distinct: s.distinct, items, from, where_clause }, schema))
    })();

    scopes.pop();
    result
}

/// Output schema of an *already resolved* SELECT block, computed from its
/// own FROM clause only. Column references to enclosing scopes (legal in
/// correlated subqueries) get type [`DataType::Any`].
pub fn resolved_select_schema(s: &SelectStmt, db: &Database) -> SqlResult<Schema> {
    let mut local: Vec<(String, Schema)> = Vec::with_capacity(s.from.len());
    for tr in &s.from {
        local.push((tr.effective_name().to_string(), db.schema(&tr.table)?.clone()));
    }
    let mut out_attrs: Vec<(String, DataType)> = Vec::with_capacity(s.items.len());
    for item in &s.items {
        let SelectItem::Expr { expr, alias } = item else {
            return Err(SqlError::Analyze(
                "resolved select still contains wildcards".into(),
            ));
        };
        let (name, ty) = match expr {
            Scalar::Literal(v) => (v.to_literal(), v.data_type()),
            Scalar::Column { qualifier, name } => {
                let ty = qualifier
                    .as_deref()
                    .and_then(|q| {
                        local
                            .iter()
                            .find(|(a, _)| a.eq_ignore_ascii_case(q))
                            .and_then(|(_, sch)| sch.attr(name))
                            .map(|a| a.ty)
                    })
                    .unwrap_or(DataType::Any);
                (name.clone(), ty)
            }
        };
        out_attrs.push((alias.clone().unwrap_or(name), ty));
    }
    let mut seen: Vec<String> = Vec::new();
    let attrs: Vec<(String, DataType)> = out_attrs
        .into_iter()
        .map(|(n, t)| {
            let mut name = n.clone();
            let mut k = 2;
            while seen.iter().any(|s| s.eq_ignore_ascii_case(&name)) {
                name = format!("{n}_{k}");
                k += 1;
            }
            seen.push(name.clone());
            (name, t)
        })
        .collect();
    Ok(Schema::of(&attrs.iter().map(|(n, t)| (n.as_str(), *t)).collect::<Vec<_>>()))
}

fn resolve_scalar(sc: &Scalar, scopes: &[Frame]) -> SqlResult<(Scalar, DataType)> {
    match sc {
        Scalar::Literal(v) => Ok((Scalar::Literal(v.clone()), v.data_type())),
        Scalar::Column { qualifier: Some(q), name } => {
            // Innermost scope owning alias `q` wins.
            for frame in scopes.iter().rev() {
                if let Some((alias, _, schema)) = frame.lookup(q) {
                    let attr = schema.attr(name).ok_or_else(|| {
                        SqlError::Analyze(format!("table `{q}` has no column `{name}`"))
                    })?;
                    return Ok((Scalar::col(alias.clone(), name.clone()), attr.ty));
                }
            }
            Err(SqlError::Analyze(format!("unknown table alias `{q}`")))
        }
        Scalar::Column { qualifier: None, name } => {
            // Search scopes from innermost out; within a scope the column
            // must be unambiguous.
            for frame in scopes.iter().rev() {
                let hits: Vec<_> = frame
                    .entries
                    .iter()
                    .filter(|(_, _, schema)| schema.attr(name).is_some())
                    .collect();
                match hits.len() {
                    0 => continue,
                    1 => {
                        let (alias, _, schema) = hits[0];
                        let ty = schema.attr(name).expect("hit implies presence").ty;
                        return Ok((Scalar::col(alias.clone(), name.clone()), ty));
                    }
                    _ => {
                        return Err(SqlError::Analyze(format!(
                            "ambiguous column `{name}` (in {})",
                            hits.iter()
                                .map(|(a, _, _)| a.as_str())
                                .collect::<Vec<_>>()
                                .join(", ")
                        )))
                    }
                }
            }
            Err(SqlError::Analyze(format!("unknown column `{name}`")))
        }
    }
}

fn check_comparable(lt: DataType, rt: DataType, ctx: &str) -> SqlResult<()> {
    if lt.unify(rt).is_none() {
        return Err(SqlError::Analyze(format!(
            "type mismatch in {ctx}: {lt} vs {rt}"
        )));
    }
    Ok(())
}

fn resolve_cond(c: &Cond, db: &Database, scopes: &mut Vec<Frame>) -> SqlResult<Cond> {
    Ok(match c {
        Cond::Cmp { left, op, right } => {
            let (l, lt) = resolve_scalar(left, scopes)?;
            let (r, rt) = resolve_scalar(right, scopes)?;
            check_comparable(lt, rt, "comparison")?;
            Cond::Cmp { left: l, op: *op, right: r }
        }
        Cond::And(a, b) => {
            resolve_cond(a, db, scopes)?.and(resolve_cond(b, db, scopes)?)
        }
        Cond::Or(a, b) => resolve_cond(a, db, scopes)?.or(resolve_cond(b, db, scopes)?),
        Cond::Not(a) => resolve_cond(a, db, scopes)?.not(),
        Cond::Exists { negated, query } => {
            let (q, _) = resolve_query(query, db, scopes)?;
            Cond::Exists { negated: *negated, query: Box::new(q) }
        }
        Cond::InSubquery { expr, negated, query } => {
            let (e, et) = resolve_scalar(expr, scopes)?;
            let (q, schema) = resolve_query(query, db, scopes)?;
            if schema.arity() != 1 {
                return Err(SqlError::Analyze(format!(
                    "IN subquery must return one column, got {}",
                    schema.arity()
                )));
            }
            check_comparable(et, schema.attrs()[0].ty, "IN subquery")?;
            Cond::InSubquery { expr: e, negated: *negated, query: Box::new(q) }
        }
        Cond::InList { expr, negated, list } => {
            let (e, et) = resolve_scalar(expr, scopes)?;
            for v in list {
                check_comparable(et, v.data_type(), "IN list")?;
            }
            Cond::InList { expr: e, negated: *negated, list: list.clone() }
        }
        Cond::QuantCmp { left, op, quant, query } => {
            let (l, lt) = resolve_scalar(left, scopes)?;
            let (q, schema) = resolve_query(query, db, scopes)?;
            if schema.arity() != 1 {
                return Err(SqlError::Analyze(format!(
                    "quantified subquery must return one column, got {}",
                    schema.arity()
                )));
            }
            check_comparable(lt, schema.attrs()[0].ty, "quantified comparison")?;
            Cond::QuantCmp { left: l, op: *op, quant: *quant, query: Box::new(q) }
        }
        Cond::IsNull { expr, negated } => {
            let (e, _) = resolve_scalar(expr, scopes)?;
            Cond::IsNull { expr: e, negated: *negated }
        }
        Cond::Between { expr, negated, low, high } => {
            let (e, et) = resolve_scalar(expr, scopes)?;
            let (lo, lot) = resolve_scalar(low, scopes)?;
            let (hi, hit) = resolve_scalar(high, scopes)?;
            check_comparable(et, lot, "BETWEEN")?;
            check_comparable(et, hit, "BETWEEN")?;
            Cond::Between { expr: e, negated: *negated, low: lo, high: hi }
        }
        Cond::Literal(b) => Cond::Literal(*b),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use relviz_model::catalog::sailors_sample;

    fn res(sql: &str) -> SqlResult<Query> {
        resolve(&parse_query(sql).unwrap(), &sailors_sample())
    }

    #[test]
    fn qualifies_unqualified_columns() {
        let q = res("SELECT sname FROM Sailor WHERE rating > 7").unwrap();
        let Query::Select(s) = q else { panic!() };
        let SelectItem::Expr { expr, .. } = &s.items[0] else { panic!() };
        assert_eq!(expr, &Scalar::col("Sailor", "sname"));
    }

    #[test]
    fn expands_wildcards() {
        let q = res("SELECT * FROM Sailor S, Boat B").unwrap();
        let Query::Select(s) = q else { panic!() };
        assert_eq!(s.items.len(), 7); // 4 sailor + 3 boat columns
    }

    #[test]
    fn output_schema_disambiguates() {
        let schema =
            output_schema(&parse_query("SELECT S.sname, S.sname FROM Sailor S").unwrap(), &sailors_sample())
                .unwrap();
        assert_eq!(schema.names(), vec!["sname", "sname_2"]);
    }

    #[test]
    fn detects_ambiguity_and_unknowns() {
        assert!(res("SELECT sid FROM Sailor, Reserves").is_err()); // ambiguous
        assert!(res("SELECT nope FROM Sailor").is_err());
        assert!(res("SELECT sname FROM NoSuchTable").is_err());
        assert!(res("SELECT Z.sname FROM Sailor S").is_err());
        assert!(res("SELECT S.ghost FROM Sailor S").is_err());
    }

    #[test]
    fn duplicate_alias_rejected() {
        assert!(res("SELECT S.sname FROM Sailor S, Boat S").is_err());
    }

    #[test]
    fn correlated_subquery_sees_outer_scope() {
        let q = res("SELECT S.sname FROM Sailor S WHERE EXISTS \
                     (SELECT * FROM Reserves R WHERE R.sid = S.sid)");
        assert!(q.is_ok());
    }

    #[test]
    fn inner_scope_shadows_outer() {
        // Both scopes name a table S; inner resolution must pick the inner.
        let q = res("SELECT S.sname FROM Sailor S WHERE EXISTS \
                     (SELECT * FROM Sailor S WHERE S.rating > 9)");
        assert!(q.is_ok());
    }

    #[test]
    fn in_subquery_arity_checked() {
        assert!(res("SELECT S.sname FROM Sailor S WHERE S.sid IN \
                     (SELECT R.sid, R.bid FROM Reserves R)")
            .is_err());
    }

    #[test]
    fn type_mismatches_detected() {
        assert!(res("SELECT S.sname FROM Sailor S WHERE S.sname > 5").is_err());
        assert!(res("SELECT S.sname FROM Sailor S WHERE S.sid IN \
                     (SELECT B.color FROM Boat B)")
            .is_err());
    }

    #[test]
    fn union_compatibility_checked() {
        assert!(res("SELECT S.sid FROM Sailor S UNION SELECT B.color FROM Boat B").is_err());
        assert!(res("SELECT S.sid FROM Sailor S UNION SELECT B.bid FROM Boat B").is_ok());
    }

    #[test]
    fn int_compares_with_float() {
        assert!(res("SELECT S.sname FROM Sailor S WHERE S.age > 30").is_ok());
    }
}
