//! Hand-written SQL lexer.
//!
//! Produces a token stream with positions. Keywords are recognized
//! case-insensitively; identifiers keep their original spelling (the model
//! layer resolves names case-insensitively, matching SQL convention).

use crate::error::{Pos, SqlError, SqlResult};

/// The kinds of tokens in our SQL fragment.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // Punctuation / operators
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Semicolon,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    // Literals and names
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    // Keywords
    Select,
    Distinct,
    From,
    Where,
    And,
    Or,
    Not,
    Exists,
    In,
    Any,
    Some,
    All,
    Union,
    Intersect,
    Except,
    As,
    Is,
    Null,
    True,
    False,
    Between,
    /// End of input sentinel.
    Eof,
}

impl Tok {
    /// Human-readable token description for error messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("identifier `{s}`"),
            Tok::Int(i) => format!("integer `{i}`"),
            Tok::Float(x) => format!("float `{x}`"),
            Tok::Str(s) => format!("string '{s}'"),
            Tok::Eof => "end of input".to_string(),
            other => format!("`{other:?}`"),
        }
    }
}

/// A token plus its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub tok: Tok,
    pub pos: Pos,
}

/// Lexes `input` into a token vector terminated by [`Tok::Eof`].
pub fn lex(input: &str) -> SqlResult<Vec<Token>> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! pos {
        () => {
            Pos { offset: i, line, col }
        };
    }
    macro_rules! bump {
        ($n:expr) => {{
            col += $n as u32;
            i += $n;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' => bump!(1),
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token { tok: Tok::LParen, pos: pos!() });
                bump!(1);
            }
            ')' => {
                tokens.push(Token { tok: Tok::RParen, pos: pos!() });
                bump!(1);
            }
            ',' => {
                tokens.push(Token { tok: Tok::Comma, pos: pos!() });
                bump!(1);
            }
            '.' => {
                tokens.push(Token { tok: Tok::Dot, pos: pos!() });
                bump!(1);
            }
            '*' => {
                tokens.push(Token { tok: Tok::Star, pos: pos!() });
                bump!(1);
            }
            ';' => {
                tokens.push(Token { tok: Tok::Semicolon, pos: pos!() });
                bump!(1);
            }
            '=' => {
                tokens.push(Token { tok: Tok::Eq, pos: pos!() });
                bump!(1);
            }
            '<' => {
                let p = pos!();
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token { tok: Tok::Le, pos: p });
                    bump!(2);
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    tokens.push(Token { tok: Tok::Neq, pos: p });
                    bump!(2);
                } else {
                    tokens.push(Token { tok: Tok::Lt, pos: p });
                    bump!(1);
                }
            }
            '>' => {
                let p = pos!();
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token { tok: Tok::Ge, pos: p });
                    bump!(2);
                } else {
                    tokens.push(Token { tok: Tok::Gt, pos: p });
                    bump!(1);
                }
            }
            '!' => {
                let p = pos!();
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token { tok: Tok::Neq, pos: p });
                    bump!(2);
                } else {
                    return Err(SqlError::lex(p, "unexpected `!` (did you mean `!=`?)"));
                }
            }
            '\'' => {
                let p = pos!();
                let mut s = String::new();
                let mut j = i + 1;
                loop {
                    if j >= bytes.len() {
                        return Err(SqlError::lex(p, "unterminated string literal"));
                    }
                    if bytes[j] == b'\'' {
                        if j + 1 < bytes.len() && bytes[j + 1] == b'\'' {
                            s.push('\'');
                            j += 2;
                        } else {
                            j += 1;
                            break;
                        }
                    } else {
                        s.push(bytes[j] as char);
                        j += 1;
                    }
                }
                let consumed = j - i;
                tokens.push(Token { tok: Tok::Str(s), pos: p });
                bump!(consumed);
            }
            c if c.is_ascii_digit() => {
                let p = pos!();
                let start = i;
                let mut j = i;
                while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                    j += 1;
                }
                let mut is_float = false;
                if j < bytes.len()
                    && bytes[j] == b'.'
                    && j + 1 < bytes.len()
                    && (bytes[j + 1] as char).is_ascii_digit()
                {
                    is_float = true;
                    j += 1;
                    while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                        j += 1;
                    }
                }
                let text = &input[start..j];
                let tok = if is_float {
                    Tok::Float(
                        text.parse()
                            .map_err(|_| SqlError::lex(p, format!("bad float `{text}`")))?,
                    )
                } else {
                    Tok::Int(
                        text.parse()
                            .map_err(|_| SqlError::lex(p, format!("integer overflow `{text}`")))?,
                    )
                };
                let consumed = j - i;
                tokens.push(Token { tok, pos: p });
                bump!(consumed);
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let p = pos!();
                let start = i;
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                let word = &input[start..j];
                let tok = keyword(word).unwrap_or_else(|| Tok::Ident(word.to_string()));
                let consumed = j - i;
                tokens.push(Token { tok, pos: p });
                bump!(consumed);
            }
            other => {
                return Err(SqlError::lex(pos!(), format!("unexpected character `{other}`")));
            }
        }
    }
    tokens.push(Token { tok: Tok::Eof, pos: Pos { offset: i, line, col } });
    Ok(tokens)
}

fn keyword(word: &str) -> Option<Tok> {
    let t = match word.to_ascii_uppercase().as_str() {
        "SELECT" => Tok::Select,
        "DISTINCT" => Tok::Distinct,
        "FROM" => Tok::From,
        "WHERE" => Tok::Where,
        "AND" => Tok::And,
        "OR" => Tok::Or,
        "NOT" => Tok::Not,
        "EXISTS" => Tok::Exists,
        "IN" => Tok::In,
        "ANY" => Tok::Any,
        "SOME" => Tok::Some,
        "ALL" => Tok::All,
        "UNION" => Tok::Union,
        "INTERSECT" => Tok::Intersect,
        "EXCEPT" => Tok::Except,
        "AS" => Tok::As,
        "IS" => Tok::Is,
        "NULL" => Tok::Null,
        "TRUE" => Tok::True,
        "FALSE" => Tok::False,
        "BETWEEN" => Tok::Between,
        _ => return None,
    };
    Some(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(s: &str) -> Vec<Tok> {
        lex(s).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("SELECT s.a FROM t"),
            vec![
                Tok::Select,
                Tok::Ident("s".into()),
                Tok::Dot,
                Tok::Ident("a".into()),
                Tok::From,
                Tok::Ident("t".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("= <> != < <= > >="),
            vec![Tok::Eq, Tok::Neq, Tok::Neq, Tok::Lt, Tok::Le, Tok::Gt, Tok::Ge, Tok::Eof]
        );
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(kinds("select SeLeCt SELECT")[..3], [Tok::Select, Tok::Select, Tok::Select]);
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42 3.25"), vec![Tok::Int(42), Tok::Float(3.25), Tok::Eof]);
        // `1.` without digits is Int then Dot (qualified-name safety)
        assert_eq!(kinds("1.x")[..2], [Tok::Int(1), Tok::Dot]);
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(kinds("'red'"), vec![Tok::Str("red".into()), Tok::Eof]);
        assert_eq!(kinds("'it''s'"), vec![Tok::Str("it's".into()), Tok::Eof]);
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn comments_and_positions() {
        let toks = lex("SELECT -- hi\n  x").unwrap();
        assert_eq!(toks[1].tok, Tok::Ident("x".into()));
        assert_eq!(toks[1].pos.line, 2);
        assert_eq!(toks[1].pos.col, 3);
    }

    #[test]
    fn bad_chars_error() {
        assert!(lex("SELECT @").is_err());
        assert!(lex("a ! b").is_err());
    }
}
