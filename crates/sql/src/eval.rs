//! A direct, reference SQL evaluator (nested loops, three-valued logic).
//!
//! This evaluator is deliberately independent from the RA/RC/Datalog
//! engines in sibling crates: experiment **E2** cross-checks all five
//! language implementations against each other, which is only meaningful if
//! they do not share evaluation code.
//!
//! Semantics notes:
//! * **Set semantics**: results are relations (sets); `DISTINCT` and plain
//!   `SELECT` therefore coincide, which matches how the tutorial compares
//!   languages (RA/RC/Datalog are set-based).
//! * **Three-valued logic** in WHERE: `NULL` comparisons yield *unknown*;
//!   a tuple qualifies only if the condition is *true* — so the classic
//!   `NOT IN` + NULL trap behaves exactly as in real SQL (see tests).

use relviz_model::{Database, Relation, Schema, Tuple, Value};

use crate::analyze::{resolve, resolved_select_schema};
use crate::ast::*;
use crate::error::{SqlError, SqlResult};

/// Evaluates `query` against `db` (resolving names first).
pub fn eval_query(query: &Query, db: &Database) -> SqlResult<Relation> {
    let resolved = resolve(query, db)?;
    let mut env = Env::default();
    eval_resolved(&resolved, db, &mut env)
}

/// Parses, resolves and evaluates a SQL string — the one-call convenience.
pub fn run_sql(sql: &str, db: &Database) -> SqlResult<Relation> {
    eval_query(&crate::parser::parse_query(sql)?, db)
}

/// Binding environment: a stack of frames, one per enclosing SELECT block,
/// each mapping effective table names to (schema, current row).
#[derive(Debug, Default, Clone)]
struct Env {
    frames: Vec<Vec<(String, Schema, Tuple)>>,
}

impl Env {
    fn lookup(&self, qualifier: &str, name: &str) -> Option<Value> {
        for frame in self.frames.iter().rev() {
            for (alias, schema, tuple) in frame {
                if alias.eq_ignore_ascii_case(qualifier) {
                    let idx = schema.index_of(name)?;
                    return Some(tuple.values()[idx].clone());
                }
            }
        }
        None
    }
}

fn eval_resolved(query: &Query, db: &Database, env: &mut Env) -> SqlResult<Relation> {
    match query {
        Query::Select(s) => eval_select(s, db, env),
        Query::SetOp { op, left, right } => {
            let l = eval_resolved(left, db, env)?;
            let r = eval_resolved(right, db, env)?;
            let mut out = Relation::empty(l.schema().clone());
            match op {
                SetOpKind::Union => {
                    for t in l.iter().chain(r.iter()) {
                        out.insert_unchecked(t.clone());
                    }
                }
                SetOpKind::Intersect => {
                    for t in l.iter() {
                        if r.contains(t) {
                            out.insert_unchecked(t.clone());
                        }
                    }
                }
                SetOpKind::Except => {
                    for t in l.iter() {
                        if !r.contains(t) {
                            out.insert_unchecked(t.clone());
                        }
                    }
                }
            }
            Ok(out)
        }
    }
}

fn eval_select(s: &SelectStmt, db: &Database, env: &mut Env) -> SqlResult<Relation> {
    let out_schema = resolved_select_schema(s, db)?;
    let mut out = Relation::empty(out_schema);

    // Gather the base relations once.
    let mut tables: Vec<(String, Schema, Vec<Tuple>)> = Vec::with_capacity(s.from.len());
    for tr in &s.from {
        let rel = db.relation(&tr.table)?;
        tables.push((
            tr.effective_name().to_string(),
            rel.schema().clone(),
            rel.iter().cloned().collect(),
        ));
    }

    // Nested-loop enumeration of the FROM product.
    env.frames.push(Vec::new());
    let result = enumerate(s, db, env, &tables, 0, &mut out);
    env.frames.pop();
    result?;
    Ok(out)
}

fn enumerate(
    s: &SelectStmt,
    db: &Database,
    env: &mut Env,
    tables: &[(String, Schema, Vec<Tuple>)],
    depth: usize,
    out: &mut Relation,
) -> SqlResult<()> {
    if depth == tables.len() {
        let keep = match &s.where_clause {
            Some(c) => eval_cond(c, db, env)? == Some(true),
            None => true,
        };
        if keep {
            let mut values = Vec::with_capacity(s.items.len());
            for item in &s.items {
                let SelectItem::Expr { expr, .. } = item else {
                    return Err(SqlError::Eval(
                        "wildcard survived resolution (internal error)".into(),
                    ));
                };
                values.push(eval_scalar(expr, env)?);
            }
            out.insert_unchecked(Tuple::new(values));
        }
        return Ok(());
    }
    let (alias, schema, tuples) = &tables[depth];
    for t in tuples {
        let frame = env.frames.last_mut().expect("frame pushed by eval_select");
        frame.push((alias.clone(), schema.clone(), t.clone()));
        let r = enumerate(s, db, env, tables, depth + 1, out);
        env.frames.last_mut().expect("frame still present").pop();
        r?;
    }
    Ok(())
}

fn eval_scalar(sc: &Scalar, env: &Env) -> SqlResult<Value> {
    match sc {
        Scalar::Literal(v) => Ok(v.clone()),
        Scalar::Column { qualifier: Some(q), name } => env
            .lookup(q, name)
            .ok_or_else(|| SqlError::Eval(format!("unbound column `{q}.{name}`"))),
        Scalar::Column { qualifier: None, name } => {
            Err(SqlError::Eval(format!("unresolved column `{name}` (internal error)")))
        }
    }
}

/// Kleene three-valued connectives.
fn and3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    }
}
fn or3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => Some(true),
        (Some(false), Some(false)) => Some(false),
        _ => None,
    }
}
fn not3(a: Option<bool>) -> Option<bool> {
    a.map(|b| !b)
}

fn cmp3(op: CmpOp, l: &Value, r: &Value) -> Option<bool> {
    if l.is_null() || r.is_null() {
        None
    } else {
        Some(op.apply(l, r))
    }
}

fn eval_cond(c: &Cond, db: &Database, env: &mut Env) -> SqlResult<Option<bool>> {
    Ok(match c {
        Cond::Literal(b) => Some(*b),
        Cond::Cmp { left, op, right } => {
            let l = eval_scalar(left, env)?;
            let r = eval_scalar(right, env)?;
            cmp3(*op, &l, &r)
        }
        Cond::And(a, b) => and3(eval_cond(a, db, env)?, eval_cond(b, db, env)?),
        Cond::Or(a, b) => or3(eval_cond(a, db, env)?, eval_cond(b, db, env)?),
        Cond::Not(a) => not3(eval_cond(a, db, env)?),
        Cond::IsNull { expr, negated } => {
            let v = eval_scalar(expr, env)?;
            Some(v.is_null() != *negated)
        }
        Cond::Between { expr, negated, low, high } => {
            let v = eval_scalar(expr, env)?;
            let lo = eval_scalar(low, env)?;
            let hi = eval_scalar(high, env)?;
            let inside = and3(cmp3(CmpOp::Ge, &v, &lo), cmp3(CmpOp::Le, &v, &hi));
            if *negated {
                not3(inside)
            } else {
                inside
            }
        }
        Cond::Exists { negated, query } => {
            let rel = eval_resolved(query, db, env)?;
            Some(rel.is_empty() == *negated)
        }
        Cond::InList { expr, negated, list } => {
            let v = eval_scalar(expr, env)?;
            let mut acc = Some(false);
            for item in list {
                acc = or3(acc, cmp3(CmpOp::Eq, &v, item));
            }
            if *negated {
                not3(acc)
            } else {
                acc
            }
        }
        Cond::InSubquery { expr, negated, query } => {
            let v = eval_scalar(expr, env)?;
            let rel = eval_resolved(query, db, env)?;
            let mut acc = Some(false);
            for t in rel.iter() {
                acc = or3(acc, cmp3(CmpOp::Eq, &v, &t.values()[0]));
            }
            if *negated {
                not3(acc)
            } else {
                acc
            }
        }
        Cond::QuantCmp { left, op, quant, query } => {
            let v = eval_scalar(left, env)?;
            let rel = eval_resolved(query, db, env)?;
            match quant {
                Quant::Any => {
                    let mut acc = Some(false);
                    for t in rel.iter() {
                        acc = or3(acc, cmp3(*op, &v, &t.values()[0]));
                    }
                    acc
                }
                Quant::All => {
                    let mut acc = Some(true);
                    for t in rel.iter() {
                        acc = and3(acc, cmp3(*op, &v, &t.values()[0]));
                    }
                    acc
                }
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use relviz_model::catalog::sailors_sample;
    use relviz_model::{DataType, Schema as MSchema};

    fn names(rel: &Relation) -> Vec<String> {
        rel.iter().map(|t| t.values()[0].to_string()).collect()
    }

    #[test]
    fn q1_reserved_boat_102() {
        let db = sailors_sample();
        let r = run_sql(
            "SELECT DISTINCT S.sname FROM Sailor S, Reserves R \
             WHERE S.sid = R.sid AND R.bid = 102",
            &db,
        )
        .unwrap();
        assert_eq!(names(&r), vec!["dustin", "horatio", "lubber"]);
    }

    #[test]
    fn q2_reserved_red_boat() {
        let db = sailors_sample();
        let r = run_sql(
            "SELECT DISTINCT S.sname FROM Sailor S, Reserves R, Boat B \
             WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'red'",
            &db,
        )
        .unwrap();
        assert_eq!(names(&r), vec!["dustin", "horatio", "lubber"]);
    }

    #[test]
    fn q3_red_or_green_union() {
        let db = sailors_sample();
        let union = run_sql(
            "SELECT S.sname FROM Sailor S, Reserves R, Boat B \
             WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'red' \
             UNION \
             SELECT S.sname FROM Sailor S, Reserves R, Boat B \
             WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'green'",
            &db,
        )
        .unwrap();
        let or = run_sql(
            "SELECT DISTINCT S.sname FROM Sailor S, Reserves R, Boat B \
             WHERE S.sid = R.sid AND R.bid = B.bid AND (B.color = 'red' OR B.color = 'green')",
            &db,
        )
        .unwrap();
        assert!(union.same_contents(&or));
        assert_eq!(names(&union), vec!["dustin", "horatio", "lubber"]);
    }

    #[test]
    fn q4_no_red_boat_not_exists() {
        let db = sailors_sample();
        let r = run_sql(
            "SELECT S.sname FROM Sailor S WHERE NOT EXISTS \
             (SELECT * FROM Reserves R, Boat B \
              WHERE R.sid = S.sid AND R.bid = B.bid AND B.color = 'red')",
            &db,
        )
        .unwrap();
        // Everyone except dustin(22), lubber(31), horatio(64).
        assert_eq!(r.len(), 7);
        assert!(!names(&r).contains(&"dustin".to_string()));
    }

    #[test]
    fn q5_division_all_red_boats() {
        let db = sailors_sample();
        let r = run_sql(
            "SELECT S.sname FROM Sailor S WHERE NOT EXISTS \
             (SELECT * FROM Boat B WHERE B.color = 'red' AND NOT EXISTS \
               (SELECT * FROM Reserves R WHERE R.sid = S.sid AND R.bid = B.bid))",
            &db,
        )
        .unwrap();
        // Dustin reserves 102 and 104; lubber reserves 102,104 too!
        // lubber reserves 102, 103, 104 → includes both red boats.
        assert_eq!(names(&r), vec!["dustin", "lubber"]);
    }

    #[test]
    fn quantified_all_highest_rating() {
        let db = sailors_sample();
        let r = run_sql(
            "SELECT DISTINCT S.sname FROM Sailor S \
             WHERE S.rating >= ALL (SELECT S2.rating FROM Sailor S2)",
            &db,
        )
        .unwrap();
        assert_eq!(names(&r), vec!["rusty", "zorba"]);
    }

    #[test]
    fn in_subquery_matches_join() {
        let db = sailors_sample();
        let a = run_sql(
            "SELECT DISTINCT S.sname FROM Sailor S WHERE S.sid IN \
             (SELECT R.sid FROM Reserves R WHERE R.bid = 102)",
            &db,
        )
        .unwrap();
        let b = run_sql(
            "SELECT DISTINCT S.sname FROM Sailor S, Reserves R \
             WHERE S.sid = R.sid AND R.bid = 102",
            &db,
        )
        .unwrap();
        assert!(a.same_contents(&b));
    }

    #[test]
    fn intersect_and_except() {
        let db = sailors_sample();
        let r = run_sql(
            "SELECT S.sid FROM Sailor S INTERSECT SELECT R.sid FROM Reserves R",
            &db,
        )
        .unwrap();
        assert_eq!(r.len(), 4); // 22, 31, 64, 74 have reservations
        let e = run_sql(
            "SELECT S.sid FROM Sailor S EXCEPT SELECT R.sid FROM Reserves R",
            &db,
        )
        .unwrap();
        assert_eq!(e.len(), 6);
    }

    #[test]
    fn not_in_with_null_is_empty() {
        // The classic SQL trap: `x NOT IN (…, NULL, …)` can never be true.
        let mut db = Database::new();
        let mut r = Relation::empty(MSchema::of(&[("a", DataType::Int)]));
        r.insert(Tuple::of((1,))).unwrap();
        db.add("R", r).unwrap();
        let mut s = Relation::empty(MSchema::of(&[("b", DataType::Int)]));
        s.insert(Tuple::new(vec![Value::Null])).unwrap();
        s.insert(Tuple::of((2,))).unwrap();
        db.add("S", s).unwrap();

        let out = run_sql("SELECT R.a FROM R WHERE R.a NOT IN (SELECT S.b FROM S)", &db).unwrap();
        assert!(out.is_empty(), "NOT IN with NULL must yield unknown, filtering all rows");

        // whereas IN finds nothing but NOT EXISTS-style rewrite succeeds:
        let out2 = run_sql(
            "SELECT R.a FROM R WHERE NOT EXISTS (SELECT * FROM S WHERE S.b = R.a)",
            &db,
        )
        .unwrap();
        assert_eq!(out2.len(), 1);
    }

    #[test]
    fn between_and_is_null() {
        let db = sailors_sample();
        let r = run_sql(
            "SELECT S.sname FROM Sailor S WHERE S.age BETWEEN 33 AND 36 AND S.sname IS NOT NULL",
            &db,
        )
        .unwrap();
        assert_eq!(r.len(), 3); // brutus 33, rusty 35, horatio 35 (74's horatio dedups by name? no: sname only)
    }

    #[test]
    fn self_join_pairs() {
        let db = sailors_sample();
        let r = run_sql(
            "SELECT S1.sname, S2.sname FROM Sailor S1, Sailor S2 \
             WHERE S1.rating = S2.rating AND S1.sid < S2.sid",
            &db,
        )
        .unwrap();
        // rating 7: (22,64); rating 8: (31,32); rating 10: (58,71); rating 3: (85,95)
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn empty_all_is_true_empty_any_is_false() {
        let db = sailors_sample();
        let all = run_sql(
            "SELECT S.sid FROM Sailor S WHERE S.rating > ALL \
             (SELECT B.bid FROM Boat B WHERE B.color = 'purple')",
            &db,
        )
        .unwrap();
        assert_eq!(all.len(), 10);
        let any = run_sql(
            "SELECT S.sid FROM Sailor S WHERE S.rating > ANY \
             (SELECT B.bid FROM Boat B WHERE B.color = 'purple')",
            &db,
        )
        .unwrap();
        assert!(any.is_empty());
    }
}
