//! Abstract syntax of the first-order SQL fragment.
//!
//! The fragment corresponds to what the tutorial's Part 3 uses: conjunctive
//! queries, disjunction, negation via `NOT EXISTS` / `NOT IN`, quantified
//! comparisons, and set operations — i.e. exactly the relationally complete
//! core of SQL (no aggregation, grouping or recursion, which are outside
//! first-order logic).

use relviz_model::Value;

pub use relviz_model::CmpOp;

/// A full query: a tree of set operations over SELECT blocks.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    Select(SelectStmt),
    SetOp { op: SetOpKind, left: Box<Query>, right: Box<Query> },
}

/// `UNION`, `INTERSECT`, `EXCEPT` — set semantics (no `ALL`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SetOpKind {
    Union,
    Intersect,
    Except,
}

impl SetOpKind {
    pub fn keyword(self) -> &'static str {
        match self {
            SetOpKind::Union => "UNION",
            SetOpKind::Intersect => "INTERSECT",
            SetOpKind::Except => "EXCEPT",
        }
    }
}

/// One `SELECT … FROM … WHERE …` block.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub distinct: bool,
    pub items: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub where_clause: Option<Cond>,
}

/// An output column specification.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// expression with optional output alias.
    Expr { expr: Scalar, alias: Option<String> },
}

/// A base-table reference with optional alias (a *table variable* in the
/// tutorial's vocabulary — the unit QueryVis and Relational Diagrams draw).
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    pub table: String,
    pub alias: Option<String>,
}

impl TableRef {
    pub fn new(table: impl Into<String>) -> Self {
        TableRef { table: table.into(), alias: None }
    }
    pub fn aliased(table: impl Into<String>, alias: impl Into<String>) -> Self {
        TableRef { table: table.into(), alias: Some(alias.into()) }
    }
    /// The name this table is referred to by in scope.
    pub fn effective_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// Scalar expressions: column references and literals.
///
/// Arithmetic is deliberately excluded — the tutorial's queries and every
/// diagram formalism it surveys operate on comparisons between attributes
/// and constants; keeping scalars atomic keeps all translations exact.
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    Column { qualifier: Option<String>, name: String },
    Literal(Value),
}

impl Scalar {
    pub fn col(qualifier: impl Into<String>, name: impl Into<String>) -> Self {
        Scalar::Column { qualifier: Some(qualifier.into()), name: name.into() }
    }
    pub fn bare(name: impl Into<String>) -> Self {
        Scalar::Column { qualifier: None, name: name.into() }
    }
    pub fn lit(v: impl Into<Value>) -> Self {
        Scalar::Literal(v.into())
    }
}

/// `ANY`/`ALL` quantifier of a quantified comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Quant {
    Any,
    All,
}

/// WHERE-clause conditions.
#[derive(Debug, Clone, PartialEq)]
pub enum Cond {
    /// `a op b`
    Cmp { left: Scalar, op: CmpOp, right: Scalar },
    And(Box<Cond>, Box<Cond>),
    Or(Box<Cond>, Box<Cond>),
    Not(Box<Cond>),
    /// `[NOT] EXISTS (subquery)`
    Exists { negated: bool, query: Box<Query> },
    /// `expr [NOT] IN (subquery)`
    InSubquery { expr: Scalar, negated: bool, query: Box<Query> },
    /// `expr [NOT] IN (v1, v2, …)`
    InList { expr: Scalar, negated: bool, list: Vec<Value> },
    /// `expr op ANY|ALL (subquery)`
    QuantCmp { left: Scalar, op: CmpOp, quant: Quant, query: Box<Query> },
    /// `expr IS [NOT] NULL`
    IsNull { expr: Scalar, negated: bool },
    /// `expr [NOT] BETWEEN lo AND hi`
    Between { expr: Scalar, negated: bool, low: Scalar, high: Scalar },
    /// `TRUE` / `FALSE`
    Literal(bool),
}

impl Cond {
    pub fn and(self, other: Cond) -> Cond {
        Cond::And(Box::new(self), Box::new(other))
    }
    pub fn or(self, other: Cond) -> Cond {
        Cond::Or(Box::new(self), Box::new(other))
    }
    #[allow(clippy::should_implement_trait)] // DSL: ¬ builder, not std::ops::Not
    pub fn not(self) -> Cond {
        Cond::Not(Box::new(self))
    }
    pub fn cmp(left: Scalar, op: CmpOp, right: Scalar) -> Cond {
        Cond::Cmp { left, op, right }
    }
}

impl Query {
    /// Iterates over every `SELECT` block in the set-operation tree.
    pub fn select_blocks(&self) -> Vec<&SelectStmt> {
        let mut out = Vec::new();
        fn walk<'a>(q: &'a Query, out: &mut Vec<&'a SelectStmt>) {
            match q {
                Query::Select(s) => out.push(s),
                Query::SetOp { left, right, .. } => {
                    walk(left, out);
                    walk(right, out);
                }
            }
        }
        walk(self, &mut out);
        out
    }

    /// Counts SELECT blocks at any nesting depth, including subqueries —
    /// a crude size metric used by benchmarks and the pattern module.
    pub fn block_count(&self) -> usize {
        fn in_cond(c: &Cond) -> usize {
            match c {
                Cond::And(a, b) | Cond::Or(a, b) => in_cond(a) + in_cond(b),
                Cond::Not(a) => in_cond(a),
                Cond::Exists { query, .. }
                | Cond::InSubquery { query, .. }
                | Cond::QuantCmp { query, .. } => query.block_count(),
                _ => 0,
            }
        }
        match self {
            Query::Select(s) => {
                1 + s.where_clause.as_ref().map_or(0, in_cond)
            }
            Query::SetOp { left, right, .. } => left.block_count() + right.block_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_name() {
        assert_eq!(TableRef::new("Sailor").effective_name(), "Sailor");
        assert_eq!(TableRef::aliased("Sailor", "S").effective_name(), "S");
    }

    #[test]
    fn block_count_counts_subqueries() {
        let inner = Query::Select(SelectStmt {
            distinct: false,
            items: vec![SelectItem::Wildcard],
            from: vec![TableRef::new("Boat")],
            where_clause: None,
        });
        let outer = Query::Select(SelectStmt {
            distinct: true,
            items: vec![SelectItem::Wildcard],
            from: vec![TableRef::new("Sailor")],
            where_clause: Some(Cond::Exists { negated: true, query: Box::new(inner) }),
        });
        assert_eq!(outer.block_count(), 2);
    }
}
