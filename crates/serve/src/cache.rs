//! The **prepared-plan cache**: parsing + planning amortized across a
//! resident server's lifetime.
//!
//! Keys are `(db name, db generation, language, engine family, opt
//! config, query text)` — the generation component means a catalog
//! mutation (load / insert / drop + reload) invalidates every cached
//! plan for that database *by construction*: the old entries simply
//! stop being looked up and age out of the LRU. [`PlanCache::purge_db`]
//! additionally drops them eagerly on mutation so a hot server doesn't
//! carry dead plans until capacity pressure evicts them.
//!
//! Physical plans are immutable once built, so entries hand out
//! `Arc`s and concurrent requests share one plan without copying.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use relviz_datalog::Program;
use relviz_exec::{Engine, FixpointPlan, OptConfig, PhysPlan};

/// Which front-end language produced the plan (part of the cache key:
/// the same text could be valid SQL and TRC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lang {
    Sql,
    Trc,
    Datalog,
}

/// A fully keyed cache entry address.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    pub db: String,
    pub generation: u64,
    pub lang: Lang,
    /// [`Engine::name`] — Indexed and Parallel share plans (the
    /// parallel runtime executes the same [`PhysPlan`]s), Reference
    /// never reaches the cache.
    pub engine: &'static str,
    pub reorder: bool,
    pub magic: bool,
    pub query: String,
}

impl PlanKey {
    pub fn new(
        db: &str,
        generation: u64,
        lang: Lang,
        engine: Engine,
        cfg: OptConfig,
        query: &str,
    ) -> PlanKey {
        PlanKey {
            db: db.to_string(),
            generation,
            lang,
            engine: engine.name(),
            reorder: cfg.reorder,
            magic: cfg.magic,
            query: query.to_string(),
        }
    }
}

/// A prepared, immutable, shareable plan.
#[derive(Clone)]
pub enum Prepared {
    /// A one-shot physical plan (SQL and TRC requests).
    Plan(Arc<PhysPlan>),
    /// A stratified fixpoint plan plus the predicate the request
    /// projects out of the fixpoint result. When the magic-sets
    /// transform fired, `plan` is the *transformed* program's plan and
    /// `program` keeps the original for the defensive untransformed
    /// fallback (mirroring `eval_datalog_with`).
    Fixpoint { plan: Arc<FixpointPlan>, query_pred: String, program: Arc<Program> },
}

struct Slot {
    prepared: Prepared,
    last_used: u64,
}

/// Point-in-time cache counters (exposed over the wire in `stats`
/// frames and pinned by the invalidation tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub len: usize,
    pub hits: u64,
    pub misses: u64,
}

struct CacheState {
    map: HashMap<PlanKey, Slot>,
    tick: u64,
    hits: u64,
    misses: u64,
}

/// A bounded LRU of prepared plans.
pub struct PlanCache {
    state: Mutex<CacheState>,
    cap: usize,
}

impl PlanCache {
    /// Default capacity: plenty for a query suite, small enough that a
    /// pathological client cycling unique query texts stays bounded.
    pub const DEFAULT_CAP: usize = 512;

    pub fn new(cap: usize) -> PlanCache {
        PlanCache {
            state: Mutex::new(CacheState { map: HashMap::new(), tick: 0, hits: 0, misses: 0 }),
            cap: cap.max(1),
        }
    }

    /// Looks up `key`, counting a hit or a miss.
    pub fn get(&self, key: &PlanKey) -> Option<Prepared> {
        let mut state = self.state.lock();
        state.tick += 1;
        let tick = state.tick;
        match state.map.get_mut(key) {
            Some(slot) => {
                slot.last_used = tick;
                let prepared = slot.prepared.clone();
                state.hits += 1;
                Some(prepared)
            }
            None => {
                state.misses += 1;
                None
            }
        }
    }

    /// Inserts a freshly prepared plan, evicting the least recently
    /// used entry when full.
    pub fn put(&self, key: PlanKey, prepared: Prepared) {
        let mut state = self.state.lock();
        state.tick += 1;
        let tick = state.tick;
        if !state.map.contains_key(&key) && state.map.len() >= self.cap {
            if let Some(victim) = state
                .map
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| k.clone())
            {
                state.map.remove(&victim);
            }
        }
        state.map.insert(key, Slot { prepared, last_used: tick });
    }

    /// Eagerly drops every entry for a database, across generations —
    /// called on load / insert / drop so mutated catalogs don't hold
    /// dead plans until LRU pressure finds them.
    pub fn purge_db(&self, db: &str) -> usize {
        let mut state = self.state.lock();
        let before = state.map.len();
        state.map.retain(|k, _| k.db != db);
        before - state.map.len()
    }

    pub fn stats(&self) -> CacheStats {
        let state = self.state.lock();
        CacheStats { len: state.map.len(), hits: state.hits, misses: state.misses }
    }
}

impl Default for PlanCache {
    fn default() -> PlanCache {
        PlanCache::new(PlanCache::DEFAULT_CAP)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relviz_exec::plan_trc_with;
    use relviz_model::catalog::sailors_sample;
    use relviz_rc::trc_parse::parse_trc;

    fn prepared() -> Prepared {
        let db = sailors_sample();
        let q = parse_trc("{ s.sname | Sailor(s) }").expect("parses");
        let plan = plan_trc_with(&q, &db, OptConfig::optimized()).expect("plans");
        Prepared::Plan(Arc::new(plan))
    }

    fn key(db: &str, generation: u64, query: &str) -> PlanKey {
        PlanKey::new(db, generation, Lang::Trc, Engine::Indexed, OptConfig::optimized(), query)
    }

    #[test]
    fn hit_miss_accounting_and_generation_invalidation() {
        let cache = PlanCache::new(8);
        let k0 = key("default", 0, "q");
        assert!(cache.get(&k0).is_none());
        cache.put(k0.clone(), prepared());
        assert!(cache.get(&k0).is_some());
        // Same text, newer generation: a distinct key, so a miss —
        // generation bumps invalidate without any explicit flush.
        assert!(cache.get(&key("default", 1, "q")).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (1, 2, 1));
    }

    #[test]
    fn lru_eviction_is_bounded_and_keeps_the_warm_entry() {
        let cache = PlanCache::new(4);
        let warm = key("default", 0, "warm");
        cache.put(warm.clone(), prepared());
        for i in 0..32 {
            assert!(cache.get(&warm).is_some(), "warm entry evicted at i={i}");
            cache.put(key("default", 0, &format!("q{i}")), prepared());
        }
        assert!(cache.stats().len <= 4);
        assert!(cache.get(&warm).is_some());
    }

    #[test]
    fn purge_drops_only_the_named_db() {
        let cache = PlanCache::new(8);
        cache.put(key("a", 0, "q1"), prepared());
        cache.put(key("a", 1, "q2"), prepared());
        cache.put(key("b", 0, "q1"), prepared());
        assert_eq!(cache.purge_db("a"), 2);
        assert_eq!(cache.stats().len, 1);
        assert!(cache.get(&key("b", 0, "q1")).is_some());
    }
}
