//! `relviz serve` — the resident query service.
//!
//! One-shot `relviz run` pays parse + plan + index build on every
//! invocation; a visualization front-end asking for dozens of
//! per-query diagrams pays it dozens of times. This crate keeps the
//! engine resident instead:
//!
//! * [`catalog`] — named databases behind `Arc` snapshots with a
//!   monotone per-database generation counter; queries never block
//!   mutations and never observe half-applied ones.
//! * [`cache`] — a bounded LRU of prepared physical plans keyed on
//!   `(db, generation, lang, engine, opt config, query text)`, so a
//!   generation bump invalidates by construction.
//! * [`wire`] — `relviz-wire-v1`, a newline-delimited JSON protocol
//!   (with a vendored dependency-free parser), embedding the
//!   `relviz-stats-v1` EXPLAIN ANALYZE document for `analyze` requests.
//! * [`server`] — frame dispatch plus the `--stdio` and `--port N`
//!   transports; thread-per-connection, one shared [`Server`].
//!
//! Every request resolves its own optimizer configuration and parallel
//! width at construction — a long-lived process can't afford the
//! process-global toggles the one-shot CLI tolerated.

pub mod cache;
pub mod catalog;
pub mod server;
pub mod wire;

pub use cache::{CacheStats, Lang, PlanCache, PlanKey, Prepared};
pub use catalog::{Catalog, CatalogRow, Snapshot};
pub use server::{Server, ServerConfig};
pub use wire::{error_frame, escape, Json, WIRE_SCHEMA};
