//! The server's **catalog**: named databases held behind `Arc`s with a
//! monotone per-database generation counter.
//!
//! Every query takes a [`Snapshot`] — an `Arc` clone of the database
//! plus the generation it was taken at — so execution never holds the
//! catalog lock and never observes a half-applied mutation: loads,
//! inserts and drops swap the `Arc` under a write lock while in-flight
//! queries keep reading the snapshot they started with (the zero-copy
//! batch architecture makes the per-query scan materialization the only
//! copy that ever happens).
//!
//! Generations are **monotone per name for the life of the process**,
//! across drops and re-loads: the prepared-plan cache keys on
//! `(…, generation)`, and a generation that could regress would revive
//! stale plans.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use relviz_model::{Database, Relation};

/// A point-in-time view of one named database.
#[derive(Clone)]
pub struct Snapshot {
    pub db: Arc<Database>,
    pub generation: u64,
}

/// One catalog row in a listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogRow {
    pub name: String,
    pub generation: u64,
    pub relations: usize,
    pub tuples: usize,
}

#[derive(Default)]
struct CatalogState {
    dbs: HashMap<String, Snapshot>,
    /// Last generation ever assigned per name — survives drops so a
    /// re-loaded name continues monotonically.
    gens: HashMap<String, u64>,
}

/// The named-database catalog.
#[derive(Default)]
pub struct Catalog {
    state: RwLock<CatalogState>,
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Creates or replaces a database wholesale, bumping its
    /// generation. Returns the new generation.
    pub fn load(&self, name: &str, db: Database) -> u64 {
        let mut state = self.state.write();
        let generation = Self::next_gen(&mut state, name);
        state
            .dbs
            .insert(name.to_string(), Snapshot { db: Arc::new(db), generation });
        generation
    }

    /// Unions the relations of `fragment` into `name`'s database:
    /// existing relations (schemas must agree) receive the new tuples,
    /// new relations are added. Copy-on-write — in-flight snapshots are
    /// untouched. Returns the new generation.
    pub fn insert(&self, name: &str, fragment: &Database) -> Result<u64, String> {
        let mut state = self.state.write();
        let current = state
            .dbs
            .get(name)
            .ok_or_else(|| format!("unknown database `{name}`"))?;
        let mut next: Database = (*current.db).clone();
        for rel_name in fragment.names() {
            let incoming = fragment.relation(rel_name).map_err(|e| e.to_string())?;
            match next.relation(rel_name) {
                Ok(existing) => {
                    if existing.schema() != incoming.schema() {
                        return Err(format!(
                            "insert into `{rel_name}`: schema mismatch (existing {:?})",
                            existing.schema().attrs().iter().map(|a| &a.name).collect::<Vec<_>>()
                        ));
                    }
                    let mut merged: Relation = existing.clone();
                    for t in incoming.iter() {
                        merged.insert(t.clone()).map_err(|e| e.to_string())?;
                    }
                    next.set(rel_name.to_string(), merged);
                }
                Err(_) => next.set(rel_name.to_string(), incoming.clone()),
            }
        }
        let generation = Self::next_gen(&mut state, name);
        state
            .dbs
            .insert(name.to_string(), Snapshot { db: Arc::new(next), generation });
        Ok(generation)
    }

    /// Removes a database. Its generation counter is retained so a
    /// later re-load stays monotone. Returns whether it existed.
    pub fn drop_db(&self, name: &str) -> bool {
        self.state.write().dbs.remove(name).is_some()
    }

    /// The current snapshot of `name`, if loaded.
    pub fn get(&self, name: &str) -> Option<Snapshot> {
        self.state.read().dbs.get(name).cloned()
    }

    /// A sorted listing of every loaded database.
    pub fn list(&self) -> Vec<CatalogRow> {
        let state = self.state.read();
        let mut rows: Vec<CatalogRow> = state
            .dbs
            .iter()
            .map(|(name, snap)| CatalogRow {
                name: name.clone(),
                generation: snap.generation,
                relations: snap.db.len(),
                tuples: snap.db.total_tuples(),
            })
            .collect();
        rows.sort_by(|a, b| a.name.cmp(&b.name));
        rows
    }

    fn next_gen(state: &mut CatalogState, name: &str) -> u64 {
        let gen = state.gens.entry(name.to_string()).or_insert(0);
        let assigned = *gen;
        *gen += 1;
        assigned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relviz_model::catalog::sailors_sample;
    use relviz_model::text::parse_database;

    #[test]
    fn load_get_drop_roundtrip() {
        let cat = Catalog::new();
        assert!(cat.get("default").is_none());
        assert_eq!(cat.load("default", sailors_sample()), 0);
        let snap = cat.get("default").expect("loaded");
        assert_eq!(snap.generation, 0);
        assert!(snap.db.contains("Sailor"));
        assert!(cat.drop_db("default"));
        assert!(!cat.drop_db("default"));
        assert!(cat.get("default").is_none());
    }

    #[test]
    fn generations_are_monotone_across_reload_and_drop() {
        let cat = Catalog::new();
        assert_eq!(cat.load("g", sailors_sample()), 0);
        assert_eq!(cat.load("g", sailors_sample()), 1);
        assert!(cat.drop_db("g"));
        // A re-load after a drop must NOT restart at 0 — the plan cache
        // keys on (name, generation) and would revive stale plans.
        assert_eq!(cat.load("g", sailors_sample()), 2);
    }

    #[test]
    fn insert_is_copy_on_write_and_bumps_the_generation() {
        let cat = Catalog::new();
        cat.load("g", parse_database("relation R(a:int, b:int)\n1, 2\n").unwrap());
        let before = cat.get("g").expect("snapshot");
        let frag = parse_database("relation R(a:int, b:int)\n3, 4\n").unwrap();
        assert_eq!(cat.insert("g", &frag).expect("inserts"), 1);
        let after = cat.get("g").expect("snapshot");
        // The old snapshot is untouched; the new one has the union.
        assert_eq!(before.db.relation("R").unwrap().len(), 1);
        assert_eq!(after.db.relation("R").unwrap().len(), 2);
        assert_eq!(after.generation, 1);
        // New relations are added wholesale.
        let frag2 = parse_database("relation S(x:int)\n9\n").unwrap();
        cat.insert("g", &frag2).expect("adds S");
        assert!(cat.get("g").expect("snapshot").db.contains("S"));
    }

    #[test]
    fn insert_rejects_schema_mismatch_and_unknown_db() {
        let cat = Catalog::new();
        cat.load("g", parse_database("relation R(a:int)\n1\n").unwrap());
        let bad = parse_database("relation R(a:str)\n'x'\n").unwrap();
        assert!(cat.insert("g", &bad).is_err());
        assert!(cat.insert("nope", &bad).unwrap_err().contains("unknown database"));
    }

    #[test]
    fn listing_is_sorted_and_counts_tuples() {
        let cat = Catalog::new();
        cat.load("b", parse_database("relation R(a:int)\n1\n2\n").unwrap());
        cat.load("a", sailors_sample());
        let rows = cat.list();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "a");
        assert_eq!(rows[1].name, "b");
        assert_eq!(rows[1].tuples, 2);
        assert_eq!(rows[1].relations, 1);
    }
}
