//! `relviz-wire-v1` — the newline-delimited JSON protocol of the
//! resident server.
//!
//! One JSON object per line in both directions; no frame ever contains
//! a raw newline (embedded text rides in JSON strings, escaped).
//!
//! **Requests** (client → server):
//!
//! ```text
//! {"type":"query","id":1,"query":"SELECT …","lang":"sql"}       evaluate
//!     optional: "db" (default "default"), "engine" "exec"|"parallel"|
//!     "reference", "threads" N (parallel width; 0 = server default),
//!     "analyze" true (append a stats frame), "no_opt" true (disable the
//!     optimizer for this request only), "lang" "sql"|"trc"|"datalog"
//! {"type":"load","db":"g","text":"relation R(a:int, b:int)\n1, 2\n"}  create/replace
//! {"type":"insert","db":"g","text":"relation R(a:int, b:int)\n3, 4\n"} union rows in
//! {"type":"drop","db":"g"}                                      remove
//! {"type":"catalog"}                                            list databases
//! {"type":"ping"}                                               liveness
//! ```
//!
//! **Responses** (server → client):
//!
//! ```text
//! {"type":"hello","schema":"relviz-wire-v1",…}                  session greeting
//! {"type":"result","id":1,"db":"default","generation":0,"rows":2,
//!  "cached_plan":false,"body":"…rendered relation…"}            query answer
//! {"type":"stats","id":1,"stats_json":"…relviz-stats-v1…"}      after result, if analyze
//! {"type":"ok","op":"load","db":"g","generation":1}             catalog mutation
//! {"type":"catalog","databases":[{"name":…,"generation":…,…}]}  listing
//! {"type":"error","id":1,"message":"…"}                         any failure
//! {"type":"pong"}
//! ```
//!
//! The `body` of a `result` frame is byte-identical to what one-shot
//! `relviz run` prints for the same query on the same database — the
//! concurrent-determinism suite pins this against `Engine::Indexed`.
//! The `stats_json` payload of a `stats` frame is the exact
//! `relviz-stats-v1` document `relviz run --stats-json` writes,
//! embedded as one escaped JSON string so the frame stays one line.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The wire schema identifier.
pub const WIRE_SCHEMA: &str = "relviz-wire-v1";

/// A parsed JSON value — the minimal model the wire needs (numbers are
/// kept as `f64`; the protocol only carries small integers).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object; `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parses one complete JSON document (a wire frame).
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }
}

/// Escapes a string for embedding in a JSON document (and keeps every
/// frame one physical line: `\n` is escaped, never emitted raw).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A `{"type":"error", …}` frame.
pub fn error_frame(id: Option<u64>, message: &str) -> String {
    match id {
        Some(id) => {
            format!("{{\"type\":\"error\",\"id\":{id},\"message\":\"{}\"}}", escape(message))
        }
        None => format!("{{\"type\":\"error\",\"message\":\"{}\"}}", escape(message)),
    }
}

// ---------------------------------------------------------------------
// The recursive-descent parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", b as char, self.pos.saturating_sub(1)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected `{}` at offset {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(map)),
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = self
                            .bytes
                            .get(self.pos..self.pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        self.pos += 4;
                        // Surrogate pairs: the wire only embeds text we
                        // escaped ourselves (BMP + raw UTF-8), but
                        // accept pairs from well-behaved clients.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            if self.bytes.get(self.pos..self.pos + 2) == Some(b"\\u") {
                                let lo_hex = self
                                    .bytes
                                    .get(self.pos + 2..self.pos + 6)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .ok_or("truncated low surrogate")?;
                                let lo = u32::from_str_radix(lo_hex, 16)
                                    .map_err(|_| "bad low surrogate".to_string())?;
                                self.pos += 6;
                                0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                return Err("unpaired surrogate".to_string());
                            }
                        } else {
                            code
                        };
                        out.push(char::from_u32(c).ok_or("invalid code point")?);
                    }
                    other => {
                        return Err(format!("bad escape `\\{}`", other.map(|b| b as char).unwrap_or('?')))
                    }
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-assemble the UTF-8 sequence starting at `b`.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err("invalid UTF-8 in string".to_string()),
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or("truncated UTF-8 sequence")?;
                    let s =
                        std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8 in string")?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("invalid number `{text}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_query_frame() {
        let frame = r#"{"type":"query","id":7,"query":"SELECT S.sname FROM Sailor S","lang":"sql","analyze":true}"#;
        let v = Json::parse(frame).expect("parses");
        assert_eq!(v.get("type").and_then(Json::as_str), Some("query"));
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("analyze").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn escape_keeps_frames_single_line() {
        let multi = "relation R(a:int)\n1\n2\n";
        let escaped = escape(multi);
        assert!(!escaped.contains('\n'));
        let frame = format!("{{\"text\":\"{escaped}\"}}");
        let v = Json::parse(&frame).expect("round-trips");
        assert_eq!(v.get("text").and_then(Json::as_str), Some(multi));
    }

    #[test]
    fn roundtrips_escapes_and_unicode() {
        let s = "a \"quoted\" \\ backslash\ttab — λ";
        let frame = format!("{{\"s\":\"{}\"}}", escape(s));
        let v = Json::parse(&frame).expect("parses");
        assert_eq!(v.get("s").and_then(Json::as_str), Some(s));
        let v = Json::parse(r#"{"s":"é😀"}"#).expect("surrogates");
        assert_eq!(v.get("s").and_then(Json::as_str), Some("é😀"));
    }

    #[test]
    fn rejects_malformed_frames() {
        for bad in ["", "{", "{\"a\":}", "{\"a\":1} trailing", "[1,]", "{\"a\" 1}"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn numbers_and_nesting() {
        let v = Json::parse(r#"{"a":[1, -2.5, {"b":null}], "c":false}"#).expect("parses");
        let Some(Json::Arr(items)) = v.get("a") else { panic!("array") };
        assert_eq!(items[0], Json::Num(1.0));
        assert_eq!(items[1], Json::Num(-2.5));
        assert_eq!(items[2].get("b"), Some(&Json::Null));
        assert_eq!(v.get("c").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn error_frame_escapes_the_message() {
        let f = error_frame(Some(3), "bad \"query\"\nline2");
        assert!(!f.contains('\n'));
        let v = Json::parse(&f).expect("error frame is valid JSON");
        assert_eq!(v.get("type").and_then(Json::as_str), Some("error"));
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("message").and_then(Json::as_str), Some("bad \"query\"\nline2"));
    }
}
