//! The resident query server: frame dispatch, the stdio loop, and the
//! TCP accept loop.
//!
//! One [`Server`] owns the [`Catalog`] and the [`PlanCache`]; every
//! connection (or the single stdio stream) shares it behind an `Arc`.
//! A request never touches process-global state: its optimizer
//! configuration and parallel worker width are resolved *at request
//! construction* from frame fields falling back to server defaults —
//! the `RELVIZ_THREADS` environment variable is consulted exactly once,
//! when the server is built ([`Server::new`]).

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use relviz_exec::{
    eval_datalog_all_with, eval_datalog_analyzed_with, eval_fixpoint, eval_trc_analyzed_with,
    eval_trc_with, execute, execute_parallel, magic_transform, plan_datalog_with, plan_trc_with,
    resolve_threads, run_sql_analyzed_with, run_sql_with, Engine, OptConfig,
};
use relviz_model::text::parse_database;
use relviz_model::Relation;

use crate::cache::{Lang, PlanCache, PlanKey, Prepared};
use crate::catalog::{Catalog, Snapshot};
use crate::wire::{error_frame, escape, Json, WIRE_SCHEMA};

/// Server construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Default parallel worker width; `0` means *auto* (resolved from
    /// `RELVIZ_THREADS` / hardware **once**, at construction).
    pub threads: usize,
    /// Optimizer default for requests that don't say (the CLI's
    /// `--no-opt` lands here, instead of in a process global).
    pub default_opt: OptConfig,
    /// Prepared-plan cache capacity.
    pub cache_cap: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            threads: 0,
            default_opt: OptConfig::current(),
            cache_cap: PlanCache::DEFAULT_CAP,
        }
    }
}

/// The resident query service. See the [`wire`] module docs for the
/// `relviz-wire-v1` protocol it speaks.
pub struct Server {
    catalog: Catalog,
    cache: PlanCache,
    /// The resolved default parallel width — env was read once, here.
    threads: usize,
    default_opt: OptConfig,
}

impl Server {
    pub fn new(config: ServerConfig) -> Server {
        Server {
            catalog: Catalog::new(),
            cache: PlanCache::new(config.cache_cap),
            threads: resolve_threads(config.threads).max(1),
            default_opt: config.default_opt,
        }
    }

    /// The catalog, for preloading databases before serving.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The plan cache (tests pin invalidation through its counters).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.cache
    }

    /// The resolved default parallel width.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The session greeting, sent once per connection before any
    /// request is read.
    pub fn hello(&self) -> String {
        format!(
            "{{\"type\":\"hello\",\"schema\":\"{WIRE_SCHEMA}\",\"version\":\"{}\",\"threads\":{}}}",
            escape(env!("CARGO_PKG_VERSION")),
            self.threads
        )
    }

    /// Handles one request line, returning the response frames in
    /// order. Blank lines produce nothing; every failure produces
    /// exactly one `error` frame.
    pub fn handle_line(&self, line: &str) -> Vec<String> {
        let line = line.trim();
        if line.is_empty() {
            return Vec::new();
        }
        let frame = match Json::parse(line) {
            Ok(f) => f,
            Err(e) => return vec![error_frame(None, &format!("malformed frame: {e}"))],
        };
        let id = frame.get("id").and_then(Json::as_u64);
        let Some(ty) = frame.get("type").and_then(Json::as_str) else {
            return vec![error_frame(id, "frame has no `type`")];
        };
        let result = match ty {
            "query" => self.handle_query(id, &frame),
            "load" => self.handle_load(id, &frame),
            "insert" => self.handle_insert(id, &frame),
            "drop" => self.handle_drop(id, &frame),
            "catalog" => Ok(vec![self.catalog_frame(id)]),
            "ping" => Ok(vec![with_id("pong", id, String::new())]),
            other => Err(format!("unknown frame type `{other}`")),
        };
        result.unwrap_or_else(|message| vec![error_frame(id, &message)])
    }

    // -- query ---------------------------------------------------------

    fn handle_query(&self, id: Option<u64>, frame: &Json) -> Result<Vec<String>, String> {
        let req = QueryRequest::from_frame(frame, self.threads, self.default_opt)?;
        let snap = self
            .catalog
            .get(&req.db)
            .ok_or_else(|| format!("unknown database `{}`", req.db))?;
        if req.analyze {
            self.run_analyzed(id, &req, &snap)
        } else {
            let (rel, cached) = self.run_plain(&req, &snap)?;
            Ok(vec![result_frame(id, &req.db, snap.generation, cached, &rel)])
        }
    }

    /// The non-analyze path: physical engines go through the plan
    /// cache, the reference oracle never does (it has no plan).
    fn run_plain(&self, req: &QueryRequest, snap: &Snapshot) -> Result<(Relation, bool), String> {
        let db = &*snap.db;
        if req.engine == Engine::Reference {
            let rel = match req.lang {
                Lang::Sql => run_sql_with(req.engine, &req.text, db, req.cfg),
                Lang::Trc => {
                    let q = relviz_rc::trc_parse::parse_trc(&req.text).map_err(str_of)?;
                    eval_trc_with(req.engine, &q, db, req.cfg)
                }
                Lang::Datalog => {
                    let prog = relviz_datalog::parse::parse_program(&req.text).map_err(str_of)?;
                    relviz_exec::eval_datalog_with(req.engine, &prog, db, req.cfg)
                }
            }
            .map_err(str_of)?;
            return Ok((rel, false));
        }

        let key =
            PlanKey::new(&req.db, snap.generation, req.lang, req.engine, req.cfg, &req.text);
        let (prepared, cached) = match self.cache.get(&key) {
            Some(p) => (p, true),
            None => {
                let p = self.prepare(req, snap)?;
                self.cache.put(key, p.clone());
                (p, false)
            }
        };
        let rel = self.execute_prepared(&prepared, req, snap)?;
        Ok((rel, cached))
    }

    fn prepare(&self, req: &QueryRequest, snap: &Snapshot) -> Result<Prepared, String> {
        let db = &*snap.db;
        match req.lang {
            Lang::Sql => {
                let trc = relviz_rc::from_sql::parse_sql_to_trc(&req.text, db).map_err(str_of)?;
                let plan = plan_trc_with(&trc, db, req.cfg).map_err(str_of)?;
                Ok(Prepared::Plan(Arc::new(plan)))
            }
            Lang::Trc => {
                let q = relviz_rc::trc_parse::parse_trc(&req.text).map_err(str_of)?;
                let plan = plan_trc_with(&q, db, req.cfg).map_err(str_of)?;
                Ok(Prepared::Plan(Arc::new(plan)))
            }
            Lang::Datalog => {
                let prog = relviz_datalog::parse::parse_program(&req.text).map_err(str_of)?;
                // Mirror `eval_datalog_with`: with the optimizer on,
                // prefer the magic-transformed program; keep the
                // original for the defensive fallback.
                if req.cfg.magic {
                    if let Some(t) = magic_transform(&prog) {
                        if let Ok(plan) = plan_datalog_with(&t, db, req.cfg) {
                            return Ok(Prepared::Fixpoint {
                                plan: Arc::new(plan),
                                query_pred: t.query.clone(),
                                program: Arc::new(prog),
                            });
                        }
                    }
                }
                let plan = plan_datalog_with(&prog, db, req.cfg).map_err(str_of)?;
                let query_pred = prog.query.clone();
                Ok(Prepared::Fixpoint { plan: Arc::new(plan), query_pred, program: Arc::new(prog) })
            }
        }
    }

    fn execute_prepared(
        &self,
        prepared: &Prepared,
        req: &QueryRequest,
        snap: &Snapshot,
    ) -> Result<Relation, String> {
        let db = &*snap.db;
        match prepared {
            Prepared::Plan(plan) => match req.engine {
                Engine::Indexed => execute(plan, db).map_err(str_of),
                Engine::Parallel(t) => execute_parallel(plan, db, t).map_err(str_of),
                Engine::Reference => Err("reference engine has no prepared plan".to_string()),
            },
            Prepared::Fixpoint { plan, query_pred, program } => {
                let mut all = match req.engine {
                    Engine::Indexed => eval_fixpoint(plan, db).map_err(str_of)?,
                    Engine::Parallel(t) => {
                        relviz_exec::parallel::eval_fixpoint_parallel(plan, db, t)
                            .map_err(str_of)?
                    }
                    Engine::Reference => {
                        return Err("reference engine has no prepared plan".to_string())
                    }
                };
                match all.remove(query_pred) {
                    Some(rel) => Ok(rel),
                    // The magic-planned program didn't derive the query
                    // predicate — fall back to the untransformed
                    // program, exactly like `eval_datalog_with`.
                    None => {
                        let mut all = eval_datalog_all_with(req.engine, program, db, req.cfg)
                            .map_err(str_of)?;
                        all.remove(&program.query).ok_or_else(|| {
                            format!("query predicate `{}` was never derived", program.query)
                        })
                    }
                }
            }
        }
    }

    /// The analyze path: instrumentation is per-run, so it bypasses the
    /// plan cache and emits a `stats` frame after the `result` frame.
    fn run_analyzed(
        &self,
        id: Option<u64>,
        req: &QueryRequest,
        snap: &Snapshot,
    ) -> Result<Vec<String>, String> {
        let db = &*snap.db;
        let (rel, report) = match req.lang {
            Lang::Sql => run_sql_analyzed_with(req.engine, &req.text, db, req.cfg),
            Lang::Trc => {
                let q = relviz_rc::trc_parse::parse_trc(&req.text).map_err(str_of)?;
                eval_trc_analyzed_with(req.engine, &q, db, req.cfg)
            }
            Lang::Datalog => {
                let prog = relviz_datalog::parse::parse_program(&req.text).map_err(str_of)?;
                eval_datalog_analyzed_with(req.engine, &prog, db, req.cfg)
            }
        }
        .map_err(str_of)?;
        Ok(vec![
            result_frame(id, &req.db, snap.generation, false, &rel),
            with_id(
                "stats",
                id,
                format!(",\"stats_schema\":\"relviz-stats-v1\",\"stats_json\":\"{}\"", escape(&report.to_json())),
            ),
        ])
    }

    // -- catalog mutations ---------------------------------------------

    fn handle_load(&self, id: Option<u64>, frame: &Json) -> Result<Vec<String>, String> {
        let db = db_name(frame)?;
        let text = text_field(frame)?;
        let parsed = parse_database(text).map_err(str_of)?;
        let generation = self.catalog.load(db, parsed);
        self.cache.purge_db(db);
        Ok(vec![ok_frame(id, "load", db, Some(generation))])
    }

    fn handle_insert(&self, id: Option<u64>, frame: &Json) -> Result<Vec<String>, String> {
        let db = db_name(frame)?;
        let text = text_field(frame)?;
        let fragment = parse_database(text).map_err(str_of)?;
        let generation = self.catalog.insert(db, &fragment)?;
        self.cache.purge_db(db);
        Ok(vec![ok_frame(id, "insert", db, Some(generation))])
    }

    fn handle_drop(&self, id: Option<u64>, frame: &Json) -> Result<Vec<String>, String> {
        let db = db_name(frame)?;
        if !self.catalog.drop_db(db) {
            return Err(format!("unknown database `{db}`"));
        }
        self.cache.purge_db(db);
        Ok(vec![ok_frame(id, "drop", db, None)])
    }

    fn catalog_frame(&self, id: Option<u64>) -> String {
        let mut body = String::from(",\"databases\":[");
        for (i, row) in self.catalog.list().iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&format!(
                "{{\"name\":\"{}\",\"generation\":{},\"relations\":{},\"tuples\":{}}}",
                escape(&row.name),
                row.generation,
                row.relations,
                row.tuples
            ));
        }
        let cache = self.cache.stats();
        body.push_str(&format!(
            "],\"plan_cache\":{{\"len\":{},\"hits\":{},\"misses\":{}}}",
            cache.len, cache.hits, cache.misses
        ));
        with_id("catalog", id, body)
    }

    // -- transports ----------------------------------------------------

    /// Serves one connection: greets, then answers line-by-line until
    /// EOF. Both the stdio and TCP modes funnel through here.
    pub fn serve_connection<R: BufRead, W: Write>(
        &self,
        reader: R,
        writer: &mut W,
    ) -> io::Result<()> {
        writeln!(writer, "{}", self.hello())?;
        writer.flush()?;
        for line in reader.lines() {
            for response in self.handle_line(&line?) {
                writeln!(writer, "{response}")?;
            }
            writer.flush()?;
        }
        Ok(())
    }

    /// `relviz serve --stdio`: one session over stdin/stdout.
    pub fn serve_stdio(&self) -> io::Result<()> {
        let stdin = io::stdin();
        let stdout = io::stdout();
        self.serve_connection(stdin.lock(), &mut stdout.lock())
    }

    /// `relviz serve --port N`: thread-per-connection accept loop.
    /// Runs until the listener errors (i.e. effectively forever).
    pub fn serve_listener(self: &Arc<Self>, listener: TcpListener) -> io::Result<()> {
        for conn in listener.incoming() {
            let stream: TcpStream = conn?;
            let server = Arc::clone(self);
            std::thread::spawn(move || {
                let Ok(read_half) = stream.try_clone() else {
                    return;
                };
                let mut writer = stream;
                let _ = server.serve_connection(BufReader::new(read_half), &mut writer);
            });
        }
        Ok(())
    }
}

/// A fully resolved query request: everything per-request, nothing
/// global. Built once per frame — the only place defaults (server
/// width, server optimizer config) are consulted.
struct QueryRequest {
    db: String,
    text: String,
    lang: Lang,
    engine: Engine,
    cfg: OptConfig,
    analyze: bool,
}

impl QueryRequest {
    fn from_frame(
        frame: &Json,
        server_threads: usize,
        default_opt: OptConfig,
    ) -> Result<QueryRequest, String> {
        let text = frame
            .get("query")
            .and_then(Json::as_str)
            .ok_or("query frame has no `query` text")?
            .to_string();
        let lang = match frame.get("lang").and_then(Json::as_str).unwrap_or("sql") {
            "sql" => Lang::Sql,
            "trc" => Lang::Trc,
            "datalog" => Lang::Datalog,
            other => return Err(format!("unknown lang `{other}`")),
        };
        // The parallel width is pinned here: an explicit `threads`
        // field wins, else the width the server resolved at startup.
        // `resolve_threads` is never called again downstream because
        // the payload is always >= 1.
        let width = match frame.get("threads").and_then(Json::as_u64) {
            Some(t) if t > 0 => t as usize,
            _ => server_threads,
        };
        let engine = match frame.get("engine").and_then(Json::as_str).unwrap_or("exec") {
            "exec" | "indexed" => Engine::Indexed,
            "parallel" => Engine::Parallel(width),
            "reference" => Engine::Reference,
            other => return Err(format!("unknown engine `{other}`")),
        };
        let mut cfg = default_opt;
        if frame.get("no_opt").and_then(Json::as_bool) == Some(true) {
            cfg = OptConfig::unoptimized();
        }
        if frame.get("optimize").and_then(Json::as_bool) == Some(true) {
            cfg = OptConfig::optimized();
        }
        let analyze = frame.get("analyze").and_then(Json::as_bool) == Some(true);
        Ok(QueryRequest {
            db: db_name(frame)?.to_string(),
            text,
            lang,
            engine,
            cfg,
            analyze,
        })
    }
}

// -- frame builders ----------------------------------------------------

fn db_name(frame: &Json) -> Result<&str, String> {
    match frame.get("db") {
        None => Ok("default"),
        Some(v) => v.as_str().ok_or_else(|| "`db` must be a string".to_string()),
    }
}

fn text_field(frame: &Json) -> Result<&str, String> {
    frame
        .get("text")
        .and_then(Json::as_str)
        .ok_or_else(|| "frame has no `text`".to_string())
}

/// `{"type":"<ty>","id":N<body>}` with the id omitted when absent;
/// `body` must start with `,` or be empty.
fn with_id(ty: &str, id: Option<u64>, body: String) -> String {
    match id {
        Some(id) => format!("{{\"type\":\"{ty}\",\"id\":{id}{body}}}"),
        None => format!("{{\"type\":\"{ty}\"{body}}}"),
    }
}

fn result_frame(id: Option<u64>, db: &str, generation: u64, cached: bool, rel: &Relation) -> String {
    with_id(
        "result",
        id,
        format!(
            ",\"db\":\"{}\",\"generation\":{generation},\"rows\":{},\"cached_plan\":{cached},\"body\":\"{}\"",
            escape(db),
            rel.len(),
            escape(&format!("{rel}"))
        ),
    )
}

fn ok_frame(id: Option<u64>, op: &str, db: &str, generation: Option<u64>) -> String {
    let mut body = format!(",\"op\":\"{op}\",\"db\":\"{}\"", escape(db));
    if let Some(generation) = generation {
        body.push_str(&format!(",\"generation\":{generation}"));
    }
    with_id("ok", id, body)
}

fn str_of(e: impl std::fmt::Display) -> String {
    e.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use relviz_model::catalog::sailors_sample;

    fn server() -> Server {
        let s = Server::new(ServerConfig { threads: 2, ..ServerConfig::default() });
        s.catalog().load("default", sailors_sample());
        s
    }

    fn one(server: &Server, line: &str) -> Json {
        let frames = server.handle_line(line);
        assert_eq!(frames.len(), 1, "expected one frame, got {frames:?}");
        Json::parse(&frames[0]).expect("response is valid JSON")
    }

    #[test]
    fn hello_identifies_the_wire_schema() {
        let s = server();
        let hello = Json::parse(&s.hello()).expect("hello parses");
        assert_eq!(hello.get("schema").and_then(Json::as_str), Some(WIRE_SCHEMA));
        assert_eq!(hello.get("threads").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn query_result_matches_one_shot_execution() {
        let s = server();
        let sql = "SELECT S.sname FROM Sailor S WHERE S.rating > 7";
        let resp = one(&s, &format!(r#"{{"type":"query","id":1,"query":"{sql}"}}"#));
        assert_eq!(resp.get("type").and_then(Json::as_str), Some("result"));
        let body = resp.get("body").and_then(Json::as_str).expect("body");
        let oneshot =
            run_sql_with(Engine::Indexed, sql, &sailors_sample(), OptConfig::current())
                .expect("one-shot evaluates");
        assert_eq!(body, format!("{oneshot}"), "server body must be byte-identical");
        assert_eq!(resp.get("cached_plan").and_then(Json::as_bool), Some(false));
        // Second time around the plan comes from the cache — same body.
        let again = one(&s, &format!(r#"{{"type":"query","id":2,"query":"{sql}"}}"#));
        assert_eq!(again.get("cached_plan").and_then(Json::as_bool), Some(true));
        assert_eq!(again.get("body").and_then(Json::as_str), Some(body));
    }

    #[test]
    fn mutation_bumps_generation_and_invalidates_cached_plans() {
        let s = server();
        let q = r#"{"type":"query","id":1,"query":"SELECT S.sname FROM Sailor S"}"#;
        assert_eq!(one(&s, q).get("cached_plan").and_then(Json::as_bool), Some(false));
        assert_eq!(one(&s, q).get("cached_plan").and_then(Json::as_bool), Some(true));
        // Insert a sailor: generation bumps, the cached plan is dead.
        let ins = one(
            &s,
            r#"{"type":"insert","id":2,"db":"default","text":"relation Sailor(sid:int, sname:str, rating:int, age:float)\n99, zorba, 10, 33.0\n"}"#,
        );
        assert_eq!(ins.get("type").and_then(Json::as_str), Some("ok"));
        assert_eq!(ins.get("generation").and_then(Json::as_u64), Some(1));
        let resp = one(&s, q);
        assert_eq!(resp.get("cached_plan").and_then(Json::as_bool), Some(false));
        assert_eq!(resp.get("generation").and_then(Json::as_u64), Some(1));
        let body = resp.get("body").and_then(Json::as_str).expect("body");
        assert!(body.contains("zorba"), "post-insert result must see the new row:\n{body}");
    }

    #[test]
    fn analyze_appends_a_stats_frame() {
        let s = server();
        let frames = s.handle_line(
            r#"{"type":"query","id":5,"query":"SELECT S.sname FROM Sailor S","analyze":true}"#,
        );
        assert_eq!(frames.len(), 2, "{frames:?}");
        let stats = Json::parse(&frames[1]).expect("stats frame parses");
        assert_eq!(stats.get("type").and_then(Json::as_str), Some("stats"));
        let payload = stats.get("stats_json").and_then(Json::as_str).expect("stats_json");
        assert!(payload.contains("relviz-stats-v1"), "embedded relviz-stats-v1 document");
        assert!(!frames[1].contains('\n'), "frames stay single-line");
    }

    #[test]
    fn errors_are_frames_not_panics() {
        let s = server();
        for (line, needle) in [
            ("not json", "malformed"),
            (r#"{"id":1}"#, "no `type`"),
            (r#"{"type":"nope","id":1}"#, "unknown frame type"),
            (r#"{"type":"query","id":1,"query":"SELECT","lang":"sql"}"#, ""),
            (r#"{"type":"query","id":1,"query":"{ s | Sailor(s) }","db":"missing"}"#, "unknown database"),
            (r#"{"type":"drop","id":1,"db":"missing"}"#, "unknown database"),
        ] {
            let resp = one(&s, line);
            assert_eq!(resp.get("type").and_then(Json::as_str), Some("error"), "{line}");
            let msg = resp.get("message").and_then(Json::as_str).unwrap_or_default();
            assert!(msg.contains(needle), "`{msg}` should mention `{needle}`");
        }
    }

    #[test]
    fn ping_catalog_load_drop_roundtrip() {
        let s = server();
        assert_eq!(
            one(&s, r#"{"type":"ping","id":9}"#).get("type").and_then(Json::as_str),
            Some("pong")
        );
        one(&s, r#"{"type":"load","id":1,"db":"tiny","text":"relation R(a:int)\n1\n2\n"}"#);
        let cat = one(&s, r#"{"type":"catalog","id":2}"#);
        let Some(Json::Arr(dbs)) = cat.get("databases") else { panic!("databases array") };
        assert_eq!(dbs.len(), 2);
        assert_eq!(dbs[1].get("name").and_then(Json::as_str), Some("tiny"));
        assert_eq!(dbs[1].get("tuples").and_then(Json::as_u64), Some(2));
        one(&s, r#"{"type":"drop","id":3,"db":"tiny"}"#);
        let cat = one(&s, r#"{"type":"catalog","id":4}"#);
        let Some(Json::Arr(dbs)) = cat.get("databases") else { panic!("databases array") };
        assert_eq!(dbs.len(), 1);
    }

    #[test]
    fn serve_connection_greets_then_answers() {
        let s = server();
        let input = b"{\"type\":\"ping\",\"id\":1}\n" as &[u8];
        let mut out = Vec::new();
        s.serve_connection(input, &mut out).expect("serves");
        let text = String::from_utf8(out).expect("utf8");
        let mut lines = text.lines();
        let hello = Json::parse(lines.next().expect("hello line")).expect("parses");
        assert_eq!(hello.get("type").and_then(Json::as_str), Some("hello"));
        let pong = Json::parse(lines.next().expect("pong line")).expect("parses");
        assert_eq!(pong.get("type").and_then(Json::as_str), Some("pong"));
    }
}
