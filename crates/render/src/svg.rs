//! SVG 1.1 backend, written from scratch (no dependencies).

use std::fmt::Write as _;

use crate::scene::{Anchor, Item, Scene, TextStyle};

/// Serializes a scene as a standalone SVG document.
pub fn to_svg(scene: &Scene) -> String {
    let mut out = String::with_capacity(1024 + scene.items.len() * 128);
    let _ = write!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}">"#,
        w = fmt_num(scene.width),
        h = fmt_num(scene.height),
    );
    out.push('\n');
    // Arrowhead marker (only referenced when needed, harmless otherwise).
    out.push_str(
        r#"<defs><marker id="arrow" viewBox="0 0 10 10" refX="9" refY="5" markerWidth="7" markerHeight="7" orient="auto-start-reverse"><path d="M 0 0 L 10 5 L 0 10 z"/></marker></defs>"#,
    );
    out.push('\n');
    for item in &scene.items {
        render_item(&mut out, item);
        out.push('\n');
    }
    out.push_str("</svg>\n");
    out
}

fn fmt_num(x: f64) -> String {
    if x.fract() == 0.0 {
        format!("{}", x as i64)
    } else {
        format!("{x:.2}")
    }
}

fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

fn dash_attr(dashed: bool) -> &'static str {
    if dashed {
        r#" stroke-dasharray="5,4""#
    } else {
        ""
    }
}

fn render_item(out: &mut String, item: &Item) {
    match item {
        Item::Rect { x, y, w, h, rx, stroke, fill, stroke_width, dashed } => {
            let _ = write!(
                out,
                r#"<rect x="{}" y="{}" width="{}" height="{}" rx="{}" stroke="{}" fill="{}" stroke-width="{}"{}/>"#,
                fmt_num(*x),
                fmt_num(*y),
                fmt_num(*w),
                fmt_num(*h),
                fmt_num(*rx),
                escape(stroke),
                escape(fill),
                fmt_num(*stroke_width),
                dash_attr(*dashed),
            );
        }
        Item::Ellipse { cx, cy, rx, ry, stroke, fill, stroke_width, dashed } => {
            let _ = write!(
                out,
                r#"<ellipse cx="{}" cy="{}" rx="{}" ry="{}" stroke="{}" fill="{}" stroke-width="{}"{}/>"#,
                fmt_num(*cx),
                fmt_num(*cy),
                fmt_num(*rx),
                fmt_num(*ry),
                escape(stroke),
                escape(fill),
                fmt_num(*stroke_width),
                dash_attr(*dashed),
            );
        }
        Item::Polyline { points, stroke, stroke_width, dashed, arrow } => {
            let pts: Vec<String> =
                points.iter().map(|(x, y)| format!("{},{}", fmt_num(*x), fmt_num(*y))).collect();
            let marker = if *arrow { r#" marker-end="url(#arrow)""# } else { "" };
            let _ = write!(
                out,
                r#"<polyline points="{}" fill="none" stroke="{}" stroke-width="{}"{}{}/>"#,
                pts.join(" "),
                escape(stroke),
                fmt_num(*stroke_width),
                dash_attr(*dashed),
                marker,
            );
        }
        Item::Text { x, y, text, style } => {
            let TextStyle { size, bold, italic, monospace, color, anchor } = style;
            let anchor = match anchor {
                Anchor::Start => "start",
                Anchor::Middle => "middle",
                Anchor::End => "end",
            };
            let family = if *monospace { "monospace" } else { "Helvetica, Arial, sans-serif" };
            let weight = if *bold { " font-weight=\"bold\"" } else { "" };
            let styl = if *italic { " font-style=\"italic\"" } else { "" };
            let _ = write!(
                out,
                r#"<text x="{}" y="{}" font-size="{}" font-family="{}" fill="{}" text-anchor="{}"{}{}>{}</text>"#,
                fmt_num(*x),
                fmt_num(*y),
                fmt_num(*size),
                family,
                escape(color),
                anchor,
                weight,
                styl,
                escape(text),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_valid_skeleton() {
        let mut s = Scene::new(100.0, 50.0);
        s.rect(1.0, 2.0, 30.0, 20.0).text(5.0, 15.0, "a<b & c");
        let svg = to_svg(&s);
        assert!(svg.starts_with("<svg xmlns="));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains(r#"<rect x="1" y="2" width="30" height="20""#));
        assert!(svg.contains("a&lt;b &amp; c"));
    }

    #[test]
    fn arrows_reference_marker() {
        let mut s = Scene::new(10.0, 10.0);
        s.arrow(vec![(0.0, 0.0), (5.0, 5.0)]);
        let svg = to_svg(&s);
        assert!(svg.contains(r##"marker-end="url(#arrow)""##));
        assert!(svg.contains(r#"<defs><marker id="arrow""#));
    }

    #[test]
    fn dashes_and_ellipses() {
        let mut s = Scene::new(10.0, 10.0);
        s.styled_rect(0.0, 0.0, 5.0, 5.0, 2.0, "#ff0000", "#eeeeee", 2.0, true);
        s.ellipse(5.0, 5.0, 3.0, 2.0);
        let svg = to_svg(&s);
        assert!(svg.contains("stroke-dasharray"));
        assert!(svg.contains("<ellipse"));
        assert!(svg.contains(r#"rx="2""#));
    }

    #[test]
    fn numbers_are_compact() {
        let mut s = Scene::new(10.0, 10.0);
        s.rect(1.5, 2.25, 3.0, 4.0);
        let svg = to_svg(&s);
        assert!(svg.contains(r#"x="1.50""#) || svg.contains(r#"x="1.5""#));
        assert!(svg.contains(r#"width="3""#));
    }
}
