//! # relviz-render
//!
//! Rendering substrate: a small retained-mode [`Scene`] graph with two
//! from-scratch backends — [`svg`] (standards-compliant SVG 1.1 text) and
//! [`ascii`] (Unicode box-drawing rasterizer for terminals and golden
//! tests).
//!
//! Diagram builders in `relviz-diagrams` emit scenes; they never format
//! SVG themselves, so every formalism gains both backends for free.

pub mod ascii;
pub mod scene;
pub mod svg;

pub use scene::{Anchor, Item, Scene, TextStyle};
