//! The scene graph: a flat display list of geometric primitives.
//!
//! Coordinates are in abstract units (1 unit = 1 SVG px); the origin is the
//! top-left corner, y grows downward (SVG convention).

/// Horizontal anchoring of text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Anchor {
    #[default]
    Start,
    Middle,
    End,
}

/// Text styling.
#[derive(Debug, Clone, PartialEq)]
pub struct TextStyle {
    pub size: f64,
    pub bold: bool,
    pub italic: bool,
    pub monospace: bool,
    pub color: String,
    pub anchor: Anchor,
}

impl Default for TextStyle {
    fn default() -> Self {
        TextStyle {
            size: 12.0,
            bold: false,
            italic: false,
            monospace: false,
            color: "#000000".to_string(),
            anchor: Anchor::Start,
        }
    }
}

/// A drawable primitive.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    Rect {
        x: f64,
        y: f64,
        w: f64,
        h: f64,
        /// Corner radius (0 = sharp).
        rx: f64,
        stroke: String,
        fill: String,
        stroke_width: f64,
        dashed: bool,
    },
    Ellipse {
        cx: f64,
        cy: f64,
        rx: f64,
        ry: f64,
        stroke: String,
        fill: String,
        stroke_width: f64,
        dashed: bool,
    },
    /// Polyline through `points`; optional arrowhead at the last point.
    Polyline {
        points: Vec<(f64, f64)>,
        stroke: String,
        stroke_width: f64,
        dashed: bool,
        arrow: bool,
    },
    Text {
        x: f64,
        y: f64,
        text: String,
        style: TextStyle,
    },
}

/// A complete picture: canvas size plus display list (drawn in order).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Scene {
    pub width: f64,
    pub height: f64,
    pub items: Vec<Item>,
}

impl Scene {
    pub fn new(width: f64, height: f64) -> Self {
        Scene { width, height, items: Vec::new() }
    }

    /// Estimated width of `text` at font size `size` (used for box sizing;
    /// the 0.62 factor approximates common sans-serif aspect ratios).
    pub fn text_width(text: &str, size: f64) -> f64 {
        text.chars().count() as f64 * size * 0.62
    }

    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64) -> &mut Self {
        self.items.push(Item::Rect {
            x,
            y,
            w,
            h,
            rx: 0.0,
            stroke: "#000000".into(),
            fill: "none".into(),
            stroke_width: 1.0,
            dashed: false,
        });
        self
    }

    /// Rectangle with full styling control.
    #[allow(clippy::too_many_arguments)]
    pub fn styled_rect(
        &mut self,
        x: f64,
        y: f64,
        w: f64,
        h: f64,
        rx: f64,
        stroke: &str,
        fill: &str,
        stroke_width: f64,
        dashed: bool,
    ) -> &mut Self {
        self.items.push(Item::Rect {
            x,
            y,
            w,
            h,
            rx,
            stroke: stroke.into(),
            fill: fill.into(),
            stroke_width,
            dashed,
        });
        self
    }

    pub fn ellipse(&mut self, cx: f64, cy: f64, rx: f64, ry: f64) -> &mut Self {
        self.items.push(Item::Ellipse {
            cx,
            cy,
            rx,
            ry,
            stroke: "#000000".into(),
            fill: "none".into(),
            stroke_width: 1.0,
            dashed: false,
        });
        self
    }

    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64) -> &mut Self {
        self.items.push(Item::Polyline {
            points: vec![(x1, y1), (x2, y2)],
            stroke: "#000000".into(),
            stroke_width: 1.0,
            dashed: false,
            arrow: false,
        });
        self
    }

    pub fn arrow(&mut self, points: Vec<(f64, f64)>) -> &mut Self {
        self.items.push(Item::Polyline {
            points,
            stroke: "#000000".into(),
            stroke_width: 1.0,
            dashed: false,
            arrow: true,
        });
        self
    }

    pub fn text(&mut self, x: f64, y: f64, text: impl Into<String>) -> &mut Self {
        self.items.push(Item::Text { x, y, text: text.into(), style: TextStyle::default() });
        self
    }

    pub fn styled_text(
        &mut self,
        x: f64,
        y: f64,
        text: impl Into<String>,
        style: TextStyle,
    ) -> &mut Self {
        self.items.push(Item::Text { x, y, text: text.into(), style });
        self
    }

    /// Grows the canvas to fit all items (with a margin).
    pub fn fit(&mut self, margin: f64) {
        let mut maxx: f64 = 0.0;
        let mut maxy: f64 = 0.0;
        for item in &self.items {
            match item {
                Item::Rect { x, y, w, h, .. } => {
                    maxx = maxx.max(x + w);
                    maxy = maxy.max(y + h);
                }
                Item::Ellipse { cx, cy, rx, ry, .. } => {
                    maxx = maxx.max(cx + rx);
                    maxy = maxy.max(cy + ry);
                }
                Item::Polyline { points, .. } => {
                    for (x, y) in points {
                        maxx = maxx.max(*x);
                        maxy = maxy.max(*y);
                    }
                }
                Item::Text { x, y, text, style } => {
                    maxx = maxx.max(x + Scene::text_width(text, style.size));
                    maxy = maxy.max(*y);
                }
            }
        }
        self.width = self.width.max(maxx + margin);
        self.height = self.height.max(maxy + margin);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let mut s = Scene::new(100.0, 100.0);
        s.rect(0.0, 0.0, 10.0, 10.0).line(0.0, 0.0, 5.0, 5.0).text(1.0, 1.0, "hi");
        assert_eq!(s.items.len(), 3);
    }

    #[test]
    fn fit_grows_canvas() {
        let mut s = Scene::new(10.0, 10.0);
        s.rect(0.0, 0.0, 200.0, 50.0);
        s.fit(5.0);
        assert_eq!(s.width, 205.0);
        assert_eq!(s.height, 55.0);
    }

    #[test]
    fn fit_never_shrinks() {
        let mut s = Scene::new(500.0, 500.0);
        s.rect(0.0, 0.0, 10.0, 10.0);
        s.fit(5.0);
        assert_eq!(s.width, 500.0);
    }

    #[test]
    fn text_width_monotone() {
        assert!(Scene::text_width("abcdef", 12.0) > Scene::text_width("abc", 12.0));
    }
}
