//! ASCII/Unicode rasterizer: renders a [`Scene`] into a character grid
//! using box-drawing characters. Useful for terminal demos, examples and
//! golden tests (text diffs beat binary image diffs).
//!
//! The rasterizer maps scene units to characters at a configurable scale
//! (default: 8 units/column, 16 units/row — approximating text aspect).

use crate::scene::{Anchor, Item, Scene};

/// Rasterization options.
#[derive(Debug, Clone, Copy)]
pub struct AsciiOptions {
    /// Scene units per character column.
    pub x_scale: f64,
    /// Scene units per character row.
    pub y_scale: f64,
}

impl Default for AsciiOptions {
    fn default() -> Self {
        AsciiOptions { x_scale: 8.0, y_scale: 16.0 }
    }
}

/// Renders with default options.
pub fn to_ascii(scene: &Scene) -> String {
    to_ascii_with(scene, AsciiOptions::default())
}

/// Renders a scene to a character grid.
pub fn to_ascii_with(scene: &Scene, opt: AsciiOptions) -> String {
    let cols = ((scene.width / opt.x_scale).ceil() as usize).clamp(1, 500);
    let rows = ((scene.height / opt.y_scale).ceil() as usize).clamp(1, 500);
    let mut grid = Grid { cells: vec![vec![' '; cols + 1]; rows + 1] };

    for item in &scene.items {
        match item {
            Item::Rect { x, y, w, h, dashed, .. } => {
                let c0 = (x / opt.x_scale).round() as isize;
                let r0 = (y / opt.y_scale).round() as isize;
                let c1 = ((x + w) / opt.x_scale).round() as isize;
                let r1 = ((y + h) / opt.y_scale).round() as isize;
                grid.rect(r0, c0, r1, c1, *dashed);
            }
            Item::Ellipse { cx, cy, rx, ry, .. } => {
                // Approximate an ellipse with a parametric walk.
                let steps = 72;
                let mut prev: Option<(isize, isize)> = None;
                for i in 0..=steps {
                    let t = (i as f64) * std::f64::consts::TAU / steps as f64;
                    let px = cx + rx * t.cos();
                    let py = cy + ry * t.sin();
                    let c = (px / opt.x_scale).round() as isize;
                    let r = (py / opt.y_scale).round() as isize;
                    if let Some((pr, pc)) = prev {
                        grid.line(pr, pc, r, c, '*');
                    }
                    prev = Some((r, c));
                }
            }
            Item::Polyline { points, arrow, .. } => {
                for pair in points.windows(2) {
                    let (x1, y1) = pair[0];
                    let (x2, y2) = pair[1];
                    let c1 = (x1 / opt.x_scale).round() as isize;
                    let r1 = (y1 / opt.y_scale).round() as isize;
                    let c2 = (x2 / opt.x_scale).round() as isize;
                    let r2 = (y2 / opt.y_scale).round() as isize;
                    let ch = if r1 == r2 {
                        '-'
                    } else if c1 == c2 {
                        '|'
                    } else {
                        '·'
                    };
                    grid.line(r1, c1, r2, c2, ch);
                }
                if *arrow {
                    if let Some(&(x, y)) = points.last() {
                        let c = (x / opt.x_scale).round() as isize;
                        let r = (y / opt.y_scale).round() as isize;
                        grid.put(r, c, '▶');
                    }
                }
            }
            Item::Text { x, y, text, style } => {
                let mut c = (x / opt.x_scale).round() as isize;
                let r = ((y - style.size * 0.5) / opt.y_scale).round() as isize;
                match style.anchor {
                    Anchor::Middle => c -= (text.chars().count() as isize) / 2,
                    Anchor::End => c -= text.chars().count() as isize,
                    Anchor::Start => {}
                }
                for (i, ch) in text.chars().enumerate() {
                    grid.put(r, c + i as isize, ch);
                }
            }
        }
    }

    let mut out = String::with_capacity(rows * (cols + 1));
    for row in &grid.cells {
        let line: String = row.iter().collect();
        out.push_str(line.trim_end());
        out.push('\n');
    }
    // Trim trailing blank lines.
    while out.ends_with("\n\n") {
        out.pop();
    }
    out
}

struct Grid {
    cells: Vec<Vec<char>>,
}

impl Grid {
    fn put(&mut self, r: isize, c: isize, ch: char) {
        if r >= 0 && c >= 0 && (r as usize) < self.cells.len() {
            let row = &mut self.cells[r as usize];
            if (c as usize) < row.len() {
                row[c as usize] = ch;
            }
        }
    }

    fn get(&self, r: isize, c: isize) -> char {
        if r >= 0 && c >= 0 && (r as usize) < self.cells.len() {
            let row = &self.cells[r as usize];
            if (c as usize) < row.len() {
                return row[c as usize];
            }
        }
        ' '
    }

    /// Axis-aligned rectangle with box-drawing characters; `dashed` uses
    /// light dashes for the edges.
    fn rect(&mut self, r0: isize, c0: isize, r1: isize, c1: isize, dashed: bool) {
        let (h, v) = if dashed { ('╌', '┆') } else { ('─', '│') };
        for c in (c0 + 1)..c1 {
            self.put(r0, c, h);
            self.put(r1, c, h);
        }
        for r in (r0 + 1)..r1 {
            self.put(r, c0, v);
            self.put(r, c1, v);
        }
        // Corners (merge politely with existing corners).
        self.put(r0, c0, merge_corner(self.get(r0, c0), '┌'));
        self.put(r0, c1, merge_corner(self.get(r0, c1), '┐'));
        self.put(r1, c0, merge_corner(self.get(r1, c0), '└'));
        self.put(r1, c1, merge_corner(self.get(r1, c1), '┘'));
    }

    /// Bresenham line with a fixed character.
    fn line(&mut self, r1: isize, c1: isize, r2: isize, c2: isize, ch: char) {
        let dr = (r2 - r1).abs();
        let dc = (c2 - c1).abs();
        let sr = if r1 < r2 { 1 } else { -1 };
        let sc = if c1 < c2 { 1 } else { -1 };
        let (mut r, mut c) = (r1, c1);
        let mut err = dc - dr;
        loop {
            if self.get(r, c) == ' ' {
                self.put(r, c, ch);
            }
            if r == r2 && c == c2 {
                break;
            }
            let e2 = 2 * err;
            if e2 > -dr {
                err -= dr;
                c += sc;
            }
            if e2 < dc {
                err += dc;
                r += sr;
            }
        }
    }
}

fn merge_corner(existing: char, new: char) -> char {
    if existing == ' ' || existing == '─' || existing == '│' || existing == '╌' || existing == '┆'
    {
        new
    } else {
        '┼'
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_renders_box() {
        let mut s = Scene::new(80.0, 64.0);
        s.rect(0.0, 0.0, 64.0, 48.0);
        let a = to_ascii(&s);
        assert!(a.contains('┌'), "{a}");
        assert!(a.contains('┘'), "{a}");
        assert!(a.contains('─'), "{a}");
    }

    #[test]
    fn text_lands_in_grid() {
        let mut s = Scene::new(200.0, 32.0);
        s.text(8.0, 16.0, "hello");
        let a = to_ascii(&s);
        assert!(a.contains("hello"), "{a}");
    }

    #[test]
    fn dashed_rect_uses_dashes() {
        let mut s = Scene::new(80.0, 64.0);
        s.styled_rect(0.0, 0.0, 64.0, 48.0, 0.0, "#000", "none", 1.0, true);
        let a = to_ascii(&s);
        assert!(a.contains('╌'), "{a}");
    }

    #[test]
    fn arrow_head_marker() {
        let mut s = Scene::new(100.0, 40.0);
        s.arrow(vec![(0.0, 16.0), (80.0, 16.0)]);
        let a = to_ascii(&s);
        assert!(a.contains('▶'), "{a}");
        assert!(a.contains('-'), "{a}");
    }

    #[test]
    fn huge_scene_is_clamped() {
        let mut s = Scene::new(1e7, 1e7);
        s.rect(0.0, 0.0, 100.0, 100.0);
        let a = to_ascii(&s);
        assert!(a.lines().count() <= 502);
    }
}
