//! Workspace smoke test: exercises one public entry point per module the
//! `relviz` facade re-exports (model, sql, ra, rc, datalog, diagrams,
//! layout, render, core). Its job is to fail fast if a facade re-export,
//! a member manifest, or a crate root regresses — the build-surface
//! counterpart of the semantic suites in the sibling test files.

use relviz::model::catalog::sailors_sample;

#[test]
fn model_catalog_and_generators() {
    let db = sailors_sample();
    assert!(!db.relation("Sailor").unwrap().is_empty());
    assert!(!db.relation("Boat").unwrap().is_empty());
    assert!(!db.relation("Reserves").unwrap().is_empty());

    let generated = relviz::model::generate::generate_binary_pair(1, 10, 5);
    let r = generated.relation("R").unwrap();
    assert!(r.len() <= 10);
    assert_eq!(r.schema().names(), vec!["a", "b"]);
}

#[test]
fn sql_parse_print_eval() {
    let db = sailors_sample();
    let q = relviz::sql::parse_query("SELECT S.sname FROM Sailor S WHERE S.rating > 7").unwrap();
    let printed = relviz::sql::print_query(&q);
    let reparsed = relviz::sql::parse_query(&printed).expect("printer output parses");
    assert_eq!(q, reparsed);
    let out = relviz::sql::eval::run_sql(&printed, &db).unwrap();
    assert!(!out.is_empty(), "sailors with rating > 7 exist in the sample");
}

#[test]
fn ra_build_print_parse_eval() {
    let db = sailors_sample();
    let e = relviz::ra::RaExpr::relation("Reserves").project(vec!["sid"]);
    let printed = relviz::ra::print::print_ra(&e);
    let back = relviz::ra::parse::parse_ra(&printed).unwrap();
    assert_eq!(e, back);
    let out = relviz::ra::eval::eval(&e, &db).unwrap();
    assert!(!out.is_empty());
}

#[test]
fn rc_trc_parse_and_eval() {
    let db = sailors_sample();
    let q = relviz::rc::trc_parse::parse_trc("{S.sname | Sailor(S) and S.rating > 7}").unwrap();
    let out = relviz::rc::trc_eval::eval_trc(&q, &db).unwrap();
    assert!(!out.is_empty());
    // The SQL bridge agrees.
    let via_sql = relviz::rc::from_sql::parse_sql_to_trc(
        "SELECT S.sname FROM Sailor S WHERE S.rating > 7",
        &db,
    )
    .unwrap();
    let out2 = relviz::rc::trc_eval::eval_trc(&via_sql, &db).unwrap();
    assert!(out.same_contents(&out2));
}

#[test]
fn datalog_parse_and_eval() {
    let db = sailors_sample();
    let program = relviz::datalog::parse::parse_program(
        "ans(N) :- Sailor(S, N, R, A), Reserves(S, 102, D).",
    )
    .unwrap();
    let out = relviz::datalog::eval::eval_program(&program, &db).unwrap();
    assert!(!out.is_empty(), "someone reserved boat 102 in the sample");
}

#[test]
fn diagrams_reldiag_round_trip() {
    let db = sailors_sample();
    let q = relviz::rc::trc_parse::parse_trc("{S.sname | Sailor(S) and S.rating > 7}").unwrap();
    let d = relviz::diagrams::reldiag::RelationalDiagram::from_trc(&q, &db).unwrap();
    let back = d.to_trc();
    let a = relviz::rc::trc_eval::eval_trc(&q, &db).unwrap();
    let b = relviz::rc::trc_eval::eval_trc(&back, &db).unwrap();
    assert!(a.same_contents(&b));
}

#[test]
fn layout_boxes_and_layered() {
    use relviz::layout::boxes::{layout, BoxNode, BoxOptions};
    let root = BoxNode::with_children(
        vec![(30.0, 12.0)],
        vec![BoxNode::leaf(vec![(20.0, 10.0), (24.0, 10.0)])],
    );
    let l = layout(&root, BoxOptions::default());
    assert_eq!(l.boxes.len(), 2);
    assert!(l.boxes[0].contains(&l.boxes[1]));

    use relviz::layout::layered::{layout as layered, GraphSpec, LayeredOptions};
    let mut g = GraphSpec::default();
    g.add_node(40.0, 20.0);
    g.add_node(40.0, 20.0);
    g.add_edge(0, 1);
    let ll = layered(&g, LayeredOptions::default());
    assert_eq!(ll.nodes.len(), 2);
    assert!(ll.layers[0] < ll.layers[1]);
}

#[test]
fn render_svg_and_ascii_backends() {
    let mut scene = relviz::render::Scene::new(0.0, 0.0);
    scene.rect(0.0, 0.0, 40.0, 20.0);
    scene.text(4.0, 12.0, "R");
    scene.fit(4.0);
    let svg = relviz::render::svg::to_svg(&scene);
    assert!(svg.starts_with("<svg") && svg.contains("<rect"));
}

#[test]
fn core_pipeline_end_to_end() {
    use relviz::core::{Backend, QueryVisualizer, VisFormalism};
    let db = sailors_sample();
    let viz = QueryVisualizer::new(VisFormalism::RelationalDiagrams, Backend::Svg);
    let out = viz
        .visualize("SELECT S.sname FROM Sailor S WHERE S.rating > 7", &db)
        .unwrap();
    assert!(out.rendering.starts_with("<svg"));
    // The pipeline cache is exercised by a second identical request.
    let again = viz
        .visualize("SELECT S.sname FROM Sailor S WHERE S.rating > 7", &db)
        .unwrap();
    assert_eq!(out.rendering, again.rendering);
}
