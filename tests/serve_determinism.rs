//! Concurrent-determinism suite for `relviz serve`.
//!
//! The server's contract is that a `result` frame's `body` is
//! **byte-identical** to what one-shot execution (`Engine::Indexed`)
//! prints for the same query on the same database — regardless of how
//! many clients are connected, which physical engine a request picks,
//! and whether catalog mutations bump the database generation
//! mid-stream (each response carries the generation its snapshot came
//! from, so every byte is attributable to exactly one database state).

use std::sync::Arc;
use std::thread;

use relviz::core::suite::SUITE;
use relviz::exec::{eval_datalog_with, eval_trc_with, run_sql_with, Engine, OptConfig};
use relviz::model::catalog::sailors_sample;
use relviz::model::text::parse_database;
use relviz::model::Database;
use relviz::serve::{escape, Json, Server, ServerConfig};

fn server_with_default() -> Arc<Server> {
    let server = Server::new(ServerConfig { threads: 2, ..ServerConfig::default() });
    server.catalog().load("default", sailors_sample());
    Arc::new(server)
}

fn query_frame(id: u64, db: &str, lang: &str, engine: &str, text: &str) -> String {
    format!(
        "{{\"type\":\"query\",\"id\":{id},\"db\":\"{db}\",\"lang\":\"{lang}\",\
         \"engine\":\"{engine}\",\"query\":\"{}\"}}",
        escape(text)
    )
}

/// Sends one frame expecting exactly one `result` frame back.
fn result_of(server: &Server, frame: &str) -> Json {
    let frames = server.handle_line(frame);
    assert_eq!(frames.len(), 1, "expected one frame for {frame}, got {frames:?}");
    let resp = Json::parse(&frames[0]).expect("response parses");
    assert_eq!(
        resp.get("type").and_then(Json::as_str),
        Some("result"),
        "expected a result frame for {frame}, got {frames:?}"
    );
    resp
}

fn body_of(resp: &Json) -> String {
    resp.get("body").and_then(Json::as_str).expect("result has a body").to_string()
}

/// One-shot `Engine::Indexed` renderings of every suite query in the
/// three languages the server evaluates.
fn one_shot_suite(db: &Database) -> Vec<(&'static str, &'static str, String)> {
    let cfg = OptConfig::current();
    let mut expected = Vec::new();
    for q in SUITE {
        let rel = run_sql_with(Engine::Indexed, q.sql, db, cfg).expect(q.id);
        expected.push(("sql", q.sql, format!("{rel}")));
        let trc = relviz::rc::trc_parse::parse_trc(q.trc).expect(q.id);
        let rel = eval_trc_with(Engine::Indexed, &trc, db, cfg).expect(q.id);
        expected.push(("trc", q.trc, format!("{rel}")));
        let prog = relviz::datalog::parse::parse_program(q.datalog).expect(q.id);
        let rel = eval_datalog_with(Engine::Indexed, &prog, db, cfg).expect(q.id);
        expected.push(("datalog", q.datalog, format!("{rel}")));
    }
    expected
}

#[test]
fn concurrent_clients_are_byte_identical_to_one_shot() {
    let server = server_with_default();
    let expected = Arc::new(one_shot_suite(&sailors_sample()));

    const CLIENTS: usize = 4;
    const ITERS: usize = 3;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let server = Arc::clone(&server);
            let expected = Arc::clone(&expected);
            thread::spawn(move || {
                for iter in 0..ITERS {
                    for (i, (lang, text, want)) in expected.iter().enumerate() {
                        // Alternate physical engines across clients and
                        // rounds; parallel is bit-identical by contract.
                        let engine =
                            if (client + iter + i) % 2 == 0 { "exec" } else { "parallel" };
                        let frame =
                            query_frame(i as u64, "default", lang, engine, text);
                        let resp = result_of(&server, &frame);
                        assert_eq!(
                            &body_of(&resp),
                            want,
                            "client {client} iter {iter} {lang} `{text}` ({engine})"
                        );
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread panicked");
    }

    // Everything after the first round of misses was served from the
    // prepared-plan cache: exec and parallel share plans, so there are
    // 2 keys per (lang, text) at most... exactly: engines alternate, so
    // both engine families got planned at least once per query.
    let stats = server.plan_cache().stats();
    assert!(stats.hits > 0, "repeat queries must hit the plan cache: {stats:?}");
    assert!(
        stats.len <= 2 * expected.len(),
        "at most one entry per (query, engine family): {stats:?}"
    );
}

const GEN_DB: &str = "relation R(a:int, b:int)\n1, 10\n2, 20\n3, 30\n";
const GEN_QUERY_TRC: &str = "{ r.a, r.b | R(r) and r.b > 5 }";
const GEN_QUERY_DATALOG: &str = "ans(A, B) :- R(A, B), B > 5.";

/// Renders the one-shot answer of the generation-test queries against
/// an explicit database state.
fn gen_expected(db: &Database) -> (String, String) {
    let cfg = OptConfig::current();
    let trc = relviz::rc::trc_parse::parse_trc(GEN_QUERY_TRC).expect("trc parses");
    let t = eval_trc_with(Engine::Indexed, &trc, db, cfg).expect("trc evals");
    let prog = relviz::datalog::parse::parse_program(GEN_QUERY_DATALOG).expect("dl parses");
    let d = eval_datalog_with(Engine::Indexed, &prog, db, cfg).expect("dl evals");
    (format!("{t}"), format!("{d}"))
}

#[test]
fn generation_bumps_invalidate_cached_plans_and_results_track_the_snapshot() {
    let server = server_with_default();
    let load = format!(
        "{{\"type\":\"load\",\"id\":0,\"db\":\"g\",\"text\":\"{}\"}}",
        escape(GEN_DB)
    );
    assert_eq!(
        Json::parse(&server.handle_line(&load)[0]).unwrap().get("type").and_then(Json::as_str),
        Some("ok")
    );

    let mut local = parse_database(GEN_DB).expect("parses");
    let (want_trc, want_dl) = gen_expected(&local);

    // Cold plans: both languages miss, then hit.
    for (lang, text, want) in
        [("trc", GEN_QUERY_TRC, &want_trc), ("datalog", GEN_QUERY_DATALOG, &want_dl)]
    {
        let resp = result_of(&server, &query_frame(1, "g", lang, "exec", text));
        assert_eq!(resp.get("cached_plan").and_then(Json::as_bool), Some(false), "{lang}");
        assert_eq!(resp.get("generation").and_then(Json::as_u64), Some(0));
        assert_eq!(&body_of(&resp), want, "{lang} cold");
        let resp = result_of(&server, &query_frame(2, "g", lang, "exec", text));
        assert_eq!(resp.get("cached_plan").and_then(Json::as_bool), Some(true), "{lang}");
        assert_eq!(&body_of(&resp), want, "{lang} cached");
    }

    // Mutate: the generation bumps and the cached plans are dead.
    let fragment = "relation R(a:int, b:int)\n9, 90\n";
    let insert = format!(
        "{{\"type\":\"insert\",\"id\":3,\"db\":\"g\",\"text\":\"{}\"}}",
        escape(fragment)
    );
    let ok = Json::parse(&server.handle_line(&insert)[0]).expect("ok frame");
    assert_eq!(ok.get("generation").and_then(Json::as_u64), Some(1));
    let misses_before = server.plan_cache().stats().misses;

    // One-shot against a locally mutated copy is the oracle.
    for rel_name in ["R"] {
        let frag = parse_database(fragment).expect("fragment parses");
        let mut merged = local.relation(rel_name).expect("R exists").clone();
        for t in frag.relation(rel_name).expect("R exists").iter() {
            merged.insert(t.clone()).expect("inserts");
        }
        local.set(rel_name.to_string(), merged);
    }
    let (want_trc, want_dl) = gen_expected(&local);
    for (lang, text, want) in
        [("trc", GEN_QUERY_TRC, &want_trc), ("datalog", GEN_QUERY_DATALOG, &want_dl)]
    {
        let resp = result_of(&server, &query_frame(4, "g", lang, "exec", text));
        assert_eq!(
            resp.get("cached_plan").and_then(Json::as_bool),
            Some(false),
            "{lang}: generation bump must invalidate the cached plan"
        );
        assert_eq!(resp.get("generation").and_then(Json::as_u64), Some(1));
        assert_eq!(&body_of(&resp), want, "{lang} post-insert");
        assert!(body_of(&resp).contains('9'), "{lang} sees the inserted row");
    }
    let stats = server.plan_cache().stats();
    assert!(
        stats.misses >= misses_before + 2,
        "both re-plans after the bump are misses: {stats:?}"
    );

    // Drop + reload: generations stay monotone (2, not 0), and the
    // reloaded state answers like a fresh database.
    server.handle_line(r#"{"type":"drop","id":5,"db":"g"}"#);
    let resp = server.handle_line(&query_frame(6, "g", "trc", "exec", GEN_QUERY_TRC));
    assert!(resp[0].contains("\"error\""), "dropped db must error: {resp:?}");
    server.handle_line(&load);
    let fresh = parse_database(GEN_DB).expect("parses");
    let (want_trc, _) = gen_expected(&fresh);
    let resp = result_of(&server, &query_frame(7, "g", "trc", "exec", GEN_QUERY_TRC));
    assert_eq!(resp.get("generation").and_then(Json::as_u64), Some(2));
    assert_eq!(resp.get("cached_plan").and_then(Json::as_bool), Some(false));
    assert_eq!(&body_of(&resp), &want_trc);
}

#[test]
fn concurrent_readers_stay_consistent_under_generation_bumps() {
    let server = server_with_default();
    const BUMPS: u64 = 4;

    // Precompute the oracle rendering per generation: generation g has
    // the base rows plus fragments 0..g.
    let mut per_gen = Vec::new();
    let mut local = parse_database(GEN_DB).expect("parses");
    per_gen.push(gen_expected(&local).0);
    for g in 1..=BUMPS {
        let frag_text = format!("relation R(a:int, b:int)\n{}, {}\n", 100 + g, 1000 + g);
        let frag = parse_database(&frag_text).expect("fragment parses");
        let mut merged = local.relation("R").expect("R").clone();
        for t in frag.relation("R").expect("R").iter() {
            merged.insert(t.clone()).expect("inserts");
        }
        local.set("R", merged);
        per_gen.push(gen_expected(&local).0);
    }
    let per_gen = Arc::new(per_gen);

    let load =
        format!("{{\"type\":\"load\",\"id\":0,\"db\":\"g\",\"text\":\"{}\"}}", escape(GEN_DB));
    server.handle_line(&load);

    let readers: Vec<_> = (0..3)
        .map(|client| {
            let server = Arc::clone(&server);
            let per_gen = Arc::clone(&per_gen);
            thread::spawn(move || {
                let mut last_gen = 0u64;
                for i in 0..60 {
                    let engine = if (client + i) % 2 == 0 { "exec" } else { "parallel" };
                    let resp =
                        result_of(&server, &query_frame(i as u64, "g", "trc", engine, GEN_QUERY_TRC));
                    let generation =
                        resp.get("generation").and_then(Json::as_u64).expect("generation");
                    // Each body must be the oracle rendering *of its own
                    // generation* — a torn read would mismatch every one.
                    assert_eq!(
                        &body_of(&resp),
                        &per_gen[generation as usize],
                        "client {client} iteration {i} generation {generation}"
                    );
                    // Generations never run backwards for one client.
                    assert!(generation >= last_gen, "snapshot went backwards");
                    last_gen = generation;
                }
            })
        })
        .collect();

    let writer = {
        let server = Arc::clone(&server);
        thread::spawn(move || {
            for g in 1..=BUMPS {
                thread::yield_now();
                let frag_text =
                    format!("relation R(a:int, b:int)\n{}, {}\n", 100 + g, 1000 + g);
                let insert = format!(
                    "{{\"type\":\"insert\",\"id\":{g},\"db\":\"g\",\"text\":\"{}\"}}",
                    escape(&frag_text)
                );
                let ok = Json::parse(&server.handle_line(&insert)[0]).expect("ok");
                assert_eq!(ok.get("type").and_then(Json::as_str), Some("ok"));
            }
        })
    };
    writer.join().expect("writer panicked");
    for r in readers {
        r.join().expect("reader panicked");
    }

    // After the dust settles every client sees the final generation.
    let resp = result_of(&server, &query_frame(99, "g", "trc", "exec", GEN_QUERY_TRC));
    assert_eq!(resp.get("generation").and_then(Json::as_u64), Some(BUMPS));
    assert_eq!(&body_of(&resp), &per_gen[BUMPS as usize]);
}

#[test]
fn protocol_errors_do_not_poison_the_session() {
    let server = server_with_default();
    let input = format!(
        "this is not json\n{}\n{}\n",
        r#"{"type":"query","id":1,"query":"SELECT X.nope FROM Nowhere X"}"#,
        query_frame(2, "default", "sql", "exec", SUITE[0].sql),
    );
    let mut out = Vec::new();
    server.serve_connection(input.as_bytes(), &mut out).expect("serves");
    let text = String::from_utf8(out).expect("utf8");
    let types: Vec<String> = text
        .lines()
        .map(|l| {
            Json::parse(l)
                .expect("every line is a frame")
                .get("type")
                .and_then(Json::as_str)
                .expect("typed")
                .to_string()
        })
        .collect();
    assert_eq!(types, ["hello", "error", "error", "result"], "{text}");
}
