//! Golden-file tests for `EXPLAIN ANALYZE` ([`relviz::exec::stats`]):
//! the per-operator actuals (row counts, selectivities, join build/probe
//! sizes, cache hits) and the per-round fixpoint delta tables are
//! deterministic for a fixed database and thread count, so they are
//! pinned against committed goldens. Only genuinely volatile tokens —
//! wall-clock timings, per-worker utilization, and (in parallel runs)
//! cache attribution, which races between workers sharing a scan cache —
//! are normalized away.
//!
//! Regenerate with `UPDATE_GOLDENS=1 cargo test --test analyze_golden`.

use std::path::PathBuf;

use relviz::core::suite::SUITE;
use relviz::exec::{eval_datalog_analyzed, run_sql_analyzed, Engine};
use relviz::model::catalog::sailors_sample;
use relviz::model::generate::generate_binary_pair;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens")
}

fn check_or_update(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var("UPDATE_GOLDENS").is_ok() {
        std::fs::create_dir_all(golden_dir()).expect("can create goldens dir");
        std::fs::write(&path, actual).expect("can write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}\nrun UPDATE_GOLDENS=1 cargo test --test analyze_golden",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "golden mismatch for {name} — if intentional, rerun with UPDATE_GOLDENS=1"
    );
}

/// Replaces the value of a volatile `key=value` token with `key=<>`,
/// keeping any trailing `)` characters so the tree stays well-formed.
fn scrub(token: &str) -> String {
    let key = token.split('=').next().unwrap_or(token);
    let trailing: String = token.chars().rev().take_while(|&c| c == ')').collect();
    format!("{key}=<>{trailing}")
}

/// Normalizes an `EXPLAIN ANALYZE` rendering: `time=`, `busy=` and
/// `jobs=` are always volatile; `hits=`/`misses=` only under a parallel
/// engine (workers race to populate the shared scan cache, so which
/// access is the miss is timing-dependent — the *totals* stay exact in
/// serial runs and are pinned there).
fn normalize(text: &str, parallel: bool) -> String {
    let mut out = String::new();
    for line in text.lines() {
        let body_at = line.len() - line.trim_start_matches(' ').len();
        let (indent, body) = line.split_at(body_at);
        out.push_str(indent);
        let cooked: Vec<String> = body
            .split(' ')
            .map(|tok| {
                let volatile = tok.starts_with("time=")
                    || tok.starts_with("busy=")
                    || tok.starts_with("jobs=")
                    || (parallel && (tok.starts_with("hits=") || tok.starts_with("misses=")));
                if volatile {
                    scrub(tok)
                } else {
                    tok.to_string()
                }
            })
            .collect();
        out.push_str(&cooked.join(" "));
        out.push('\n');
    }
    out
}

/// The two engines every golden section is pinned under. The thread
/// count is explicit (not `Parallel(0)`) so `RELVIZ_THREADS` in the
/// environment — ci.sh reruns the suite with it set — cannot change
/// the rendering.
const ENGINES: [(Engine, &str, bool); 2] =
    [(Engine::Indexed, "serial", false), (Engine::Parallel(4), "parallel", true)];

#[test]
fn analyze_goldens_for_suite() {
    let db = sailors_sample();
    let mut all = String::new();
    for q in SUITE {
        for (engine, tag, parallel) in ENGINES {
            let (_, report) = run_sql_analyzed(engine, q.sql, &db)
                .unwrap_or_else(|e| panic!("{} ({tag}): {e}", q.id));
            assert_eq!(
                report.plan_nodes,
                report.operators.len(),
                "{} ({tag}): operator rows must mirror the plan",
                q.id
            );
            all.push_str(&format!("== {} {tag} ==\n", q.id));
            all.push_str(&normalize(&report.text, parallel));
        }
    }
    check_or_update("analyze-suite.txt", &all);
}

#[test]
fn analyze_goldens_for_recursive_datalog() {
    let db = generate_binary_pair(42, 24, 10);
    let programs = [
        (
            "tc",
            "tc(X, Y) :- R(X, Y).\n\
             tc(X, Z) :- tc(X, Y), R(Y, Z).",
        ),
        (
            "sg",
            "sg(X, Y) :- R(A, X), R(A, Y).\n\
             sg(X, Y) :- R(A, X), sg(A, B), R(B, Y).",
        ),
    ];
    let mut all = String::new();
    for (id, src) in programs {
        let prog = relviz::datalog::parse::parse_program(src).unwrap();
        for (engine, tag, parallel) in ENGINES {
            let (rel, report) = eval_datalog_analyzed(engine, &prog, &db)
                .unwrap_or_else(|e| panic!("{id} ({tag}): {e}"));
            assert!(!rel.is_empty(), "{id} ({tag}): fixpoint must derive facts");
            assert!(
                report.rounds.iter().any(|r| r.round > 0),
                "{id} ({tag}): a recursive program must iterate past round 0"
            );
            all.push_str(&format!("== {id} {tag} ==\n"));
            all.push_str(&normalize(&report.text, parallel));
        }
    }
    check_or_update("analyze-datalog.txt", &all);
}
