//! Differential testing of the recursive-query subsystem: random
//! **stratified** Datalog programs × random databases, the physical
//! engine's semi-naive fixpoint (`exec::eval_datalog_all`) against the
//! reference evaluator (`datalog::eval::eval_all`), every IDB predicate
//! compared.
//!
//! Programs are stratified *by construction*: predicates are assigned to
//! layers, positive body atoms reference the EDB, lower layers, or the
//! same layer (recursion), and negated atoms only the EDB or strictly
//! lower layers — so no negative edge can lie on a cycle. Range
//! restriction holds by construction too (head, negated and compared
//! variables are drawn from the rule's positive-atom variables), so
//! every generated case exercises both engines end to end.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use relviz::datalog::ast::{Atom, Literal, Program, Rule, Term};
use relviz::datalog::eval::eval_all;
use relviz::exec::{self, explain_datalog, plan_datalog, Engine};
use relviz::model::generate::generate_binary_pair;
use relviz::model::{CmpOp, Database, Value};

const DOMAIN: i64 = 6;
const VARS: &[&str] = &["X", "Y", "Z", "W", "V"];
const CMPS: &[CmpOp] = &[CmpOp::Eq, CmpOp::Neq, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];

/// An IDB predicate with its fixed arity and stratification layer.
struct PredSpec {
    name: String,
    arity: usize,
    layer: usize,
}

struct Gen {
    rng: StdRng,
    preds: Vec<PredSpec>,
}

impl Gen {
    fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = rng.gen_range(1..=2usize);
        let mut preds = Vec::new();
        for layer in 0..layers {
            for i in 0..rng.gen_range(1..=2usize) {
                preds.push(PredSpec {
                    name: format!("p{layer}_{i}"),
                    arity: rng.gen_range(1..=2),
                    layer,
                });
            }
        }
        Gen { rng, preds }
    }

    fn constant(&mut self) -> Term {
        let k = self.rng.gen_range(0..DOMAIN);
        // Sometimes a Float over the same (Int) domain: both engines
        // unify by the total order, where Int 2 == Float 2.0.
        if self.rng.gen_bool(0.2) {
            Term::Const(Value::Float(k as f64))
        } else {
            Term::Const(Value::Int(k))
        }
    }

    fn var(&mut self) -> Term {
        Term::Var(VARS[self.rng.gen_range(0..VARS.len())].to_string())
    }

    /// A positive body atom: the EDB (`R`/`S`, arity 2), a lower layer,
    /// or — recursion — the same layer.
    fn positive_atom(&mut self, layer: usize) -> Atom {
        let candidates: Vec<(String, usize)> = self
            .preds
            .iter()
            .filter(|p| p.layer <= layer)
            .map(|p| (p.name.clone(), p.arity))
            .chain([("R".to_string(), 2), ("S".to_string(), 2)])
            .collect();
        let (rel, arity) = candidates[self.rng.gen_range(0..candidates.len())].clone();
        let terms = (0..arity)
            .map(|_| if self.rng.gen_bool(0.75) { self.var() } else { self.constant() })
            .collect();
        Atom::new(rel, terms)
    }

    /// A term over the already-bound variables (or a constant when none
    /// exist) — the only terms allowed in heads, negations, comparisons.
    fn bound_term(&mut self, bound: &[&str]) -> Term {
        if !bound.is_empty() && self.rng.gen_bool(0.8) {
            Term::Var(bound[self.rng.gen_range(0..bound.len())].to_string())
        } else {
            self.constant()
        }
    }

    fn rule(&mut self, head_idx: usize) -> Rule {
        let (head_name, head_arity, layer) = {
            let p = &self.preds[head_idx];
            (p.name.clone(), p.arity, p.layer)
        };
        let n_pos = self.rng.gen_range(1..=3usize);
        let positives: Vec<Atom> = (0..n_pos).map(|_| self.positive_atom(layer)).collect();
        let bound: Vec<&str> = positives.iter().flat_map(Atom::vars).collect();

        let mut body: Vec<Literal> = positives.iter().cloned().map(Literal::Pos).collect();
        if self.rng.gen_bool(0.4) {
            // Negation: EDB or a strictly lower layer.
            let candidates: Vec<(String, usize)> = self
                .preds
                .iter()
                .filter(|p| p.layer < layer)
                .map(|p| (p.name.clone(), p.arity))
                .chain([("R".to_string(), 2), ("S".to_string(), 2)])
                .collect();
            let (rel, arity) = candidates[self.rng.gen_range(0..candidates.len())].clone();
            let terms = (0..arity).map(|_| self.bound_term(&bound)).collect();
            body.push(Literal::Neg(Atom::new(rel, terms)));
        }
        if self.rng.gen_bool(0.4) {
            let left = self.bound_term(&bound);
            let op = CMPS[self.rng.gen_range(0..CMPS.len())];
            let right = self.bound_term(&bound);
            body.push(Literal::Cmp { left, op, right });
        }

        let head_terms = (0..head_arity).map(|_| self.bound_term(&bound)).collect();
        Rule { head: Atom::new(head_name, head_terms), body }
    }

    fn program(&mut self) -> Program {
        let mut rules = Vec::new();
        for i in 0..self.preds.len() {
            for _ in 0..self.rng.gen_range(1..=2usize) {
                rules.push(self.rule(i));
            }
        }
        let query = self.preds[self.rng.gen_range(0..self.preds.len())].name.clone();
        Program { rules, query }
    }
}

fn check_case(prog_seed: u64, db: &Database) {
    let prog = Gen::new(prog_seed).program();
    let reference = eval_all(&prog, db).unwrap_or_else(|e| {
        panic!("generator produced an invalid program (seed {prog_seed}): {e}\n{prog}")
    });
    // Every randomized fixpoint plan must satisfy the static verifier,
    // and the program analyzer must report no *errors* (warnings —
    // cartesian products, unused predicates — are legitimate in
    // generated programs).
    {
        use relviz::exec::{analyze_program, render_diagnostics, verify_fixpoint, Severity};
        let plan = plan_datalog(&prog, db)
            .unwrap_or_else(|e| panic!("planner rejected a valid program (seed {prog_seed}): {e}"));
        let diags = verify_fixpoint(&plan, Some(db));
        assert!(
            diags.is_empty(),
            "planner emitted an unverifiable fixpoint plan (seed {prog_seed})\nprogram:\n{prog}\n{}",
            render_diagnostics(&diags),
        );
        let analysis = analyze_program(&prog, db);
        assert!(
            !analysis.iter().any(|d| d.severity == Severity::Error),
            "analyzer flags a valid generated program (seed {prog_seed})\nprogram:\n{prog}\n{}",
            render_diagnostics(&analysis),
        );
    }
    let all = exec::eval_datalog_all(Engine::Indexed, &prog, db).unwrap_or_else(|e| {
        panic!("exec rejected a valid program (seed {prog_seed}): {e}\n{prog}")
    });
    assert_eq!(all.len(), reference.len(), "IDB predicate sets differ (seed {prog_seed})");
    for (name, rel) in &reference {
        let ours = all
            .get(name)
            .unwrap_or_else(|| panic!("`{name}` missing from exec output (seed {prog_seed})"));
        assert!(
            ours.same_contents(rel),
            "engines disagree on `{name}` (seed {prog_seed})\nprogram:\n{prog}\nplan:\n{}\nexec ({} rows):\n{ours}\nreference ({} rows):\n{rel}",
            explain_datalog(&plan_datalog(&prog, db).expect("planned once already")),
            ours.len(),
            rel.len(),
        );
    }
    // Optimizer A/B: the same program evaluated with reordering off
    // must reproduce every optimized relation bit for bit.
    let unopt =
        exec::eval_datalog_all_with(Engine::Indexed, &prog, db, exec::OptConfig::unoptimized())
            .unwrap_or_else(|e| panic!("unoptimized eval failed (seed {prog_seed}): {e}\n{prog}"));
    assert_eq!(unopt.len(), all.len(), "predicate sets differ unoptimized (seed {prog_seed})");
    for (name, rel) in &all {
        let u = &unopt[name];
        assert!(
            u.same_contents(rel) && format!("{u}") == format!("{rel}"),
            "optimized and unoptimized fixpoints diverge on `{name}` (seed {prog_seed})\nprogram:\n{prog}\nunoptimized:\n{u}\noptimized:\n{rel}",
        );
    }
    // Magic sets vs. full evaluation: `eval_datalog` demand-transforms
    // the program on the physical engines; its query relation must
    // render identically to the full fixpoint's.
    if let Some(full_query) = all.get(&prog.query) {
        let magic = exec::eval_datalog(Engine::Indexed, &prog, db).unwrap_or_else(|e| {
            panic!("magic-sets eval failed (seed {prog_seed}): {e}\n{prog}")
        });
        assert!(
            magic.same_contents(full_query) && format!("{magic}") == format!("{full_query}"),
            "magic sets diverge from full evaluation on `{}` (seed {prog_seed})\nprogram:\n{prog}\nmagic:\n{magic}\nfull:\n{full_query}",
            prog.query,
        );
    }
    // The parallel fixpoint runs the same randomized program at 1, 2
    // and 8 workers — every IDB predicate must reproduce the serial
    // engine's relation bit for bit at every width (parallel round-0
    // rules, delta variants, strata levels, partitioned joins).
    for threads in [1usize, 2, 8] {
        let par = exec::eval_datalog_all(Engine::Parallel(threads), &prog, db)
            .unwrap_or_else(|e| {
                panic!("parallel fixpoint failed (seed {prog_seed}, {threads}t): {e}\n{prog}")
            });
        assert_eq!(par.len(), all.len(), "predicate sets differ at {threads}t (seed {prog_seed})");
        for (name, rel) in &all {
            let p = &par[name];
            assert!(
                p.same_contents(rel) && format!("{p}") == format!("{rel}"),
                "parallel diverges on `{name}` (seed {prog_seed}, {threads} threads)\nprogram:\n{prog}\nparallel:\n{p}\nserial:\n{rel}",
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// ≥120 randomized stratified programs over seeded binary-relation
    /// databases, every IDB predicate differentially checked.
    #[test]
    fn fixpoint_matches_reference_on_random_programs(
        prog_seed in 0u64..1_000_000,
        db_seed in 0u64..64,
        n in 6usize..14,
    ) {
        let db = generate_binary_pair(db_seed, n, DOMAIN);
        check_case(prog_seed, &db);
    }
}
