//! Cross-language conformance: every suite query, evaluated through
//! **every** available path — the reference evaluators, the translation
//! chains, and the physical engine — must produce the same relation.
//!
//! This is the paper's equivalence claim ("one semantics, five
//! syntaxes") as an executable pairwise check. Any disagreement prints
//! both relations via `model::text` so the diff is readable.

use relviz::exec::{self, Engine};
use relviz::model::catalog::sailors_sample;
use relviz::model::generate::{generate_sailors, GenConfig};
use relviz::model::{text, Database, Relation};

/// One evaluation path: a label plus the relation it produced.
struct PathResult {
    label: &'static str,
    relation: Relation,
}

/// Evaluates `q` through every path. Panics (with the path label) if a
/// path that must support the query fails.
fn all_paths(q: &relviz::core::suite::SuiteQuery, db: &Database) -> Vec<PathResult> {
    let mut out = Vec::new();

    // 1. SQL reference evaluator.
    let sql = relviz::sql::eval::run_sql(q.sql, db)
        .unwrap_or_else(|e| panic!("{} sql eval: {e}", q.id));
    out.push(PathResult { label: "sql", relation: sql });

    // 2. SQL → TRC → reference TRC evaluator (the pipeline front door).
    let trc_from_sql = relviz::rc::from_sql::parse_sql_to_trc(q.sql, db)
        .unwrap_or_else(|e| panic!("{} sql→trc: {e}", q.id));
    out.push(PathResult {
        label: "sql→trc→eval",
        relation: relviz::rc::trc_eval::eval_trc(&trc_from_sql, db)
            .unwrap_or_else(|e| panic!("{} sql→trc eval: {e}", q.id)),
    });

    // 3. TRC → RA → reference RA evaluator (Codd's theorem direction).
    let trc = relviz::rc::trc_parse::parse_trc(q.trc)
        .unwrap_or_else(|e| panic!("{} trc parse: {e}", q.id));
    let ra_from_trc = relviz::rc::to_ra::trc_to_ra(&trc, db)
        .unwrap_or_else(|e| panic!("{} trc→ra: {e}", q.id));
    out.push(PathResult {
        label: "trc→ra→eval",
        relation: relviz::ra::eval::eval(&ra_from_trc, db)
            .unwrap_or_else(|e| panic!("{} trc→ra eval: {e}", q.id)),
    });

    // 4. TRC → DRC → reference DRC evaluator.
    let drc = relviz::rc::to_drc::trc_to_drc(&trc, db)
        .unwrap_or_else(|e| panic!("{} trc→drc: {e}", q.id));
    out.push(PathResult {
        label: "trc→drc→eval",
        relation: relviz::rc::drc_eval::eval_drc(&drc, db)
            .unwrap_or_else(|e| panic!("{} trc→drc eval: {e}", q.id)),
    });

    // 5. Physical engine on the RA form.
    let ra = relviz::ra::parse::parse_ra(q.ra)
        .unwrap_or_else(|e| panic!("{} ra parse: {e}", q.id));
    out.push(PathResult {
        label: "exec(ra)",
        relation: exec::eval_ra(Engine::Indexed, &ra, db)
            .unwrap_or_else(|e| panic!("{} exec(ra): {e}", q.id)),
    });

    // 6. Physical engine on the TRC form (∃/¬∃ → semi-/anti-joins).
    out.push(PathResult {
        label: "exec(trc)",
        relation: exec::eval_trc(Engine::Indexed, &trc, db)
            .unwrap_or_else(|e| panic!("{} exec(trc): {e}", q.id)),
    });

    // 7. Physical engine behind the SQL front door.
    out.push(PathResult {
        label: "exec(sql→trc)",
        relation: exec::run_sql(Engine::Indexed, q.sql, db)
            .unwrap_or_else(|e| panic!("{} exec(sql→trc): {e}", q.id)),
    });

    // 8. Physical engine on the Datalog form (semi-naive fixpoint).
    let dl = relviz::datalog::parse::parse_program(q.datalog)
        .unwrap_or_else(|e| panic!("{} datalog parse: {e}", q.id));
    out.push(PathResult {
        label: "exec(datalog)",
        relation: exec::eval_datalog(Engine::Indexed, &dl, db)
            .unwrap_or_else(|e| panic!("{} exec(datalog): {e}", q.id)),
    });

    // 9. The parallel partitioned runtime on the Datalog form — auto
    // worker count, so `RELVIZ_THREADS=8 cargo test` (the CI contention
    // run) pushes this path through eight workers.
    out.push(PathResult {
        label: "parallel(datalog)",
        relation: exec::eval_datalog(Engine::Parallel(0), &dl, db)
            .unwrap_or_else(|e| panic!("{} parallel(datalog): {e}", q.id)),
    });

    out
}

/// Asserts all paths pairwise agree; on disagreement, dumps both
/// relations through `model::text` for a readable diff.
fn assert_pairwise_agreement(qid: &str, paths: &[PathResult]) {
    for a in paths {
        for b in paths {
            if a.relation.same_contents(&b.relation) {
                continue;
            }
            let mut diff_db = Database::new();
            diff_db.set(a.label.replace(['→', '(', ')'], "_"), a.relation.clone());
            diff_db.set(b.label.replace(['→', '(', ')'], "_"), b.relation.clone());
            panic!(
                "{qid}: path `{}` disagrees with `{}`\n{}",
                a.label,
                b.label,
                text::dump_database(&diff_db),
            );
        }
    }
}

#[test]
fn all_paths_agree_on_the_sample() {
    let db = sailors_sample();
    for q in relviz::core::suite::SUITE {
        let paths = all_paths(q, &db);
        assert_eq!(paths.len(), 9, "{}: a path went missing", q.id);
        assert_pairwise_agreement(q.id, &paths);
    }
}

/// Every engine-dispatch entry point of the exec crate, exercised for
/// **every** `Engine` variant — all engines must agree with the
/// reference on every entry point, on every suite query the entry
/// point's language can express.
#[test]
fn every_dispatch_entry_point_runs_on_all_engines() {
    let db = sailors_sample();
    for q in relviz::core::suite::SUITE {
        let ra = relviz::ra::parse::parse_ra(q.ra).unwrap();
        let trc = relviz::rc::trc_parse::parse_trc(q.trc).unwrap();
        let dl = relviz::datalog::parse::parse_program(q.datalog).unwrap();
        let results: Vec<Vec<relviz::model::Relation>> = Engine::ALL
            .iter()
            .map(|&engine| {
                vec![
                    exec::eval_ra(engine, &ra, &db)
                        .unwrap_or_else(|e| panic!("{} eval_ra/{}: {e}", q.id, engine.name())),
                    exec::eval_trc(engine, &trc, &db)
                        .unwrap_or_else(|e| panic!("{} eval_trc/{}: {e}", q.id, engine.name())),
                    exec::run_sql(engine, q.sql, &db)
                        .unwrap_or_else(|e| panic!("{} run_sql/{}: {e}", q.id, engine.name())),
                    exec::eval_datalog(engine, &dl, &db)
                        .unwrap_or_else(|e| panic!("{} eval_datalog/{}: {e}", q.id, engine.name())),
                ]
            })
            .collect();
        let reference = &results[0];
        for (engine, outputs) in Engine::ALL.iter().zip(&results).skip(1) {
            for (entry, (oracle, ours)) in ["eval_ra", "eval_trc", "run_sql", "eval_datalog"]
                .iter()
                .zip(reference.iter().zip(outputs))
            {
                assert!(
                    oracle.same_contents(ours),
                    "{} {entry}: `{}` disagrees with the reference\nreference={oracle}\n{}={ours}",
                    q.id,
                    engine.name(),
                    engine.name(),
                );
            }
        }
    }
}

#[test]
fn all_paths_agree_on_generated_instances() {
    // Two seeded instances, sized so the naive reference evaluators
    // (cubic TRC enumeration, active-domain DRC) stay fast in debug
    // builds — the scale story lives in the benches, not here.
    for seed in [1u64, 0xD1A6_4A77] {
        let db = generate_sailors(&GenConfig {
            seed,
            sailors: 9,
            boats: 4,
            reservations: 16,
        });
        for q in relviz::core::suite::SUITE {
            let paths = all_paths(q, &db);
            assert_pairwise_agreement(q.id, &paths);
        }
    }
}
