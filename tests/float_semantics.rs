//! Float edge-case semantics, pinned end-to-end across every engine:
//! `Value`'s total order (`f64::total_cmp`) makes **`NaN = NaN`** and
//! **`-0.0 < 0.0`** (so `-0.0 ≠ 0.0`), and `Int`/`Float` compare
//! numerically (`1 = 1.0`, but `0 ≠ -0.0` since `0.0 > -0.0`).
//!
//! Every execution path that compares, hashes, or deduplicates values
//! must agree on those rules — the vectorized filter kernels, hash-join
//! key probes, dedup and difference tables of the columnar engine, and
//! the reference evaluators' tree sets. These tests run the same query
//! on all engines, assert `same_contents` against the reference oracle,
//! *and* pin the exact expected cardinality so the whole engine family
//! can't drift together.
//!
//! The expressions are built programmatically: the RA parser has no
//! literal syntax for `NaN` or `-0.0`, which is exactly why these paths
//! had no coverage before.

use relviz::exec::{eval_ra, Engine};
use relviz::model::{CmpOp, Database, DataType, Relation, Schema, Tuple, Value};
use relviz::ra::{Operand, Predicate, RaExpr};

const NAN: f64 = f64::NAN;
const NEG_ZERO: f64 = -0.0;

/// `F(x: Float, tag: Str)`: one row per interesting float, tagged so
/// result rows stay distinguishable.
fn float_db() -> Database {
    let schema = Schema::of(&[("x", DataType::Float), ("tag", DataType::Str)]);
    let rows = vec![
        Tuple::new(vec![Value::Float(NAN), Value::str("nan")]),
        Tuple::new(vec![Value::Float(NEG_ZERO), Value::str("negzero")]),
        Tuple::new(vec![Value::Float(0.0), Value::str("zero")]),
        Tuple::new(vec![Value::Float(1.0), Value::str("one")]),
        Tuple::new(vec![Value::Float(-1.5), Value::str("neg")]),
    ];
    let mut db = Database::new();
    db.set("F", Relation::from_tuples_unchecked(schema, rows));
    db
}

/// Runs `e` on every engine, asserts agreement with the reference
/// oracle, and returns the reference result for cardinality pinning.
fn all_engines_agree(e: &RaExpr, db: &Database) -> Relation {
    let oracle = eval_ra(Engine::Reference, e, db).expect("reference evaluation");
    for engine in Engine::ALL {
        let got = eval_ra(engine, e, db).expect("engine evaluation");
        assert!(
            got.same_contents(&oracle),
            "{} disagrees with the reference:\ngot {got}\nwant {oracle}",
            engine.name()
        );
    }
    oracle
}

fn select_x(op: CmpOp, c: f64) -> RaExpr {
    RaExpr::relation("F").select(Predicate::cmp(
        Operand::attr("x"),
        op,
        Operand::val(Value::Float(c)),
    ))
}

/// Filters (the vectorized `col op const` kernel): `NaN = NaN` holds,
/// `-0.0 = 0.0` does not, and the order sees `-0.0 < 0.0 < NaN`.
#[test]
fn filter_pins_nan_and_signed_zero() {
    let db = float_db();
    assert_eq!(all_engines_agree(&select_x(CmpOp::Eq, NAN), &db).len(), 1, "NaN = NaN");
    assert_eq!(
        all_engines_agree(&select_x(CmpOp::Eq, 0.0), &db).len(),
        1,
        "only +0.0 equals +0.0 — not -0.0"
    );
    assert_eq!(
        all_engines_agree(&select_x(CmpOp::Eq, NEG_ZERO), &db).len(),
        1,
        "only -0.0 equals -0.0"
    );
    // total_cmp order: -1.5 < -0.0 < 0.0 < 1.0 < NaN.
    assert_eq!(all_engines_agree(&select_x(CmpOp::Lt, 0.0), &db).len(), 2, "-1.5 and -0.0");
    assert_eq!(all_engines_agree(&select_x(CmpOp::Ge, 0.0), &db).len(), 3, "0.0, 1.0, NaN");
    assert_eq!(all_engines_agree(&select_x(CmpOp::Neq, NAN), &db).len(), 4);
    // The flipped form (`const op col`) takes a different compile path.
    let flipped = RaExpr::relation("F").select(Predicate::cmp(
        Operand::val(Value::Float(0.0)),
        CmpOp::Gt,
        Operand::attr("x"),
    ));
    assert_eq!(all_engines_agree(&flipped, &db).len(), 2, "0.0 > x ⇔ x < 0.0");
}

/// Column-vs-column comparison (`Pos op Pos`): a NaN cell equals
/// itself, and `-0.0` is strictly below `0.0` in the same row.
#[test]
fn filter_column_vs_column_uses_the_total_order() {
    let schema = Schema::of(&[("a", DataType::Float), ("b", DataType::Float)]);
    let rows = vec![
        Tuple::new(vec![Value::Float(NAN), Value::Float(NAN)]),
        Tuple::new(vec![Value::Float(NEG_ZERO), Value::Float(0.0)]),
        Tuple::new(vec![Value::Float(2.0), Value::Float(1.0)]),
    ];
    let mut db = Database::new();
    db.set("P", Relation::from_tuples_unchecked(schema, rows));
    let eq = RaExpr::relation("P").select(Predicate::cmp(
        Operand::attr("a"),
        CmpOp::Eq,
        Operand::attr("b"),
    ));
    assert_eq!(all_engines_agree(&eq, &db).len(), 1, "only the NaN row: -0.0 ≠ 0.0");
    let lt = RaExpr::relation("P").select(Predicate::cmp(
        Operand::attr("a"),
        CmpOp::Lt,
        Operand::attr("b"),
    ));
    assert_eq!(all_engines_agree(&lt, &db).len(), 1, "-0.0 < 0.0");
}

/// Hash-join probes: NaN keys match NaN keys, signed zeros don't match
/// each other, and `Int`/`Float` keys cross-match numerically — the
/// `JoinKey` hash must agree with the total order on every edge case.
#[test]
fn join_keys_pin_nan_signed_zero_and_cross_numerics() {
    let lschema = Schema::of(&[("k", DataType::Float), ("l", DataType::Str)]);
    let rschema = Schema::of(&[("k", DataType::Float), ("r", DataType::Str)]);
    let lrows = vec![
        Tuple::new(vec![Value::Float(NAN), Value::str("l-nan")]),
        Tuple::new(vec![Value::Float(NEG_ZERO), Value::str("l-negzero")]),
        Tuple::new(vec![Value::Float(1.0), Value::str("l-one")]),
        Tuple::new(vec![Value::Int(2), Value::str("l-int2")]),
    ];
    let rrows = vec![
        Tuple::new(vec![Value::Float(NAN), Value::str("r-nan")]),
        Tuple::new(vec![Value::Float(0.0), Value::str("r-zero")]),
        Tuple::new(vec![Value::Int(1), Value::str("r-int1")]),
        Tuple::new(vec![Value::Float(2.0), Value::str("r-two")]),
    ];
    let mut db = Database::new();
    db.set("L", Relation::from_tuples_unchecked(lschema, lrows));
    db.set("R", Relation::from_tuples_unchecked(rschema, rrows));
    let join = RaExpr::NaturalJoin(
        Box::new(RaExpr::relation("L")),
        Box::new(RaExpr::relation("R")),
    );
    // Matches: NaN↔NaN, 1.0↔Int 1, Int 2↔2.0. Non-match: -0.0 vs 0.0.
    assert_eq!(all_engines_agree(&join, &db).len(), 3);
}

/// Dedup: `-0.0` and `0.0` stay two distinct rows; two NaN rows
/// collapse to one. `Union` routes through every engine's dedup path.
#[test]
fn dedup_distinguishes_signed_zeros_and_merges_nans() {
    let schema = Schema::of(&[("x", DataType::Float)]);
    let a = vec![
        Tuple::new(vec![Value::Float(NEG_ZERO)]),
        Tuple::new(vec![Value::Float(NAN)]),
    ];
    let b = vec![
        Tuple::new(vec![Value::Float(0.0)]),
        Tuple::new(vec![Value::Float(NAN)]),
    ];
    let mut db = Database::new();
    db.set("A", Relation::from_tuples_unchecked(schema.clone(), a));
    db.set("B", Relation::from_tuples_unchecked(schema, b));
    let union = RaExpr::Union(
        Box::new(RaExpr::relation("A")),
        Box::new(RaExpr::relation("B")),
    );
    // {-0.0, NaN} ∪ {0.0, NaN} = {-0.0, 0.0, NaN}.
    assert_eq!(all_engines_agree(&union, &db).len(), 3);
}

/// Difference: subtracting `0.0` must not remove `-0.0`, and
/// subtracting one NaN removes the (equal) other NaN.
#[test]
fn difference_respects_the_total_order() {
    let schema = Schema::of(&[("x", DataType::Float)]);
    let a = vec![
        Tuple::new(vec![Value::Float(NEG_ZERO)]),
        Tuple::new(vec![Value::Float(NAN)]),
        Tuple::new(vec![Value::Float(7.0)]),
    ];
    let b = vec![
        Tuple::new(vec![Value::Float(0.0)]),
        Tuple::new(vec![Value::Float(NAN)]),
    ];
    let mut db = Database::new();
    db.set("A", Relation::from_tuples_unchecked(schema.clone(), a));
    db.set("B", Relation::from_tuples_unchecked(schema, b));
    let diff = RaExpr::Difference(
        Box::new(RaExpr::relation("A")),
        Box::new(RaExpr::relation("B")),
    );
    // {-0.0, NaN, 7.0} − {0.0, NaN} = {-0.0, 7.0}.
    let out = all_engines_agree(&diff, &db);
    assert_eq!(out.len(), 2);
    assert!(
        out.iter().any(|t| matches!(t.values()[0], Value::Float(f) if f == 0.0 && f.is_sign_negative())),
        "-0.0 must survive subtracting +0.0: {out}"
    );
}

/// Semi-/anti-join keying (Division lowers to the anti-join path in the
/// physical engine): NaN divides like any other equal-to-itself value.
#[test]
fn division_treats_nan_as_a_normal_key() {
    let lschema = Schema::of(&[("a", DataType::Str), ("x", DataType::Float)]);
    let rschema = Schema::of(&[("x", DataType::Float)]);
    let lrows = vec![
        // "full" pairs with every divisor value, NaN included.
        Tuple::new(vec![Value::str("full"), Value::Float(NAN)]),
        Tuple::new(vec![Value::str("full"), Value::Float(1.0)]),
        // "partial" misses NaN.
        Tuple::new(vec![Value::str("partial"), Value::Float(1.0)]),
        Tuple::new(vec![Value::str("partial"), Value::Float(NEG_ZERO)]),
    ];
    let rrows = vec![
        Tuple::new(vec![Value::Float(NAN)]),
        Tuple::new(vec![Value::Float(1.0)]),
    ];
    let mut db = Database::new();
    db.set("Pairs", Relation::from_tuples_unchecked(lschema, lrows));
    db.set("Xs", Relation::from_tuples_unchecked(rschema, rrows));
    let division = RaExpr::Division(
        Box::new(RaExpr::relation("Pairs")),
        Box::new(RaExpr::relation("Xs")),
    );
    assert_eq!(all_engines_agree(&division, &db).len(), 1, "only `full` covers NaN and 1.0");
}
