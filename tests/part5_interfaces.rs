//! Cross-crate integration tests for the Part-5 interface formalisms
//! added beyond the core survey: the syntax-mirroring family (Visual SQL,
//! SQLVis, TableTalk), the result-oriented interfaces (SIEUFERD, QBD)
//! and the direct-manipulation tree (DataPlay) — checked against the
//! suite queries, generated databases, and each other.

use relviz::core::suite::SUITE;
use relviz::diagrams::capability::{try_build, Capability, Formalism};
use relviz::diagrams::dataplay::DataPlayTree;
use relviz::diagrams::qbd::{ErSchema, QbdQuery};
use relviz::diagrams::sieuferd::SieuferdSheet;
use relviz::diagrams::sqlvis::SqlVisDiagram;
use relviz::diagrams::tabletalk::TableTalkDiagram;
use relviz::diagrams::visualsql::VisualSqlDiagram;
use relviz::model::catalog::sailors_sample;
use relviz::model::generate::{generate_sailors, GenConfig};

/// The syntax-mirroring formalisms accept the *entire* suite (they draw
/// the text, so every valid query draws), and their censuses are stable
/// under alias renaming.
#[test]
fn syntax_mirrors_accept_the_whole_suite() {
    let db = sailors_sample();
    for q in SUITE {
        let v = VisualSqlDiagram::from_sql(q.sql, &db)
            .unwrap_or_else(|e| panic!("VisualSQL {}: {e}", q.id));
        assert!(v.census().0 >= 1, "{}", q.id);
        let s = SqlVisDiagram::from_sql(q.sql, &db)
            .unwrap_or_else(|e| panic!("SQLVis {}: {e}", q.id));
        assert!(s.nesting_depth() >= 1, "{}", q.id);
        let t = TableTalkDiagram::from_sql(q.sql, &db)
            .unwrap_or_else(|e| panic!("TableTalk {}: {e}", q.id));
        assert!(!t.flows.is_empty(), "{}", q.id);
    }
}

/// Bubble counts track block counts: SQLVis draws one bubble per SELECT
/// block, which is the parse tree's block count.
#[test]
fn sqlvis_bubbles_equal_sql_blocks() {
    let db = sailors_sample();
    for q in SUITE {
        let parsed = relviz::sql::parse_query(q.sql).expect("suite SQL parses");
        let d = SqlVisDiagram::from_sql(q.sql, &db).expect("builds");
        assert_eq!(
            d.bubbles.len(),
            parsed.block_count(),
            "{}: bubbles ≠ blocks",
            q.id
        );
    }
}

/// SIEUFERD's nested evaluation agrees with direct SQL on *generated*
/// databases of growing size, not just the sample.
#[test]
fn sieuferd_flatten_matches_sql_on_generated_data() {
    let sql = "SELECT S.sname, B.bname FROM Sailor S, Reserves R, Boat B \
               WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'red'";
    for n in [20usize, 60, 150] {
        let db = generate_sailors(&GenConfig::scaled(n));
        let sheet = SieuferdSheet::from_sql(sql, &db).expect("tree join");
        let flat = sheet.flatten(&db).expect("evaluates");
        let direct = relviz::sql::eval::run_sql(sql, &db).expect("evaluates");
        assert!(flat.same_contents(&direct), "n={n}");
    }
}

/// DataPlay's flip semantics hold on generated data: the ∀-matching pane
/// is always a subset of the ∃-matching pane.
#[test]
fn dataplay_forall_implies_exists_on_generated_data() {
    let q5 = "SELECT S.sname FROM Sailor S WHERE NOT EXISTS \
              (SELECT * FROM Boat B WHERE B.color = 'red' AND NOT EXISTS \
                (SELECT * FROM Reserves R WHERE R.sid = S.sid AND R.bid = B.bid))";
    for seed_scale in [30usize, 80, 200] {
        let db = generate_sailors(&GenConfig::scaled(seed_scale));
        // The implication needs a witness: with zero red boats, ∀ is
        // vacuously true while ∃ is false — itself a fact worth pinning.
        let red_boats = relviz::sql::eval::run_sql(
            "SELECT B.bid FROM Boat B WHERE B.color = 'red'",
            &db,
        )
        .expect("evaluates");
        let tree = DataPlayTree::from_sql(q5, &db).expect("tree fragment");
        let (m_all, _) = tree.partition(&db).expect("evaluates");
        let (m_some, _) = tree.flip(&[0]).expect("root").partition(&db).expect("evaluates");
        if red_boats.is_empty() {
            assert!(m_some.is_empty(), "n={seed_scale}: ∃ without witness");
            continue;
        }
        for row in m_all.iter() {
            assert!(
                m_some.contains(row),
                "n={seed_scale}: ∀-pane member missing from ∃-pane"
            );
        }
    }
}

/// QBD and SIEUFERD accept exactly the same suite fragment (conjunctive
/// ER-navigation): their capability rows agree on every query.
#[test]
fn conjunctive_interfaces_agree_on_the_fragment() {
    let db = sailors_sample();
    for q in SUITE {
        let a = try_build(Formalism::Qbd, q.sql, &db).expect("probe runs");
        let b = try_build(Formalism::Sieuferd, q.sql, &db).expect("probe runs");
        let ok = |c: &Capability| matches!(c, Capability::Drawable { .. });
        assert_eq!(ok(&a), ok(&b), "{}: QBD {a:?} vs SIEUFERD {b:?}", q.id);
    }
}

/// The QBD ER schema really gates the builder: removing the Reserves
/// relationship makes Q2 undrawable.
#[test]
fn qbd_er_schema_gates_joins() {
    let db = sailors_sample();
    let q2 = "SELECT S.sname FROM Sailor S, Reserves R, Boat B \
              WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'red'";
    assert!(QbdQuery::from_sql(q2, &ErSchema::sailors(), &db).is_ok());
    let mut crippled = ErSchema::sailors();
    crippled.edges.retain(|e| e.entity != "Boat");
    assert!(QbdQuery::from_sql(q2, &crippled, &db).is_err());
}

/// End-to-end through the facade pipeline: every new formalism renders
/// both backends for a query in its fragment, and the cache serves
/// repeats.
#[test]
fn pipeline_covers_the_new_formalisms() {
    use relviz::core::{Backend, QueryVisualizer, VisFormalism};
    let db = sailors_sample();
    let conjunctive = "SELECT DISTINCT S.sname FROM Sailor S, Reserves R, Boat B \
                       WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'red'";
    for f in [
        VisFormalism::VisualSql,
        VisFormalism::SqlVis,
        VisFormalism::TableTalk,
        VisFormalism::DataPlay,
        VisFormalism::Sieuferd,
        VisFormalism::Qbd,
    ] {
        for backend in [Backend::Svg, Backend::Ascii] {
            let viz = QueryVisualizer::new(f, backend);
            let out = viz
                .visualize(conjunctive, &db)
                .unwrap_or_else(|e| panic!("{} ({backend:?}): {e}", f.name()));
            assert!(!out.rendering.is_empty(), "{}", f.name());
        }
    }
}

/// The E9 families again, as a pinned integration fact: all variants are
/// semantically equal, all syntax mirrors distinguish them, and the
/// normalized Relational Diagram patterns do not.
#[test]
fn syntactic_sensitivity_invariants() {
    let db = sailors_sample();
    let families: Vec<Vec<&str>> = vec![
        vec![
            "SELECT S.sname FROM Sailor S WHERE NOT EXISTS \
             (SELECT * FROM Reserves R, Boat B \
              WHERE R.sid = S.sid AND R.bid = B.bid AND B.color = 'red')",
            "SELECT S.sname FROM Sailor S WHERE S.sid NOT IN \
             (SELECT R.sid FROM Reserves R, Boat B \
              WHERE R.bid = B.bid AND B.color = 'red')",
        ],
        vec![
            "SELECT DISTINCT S.sname FROM Sailor S, Reserves R, Boat B \
             WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'red'",
            "SELECT DISTINCT S.sname FROM Sailor S WHERE S.sid IN \
             (SELECT R.sid FROM Reserves R WHERE R.bid IN \
               (SELECT B.bid FROM Boat B WHERE B.color = 'red'))",
        ],
    ];
    for family in families {
        let (a, b) = (family[0], family[1]);
        let ra = relviz::sql::eval::run_sql(a, &db).unwrap();
        let rb = relviz::sql::eval::run_sql(b, &db).unwrap();
        assert!(ra.same_contents(&rb));
        assert!(!VisualSqlDiagram::from_sql(a, &db)
            .unwrap()
            .isomorphic(&VisualSqlDiagram::from_sql(b, &db).unwrap()));
        assert!(!SqlVisDiagram::from_sql(a, &db)
            .unwrap()
            .isomorphic(&SqlVisDiagram::from_sql(b, &db).unwrap()));
        let pat = |sql: &str| {
            relviz::core::patterns::extract_pattern(
                &relviz::rc::normalize::flatten_exists(
                    &relviz::rc::from_sql::parse_sql_to_trc(sql, &db).unwrap(),
                ),
                &db,
                false,
            )
            .unwrap()
        };
        assert!(relviz::core::patterns::patterns_isomorphic(&pat(a), &pat(b)));
    }
}
