//! Property-based tests (proptest) on the workspace's core invariants:
//!
//! * RA: `optimize` preserves semantics; printers round-trip.
//! * TRC: random queries — the TRC evaluator, the TRC→RA compilation and
//!   the TRC→DRC translation all agree; Relational Diagrams round-trip.
//! * Alpha graphs: double-cut is an equivalence; erasure weakens.
//! * Venn: the transformation rules are sound on random diagrams.

use proptest::prelude::*;

use relviz::diagrams::reldiag::RelationalDiagram;
use relviz::model::catalog::sailors_sample;
use relviz::model::generate::generate_binary_pair;
use relviz::model::{CmpOp, Database};
use relviz::ra::{Operand, Predicate, RaExpr};
use relviz::rc::trc::{Binding, TrcBranch, TrcFormula, TrcQuery, TrcTerm};

// ---------- RA strategies ----------------------------------------------------

/// Predicates over the attributes of the R(a,b) relation.
fn arb_pred() -> impl Strategy<Value = Predicate> {
    let leaf = prop_oneof![
        (arb_operand(), arb_op(), arb_operand())
            .prop_map(|(l, op, r)| Predicate::cmp(l, op, r)),
        Just(Predicate::Const(true)),
        Just(Predicate::Const(false)),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(|a| a.not()),
        ]
    })
}

fn arb_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        Just(Operand::attr("a")),
        Just(Operand::attr("b")),
        (0i64..12).prop_map(Operand::val),
    ]
}

fn arb_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Neq),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

/// Schema-preserving RA expressions over R(a,b) — every node keeps the
/// schema (a, b), so arbitrary composition stays well-typed.
fn arb_ra() -> impl Strategy<Value = RaExpr> {
    let leaf = Just(RaExpr::relation("R"));
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (arb_pred(), inner.clone()).prop_map(|(p, e)| e.select(p)),
            inner.clone().prop_map(|e| e.project(vec!["a", "b"])),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| x.union(y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| x.intersect(y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| x.difference(y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| x.natural_join(y)),
            inner.clone().prop_map(|e| e.rename("a", "tmp").rename("tmp", "a")),
        ]
    })
}

fn small_db() -> Database {
    generate_binary_pair(9, 18, 8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn optimizer_preserves_semantics(e in arb_ra()) {
        let db = small_db();
        let before = relviz::ra::eval::eval(&e, &db).unwrap();
        let optimized = relviz::ra::rewrite::optimize(&e);
        let after = relviz::ra::eval::eval(&optimized, &db).unwrap();
        prop_assert!(before.same_contents(&after),
            "optimize changed semantics\nexpr: {e:?}\nopt: {optimized:?}");
    }

    #[test]
    fn ra_print_parse_round_trip(e in arb_ra()) {
        let printed = relviz::ra::print::print_ra(&e);
        let back = relviz::ra::parse::parse_ra(&printed).unwrap();
        prop_assert_eq!(&e, &back, "ascii printer: {}", printed);
        let uni = relviz::ra::print::print_ra_unicode(&e);
        let back2 = relviz::ra::parse::parse_ra(&uni).unwrap();
        prop_assert_eq!(&e, &back2, "unicode printer: {}", uni);
    }

    #[test]
    fn predicate_simplification_preserves_truth(p in arb_pred()) {
        let db = small_db();
        let e = RaExpr::relation("R").select(p.clone());
        let s = RaExpr::relation("R").select(relviz::ra::rewrite::simplify_pred(&p));
        let a = relviz::ra::eval::eval(&e, &db).unwrap();
        let b = relviz::ra::eval::eval(&s, &db).unwrap();
        prop_assert!(a.same_contents(&b));
    }

    #[test]
    fn ra_to_trc_preserves_semantics(e in arb_ra()) {
        let db = small_db();
        let expected = relviz::ra::eval::eval(&e, &db).unwrap();
        let trc = relviz::rc::from_ra::ra_to_trc(&e, &db).unwrap();
        let got = relviz::rc::trc_eval::eval_trc(&trc, &db).unwrap();
        prop_assert!(expected.same_contents(&got), "RA→TRC\n{trc}");
    }
}

// ---------- TRC strategies ---------------------------------------------------

/// Comparisons valid over the sailors schema for the fixed variables
/// s ∈ Sailor (outer) and r ∈ Reserves, b ∈ Boat (possibly quantified).
fn arb_trc_cmp(vars: &'static [(&'static str, &'static str)]) -> BoxedStrategy<TrcFormula> {
    // (var, attr) pairs with int-typed attrs to keep types simple.
    let attrs: Vec<(String, String)> = vars
        .iter()
        .flat_map(|(v, rel)| {
            let names: &[&str] = match *rel {
                "Sailor" => &["sid", "rating"],
                "Reserves" => &["sid", "bid"],
                "Boat" => &["bid"],
                _ => &[],
            };
            names.iter().map(move |a| (v.to_string(), a.to_string()))
        })
        .collect();
    let attr = proptest::sample::select(attrs);
    (attr.clone(), arb_op(), prop_oneof![
        attr.prop_map(|(v, a)| TrcTerm::attr(v, a)),
        (0i64..120).prop_map(TrcTerm::val),
    ])
        .prop_map(|((v, a), op, rhs)| TrcFormula::cmp(TrcTerm::attr(v, a), op, rhs))
        .boxed()
}

/// Random TRC bodies in the ∃/¬∃ fragment over s/r/b.
fn arb_trc_body() -> BoxedStrategy<TrcFormula> {
    let inner_cmp = arb_trc_cmp(&[("s", "Sailor"), ("r", "Reserves"), ("b", "Boat")]);
    let inner = prop_oneof![
        inner_cmp.clone(),
        (inner_cmp.clone(), inner_cmp).prop_map(|(x, y)| x.and(y)),
    ];
    let quantified = inner
        .prop_map(|body| {
            TrcFormula::exists(
                vec![Binding::new("r", "Reserves"), Binding::new("b", "Boat")],
                body,
            )
        })
        .boxed();
    let outer_cmp = arb_trc_cmp(&[("s", "Sailor")]);
    prop_oneof![
        quantified.clone(),
        quantified.clone().prop_map(|q| q.not()),
        (outer_cmp.clone(), quantified.clone()).prop_map(|(c, q)| c.and(q)),
        (outer_cmp, quantified).prop_map(|(c, q)| c.and(q.not())),
    ]
    .boxed()
}

fn arb_trc() -> impl Strategy<Value = TrcQuery> {
    arb_trc_body().prop_map(|body| {
        TrcQuery::single(TrcBranch {
            bindings: vec![Binding::new("s", "Sailor")],
            head: vec![("sname".into(), TrcTerm::attr("s", "sname"))],
            body: Some(body),
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn trc_ra_drc_agree(q in arb_trc()) {
        let db = sailors_sample();
        let via_trc = relviz::rc::trc_eval::eval_trc(&q, &db).unwrap();
        let ra = relviz::rc::to_ra::trc_to_ra(&q, &db).unwrap();
        let via_ra = relviz::ra::eval::eval(&ra, &db).unwrap();
        prop_assert!(via_trc.same_contents(&via_ra), "TRC vs RA for {q}");
        let drc = relviz::rc::to_drc::trc_to_drc(&q, &db).unwrap();
        relviz::rc::drc_eval::safe_range_check(&drc).unwrap();
        let via_drc = relviz::rc::drc_eval::eval_drc(&drc, &db).unwrap();
        prop_assert!(via_trc.same_contents(&via_drc), "TRC vs DRC for {q}");
    }

    #[test]
    fn trc_parse_print_round_trip(q in arb_trc()) {
        let printed = q.to_string();
        let back = relviz::rc::trc_parse::parse_trc(&printed).unwrap();
        prop_assert_eq!(&q, &back, "{}", printed);
    }

    #[test]
    fn relational_diagram_round_trip(q in arb_trc()) {
        let db = sailors_sample();
        let d = RelationalDiagram::from_trc(&q, &db).unwrap();
        let back = d.to_trc();
        let orig = relviz::rc::trc_eval::eval_trc(&q, &db).unwrap();
        let rt = relviz::rc::trc_eval::eval_trc(&back, &db).unwrap();
        prop_assert!(orig.same_contents(&rt), "diagram round trip\n{q}\n{back}");
    }
}

// ---------- alpha graph properties -------------------------------------------

use relviz::diagrams::peirce::alpha::{AlphaGraph, AlphaItem};
use std::collections::BTreeMap;

fn arb_alpha_item() -> impl Strategy<Value = AlphaItem> {
    let leaf = proptest::sample::select(vec!["P", "Q", "R"]).prop_map(AlphaItem::atom);
    leaf.prop_recursive(3, 12, 3, |inner| {
        proptest::collection::vec(inner, 0..3).prop_map(AlphaItem::cut)
    })
}

fn arb_alpha() -> impl Strategy<Value = AlphaGraph> {
    proptest::collection::vec(arb_alpha_item(), 0..4).prop_map(AlphaGraph::new)
}

fn all_assignments(g: &AlphaGraph) -> Vec<BTreeMap<String, bool>> {
    let atoms = g.atoms();
    (0..(1u32 << atoms.len()))
        .map(|bits| {
            atoms
                .iter()
                .enumerate()
                .map(|(i, a)| (a.clone(), bits & (1 << i) != 0))
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn double_cut_is_an_equivalence(g in arb_alpha()) {
        let wrapped = g.add_double_cut(&[], None).unwrap();
        for asg in all_assignments(&g) {
            prop_assert_eq!(g.eval(&asg), wrapped.eval(&asg));
        }
        let back = wrapped.remove_double_cut(&[], 0).unwrap();
        prop_assert_eq!(back, g);
    }

    #[test]
    fn sheet_erasure_weakens(g in arb_alpha()) {
        if !g.sheet.is_empty() {
            let erased = g.erase(&[], 0).unwrap();
            // g ⊨ erased over the union of atoms
            let mut joint = g.clone();
            joint.sheet.extend(erased.sheet.clone());
            for asg in all_assignments(&joint) {
                prop_assert!(!g.eval(&asg) || erased.eval(&asg));
            }
        }
    }
}

// ---------- Venn properties ----------------------------------------------------

use relviz::diagrams::venn::VennDiagram;

fn arb_venn() -> impl Strategy<Value = VennDiagram> {
    (
        proptest::collection::btree_set(0u8..8, 0..4),
        proptest::collection::vec(proptest::collection::btree_set(0u8..8, 1..4), 0..3),
    )
        .prop_map(|(shaded, xseqs)| {
            let mut d = VennDiagram::new(vec!["A", "B", "C"]).unwrap();
            d.shade(shaded).unwrap();
            for x in xseqs {
                d.add_xseq(x).unwrap();
            }
            d
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn venn_rules_sound_on_random_diagrams(d in arb_venn()) {
        // Erasing any shading or sequence is entailed.
        if let Some(&m) = d.shaded.iter().next() {
            let e = d.erase_shading(m).unwrap();
            prop_assert!(d.entails(&e).unwrap());
        }
        if !d.xseqs.is_empty() {
            let e = d.erase_xseq(0).unwrap();
            prop_assert!(d.entails(&e).unwrap());
            let x = d.extend_xseq(0, 7).unwrap();
            prop_assert!(d.entails(&x).unwrap());
        }
        // Pruning is equivalence (when consistent).
        match d.prune_xseqs() {
            Ok(p) => {
                prop_assert!(d.entails(&p).unwrap());
                prop_assert!(p.entails(&d).unwrap());
            }
            Err(_) => prop_assert!(!d.is_consistent()),
        }
    }

    #[test]
    fn venn_unification_is_meet(a in arb_venn(), b in arb_venn()) {
        let u = a.unify(&b).unwrap();
        prop_assert!(u.entails(&a).unwrap());
        prop_assert!(u.entails(&b).unwrap());
        // and it is the weakest such: any model of both satisfies u
        for m in a.models() {
            if b.satisfied_by(m) {
                prop_assert!(u.satisfied_by(m));
            }
        }
    }
}

// ---------- normalization / new-formalism properties -------------------------

/// Random TRC bodies with *positive existential nesting* (IN-chain shape).
/// The sibling arms both bind `r` and `b` — legal TRC (disjoint scopes)
/// that collides on hoisting, exercising the capture-free renaming.
fn arb_nested_trc() -> impl Strategy<Value = TrcQuery> {
    let inner = arb_trc_cmp(&[("s", "Sailor"), ("r", "Reserves"), ("b", "Boat")])
        .prop_map(|c| TrcFormula::exists(vec![Binding::new("b", "Boat")], c));
    let chain = (arb_trc_cmp(&[("s", "Sailor"), ("r", "Reserves")]), inner).prop_map(
        |(c, deep)| TrcFormula::exists(vec![Binding::new("r", "Reserves")], c.and(deep)),
    );
    let outer_cmp = arb_trc_cmp(&[("s", "Sailor")]);
    prop_oneof![
        chain.clone(),
        (outer_cmp.clone(), chain.clone()).prop_map(|(c, q)| c.and(q)),
        // Two positive sibling chains: both hoist, names collide → rename.
        (outer_cmp.clone(), chain.clone(), chain.clone())
            .prop_map(|(c, q1, q2)| c.and(q1).and(q2)),
        // A negated sibling keeps a boundary the flattener must respect.
        (outer_cmp, chain.clone(), chain).prop_map(|(c, q1, q2)| c.and(q1).and(q2.not())),
    ]
    .prop_map(|body| {
        TrcQuery::single(TrcBranch {
            bindings: vec![Binding::new("s", "Sailor")],
            head: vec![("sname".into(), TrcTerm::attr("s", "sname"))],
            body: Some(body),
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn flatten_exists_preserves_semantics(q in arb_nested_trc()) {
        let db = sailors_sample();
        let flat = relviz::rc::normalize::flatten_exists(&q);
        relviz::rc::trc_check::check_query(&flat, &db).unwrap();
        let a = relviz::rc::trc_eval::eval_trc(&q, &db).unwrap();
        let b = relviz::rc::trc_eval::eval_trc(&flat, &db).unwrap();
        prop_assert!(a.same_contents(&b), "flattening changed semantics\n{q}\n{flat}");
    }

    #[test]
    fn flatten_exists_is_idempotent(q in arb_nested_trc()) {
        let flat = relviz::rc::normalize::flatten_exists(&q);
        let twice = relviz::rc::normalize::flatten_exists(&flat);
        prop_assert_eq!(&flat, &twice, "second pass changed the query");
    }

    #[test]
    fn flatten_exists_removes_positive_nesting(q in arb_trc()) {
        // On the ∃/¬∃ fragment: after flattening, every remaining
        // quantifier sits under a negation.
        let flat = relviz::rc::normalize::flatten_exists(&q);
        fn positive_exists(f: &TrcFormula) -> bool {
            match f {
                TrcFormula::Exists { .. } => true,
                TrcFormula::And(a, b) => positive_exists(a) || positive_exists(b),
                _ => false,
            }
        }
        let body = flat.branches[0].body_or_true();
        prop_assert!(!positive_exists(&body), "positive ∃ survived:\n{flat}");
    }

    #[test]
    fn begriffsschrift_round_trips_truth(q in arb_trc()) {
        // Close the query into a sentence, push it through Frege's
        // primitive basis and back, and compare truth values.
        let db = sailors_sample();
        let drc = relviz::rc::to_drc::trc_to_drc(&q, &db).unwrap();
        let closed = relviz::rc::drc::DrcFormula::exists(drc.head.clone(), drc.body.clone());
        let bs = relviz::diagrams::frege::Bs::from_drc(&closed).unwrap();
        let back = bs.to_drc();
        let truth = |f: &relviz::rc::drc::DrcFormula| {
            let q = relviz::rc::drc::DrcQuery { head: vec![], body: f.clone() };
            !relviz::rc::drc_eval::eval_drc(&q, &db).unwrap().is_empty()
        };
        prop_assert_eq!(truth(&closed), truth(&back), "Frege round trip\n{}\n{}", closed, back);
    }

    #[test]
    fn dataplay_tree_round_trips(q in arb_trc()) {
        // The generated ∃/¬∃ fragment is exactly DataPlay's tree fragment.
        let db = sailors_sample();
        let tree = relviz::diagrams::dataplay::DataPlayTree::from_trc(&q, &db).unwrap();
        let a = relviz::rc::trc_eval::eval_trc(&q, &db).unwrap();
        let b = relviz::rc::trc_eval::eval_trc(&tree.to_trc(), &db).unwrap();
        prop_assert!(a.same_contents(&b), "DataPlay round trip\n{q}");
    }

    #[test]
    fn dataplay_flip_is_an_involution(q in arb_trc()) {
        let db = sailors_sample();
        let tree = relviz::diagrams::dataplay::DataPlayTree::from_trc(&q, &db).unwrap();
        if !tree.constraints.is_empty() {
            let back = tree.flip(&[0]).unwrap().flip(&[0]).unwrap();
            prop_assert_eq!(&tree, &back);
        }
    }
}

// ---------- parser robustness -------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// No parser panics on arbitrary input — malformed text must come
    /// back as a typed error, never a crash (the pipeline of Fig. 1 faces
    /// machine-generated queries).
    #[test]
    fn parsers_never_panic(input in "\\PC{0,120}") {
        let _ = relviz::sql::parse_query(&input);
        let _ = relviz::rc::trc_parse::parse_trc(&input);
        let _ = relviz::rc::drc_parse::parse_drc(&input);
        let _ = relviz::datalog::parse::parse_program(&input);
        let _ = relviz::ra::parse::parse_ra(&input);
    }

    /// Near-miss SQL (token soup from the SQL alphabet) also never
    /// panics and never silently parses to an empty query.
    #[test]
    fn sql_token_soup_is_safe(
        tokens in proptest::collection::vec(
            proptest::sample::select(vec![
                "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "EXISTS", "IN",
                "UNION", "(", ")", ",", "*", "=", "<", "S", "Sailor", "sid",
                "'red'", "102", ".",
            ]),
            0..24,
        )
    ) {
        let text = tokens.join(" ");
        if let Ok(q) = relviz::sql::parse_query(&text) {
            // Anything that parses must print and re-parse to the same AST.
            let printed = relviz::sql::print_query(&q);
            let again = relviz::sql::parse_query(&printed).expect("printer output parses");
            prop_assert_eq!(q, again, "{}", printed);
        }
    }
}

// ---------- layout invariants -------------------------------------------------

use relviz::layout::boxes::{layout as box_layout, BoxNode, BoxOptions};
use relviz::layout::layered::{layout as layered_layout, GraphSpec, LayeredOptions};

/// Random nested box trees (depth ≤ 3, ≤ 4 children per box).
fn arb_box_tree() -> impl Strategy<Value = BoxNode> {
    let atom = (12.0..80.0f64, 10.0..30.0f64);
    let atoms = proptest::collection::vec(atom, 0..4);
    let leaf = atoms.clone().prop_map(BoxNode::leaf);
    leaf.prop_recursive(3, 24, 4, move |inner| {
        (
            proptest::collection::vec((12.0..80.0f64, 10.0..30.0f64), 0..3),
            proptest::collection::vec(inner, 0..4),
            0.0..18.0f64,
        )
            .prop_map(|(atoms, children, header)| {
                let mut n = BoxNode::with_children(atoms, children);
                n.header = header;
                n
            })
    })
}

/// Random DAG specs for the layered engine (edges point to higher ids —
/// acyclic by construction).
fn arb_dag() -> impl Strategy<Value = GraphSpec> {
    (2usize..10).prop_flat_map(|n| {
        let sizes = proptest::collection::vec((20.0..90.0f64, 14.0..30.0f64), n..=n);
        let edges = proptest::collection::vec((0..n, 0..n), 0..(2 * n));
        (sizes, edges).prop_map(|(sizes, edges)| {
            let mut g = GraphSpec::default();
            for (w, h) in sizes {
                g.add_node(w, h);
            }
            for (a, b) in edges {
                if a < b {
                    g.add_edge(a, b);
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Nested-box layout invariants: every child box and every atom lies
    /// strictly inside its parent box, and siblings never overlap.
    #[test]
    fn box_layout_respects_nesting(root in arb_box_tree()) {
        let l = box_layout(&root, BoxOptions::default());
        // Reconstruct the parent relation by walking the tree in the
        // same pre-order as the layout output.
        fn walk(
            node: &BoxNode,
            idx: &mut usize,
            parent: Option<usize>,
            parents: &mut Vec<Option<usize>>,
            child_sets: &mut Vec<Vec<usize>>,
        ) {
            let me = *idx;
            parents.push(parent);
            child_sets.push(Vec::new());
            if let Some(p) = parent {
                child_sets[p].push(me);
            }
            *idx += 1;
            for c in &node.children {
                walk(c, idx, Some(me), parents, child_sets);
            }
        }
        let mut parents = Vec::new();
        let mut children = Vec::new();
        walk(&root, &mut 0, None, &mut parents, &mut children);
        prop_assert_eq!(parents.len(), l.boxes.len());
        for (i, p) in parents.iter().enumerate() {
            if let Some(p) = p {
                prop_assert!(
                    l.boxes[*p].contains(&l.boxes[i]),
                    "box {i} escapes its parent {p}"
                );
            }
        }
        for kids in &children {
            for (a, &ka) in kids.iter().enumerate() {
                for &kb in kids.iter().skip(a + 1) {
                    prop_assert!(
                        !l.boxes[ka].intersects(&l.boxes[kb]),
                        "sibling boxes {ka} and {kb} overlap"
                    );
                }
            }
        }
        // Atoms sit inside their box.
        for (owner, rect) in &l.atoms {
            prop_assert!(l.boxes[*owner].contains(rect), "atom escapes box {owner}");
        }
    }

    /// Layered layout invariants: nodes in one layer never overlap, and
    /// every edge goes from a strictly lower layer to a higher one.
    #[test]
    fn layered_layout_is_consistent(spec in arb_dag()) {
        let l = layered_layout(&spec, LayeredOptions::default());
        prop_assert_eq!(l.nodes.len(), spec.nodes.len());
        for i in 0..l.nodes.len() {
            for j in (i + 1)..l.nodes.len() {
                if l.layers[i] == l.layers[j] {
                    prop_assert!(
                        !l.nodes[i].intersects(&l.nodes[j]),
                        "same-layer nodes {i} and {j} overlap"
                    );
                }
            }
        }
        for &(a, b) in &spec.edges {
            prop_assert!(
                l.layers[a] < l.layers[b],
                "edge {a}→{b} does not descend the layering"
            );
        }
        // Everything within the reported bounding size.
        for r in &l.nodes {
            prop_assert!(r.x >= -1e-6 && r.y >= -1e-6);
            prop_assert!(r.right() <= l.size.w + 1e-6 && r.bottom() <= l.size.h + 1e-6);
        }
    }

    /// SVG output is well-formed for random scenes: tags balance and
    /// coordinates are finite.
    #[test]
    fn svg_is_well_formed(root in arb_box_tree()) {
        let l = box_layout(&root, BoxOptions::default());
        let mut scene = relviz::render::Scene::new(0.0, 0.0);
        for r in &l.boxes {
            scene.rect(r.x, r.y, r.w, r.h);
        }
        for (_, r) in &l.atoms {
            scene.text(r.x, r.y + 10.0, "a");
        }
        scene.fit(8.0);
        let svg = relviz::render::svg::to_svg(&scene);
        prop_assert!(svg.starts_with("<svg"));
        prop_assert!(svg.ends_with("</svg>\n") || svg.ends_with("</svg>"));
        prop_assert_eq!(svg.matches("<rect").count(), l.boxes.len());
        prop_assert!(!svg.contains("NaN") && !svg.contains("inf"));
    }
}
