//! Cross-formalism integration along the tutorial's historical arc:
//! Euler (1768) → Venn (1880) → higraphs (1988), and the normalization
//! bridge that makes disjunctive queries drawable in the modern systems.

use relviz::diagrams::euler::{Categorical, EulerDiagram, Statement};
use relviz::diagrams::higraph::Higraph;
use relviz::diagrams::syllogism::statement_to_venn;
use relviz::diagrams::venn::VennDiagram;
use relviz::model::catalog::sailors_sample;

use Categorical::*;

/// Every Euler-drawable statement set embeds into a consistent higraph —
/// the superset relation Part 4's chronology implies.
#[test]
fn euler_configurations_embed_into_higraphs() {
    let sets: Vec<Vec<Statement>> = vec![
        vec![Statement::new(All, "A", "B"), Statement::new(All, "B", "C")],
        vec![Statement::new(No, "A", "B"), Statement::new(All, "C", "A")],
        vec![
            Statement::new(All, "dogs", "mammals"),
            Statement::new(No, "mammals", "reptiles"),
            Statement::new(Some, "pets", "mammals"),
        ],
    ];
    for stmts in sets {
        assert!(EulerDiagram::from_statements(&stmts).is_ok(), "{stmts:?}");
        let hg = Higraph::from_statements(&stmts).expect("higraph always builds");
        assert!(hg.is_consistent(), "{stmts:?}");
    }
}

/// Euler's drawing failures split into two kinds, and higraphs tell them
/// apart: genuine logical conflicts (higraph inconsistent too) versus
/// Euler's own topological commitments (higraph fine).
#[test]
fn higraphs_distinguish_logical_from_topological_failure() {
    // Genuine conflict: Some A is B ∧ No A is B.
    let conflict = [Statement::new(Some, "A", "B"), Statement::new(No, "A", "B")];
    assert!(EulerDiagram::from_statements(&conflict).is_err());
    let hg = Higraph::from_statements(&conflict).unwrap();
    assert!(!hg.is_consistent(), "a real contradiction stays contradictory");

    // Topological-only failure: All A B conflicts with an *unrelated*
    // disjointness chain in Euler, but the statements are satisfiable.
    let chain = [
        Statement::new(All, "A", "B"),
        Statement::new(All, "B", "C"),
        Statement::new(No, "A", "C"),
    ];
    assert!(EulerDiagram::from_statements(&chain).is_err());
    let hg = Higraph::from_statements(&chain).unwrap();
    // A ⊆ B ⊆ C plus A ∩ C = ∅ forces A empty — which Euler cannot draw
    // (circles have area) but which is logically satisfiable. The higraph
    // consistency check (which inherits existential import from the blob
    // reading) also flags it, matching Euler here:
    assert!(!hg.is_consistent());
}

/// The Venn region semantics agrees with Euler's consistency verdicts on
/// two-term statement sets (where both are defined) — under existential
/// import, which Euler bakes in.
#[test]
fn venn_agrees_with_euler_on_two_term_sets() {
    let pairs: Vec<(Statement, Statement)> = vec![
        (Statement::new(All, "A", "B"), Statement::new(No, "A", "B")),
        (Statement::new(Some, "A", "B"), Statement::new(No, "A", "B")),
        (Statement::new(All, "A", "B"), Statement::new(Some, "A", "B")),
    ];
    for (s1, s2) in pairs {
        let euler_ok = EulerDiagram::from_statements(&[s1.clone(), s2.clone()]).is_ok();
        let mut d = VennDiagram::new(vec!["S", "M", "P"]).unwrap();
        // Map A→S, B→M via the syllogism encoder.
        let map = |s: &Statement| Statement::new(s.form, "S", "M");
        statement_to_venn(&map(&s1), &mut d).unwrap();
        statement_to_venn(&map(&s2), &mut d).unwrap();
        // Existential import for the two terms used:
        let region_s = d.inside(0);
        let region_m = d.inside(1);
        d.add_xseq(region_s).unwrap();
        d.add_xseq(region_m).unwrap();
        let venn_ok = d.is_consistent();
        assert_eq!(
            euler_ok, venn_ok,
            "Euler and Venn disagree on {{{s1}, {s2}}}"
        );
    }
}

/// The normalization bridge: Q3's OR form flows through
/// lift_disjunctions into a two-partition Relational Diagram whose
/// round-trip still evaluates correctly.
#[test]
fn normalized_disjunction_reaches_the_renderer() {
    let db = sailors_sample();
    let sql = "SELECT DISTINCT S.sname FROM Sailor S, Reserves R, Boat B \
               WHERE S.sid = R.sid AND R.bid = B.bid AND \
               (B.color = 'red' OR B.color = 'green')";
    let trc = relviz::rc::from_sql::parse_sql_to_trc(sql, &db).unwrap();
    let normalized = relviz::rc::normalize::lift_disjunctions(&trc);
    let d = relviz::diagrams::reldiag::RelationalDiagram::from_trc(&normalized, &db).unwrap();
    assert_eq!(d.partitions.len(), 2);
    let svg = relviz::render::svg::to_svg(&d.scene());
    assert!(svg.contains("stroke-dasharray"), "partition separator expected");
    // Semantics survive the whole chain.
    let direct = relviz::sql::eval::run_sql(sql, &db).unwrap();
    let via_diagram = relviz::rc::trc_eval::eval_trc(&d.to_trc(), &db).unwrap();
    assert!(direct.same_contents(&via_diagram));
}

/// DRC → TRC → Relational Diagram: the full path from the domain calculus
/// (the diagrammatic-reasoning community's language) into the modern
/// database formalism.
#[test]
fn drc_queries_reach_relational_diagrams() {
    let db = sailors_sample();
    let drc = relviz::rc::drc_parse::parse_drc(
        "{n | exists s, rt, a: (Sailor(s, n, rt, a) and \
          not exists b, bn: (Boat(b, bn, 'red') and \
          not exists d: (Reserves(s, b, d))))}",
    )
    .unwrap();
    let trc = relviz::rc::from_drc::drc_to_trc(&drc, &db).unwrap();
    let diagram = relviz::diagrams::reldiag::RelationalDiagram::from_trc(&trc, &db).unwrap();
    let (_, boxes, tables, _, _) = diagram.census();
    assert_eq!(boxes, 3, "Q5's two nested negations plus the root");
    assert_eq!(tables, 3);
    let a = relviz::rc::drc_eval::eval_drc(&drc, &db).unwrap();
    let b = relviz::rc::trc_eval::eval_trc(&diagram.to_trc(), &db).unwrap();
    assert!(a.same_contents(&b));
}
