//! Cross-crate integration: diagrams round-trip and render for the whole
//! suite, across formalisms and backends.

use relviz::core::suite::SUITE;
use relviz::core::{Backend, QueryVisualizer, VisFormalism};
use relviz::diagrams::capability::{try_build, Capability, Formalism};
use relviz::diagrams::reldiag::RelationalDiagram;
use relviz::model::catalog::sailors_sample;

#[test]
fn relational_diagrams_round_trip_the_suite() {
    let db = sailors_sample();
    for q in SUITE {
        let trc = relviz::rc::from_sql::parse_sql_to_trc(q.sql, &db).unwrap();
        let d = RelationalDiagram::from_trc(&trc, &db)
            .unwrap_or_else(|e| panic!("{}: {e}", q.id));
        let back = d.to_trc();
        let orig = relviz::rc::trc_eval::eval_trc(&trc, &db).unwrap();
        let rt = relviz::rc::trc_eval::eval_trc(&back, &db)
            .unwrap_or_else(|e| panic!("{}: {back}: {e}", q.id));
        assert!(orig.same_contents(&rt), "{} round trip\nback: {back}", q.id);
    }
}

#[test]
fn every_formalism_renders_what_it_claims_to_support() {
    let db = sailors_sample();
    for q in SUITE {
        for f in Formalism::ALL {
            match try_build(f, q.sql, &db).unwrap_or_else(|e| panic!("{} {}: {e}", q.id, f.name()))
            {
                Capability::Drawable { elements } | Capability::DrawableVia { elements, .. } => {
                    assert!(elements > 0, "{} {} claims drawable with 0 elements", q.id, f.name());
                }
                Capability::Unsupported { feature } => {
                    assert!(
                        !feature.is_empty(),
                        "{} {}: unsupported without a reason",
                        q.id,
                        f.name()
                    );
                }
            }
        }
    }
}

#[test]
fn pipeline_svg_and_ascii_for_supported_pairs() {
    let db = sailors_sample();
    let mut rendered = 0;
    for q in SUITE {
        for f in VisFormalism::ALL {
            for backend in [Backend::Svg, Backend::Ascii] {
                let viz = QueryVisualizer::new(f, backend);
                if let Ok(out) = viz.visualize(q.sql, &db) {
                    match backend {
                        Backend::Svg => {
                            assert!(out.rendering.starts_with("<svg"), "{} {}", q.id, f.name());
                            assert!(out.rendering.trim_end().ends_with("</svg>"));
                        }
                        Backend::Ascii => {
                            assert!(!out.rendering.trim().is_empty(), "{} {}", q.id, f.name());
                        }
                    }
                    rendered += 1;
                }
            }
        }
    }
    // At minimum, Relational Diagrams and DFQL support everything.
    assert!(rendered >= 2 * 2 * SUITE.len(), "only {rendered} renderings");
}

#[test]
fn beta_ambiguity_vs_relational_diagram_determinism() {
    // E3's claim as an integration test: for Q5 (as a closed sentence),
    // Relational Diagrams read back to exactly one query, while a
    // boundary-drawn beta graph admits several readings.
    use relviz::diagrams::peirce::beta::{BetaGraph, BetaItem, Hook, Line};
    let db = sailors_sample();

    let q5 = relviz::core::suite::by_id("Q5").unwrap();
    let trc = relviz::rc::from_sql::parse_sql_to_trc(q5.sql, &db).unwrap();
    let d = RelationalDiagram::from_trc(&trc, &db).unwrap();
    // to_trc is a function — one reading, always.
    assert_eq!(d.to_trc().branches.len(), 1);

    let ambiguous = BetaGraph {
        items: vec![BetaItem::Cut {
            id: 0,
            items: vec![BetaItem::pred("Sailor", vec![
                Hook::Line(0),
                Hook::Line(1),
                Hook::Line(2),
                Hook::Line(3),
            ])],
        }],
        lines: vec![
            Line { scope: None },
            Line { scope: Some(vec![0]) },
            Line { scope: Some(vec![0]) },
            Line { scope: Some(vec![0]) },
        ],
    };
    assert!(ambiguous.readings().unwrap().len() > 1);
}

#[test]
fn qbe_vs_datalog_census_for_division() {
    // E6's claim: QBE needs multiple steps for Q5, Datalog needs multiple
    // rules; element counts are comparable — QBE is Datalog in a grid.
    let db = sailors_sample();
    let q5 = relviz::core::suite::by_id("Q5").unwrap();
    let prog = relviz::datalog::parse::parse_program(q5.datalog).unwrap();
    let qbe = relviz::diagrams::qbe::QbeProgram::from_datalog(&prog, &db).unwrap();
    let (steps, tables, rows, _, _) = qbe.census();
    assert!(steps >= 3, "division should need ≥3 QBE steps, got {steps}");
    assert_eq!(prog.rules.len(), 3);
    assert!(tables >= prog.rules.len());
    assert!(rows >= prog.rules.len());
}
