//! Golden-file tests: the ASCII renderings of the suite queries are
//! deterministic, so they are checked against committed goldens — a
//! regression net for parser, translator, diagram builder, layout and
//! renderer at once (a change in any stage shows up as a readable text
//! diff).
//!
//! Regenerate with `UPDATE_GOLDENS=1 cargo test --test golden`.

use std::path::PathBuf;

use relviz::core::suite::SUITE;
use relviz::core::{Backend, QueryVisualizer, VisFormalism};
use relviz::model::catalog::sailors_sample;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens")
}

fn check_or_update(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var("UPDATE_GOLDENS").is_ok() {
        std::fs::create_dir_all(golden_dir()).expect("can create goldens dir");
        std::fs::write(&path, actual).expect("can write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}\nrun UPDATE_GOLDENS=1 cargo test --test golden", path.display()));
    assert_eq!(
        expected, actual,
        "golden mismatch for {name} — if intentional, rerun with UPDATE_GOLDENS=1"
    );
}

#[test]
fn ascii_goldens_for_reldiag() {
    let db = sailors_sample();
    let viz = QueryVisualizer::new(VisFormalism::RelationalDiagrams, Backend::Ascii);
    for q in SUITE {
        let out = viz.visualize(q.sql, &db).unwrap_or_else(|e| panic!("{}: {e}", q.id));
        check_or_update(&format!("{}-reldiag.txt", q.id), &out.rendering);
    }
}

#[test]
fn ascii_goldens_for_queryvis() {
    let db = sailors_sample();
    let viz = QueryVisualizer::new(VisFormalism::QueryVis, Backend::Ascii);
    for q in SUITE {
        if q.id == "Q3" {
            continue; // union: unsupported by QueryVis (E5)
        }
        let out = viz.visualize(q.sql, &db).unwrap_or_else(|e| panic!("{}: {e}", q.id));
        check_or_update(&format!("{}-queryvis.txt", q.id), &out.rendering);
    }
}

#[test]
fn svg_golden_for_q5() {
    let db = sailors_sample();
    for (f, name) in [
        (VisFormalism::RelationalDiagrams, "Q5-reldiag.svg"),
        (VisFormalism::Dfql, "Q5-dfql.svg"),
    ] {
        let viz = QueryVisualizer::new(f, Backend::Svg);
        let out = viz
            .visualize(relviz::core::suite::by_id("Q5").unwrap().sql, &db)
            .unwrap();
        check_or_update(name, &out.rendering);
    }
}

#[test]
fn trc_goldens() {
    // The canonical TRC the translator produces — locks the SQL→TRC shape.
    let db = sailors_sample();
    let mut all = String::new();
    for q in SUITE {
        let trc = relviz::rc::from_sql::parse_sql_to_trc(q.sql, &db).unwrap();
        all.push_str(q.id);
        all.push_str(": ");
        all.push_str(&trc.to_string());
        all.push('\n');
    }
    check_or_update("suite-trc.txt", &all);
}

#[test]
fn ascii_goldens_for_begriffsschrift() {
    // The 2D ladders for the suite's closed sentences (heads closed
    // existentially — Begriffsschrift asserts statements).
    let db = sailors_sample();
    for q in SUITE {
        let trc = match relviz::rc::from_sql::parse_sql_to_trc(q.sql, &db) {
            Ok(t) => t,
            Err(_) => continue,
        };
        let Ok(drc) = relviz::rc::to_drc::trc_to_drc(&trc, &db) else {
            continue;
        };
        let closed =
            relviz::rc::drc::DrcFormula::exists(drc.head.clone(), drc.body.clone());
        let bs = relviz::diagrams::frege::Bs::from_drc(&closed)
            .unwrap_or_else(|e| panic!("{}: {e}", q.id));
        check_or_update(&format!("{}-frege.txt", q.id), &bs.ascii());
    }
}

#[test]
fn ascii_golden_for_sieuferd_sheet() {
    let db = sailors_sample();
    let sheet = relviz::diagrams::sieuferd::SieuferdSheet::from_sql(
        "SELECT S.sname, B.bname FROM Sailor S, Reserves R, Boat B \
         WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'red'",
        &db,
    )
    .expect("conjunctive tree join");
    check_or_update("Q2-sieuferd.txt", &sheet.ascii(&db).expect("evaluates"));
}

#[test]
fn explain_goldens_for_suite_plans() {
    // The physical plans the exec engine chooses for every suite query,
    // from both the RA and the TRC form — locks the planner's shape
    // (hash-key extraction, semi-/anti-join decorrelation, dedup
    // placement). Any planner change shows up as a readable plan diff.
    // Each plan carries the static verifier's footer, so the golden also
    // pins that every suite plan satisfies the IR contract.
    let db = sailors_sample();
    let mut all = String::new();
    for q in SUITE {
        let ra = relviz::ra::parse::parse_ra(q.ra).unwrap_or_else(|e| panic!("{}: {e}", q.id));
        let ra_plan = relviz::exec::plan_ra(&ra, &db).unwrap_or_else(|e| panic!("{}: {e}", q.id));
        all.push_str(&format!(
            "== {} (ra) ==\n{}",
            q.id,
            relviz::exec::explain_verified(&ra_plan)
        ));
        let trc =
            relviz::rc::trc_parse::parse_trc(q.trc).unwrap_or_else(|e| panic!("{}: {e}", q.id));
        let trc_plan =
            relviz::exec::plan_trc(&trc, &db).unwrap_or_else(|e| panic!("{}: {e}", q.id));
        all.push_str(&format!(
            "== {} (trc) ==\n{}",
            q.id,
            relviz::exec::explain_verified(&trc_plan)
        ));
    }
    check_or_update("suite-plans.txt", &all);
}

#[test]
fn explain_goldens_for_datalog_plans() {
    // The recursive-query plans of the fixpoint subsystem: the suite's
    // Datalog forms plus the canonical recursive workloads (transitive
    // closure, same-generation). Locks the stratum layering, the
    // hash-join chains, anti-join negation, and the per-occurrence
    // delta variants of semi-naive evaluation.
    let db = sailors_sample();
    let mut all = String::new();
    for q in SUITE {
        let prog = relviz::datalog::parse::parse_program(q.datalog)
            .unwrap_or_else(|e| panic!("{}: {e}", q.id));
        let plan = relviz::exec::plan_datalog(&prog, &db)
            .unwrap_or_else(|e| panic!("{}: {e}", q.id));
        all.push_str(&format!(
            "== {} (datalog) ==\n{}",
            q.id,
            relviz::exec::explain_datalog_verified(&plan)
        ));
    }
    let db2 = relviz::model::generate::generate_binary_pair(11, 30, 12);
    for (id, src) in [
        ("TC", "tc(X, Y) :- R(X, Y).\ntc(X, Z) :- tc(X, Y), R(Y, Z)."),
        (
            "SG",
            "% query: sg\n\
             sg(X, X) :- R(X, Y).\n\
             sg(X, Y) :- R(XP, X), sg(XP, YP), R(YP, Y).",
        ),
    ] {
        let prog = relviz::datalog::parse::parse_program(src).unwrap();
        let plan = relviz::exec::plan_datalog(&prog, &db2)
            .unwrap_or_else(|e| panic!("{id}: {e}"));
        all.push_str(&format!(
            "== {id} (datalog) ==\n{}",
            relviz::exec::explain_datalog_verified(&plan)
        ));
    }
    check_or_update("datalog-plans.txt", &all);
}

#[test]
fn explain_goldens_for_magic_plans() {
    // The magic-sets demand transformation on the canonical bound-goal
    // recursive workloads: pins the generated magic/adorned program
    // text (seed facts, guard rules, adornment renames) and the
    // fixpoint plan it lowers to — the shape `eval_datalog` actually
    // executes with the optimizer on.
    let db = relviz::model::generate::generate_binary_pair(11, 30, 12);
    let mut all = String::new();
    for (id, src) in [
        (
            "TC(1,·)",
            "% query: q\n\
             tc(X, Y) :- R(X, Y).\n\
             tc(X, Z) :- tc(X, Y), R(Y, Z).\n\
             q(Y) :- tc(1, Y).",
        ),
        (
            "SG(1,·)",
            "% query: q\n\
             sg(X, X) :- R(X, Y).\n\
             sg(X, Y) :- R(XP, X), sg(XP, YP), R(YP, Y).\n\
             q(Y) :- sg(1, Y).",
        ),
    ] {
        let prog = relviz::datalog::parse::parse_program(src).unwrap();
        let magic = relviz::exec::magic_transform(&prog)
            .unwrap_or_else(|| panic!("{id}: bound goal must transform"));
        let plan = relviz::exec::plan_datalog(&magic, &db)
            .unwrap_or_else(|e| panic!("{id}: {e}"));
        all.push_str(&format!(
            "== {id} (magic program) ==\n{magic}\n== {id} (magic plan) ==\n{}",
            relviz::exec::explain_datalog_verified(&plan)
        ));
    }
    check_or_update("magic-plans.txt", &all);
}

#[test]
fn explain_goldens_for_parallel_plans() {
    // The parallel engine's view of representative plans at 4 workers:
    // partitioned operators (`part ∥4` / `chunk ∥4`), prewarm levels on
    // `Shared` sub-plans, and stratum dependency levels (same level =
    // evaluates concurrently). Serial EXPLAIN output is untouched —
    // annotations only appear through `explain_parallel`.
    let db = sailors_sample();
    let mut all = String::new();
    for id in ["Q2", "Q5"] {
        let q = relviz::core::suite::by_id(id).unwrap();
        let trc = relviz::rc::trc_parse::parse_trc(q.trc).unwrap();
        let plan = relviz::exec::plan_trc(&trc, &db).unwrap();
        all.push_str(&format!(
            "== {id} (trc, parallel ×4) ==\n{}",
            relviz::exec::explain_parallel(&plan, 4)
        ));
    }
    let db2 = relviz::model::generate::generate_binary_pair(11, 30, 12);
    for (id, src) in [
        ("TC", "tc(X, Y) :- R(X, Y).\ntc(X, Z) :- tc(X, Y), R(Y, Z)."),
        (
            "UNREACHED",
            "% query: unreached\n\
             tc(X, Y) :- R(X, Y).\n\
             tc(X, Z) :- tc(X, Y), R(Y, Z).\n\
             node(X) :- R(X, Y).\n\
             node(Y) :- R(X, Y).\n\
             unreached(X, Y) :- node(X), node(Y), not tc(X, Y).",
        ),
    ] {
        let prog = relviz::datalog::parse::parse_program(src).unwrap();
        let plan = relviz::exec::plan_datalog(&prog, &db2).unwrap();
        all.push_str(&format!(
            "== {id} (datalog, parallel ×4) ==\n{}",
            relviz::exec::explain_datalog_parallel(&plan, 4)
        ));
    }
    check_or_update("parallel-plans.txt", &all);
}

#[test]
fn ascii_goldens_for_syntax_mirror_fingerprints() {
    // The Visual SQL fingerprints of the whole suite: any change to the
    // SQL parser, printer or the frame builder shows as a text diff.
    let db = sailors_sample();
    let mut out = String::new();
    for q in SUITE {
        let d = relviz::diagrams::visualsql::VisualSqlDiagram::from_sql(q.sql, &db)
            .unwrap_or_else(|e| panic!("{}: {e}", q.id));
        out.push_str(q.id);
        out.push(' ');
        out.push_str(&d.fingerprint());
        out.push('\n');
    }
    check_or_update("suite-visualsql-fingerprints.txt", &out);
}

#[test]
fn diagnostics_golden_for_verifier_and_analyzer() {
    // The verifier/analyzer's *textual* contract: clean verification
    // lines for every suite query, then the exact diagnostics for a
    // curated set of ill-formed programs and hand-mutated plans. Any
    // change to a code, span or message shows as a readable diff.
    use relviz::exec::{
        analyze_program, render_diagnostics, verification_footer, verify_fixpoint, verify_plan,
    };
    let db = sailors_sample();
    let mut all = String::new();

    all.push_str("== suite (trc plans) ==\n");
    for q in SUITE {
        let trc = relviz::rc::trc_parse::parse_trc(q.trc).unwrap();
        let plan = relviz::exec::plan_trc(&trc, &db).unwrap();
        let diags = verify_plan(&plan, Some(&db));
        all.push_str(&format!("{}: {}", q.id, verification_footer(plan.node_count(), &diags)));
    }

    all.push_str("== suite (datalog analysis) ==\n");
    for q in SUITE {
        let prog = relviz::datalog::parse::parse_program(q.datalog).unwrap();
        let diags = analyze_program(&prog, &db);
        all.push_str(&format!("{}:\n", q.id));
        let rendered = render_diagnostics(&diags);
        all.push_str(if rendered.is_empty() { "  (clean)\n" } else { &rendered });
    }

    // Curated ill-formed programs: each triggers a distinct analysis.
    for (title, src) in [
        (
            "unstratifiable negation",
            "p(X) :- Boat(X, N, C), not q(X).\nq(X) :- Boat(X, N, C), p(X).",
        ),
        (
            "lints: cartesian product, dead rule, unused predicate",
            "% query: ans\n\
             ans(X) :- Sailor(X, N, R, A), Boat(B, BN, C).\n\
             ans(X) :- Sailor(X, N, R, A), Boat(B, BN, C).\n\
             orphan(X) :- Boat(X, N, C).",
        ),
        (
            "always-empty body",
            "% query: ans\nans(X) :- Boat(X, N, C), X < X, 1 > 2.",
        ),
        ("head/body arity disagreement", "p(X) :- Boat(X, N, C).\np(X, Y) :- R(X, Y)."),
    ] {
        all.push_str(&format!("== ill-formed: {title} ==\n"));
        match relviz::datalog::parse::parse_program(src) {
            Ok(prog) => all.push_str(&render_diagnostics(&analyze_program(&prog, &db))),
            Err(e) => all.push_str(&format!("parse error: {e}\n")),
        }
    }

    // Hand-mutated plans: the rejection messages of the plan walker.
    all.push_str("== ill-formed: out-of-bounds projection ==\n");
    let bad = relviz::exec::PhysPlan::Project {
        cols: vec![relviz::exec::OutputCol::Pos(9)],
        input: Box::new(relviz::exec::PhysPlan::Scan {
            rel: "Sailor".to_string(),
            schema: db.schema("Sailor").unwrap().clone(),
        }),
        schema: relviz::model::Schema::of(&[("x", relviz::model::DataType::Any)]),
    };
    all.push_str(&render_diagnostics(&verify_plan(&bad, Some(&db))));

    all.push_str("== ill-formed: delta-less recursive rule ==\n");
    let db2 = relviz::model::generate::generate_binary_pair(11, 30, 12);
    let prog = relviz::datalog::parse::parse_program(
        "tc(X, Y) :- R(X, Y).\ntc(X, Z) :- tc(X, Y), R(Y, Z).",
    )
    .unwrap();
    let mut plan = relviz::exec::plan_datalog(&prog, &db2).unwrap();
    for s in &mut plan.strata {
        for r in &mut s.rules {
            r.deltas.clear();
        }
    }
    all.push_str(&render_diagnostics(&verify_fixpoint(&plan, Some(&db2))));

    check_or_update("verify-diagnostics.txt", &all);
}
