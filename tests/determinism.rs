//! Determinism pinning for the parallel engine: scheduling must
//! **never** leak into results.
//!
//! Every suite query (TRC and Datalog forms), the canonical recursive
//! fixpoints (TC, SG), and a partition-sized join workload run **16
//! times each** across varying thread counts (1, 2, 4, 8 — cycled, so
//! each count runs four times), and every run's `model::text` rendering
//! must be **byte-identical** to the serial engine's. The sorted
//! set-semantics `Relation` is the determinism anchor: partitioned
//! probes concatenate in range order, fixpoint rounds merge at a
//! barrier in rule order, and the final relation orders by the total
//! order of values — so not only the set but the bytes must match, on
//! every schedule the OS happens to produce.

use relviz::exec::{self, Engine};
use relviz::model::catalog::sailors_sample;
use relviz::model::generate::{generate_binary_pair, generate_sailors, GenConfig};
use relviz::model::{text, Database, Relation};

/// The 16 runs: each thread count four times, interleaved so
/// consecutive runs change the schedule shape.
const THREAD_CYCLE: [usize; 4] = [1, 2, 4, 8];
const RUNS: usize = 16;

/// Renders a result through `model::text` — the byte-level anchor.
fn render(name: &str, rel: &Relation) -> String {
    let mut db = Database::new();
    db.set(name, rel.clone());
    text::dump_database(&db)
}

/// Runs `eval` 16× across the thread cycle, asserting every rendering
/// equals `baseline` byte for byte.
fn pin(what: &str, baseline: &str, eval: impl Fn(usize) -> String) {
    for run in 0..RUNS {
        let threads = THREAD_CYCLE[run % THREAD_CYCLE.len()];
        let got = eval(threads);
        assert_eq!(
            got, baseline,
            "{what}: run {run} at {threads} threads diverged from the serial rendering"
        );
    }
}

#[test]
fn suite_queries_render_identically_on_every_schedule() {
    let db = sailors_sample();
    for q in relviz::core::suite::SUITE {
        let trc = relviz::rc::trc_parse::parse_trc(q.trc).unwrap();
        let serial = render(
            "out",
            &exec::eval_trc(Engine::Indexed, &trc, &db).unwrap(),
        );
        pin(&format!("{} (trc)", q.id), &serial, |t| {
            render(
                "out",
                &exec::eval_trc(Engine::Parallel(t), &trc, &db).unwrap(),
            )
        });

        let dl = relviz::datalog::parse::parse_program(q.datalog).unwrap();
        let serial = render(
            "out",
            &exec::eval_datalog(Engine::Indexed, &dl, &db).unwrap(),
        );
        pin(&format!("{} (datalog)", q.id), &serial, |t| {
            render(
                "out",
                &exec::eval_datalog(Engine::Parallel(t), &dl, &db).unwrap(),
            )
        });
    }
}

/// Recursive fixpoints: every IDB predicate of TC and SG, 16× —
/// parallel round-0 rules, delta rounds, and the parallel final sort
/// all feed into the pinned bytes.
#[test]
fn recursive_fixpoints_render_identically_on_every_schedule() {
    for (what, src, db) in [
        (
            "tc",
            "tc(X, Y) :- R(X, Y).\n\
             tc(X, Z) :- tc(X, Y), R(Y, Z).",
            generate_binary_pair(0xD1A6, 400, 200),
        ),
        (
            "sg",
            "% query: sg\n\
             sg(X, X) :- R(X, Y).\n\
             sg(X, X) :- R(Y, X).\n\
             sg(X, Y) :- R(XP, X), sg(XP, YP), R(YP, Y).",
            generate_binary_pair(0x56AA, 200, 100),
        ),
        (
            // Independent strata (tc ∥ node at level 0) + negation above.
            "unreached",
            "% query: unreached\n\
             tc(X, Y) :- R(X, Y).\n\
             tc(X, Z) :- tc(X, Y), R(Y, Z).\n\
             node(X) :- R(X, Y).\n\
             node(Y) :- R(X, Y).\n\
             unreached(X, Y) :- node(X), node(Y), not tc(X, Y).",
            generate_binary_pair(0x7E57, 60, 40),
        ),
    ] {
        let prog = relviz::datalog::parse::parse_program(src).unwrap();
        let all = exec::eval_datalog_all(Engine::Indexed, &prog, &db).unwrap();
        let mut serial_db = Database::new();
        let mut names: Vec<_> = all.keys().cloned().collect();
        names.sort();
        for n in &names {
            serial_db.set(n.clone(), all[n].clone());
        }
        let serial = text::dump_database(&serial_db);
        pin(what, &serial, |t| {
            let all = exec::eval_datalog_all(Engine::Parallel(t), &prog, &db).unwrap();
            let mut pdb = Database::new();
            for n in &names {
                pdb.set(n.clone(), all[n].clone());
            }
            text::dump_database(&pdb)
        });
    }
}

/// A workload sized past the partition thresholds (build ≥ 1024 rows,
/// probe ≥ 1024 rows, output ≥ 1024 rows), so the 16 runs genuinely
/// take the partitioned build/probe and parallel-sort paths.
#[test]
fn partitioned_joins_render_identically_on_every_schedule() {
    let db = generate_sailors(&GenConfig {
        seed: 0xACE,
        sailors: 1500,
        boats: 40,
        reservations: 2200,
    });
    let e = relviz::ra::parse::parse_ra(
        "Project[sname, bid](Select[s_sid = sid](Product(\
         Rename[sid -> s_sid](Sailor), Reserves)))",
    )
    .unwrap();
    let serial = render("out", &exec::eval_ra(Engine::Indexed, &e, &db).unwrap());
    pin("partitioned join", &serial, |t| {
        render("out", &exec::eval_ra(Engine::Parallel(t), &e, &db).unwrap())
    });
}
