//! Differential testing of the physical engine against the reference RA
//! evaluator: random databases (via `model::generate`) × random
//! **well-typed** RA expressions, asserting `same_contents` on every
//! pair of results.
//!
//! The expression generator builds expressions that are well-typed *by
//! construction* (schemas tracked alongside), so every case exercises
//! both engines end to end — there is no "ill-typed, skipped" escape
//! hatch. The vendored proptest is deterministic (seeded per test name),
//! so failures reproduce exactly.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use relviz::exec::{execute, plan_ra};
use relviz::model::generate::{generate_binary_pair, generate_sailors, GenConfig};
use relviz::model::{CmpOp, Database, DataType, Value};
use relviz::ra::{Operand, Predicate, RaExpr};

// ---------------------------------------------------------------------------
// Random well-typed expression generation
// ---------------------------------------------------------------------------

/// Tracks an expression together with its (name, type) output schema.
#[derive(Clone)]
struct Typed {
    expr: RaExpr,
    schema: Vec<(String, DataType)>,
}

struct Gen<'a> {
    rng: StdRng,
    db: &'a Database,
    /// Fresh-name counter for renames (avoids all collisions).
    fresh: usize,
}

impl<'a> Gen<'a> {
    fn new(seed: u64, db: &'a Database) -> Self {
        Gen { rng: StdRng::seed_from_u64(seed), db, fresh: 0 }
    }

    fn pick<'b, T>(&mut self, items: &'b [T]) -> &'b T {
        &items[self.rng.gen_range(0..items.len())]
    }

    fn leaf(&mut self) -> Typed {
        let names: Vec<&str> = self.db.names().collect();
        let name = *self.pick(&names);
        let schema = self
            .db
            .schema(name)
            .unwrap()
            .attrs()
            .iter()
            .map(|a| (a.name.clone(), a.ty))
            .collect();
        Typed { expr: RaExpr::relation(name), schema }
    }

    fn const_for(&mut self, ty: DataType) -> Value {
        match ty {
            DataType::Int => Value::Int(self.rng.gen_range(0..120i64)),
            DataType::Float => Value::Float(self.rng.gen_range(0..80i64) as f64 + 0.5),
            DataType::Str => {
                Value::str(*self.pick(&["red", "green", "blue", "dustin", "Interlake", "x"]))
            }
            DataType::Bool => Value::Bool(self.rng.gen_bool(0.5)),
            DataType::Any => Value::Null,
        }
    }

    /// A random comparison over `schema` (attr vs const, or attr vs attr
    /// of a unifiable type).
    fn comparison(&mut self, schema: &[(String, DataType)]) -> Predicate {
        let (name, ty) = self.pick(schema).clone();
        let op = *self.pick(&CmpOp::ALL);
        let attr_partners: Vec<&(String, DataType)> = schema
            .iter()
            .filter(|(n, t)| *n != name && t.unify(ty).is_some())
            .collect();
        let right = if !attr_partners.is_empty() && self.rng.gen_bool(0.4) {
            Operand::Attr(self.pick(&attr_partners).0.clone())
        } else {
            Operand::Const(self.const_for(ty))
        };
        Predicate::cmp(Operand::attr(name), op, right)
    }

    fn predicate(&mut self, schema: &[(String, DataType)], budget: usize) -> Predicate {
        if budget == 0 || self.rng.gen_bool(0.55) {
            return self.comparison(schema);
        }
        let a = self.predicate(schema, budget - 1);
        let b = self.predicate(schema, budget - 1);
        match self.rng.gen_range(0..3) {
            0 => a.and(b),
            1 => a.or(b),
            _ => a.not(),
        }
    }

    /// A chain of unary operators (select / project / rename) on top.
    fn unary(&mut self, mut t: Typed, steps: usize) -> Typed {
        for _ in 0..steps {
            match self.rng.gen_range(0..3) {
                0 => {
                    let pred = self.predicate(&t.schema, 2);
                    t = Typed { expr: t.expr.select(pred), schema: t.schema };
                }
                1 => {
                    // Random non-empty projection, random order.
                    let mut idx: Vec<usize> = (0..t.schema.len()).collect();
                    for i in (1..idx.len()).rev() {
                        let j = self.rng.gen_range(0..=i);
                        idx.swap(i, j);
                    }
                    idx.truncate(self.rng.gen_range(1..=t.schema.len()));
                    let names: Vec<String> =
                        idx.iter().map(|&i| t.schema[i].0.clone()).collect();
                    let schema = idx.iter().map(|&i| t.schema[i].clone()).collect();
                    t = Typed { expr: t.expr.project(names), schema };
                }
                _ => {
                    let i = self.rng.gen_range(0..t.schema.len());
                    let fresh = format!("x{}", self.fresh);
                    self.fresh += 1;
                    let (old, ty) = t.schema[i].clone();
                    let mut schema = t.schema.clone();
                    schema[i] = (fresh.clone(), ty);
                    t = Typed { expr: t.expr.rename(old, fresh), schema };
                }
            }
        }
        t
    }

    /// Renames every attribute to a fresh name (for disjoint products).
    fn rename_all_fresh(&mut self, t: Typed) -> Typed {
        let mut expr = t.expr;
        let mut schema = Vec::with_capacity(t.schema.len());
        for (old, ty) in t.schema {
            let fresh = format!("x{}", self.fresh);
            self.fresh += 1;
            expr = expr.rename(old, fresh.clone());
            schema.push((fresh, ty));
        }
        Typed { expr, schema }
    }

    /// A join-shaped expression over one or two decorated leaves.
    fn joined(&mut self) -> Typed {
        let steps = self.rng.gen_range(0..3);
        let left = {
            let l = self.leaf();
            self.unary(l, steps)
        };
        match self.rng.gen_range(0..4) {
            // Natural join (shared names come from the base schemas).
            0 => {
                let r = self.leaf();
                let steps = self.rng.gen_range(0..2);
                let right = self.unary(r, steps);
                let mut schema = left.schema.clone();
                for (n, ty) in &right.schema {
                    if !schema.iter().any(|(m, _)| m == n) {
                        schema.push((n.clone(), *ty));
                    }
                }
                Typed { expr: left.expr.natural_join(right.expr), schema }
            }
            // θ-join on freshly-renamed right side: always an equality
            // conjunct when a type-compatible pair exists.
            1 => {
                let r = self.leaf();
                let steps = self.rng.gen_range(0..2);
                let r = self.unary(r, steps);
                let right = self.rename_all_fresh(r);
                let mut pred: Option<Predicate> = None;
                'outer: for (ln, lt) in &left.schema {
                    for (rn, rt) in &right.schema {
                        if lt == rt {
                            pred = Some(Predicate::eq(
                                Operand::attr(ln.clone()),
                                Operand::attr(rn.clone()),
                            ));
                            break 'outer;
                        }
                    }
                }
                let mut schema = left.schema.clone();
                schema.extend(right.schema.clone());
                let pred = pred.unwrap_or(Predicate::Const(true));
                let pred = if self.rng.gen_bool(0.4) {
                    pred.and(self.comparison(&schema))
                } else {
                    pred
                };
                Typed { expr: left.expr.theta_join(pred, right.expr), schema }
            }
            // Set operation against a selection of the same expression
            // (union-compatible by construction).
            2 => {
                let p = self.predicate(&left.schema, 1);
                let sel = left.expr.clone().select(p);
                let expr = match self.rng.gen_range(0..3) {
                    0 => left.expr.union(sel),
                    1 => left.expr.intersect(sel),
                    _ => left.expr.difference(sel),
                };
                Typed { expr, schema: left.schema }
            }
            // Division: dividend = base relation with ≥2 attrs, divisor =
            // a selected projection of the same relation's last column.
            _ => {
                let mut base = self.leaf();
                while base.schema.len() < 2 {
                    base = self.leaf();
                }
                let (div_name, _) = base.schema.last().unwrap().clone();
                let p = self.predicate(&base.schema, 1);
                let divisor = base.expr.clone().select(p).project(vec![div_name.clone()]);
                let schema: Vec<(String, DataType)> = base
                    .schema
                    .iter()
                    .filter(|(n, _)| *n != div_name)
                    .cloned()
                    .collect();
                Typed { expr: base.expr.divide(divisor), schema }
            }
        }
    }

    /// Top-level: unary decoration over a join/leaf, occasionally one
    /// more binary combinator on top (≤ 4 base-relation leaves total, so
    /// reference evaluation stays cheap even for pure products).
    fn expression(&mut self) -> RaExpr {
        let a = self.joined();
        let steps = self.rng.gen_range(0..2);
        let a = self.unary(a, steps);
        if self.rng.gen_bool(0.25) {
            let p = self.predicate(&a.schema, 1);
            let sel = a.expr.clone().select(p);
            return match self.rng.gen_range(0..3) {
                0 => a.expr.union(sel),
                1 => a.expr.intersect(sel),
                _ => a.expr.difference(sel),
            };
        }
        a.expr
    }
}

// ---------------------------------------------------------------------------
// The differential property
// ---------------------------------------------------------------------------

fn check_case(seed: u64, db: &Database) {
    let mut g = Gen::new(seed, db);
    let expr = g.expression();
    let reference = relviz::ra::eval::eval(&expr, db)
        .unwrap_or_else(|e| panic!("generator produced ill-typed expr (seed {seed}): {e}\n{expr:?}"));
    let plan = plan_ra(&expr, db)
        .unwrap_or_else(|e| panic!("planner rejected well-typed expr (seed {seed}): {e}\n{expr:?}"));
    // Every randomized plan must satisfy the static verifier's IR
    // contract — the fuzzer doubles as the verifier's property test.
    let diags = relviz::exec::verify_plan(&plan, Some(db));
    assert!(
        diags.is_empty(),
        "planner emitted an unverifiable plan (seed {seed})\nexpr: {}\nplan:\n{}\n{}",
        relviz::ra::print::print_ra(&expr),
        relviz::exec::explain(&plan),
        relviz::exec::render_diagnostics(&diags),
    );
    let ours = execute(&plan, db)
        .unwrap_or_else(|e| panic!("executor failed (seed {seed}): {e}\n{expr:?}"));
    assert!(
        ours.same_contents(&reference),
        "engines disagree (seed {seed})\nexpr: {}\nplan:\n{}\nexec ({} rows):\n{ours}\nreference ({} rows):\n{reference}",
        relviz::ra::print::print_ra(&expr),
        relviz::exec::explain(&plan),
        ours.len(),
        reference.len(),
    );
    // The optimizer's reordered plan (plan_ra above runs with the
    // optimizer on) must reproduce the *unoptimized* plan's rendering
    // bit for bit — reordering may only change the join tree, never the
    // result.
    let unopt_plan = relviz::exec::plan_ra_with(&expr, db, relviz::exec::OptConfig::unoptimized())
        .unwrap_or_else(|e| panic!("unoptimized planner rejected expr (seed {seed}): {e}"));
    let unopt = execute(&unopt_plan, db)
        .unwrap_or_else(|e| panic!("unoptimized executor failed (seed {seed}): {e}"));
    assert!(
        unopt.same_contents(&reference) && format!("{unopt}") == format!("{ours}"),
        "optimized and unoptimized plans diverge (seed {seed})\nexpr: {}\noptimized plan:\n{}\nunoptimized plan:\n{}\noptimized:\n{ours}\nunoptimized:\n{unopt}",
        relviz::ra::print::print_ra(&expr),
        relviz::exec::explain(&plan),
        relviz::exec::explain(&unopt_plan),
    );
    // The parallel runtime runs the same randomized case at 1, 2 and 8
    // workers — every width must reproduce the serial result *bit for
    // bit* (the sorted rendering, not just the set).
    for threads in [1usize, 2, 8] {
        let par = relviz::exec::execute_parallel(&plan, db, threads)
            .unwrap_or_else(|e| panic!("parallel executor failed (seed {seed}, {threads}t): {e}"));
        assert!(
            par.same_contents(&reference) && format!("{par}") == format!("{ours}"),
            "parallel diverges (seed {seed}, {threads} threads)\nexpr: {}\nplan:\n{}\nparallel:\n{par}\nserial:\n{ours}",
            relviz::ra::print::print_ra(&expr),
            relviz::exec::explain_parallel(&plan, threads),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// ≥120 cases over seeded generic binary-relation databases.
    #[test]
    fn exec_matches_reference_on_binary_pairs(
        expr_seed in 0u64..1_000_000,
        db_seed in 0u64..64,
        n in 5usize..18,
    ) {
        let db = generate_binary_pair(db_seed, n, 8);
        check_case(expr_seed, &db);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    /// ≥100 cases over seeded sailors-style databases (3 relations,
    /// mixed int/str/float columns).
    #[test]
    fn exec_matches_reference_on_sailors(
        expr_seed in 0u64..1_000_000,
        db_seed in 0u64..64,
    ) {
        let cfg = GenConfig { seed: db_seed, sailors: 10, boats: 4, reservations: 18 };
        let db = generate_sailors(&cfg);
        check_case(expr_seed, &db);
    }
}

// ---------------------------------------------------------------------------
// Interning hazard: overlapping string domains across EDB relations
// ---------------------------------------------------------------------------

/// Builds a database of string-only relations drawing from one
/// **overlapping pool of strings**. Each relation columnarizes into its
/// own interner generation, and because the relations hold different
/// subsets, the same string gets a *different* id in each generation —
/// any kernel that compared interner ids across batches (join probes,
/// union/diff membership, `same_contents`) would call equal strings
/// unequal. The shared attribute names steer the generator into natural
/// joins, set operations and divisions on exactly those columns.
fn generate_string_overlap(seed: u64, rows: usize) -> Database {
    use relviz::model::{Relation, Schema, Tuple};
    let mut rng = StdRng::seed_from_u64(seed);
    // Includes the generator's comparison-constant pool ("red", "x", …)
    // so random equality filters actually select rows.
    let pool = ["red", "green", "blue", "x", "s0", "s1", "s2", "s3", "s4", "s5"];
    let mut db = Database::new();
    for (name, attrs) in [("S1", ["k", "v"]), ("S2", ["k", "w"]), ("S3", ["v", "w"])] {
        let schema = Schema::of(&[(attrs[0], DataType::Str), (attrs[1], DataType::Str)]);
        let mut rel = Relation::empty(schema);
        for _ in 0..rows {
            rel.insert_unchecked(Tuple::new(vec![
                Value::str(pool[rng.gen_range(0..pool.len())]),
                Value::str(pool[rng.gen_range(0..pool.len())]),
            ]));
        }
        db.set(name, rel);
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(80))]

    /// ≥80 cases over string-keyed databases with overlapping domains:
    /// interned-string equality must behave exactly like string
    /// equality on every engine and at every thread count.
    #[test]
    fn exec_matches_reference_on_overlapping_string_domains(
        expr_seed in 0u64..1_000_000,
        db_seed in 0u64..64,
        rows in 6usize..20,
    ) {
        let db = generate_string_overlap(db_seed, rows);
        check_case(expr_seed, &db);
    }
}
