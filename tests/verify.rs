//! Negative-path tests for the static plan verifier: hand-mutated
//! plans — the ones the planners can never emit — must be *rejected*,
//! with the expected diagnostic codes. The clean path (every
//! planner-emitted plan verifies) is pinned property-style by the
//! differential fuzzers (`differential.rs`, `differential_datalog.rs`),
//! which assert `verify_plan`/`verify_fixpoint` on all 340 randomized
//! cases, and by the debug-build hooks inside the planners themselves.

use relviz::exec::{
    check_plan, plan_datalog, plan_ra, render_diagnostics, verify_fixpoint, verify_plan,
    ExecError, OutputCol, PhysPlan, Severity,
};
use relviz::model::catalog::sailors_sample;
use relviz::model::generate::generate_binary_pair;
use relviz::model::{DataType, Schema};

fn codes(diags: &[relviz::exec::Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.code).collect()
}

fn scan(db: &relviz::model::Database, rel: &str) -> PhysPlan {
    PhysPlan::Scan { rel: rel.to_string(), schema: db.schema(rel).unwrap().clone() }
}

#[test]
fn out_of_bounds_projection_is_rejected() {
    let db = sailors_sample();
    let plan = PhysPlan::Project {
        cols: vec![OutputCol::Pos(9)],
        input: Box::new(scan(&db, "Sailor")),
        schema: Schema::of(&[("x", DataType::Any)]),
    };
    let diags = verify_plan(&plan, Some(&db));
    assert!(codes(&diags).contains(&"col-bounds"), "{}", render_diagnostics(&diags));
    // The hard gate surfaces the same diagnostics as an ExecError.
    let err = check_plan(&plan, Some(&db)).unwrap_err();
    assert!(matches!(err, ExecError::Verify(_)));
    assert!(err.to_string().contains("col-bounds"), "{err}");
}

#[test]
fn union_arity_mismatch_is_rejected() {
    let db = sailors_sample();
    let sailor = scan(&db, "Sailor"); // arity 4
    let boat = scan(&db, "Boat"); // arity 3
    let schema = sailor.schema().clone();
    let plan =
        PhysPlan::Union { left: Box::new(sailor), right: Box::new(boat), schema };
    let diags = verify_plan(&plan, Some(&db));
    assert!(codes(&diags).contains(&"arity-mismatch"), "{}", render_diagnostics(&diags));
}

#[test]
fn inconsistent_shared_backreference_is_rejected() {
    // Two `Shared #0` nodes whose inputs differ: the second is a stale
    // back-reference — executing it would serve the wrong cached batch.
    let db = sailors_sample();
    let a = scan(&db, "Boat");
    let b = PhysPlan::Filter {
        pred: relviz::ra::Predicate::cmp(
            relviz::ra::Operand::attr("color"),
            relviz::model::CmpOp::Eq,
            relviz::ra::Operand::val(relviz::model::Value::str("red")),
        ),
        schema: a.schema().clone(),
        input: Box::new(a.clone()),
    };
    let schema = a.schema().clone();
    let plan = PhysPlan::Union {
        left: Box::new(PhysPlan::Shared { id: 0, input: Box::new(a), schema: schema.clone() }),
        right: Box::new(PhysPlan::Shared { id: 0, input: Box::new(b), schema: schema.clone() }),
        schema,
    };
    let diags = verify_plan(&plan, Some(&db));
    assert!(
        codes(&diags).contains(&"shared-inconsistent"),
        "{}",
        render_diagnostics(&diags)
    );
}

#[test]
fn fixpoint_scan_outside_a_fixpoint_is_rejected() {
    let db = sailors_sample();
    let plan = PhysPlan::ScanIdb {
        rel: "tc".to_string(),
        schema: Schema::of(&[("x0", DataType::Any), ("x1", DataType::Any)]),
    };
    let diags = verify_plan(&plan, Some(&db));
    assert!(codes(&diags).contains(&"fixpoint-scan"), "{}", render_diagnostics(&diags));
}

#[test]
fn delta_less_recursive_rule_is_rejected() {
    // Strip the delta variants off a genuine transitive-closure plan:
    // semi-naive coverage now misses the recursive occurrence, which
    // would silently drop derivations after round 0.
    let db = generate_binary_pair(11, 30, 12);
    let prog = relviz::datalog::parse::parse_program(
        "tc(X, Y) :- R(X, Y).\ntc(X, Z) :- tc(X, Y), R(Y, Z).",
    )
    .unwrap();
    let mut plan = plan_datalog(&prog, &db).unwrap();
    for s in &mut plan.strata {
        for r in &mut s.rules {
            r.deltas.clear();
        }
    }
    let diags = verify_fixpoint(&plan, Some(&db));
    assert!(codes(&diags).contains(&"delta-count"), "{}", render_diagnostics(&diags));
    // ...and the `recursive` flag no longer matches the (delta-less) rules.
    assert!(codes(&diags).contains(&"recursive-flag"), "{}", render_diagnostics(&diags));
}

#[test]
fn join_key_mutations_are_rejected() {
    let db = sailors_sample();
    let PhysPlan::HashJoin { mut left_keys, left, right, right_keys, right_keep, post, schema } =
        (match plan_ra(
            &relviz::ra::parse::parse_ra("Join(Sailor, Reserves)").unwrap(),
            &db,
        )
        .unwrap()
        {
            PhysPlan::Dedup { input, .. } | PhysPlan::Project { input, .. } => *input,
            p => p,
        })
    else {
        panic!("expected the natural join to plan as a HashJoin")
    };
    // Key list length mismatch between the sides.
    left_keys.push(0);
    let plan = PhysPlan::HashJoin {
        left,
        right,
        left_keys,
        right_keys,
        right_keep,
        post,
        schema,
    };
    let diags = verify_plan(&plan, Some(&db));
    assert!(codes(&diags).contains(&"key-arity"), "{}", render_diagnostics(&diags));
}

#[test]
fn unknown_relation_is_flagged_against_the_database() {
    let db = sailors_sample();
    let plan = PhysPlan::Scan {
        rel: "Ghost".to_string(),
        schema: Schema::of(&[("x", DataType::Any)]),
    };
    let diags = verify_plan(&plan, Some(&db));
    assert!(codes(&diags).contains(&"unknown-relation"), "{}", render_diagnostics(&diags));
    // Without a database the same plan is structurally fine.
    assert!(verify_plan(&plan, None).is_empty());
}

#[test]
fn suite_plans_verify_clean_through_every_planner() {
    let db = sailors_sample();
    for q in relviz::core::suite::SUITE {
        let ra = relviz::ra::parse::parse_ra(q.ra).unwrap();
        let plan = plan_ra(&ra, &db).unwrap();
        let diags = verify_plan(&plan, Some(&db));
        assert!(diags.is_empty(), "{} (ra):\n{}", q.id, render_diagnostics(&diags));

        let trc = relviz::rc::trc_parse::parse_trc(q.trc).unwrap();
        let plan = relviz::exec::plan_trc(&trc, &db).unwrap();
        let diags = verify_plan(&plan, Some(&db));
        assert!(diags.is_empty(), "{} (trc):\n{}", q.id, render_diagnostics(&diags));

        let prog = relviz::datalog::parse::parse_program(q.datalog).unwrap();
        let plan = plan_datalog(&prog, &db).unwrap();
        let diags = verify_fixpoint(&plan, Some(&db));
        assert!(diags.is_empty(), "{} (datalog):\n{}", q.id, render_diagnostics(&diags));
        // The analyzer may lint (warnings) but must not error.
        let analysis = relviz::exec::analyze_program(&prog, &db);
        assert!(
            !analysis.iter().any(|d| d.severity == Severity::Error),
            "{} (analyzer):\n{}",
            q.id,
            render_diagnostics(&analysis)
        );
    }
}

#[test]
fn analyzer_rejects_unstratifiable_programs_with_the_cycle() {
    let db = sailors_sample();
    let prog = relviz::datalog::parse::parse_program(
        "p(X) :- Boat(X, N, C), not q(X).\nq(X) :- Boat(X, N, C), p(X).",
    )
    .unwrap();
    let diags = relviz::exec::analyze_program(&prog, &db);
    let un: Vec<_> = diags.iter().filter(|d| d.code == "unstratifiable").collect();
    assert_eq!(un.len(), 1, "{}", render_diagnostics(&diags));
    assert!(un[0].message.contains("`p` -not-> `q` -> `p`"), "{}", un[0].message);
}
