//! Cross-crate integration: the five languages agree on *generated*
//! databases of several sizes and seeds, not just the textbook sample
//! (experiment E2's invariant, exercised harder).

use relviz::core::suite::SUITE;
use relviz::model::generate::{generate_sailors, GenConfig};

#[test]
fn suite_agrees_on_generated_databases() {
    for seed in [1u64, 42, 2024] {
        let cfg = GenConfig { seed, sailors: 12, boats: 5, reservations: 30 };
        let db = generate_sailors(&cfg);
        for q in SUITE {
            let via_sql = relviz::sql::eval::run_sql(q.sql, &db)
                .unwrap_or_else(|e| panic!("{} sql (seed {seed}): {e}", q.id));

            let ra = relviz::ra::parse::parse_ra(q.ra).unwrap();
            let via_ra = relviz::ra::eval::eval(&ra, &db).unwrap();
            assert!(
                via_sql.same_contents(&via_ra),
                "{} RA disagrees (seed {seed})\nsql={via_sql}\nra={via_ra}",
                q.id
            );

            let trc = relviz::rc::trc_parse::parse_trc(q.trc).unwrap();
            let via_trc = relviz::rc::trc_eval::eval_trc(&trc, &db).unwrap();
            assert!(
                via_sql.same_contents(&via_trc),
                "{} TRC disagrees (seed {seed})",
                q.id
            );

            let drc = relviz::rc::drc_parse::parse_drc(q.drc).unwrap();
            let via_drc = relviz::rc::drc_eval::eval_drc(&drc, &db).unwrap();
            assert!(
                via_sql.same_contents(&via_drc),
                "{} DRC disagrees (seed {seed})",
                q.id
            );

            let dl = relviz::datalog::parse::parse_program(q.datalog).unwrap();
            let via_dl = relviz::datalog::eval::eval_program(&dl, &db).unwrap();
            assert!(
                via_sql.same_contents(&via_dl),
                "{} Datalog disagrees (seed {seed})",
                q.id
            );
        }
    }
}

#[test]
fn translation_chains_preserve_semantics_on_generated_db() {
    // SQL → TRC → RA → Datalog: every hop preserves the answer.
    let db = generate_sailors(&GenConfig { seed: 77, sailors: 10, boats: 4, reservations: 20 });
    for q in SUITE {
        let expected = relviz::sql::eval::run_sql(q.sql, &db).unwrap();

        let trc = relviz::rc::from_sql::parse_sql_to_trc(q.sql, &db).unwrap();
        let ra = relviz::rc::to_ra::trc_to_ra(&trc, &db)
            .unwrap_or_else(|e| panic!("{}: {e}", q.id));
        let via_ra = relviz::ra::eval::eval(&ra, &db).unwrap();
        assert!(expected.same_contents(&via_ra), "{} SQL→TRC→RA", q.id);

        let optimized = relviz::ra::rewrite::optimize(&ra);
        let via_opt = relviz::ra::eval::eval(&optimized, &db).unwrap();
        assert!(expected.same_contents(&via_opt), "{} optimizer", q.id);

        let prog = relviz::datalog::translate::ra_to_datalog(&optimized, &db)
            .unwrap_or_else(|e| panic!("{}: {e}", q.id));
        let via_dl = relviz::datalog::eval::eval_program(&prog, &db).unwrap();
        assert!(expected.same_contents(&via_dl), "{} SQL→TRC→RA→Datalog", q.id);

        let drc = relviz::rc::to_drc::trc_to_drc(&trc, &db).unwrap();
        relviz::rc::drc_eval::safe_range_check(&drc)
            .unwrap_or_else(|e| panic!("{} produced unsafe DRC: {e}", q.id));
        let via_drc = relviz::rc::drc_eval::eval_drc(&drc, &db).unwrap();
        assert!(expected.same_contents(&via_drc), "{} SQL→TRC→DRC", q.id);
    }
}

#[test]
fn ra_to_trc_round_trip_on_suite() {
    let db = generate_sailors(&GenConfig { seed: 5, sailors: 8, boats: 4, reservations: 16 });
    for q in SUITE {
        let ra = relviz::ra::parse::parse_ra(q.ra).unwrap();
        let expected = relviz::ra::eval::eval(&ra, &db).unwrap();
        let trc = relviz::rc::from_ra::ra_to_trc(&ra, &db)
            .unwrap_or_else(|e| panic!("{}: {e}", q.id));
        let via_trc = relviz::rc::trc_eval::eval_trc(&trc, &db).unwrap();
        assert!(expected.same_contents(&via_trc), "{} RA→TRC", q.id);
    }
}
