//! `relviz` — the command-line face of the toolkit.
//!
//! ```text
//! relviz show   "<SQL>"                 # ASCII diagram (Relational Diagrams)
//! relviz svg    "<SQL>" out.svg         # SVG to a file
//! relviz trans  "<SQL>"                 # the query in all five languages
//! relviz run    "<SQL>"                 # evaluate on the sailors sample DB
//! relviz matrix                         # the E5 expressiveness matrix
//! relviz serve  --stdio | --port N      # resident query service (relviz-wire-v1)
//! ```
//!
//! Options: `--formalism queryvis|reldiag|dfql|qbe|strings|visualsql|sqlvis|tabletalk|dataplay|sieuferd|qbd`,
//! `--db <file>` (text format of `relviz_model::text`),
//! `--engine exec|parallel|reference` (the interactive `run` path
//! defaults to the physical engine), `--threads N` (worker count for
//! `--engine parallel`; 0 or absent = auto via `RELVIZ_THREADS` /
//! available hardware parallelism — results are bit-identical to
//! `exec` at any thread count).

use std::process::ExitCode;

use relviz::core::{Backend, Engine, QueryVisualizer, VisFormalism};
use relviz::model::catalog::sailors_sample;
use relviz::model::Database;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("relviz: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: Vec<String>) -> Result<(), String> {
    let mut positional = Vec::new();
    let mut formalism = VisFormalism::RelationalDiagrams;
    let mut engine = Engine::Indexed;
    let mut threads: usize = 0; // 0 = auto (RELVIZ_THREADS / hardware)
    let mut db_path: Option<String> = None;
    let mut lang = String::from("sql");
    let mut suite = false;
    let mut verify = false;
    let mut analyze = false;
    let mut stats_json: Option<String> = None;
    let mut stdio = false;
    let mut port: Option<u16> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--analyze" => analyze = true,
            "--stdio" => stdio = true,
            "--port" => {
                let v = it.next().ok_or("--port needs a port number")?;
                port = Some(v.parse().map_err(|_| format!("--port: `{v}` is not a port"))?);
            }
            "--no-opt" => relviz::exec::set_optimizer_enabled(false),
            "--stats-json" => {
                stats_json = Some(it.next().ok_or("--stats-json needs a file path")?);
                analyze = true; // writing stats implies collecting them
            }
            "--lang" => {
                let v = it.next().ok_or("--lang needs sql|ra|trc|datalog")?;
                match v.as_str() {
                    "sql" | "ra" | "trc" | "datalog" => lang = v,
                    other => return Err(format!("unknown language `{other}`")),
                }
            }
            "--suite" => suite = true,
            "--verify" => verify = true,
            "--engine" => {
                let v = it.next().ok_or("--engine needs a value")?;
                engine = match v.as_str() {
                    "exec" | "indexed" => Engine::Indexed,
                    "parallel" => Engine::Parallel(threads),
                    "reference" => Engine::Reference,
                    other => return Err(format!("unknown engine `{other}`")),
                };
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a worker count")?;
                threads = v
                    .parse()
                    .map_err(|_| format!("--threads: `{v}` is not a worker count"))?;
                // `--threads` may precede or follow `--engine parallel`.
                if let Engine::Parallel(_) = engine {
                    engine = Engine::Parallel(threads);
                }
            }
            "--formalism" => {
                let v = it.next().ok_or("--formalism needs a value")?;
                formalism = match v.as_str() {
                    "queryvis" => VisFormalism::QueryVis,
                    "reldiag" => VisFormalism::RelationalDiagrams,
                    "dfql" => VisFormalism::Dfql,
                    "qbe" => VisFormalism::Qbe,
                    "strings" => VisFormalism::StringDiagrams,
                    "visualsql" => VisFormalism::VisualSql,
                    "sqlvis" => VisFormalism::SqlVis,
                    "tabletalk" => VisFormalism::TableTalk,
                    "dataplay" => VisFormalism::DataPlay,
                    "sieuferd" => VisFormalism::Sieuferd,
                    "qbd" => VisFormalism::Qbd,
                    other => return Err(format!("unknown formalism `{other}`")),
                };
            }
            "--db" => db_path = Some(it.next().ok_or("--db needs a file path")?),
            _ => positional.push(a),
        }
    }
    let db: Database = match db_path {
        Some(p) => {
            let text =
                std::fs::read_to_string(&p).map_err(|e| format!("reading {p}: {e}"))?;
            relviz::model::text::parse_database(&text).map_err(|e| e.to_string())?
        }
        None => sailors_sample(),
    };

    let cmd = positional.first().map(String::as_str).unwrap_or("help");
    match cmd {
        "show" => {
            let sql = positional.get(1).ok_or("usage: relviz show \"<SQL>\"")?;
            let viz = QueryVisualizer::new(formalism, Backend::Ascii);
            let out = viz.visualize(sql, &db).map_err(|e| e.to_string())?;
            println!("{}", out.trc);
            println!("{}", out.rendering);
            Ok(())
        }
        "svg" => {
            let sql = positional.get(1).ok_or("usage: relviz svg \"<SQL>\" out.svg")?;
            let path = positional.get(2).ok_or("usage: relviz svg \"<SQL>\" out.svg")?;
            let viz = QueryVisualizer::new(formalism, Backend::Svg);
            let out = viz.visualize(sql, &db).map_err(|e| e.to_string())?;
            std::fs::write(path, &out.rendering).map_err(|e| e.to_string())?;
            println!("wrote {path}");
            Ok(())
        }
        "trans" => {
            let sql = positional.get(1).ok_or("usage: relviz trans \"<SQL>\"")?;
            let trc =
                relviz::rc::from_sql::parse_sql_to_trc(sql, &db).map_err(|e| e.to_string())?;
            println!("TRC:     {trc}");
            match relviz::rc::to_drc::trc_to_drc(&trc, &db) {
                Ok(drc) => println!("DRC:     {drc}"),
                Err(e) => println!("DRC:     ({e})"),
            }
            match relviz::rc::to_ra::trc_to_ra(&trc, &db) {
                Ok(ra) => {
                    let opt = relviz::ra::rewrite::optimize(&ra);
                    println!("RA:      {}", relviz::ra::print::print_ra_unicode(&opt));
                    match relviz::datalog::translate::ra_to_datalog(&opt, &db) {
                        Ok(p) => println!("Datalog:\n{p}"),
                        Err(e) => println!("Datalog: ({e})"),
                    }
                }
                Err(e) => println!("RA:      ({e})"),
            }
            Ok(())
        }
        "check" => check(&db, &lang, suite, positional.get(1).map(String::as_str)),
        "serve" => serve(db, stdio, port, threads),
        "run" => {
            let query = positional.get(1).ok_or("usage: relviz run \"<query>\"")?;
            match lang.as_str() {
                "sql" => run_sql(query, &db, formalism, engine, verify, analyze, &stats_json),
                "datalog" => {
                    run_datalog(query, &db, engine, verify, analyze, &stats_json)
                }
                other => Err(format!(
                    "run evaluates --lang sql or datalog, not `{other}` \
                     (use `check` for ra/trc plans)"
                )),
            }
        }
        "matrix" => {
            use relviz::diagrams::capability::{try_build, Capability, Formalism};
            print!("{:22}", "");
            for q in relviz::core::suite::SUITE {
                print!(" {:>4}", q.id);
            }
            println!();
            for f in Formalism::ALL {
                print!("{:22}", f.name());
                for q in relviz::core::suite::SUITE {
                    let mark = match try_build(f, q.sql, &db) {
                        Ok(Capability::Drawable { .. }) => "✓",
                        Ok(Capability::DrawableVia { .. }) => "(✓)",
                        Ok(Capability::Unsupported { .. }) => "—",
                        Err(_) => "!",
                    };
                    print!(" {mark:>4}");
                }
                println!();
            }
            Ok(())
        }
        _ => {
            println!(
                "relviz — diagrammatic representations of relational queries\n\n\
                 usage:\n  relviz show   \"<SQL>\"          ASCII diagram\n  \
                 relviz svg    \"<SQL>\" out.svg  SVG diagram\n  \
                 relviz trans  \"<SQL>\"          the query in TRC/DRC/RA/Datalog\n  \
                 relviz run    \"<query>\"        evaluate on the database (--verify checks first,\n                                 --analyze prints EXPLAIN ANALYZE, --lang sql|datalog)\n  \
                 relviz check  \"<query>\"        verify the plan without running (--lang, --suite)\n  \
                 relviz matrix                  expressiveness matrix\n  \
                 relviz serve  --stdio|--port N resident query service (relviz-wire-v1,\n                                 --db preloads `default`, --threads, --no-opt)\n\n\
                 options: --formalism queryvis|reldiag|dfql|qbe|strings|visualsql|\n                          sqlvis|tabletalk|dataplay|sieuferd|qbd, --db <file>,\n                          --engine exec|parallel|reference (run defaults to exec),\n                          --threads N (for --engine parallel; 0 = auto),\n                          --lang sql|ra|trc|datalog (check/run input language),\n                          --suite (check every suite query in RA, TRC and Datalog),\n                          --analyze (run with per-operator runtime stats),\n                          --stats-json <file> (write the stats as JSON; implies --analyze),\n                          --no-opt (disable join reordering + magic sets for A/B debugging)"
            );
            Ok(())
        }
    }
}

/// `relviz serve`: the resident query service. `--stdio` answers
/// `relviz-wire-v1` frames on stdin/stdout (one session); `--port N`
/// accepts TCP connections on 127.0.0.1, one thread per connection,
/// all sharing the catalog and the prepared-plan cache. The `--db`
/// database (default: the sailors sample) is preloaded as `default`;
/// `--threads` pins the parallel width, `--no-opt` sets the default
/// optimizer configuration — each request can still override both.
fn serve(db: Database, stdio: bool, port: Option<u16>, threads: usize) -> Result<(), String> {
    use relviz::serve::{Server, ServerConfig};
    let server = Server::new(ServerConfig { threads, ..ServerConfig::default() });
    server.catalog().load("default", db);
    if stdio {
        return server.serve_stdio().map_err(|e| e.to_string());
    }
    let Some(port) = port else {
        return Err("usage: relviz serve --stdio | relviz serve --port N".to_string());
    };
    let listener = std::net::TcpListener::bind(("127.0.0.1", port))
        .map_err(|e| format!("binding 127.0.0.1:{port}: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    eprintln!("relviz: serving relviz-wire-v1 on {addr} ({} worker threads)", server.threads());
    std::sync::Arc::new(server).serve_listener(listener).map_err(|e| e.to_string())
}

/// `relviz run` on SQL: evaluate on the pipeline's engine, optionally
/// statically verified first (`--verify`) and/or instrumented
/// (`--analyze` / `--stats-json` — EXPLAIN ANALYZE).
fn run_sql(
    sql: &str,
    db: &Database,
    formalism: VisFormalism,
    engine: Engine,
    verify: bool,
    analyze: bool,
    stats_json: &Option<String>,
) -> Result<(), String> {
    // The interactive path runs on the physical engine by default;
    // `--engine reference` restores the oracle.
    let viz = QueryVisualizer::new(formalism, Backend::Ascii).with_engine(engine);
    if verify {
        // `--verify`: statically check the plan before running.
        print!("{}", viz.check(sql, db).map_err(|e| e.to_string())?);
    }
    if analyze {
        let (rel, report) = viz.run_analyzed(sql, db).map_err(|e| e.to_string())?;
        print!("{rel}");
        println!("({} tuples)", rel.len());
        print!("{}", report.text);
        write_stats_json(stats_json, &report)?;
        return Ok(());
    }
    let rel = viz.run(sql, db).map_err(|e| e.to_string())?;
    print!("{rel}");
    println!("({} tuples)", rel.len());
    Ok(())
}

/// `relviz run --lang datalog`: evaluate a Datalog program's query
/// predicate on the chosen engine, with the same `--verify` /
/// `--analyze` / `--stats-json` composition as SQL.
fn run_datalog(
    src: &str,
    db: &Database,
    engine: Engine,
    verify: bool,
    analyze: bool,
    stats_json: &Option<String>,
) -> Result<(), String> {
    use relviz::exec::{
        analyze_program, error_count, plan_datalog, render_diagnostics, verification_footer,
        verify_fixpoint,
    };
    let prog = relviz::datalog::parse::parse_program(src).map_err(|e| e.to_string())?;
    if verify {
        let analysis = analyze_program(&prog, db);
        if error_count(&analysis) > 0 {
            return Err(render_diagnostics(&analysis));
        }
        print!("{}", render_diagnostics(&analysis)); // warnings, if any
        let plan = plan_datalog(&prog, db).map_err(|e| e.to_string())?;
        let diags = verify_fixpoint(&plan, Some(db));
        print!("{}", verification_footer(plan.node_count(), &diags));
        if error_count(&diags) > 0 {
            return Err(format!("{} verification error(s)", error_count(&diags)));
        }
    }
    if analyze {
        let (rel, report) =
            relviz::exec::eval_datalog_analyzed(engine, &prog, db).map_err(|e| e.to_string())?;
        print!("{rel}");
        println!("({} tuples)", rel.len());
        print!("{}", report.text);
        write_stats_json(stats_json, &report)?;
        return Ok(());
    }
    let rel = relviz::exec::eval_datalog(engine, &prog, db).map_err(|e| e.to_string())?;
    print!("{rel}");
    println!("({} tuples)", rel.len());
    Ok(())
}

/// Writes a stats report's machine-readable form, if a path was given.
fn write_stats_json(
    path: &Option<String>,
    report: &relviz::exec::StatsReport,
) -> Result<(), String> {
    if let Some(p) = path {
        std::fs::write(p, report.to_json()).map_err(|e| format!("writing {p}: {e}"))?;
        eprintln!("relviz: wrote stats to {p}");
    }
    Ok(())
}

/// `relviz check`: plans without running, then walks the plan with the
/// static verifier. Exit status is keyed on **errors** — analyzer
/// *warnings* (style lints like cartesian products) print but pass.
fn check(db: &Database, lang: &str, suite: bool, query: Option<&str>) -> Result<(), String> {
    use relviz::exec::{
        analyze_program, error_count, plan_datalog, plan_ra, plan_trc, render_diagnostics,
        verification_footer, verify_fixpoint, verify_plan,
    };
    if suite {
        let mut failed = 0usize;
        for q in relviz::core::suite::SUITE {
            print!("{:4}", q.id);
            // RA and TRC plans: the flat-operator verifier.
            let ra = relviz::ra::parse::parse_ra(q.ra).map_err(|e| format!("{}: {e}", q.id))?;
            let trc = relviz::rc::trc_parse::parse_trc(q.trc)
                .map_err(|e| format!("{}: {e}", q.id))?;
            for (name, plan) in
                [("ra", plan_ra(&ra, db)), ("trc", plan_trc(&trc, db))]
            {
                let plan = plan.map_err(|e| format!("{}: {e}", q.id))?;
                let diags = verify_plan(&plan, Some(db));
                let errs = error_count(&diags);
                failed += errs;
                match errs {
                    0 => print!("  {name} ✓ {:2} nodes", plan.node_count()),
                    n => print!("  {name} ✗ {n} error(s)"),
                }
            }
            // Datalog: program analyzer + fixpoint-plan verifier.
            let prog = relviz::datalog::parse::parse_program(q.datalog)
                .map_err(|e| format!("{}: {e}", q.id))?;
            let analysis = analyze_program(&prog, db);
            let mut errs = error_count(&analysis);
            let mut nodes = 0;
            if errs == 0 {
                let plan = plan_datalog(&prog, db).map_err(|e| format!("{}: {e}", q.id))?;
                errs += error_count(&verify_fixpoint(&plan, Some(db)));
                nodes = plan.node_count();
            }
            failed += errs;
            match errs {
                0 => println!("  datalog ✓ {nodes:2} nodes"),
                n => println!("  datalog ✗ {n} error(s)"),
            }
        }
        return match failed {
            0 => {
                println!("suite: every plan verifies clean");
                Ok(())
            }
            n => Err(format!("suite: {n} verification error(s)")),
        };
    }
    let query =
        query.ok_or("usage: relviz check \"<query>\" [--lang sql|ra|trc|datalog] | --suite")?;
    let (diags, nodes) = match lang {
        "sql" => {
            let viz = QueryVisualizer::new(VisFormalism::RelationalDiagrams, Backend::Ascii);
            print!("{}", viz.check(query, db).map_err(|e| e.to_string())?);
            return Ok(());
        }
        "ra" => {
            let expr = relviz::ra::parse::parse_ra(query).map_err(|e| e.to_string())?;
            let plan = plan_ra(&expr, db).map_err(|e| e.to_string())?;
            (verify_plan(&plan, Some(db)), plan.node_count())
        }
        "trc" => {
            let trc = relviz::rc::trc_parse::parse_trc(query).map_err(|e| e.to_string())?;
            let plan = plan_trc(&trc, db).map_err(|e| e.to_string())?;
            (verify_plan(&plan, Some(db)), plan.node_count())
        }
        "datalog" => {
            let prog =
                relviz::datalog::parse::parse_program(query).map_err(|e| e.to_string())?;
            let analysis = analyze_program(&prog, db);
            if error_count(&analysis) > 0 {
                return Err(render_diagnostics(&analysis));
            }
            print!("{}", render_diagnostics(&analysis)); // warnings, if any
            let plan = plan_datalog(&prog, db).map_err(|e| e.to_string())?;
            (verify_fixpoint(&plan, Some(db)), plan.node_count())
        }
        other => return Err(format!("unknown language `{other}`")),
    };
    print!("{}", verification_footer(nodes, &diags));
    match error_count(&diags) {
        0 => Ok(()),
        n => Err(format!("{n} verification error(s)")),
    }
}
