//! # relviz
//!
//! Diagrammatic representations of logical statements and relational
//! queries: a relationally complete **query visualization** toolkit,
//! reproducing the systems surveyed in Gatterbauer's ICDE 2024 tutorial
//! *"A Comprehensive Tutorial on over 100 Years of Diagrammatic
//! Representations of Logical Statements and Relational Queries"*.
//!
//! This facade crate re-exports the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`model`] | `relviz-model` | values, schemas, relations, the sailors DB |
//! | [`sql`] | `relviz-sql` | SQL frontend + reference evaluator |
//! | [`ra`] | `relviz-ra` | Relational Algebra |
//! | [`rc`] | `relviz-rc` | TRC & DRC + all translations |
//! | [`exec`] | `relviz-exec` | physical plan engine (hash joins, EXPLAIN) |
//! | [`datalog`] | `relviz-datalog` | stratified Datalog |
//! | [`diagrams`] | `relviz-diagrams` | every surveyed diagram formalism |
//! | [`layout`] | `relviz-layout` | layered & nested-box layout |
//! | [`render`] | `relviz-render` | SVG & ASCII backends |
//! | [`core`] | `relviz-core` | pipeline, suite, patterns, principles |
//! | [`serve`] | `relviz-serve` | resident query service (`relviz-wire-v1`) |
//!
//! ## Quickstart
//!
//! ```
//! use relviz::core::{Backend, QueryVisualizer, VisFormalism};
//! use relviz::model::catalog::sailors_sample;
//!
//! let db = sailors_sample();
//! let viz = QueryVisualizer::new(VisFormalism::RelationalDiagrams, Backend::Svg);
//! let out = viz.visualize(
//!     "SELECT S.sname FROM Sailor S WHERE NOT EXISTS \
//!      (SELECT * FROM Boat B WHERE B.color = 'red' AND NOT EXISTS \
//!        (SELECT * FROM Reserves R WHERE R.sid = S.sid AND R.bid = B.bid))",
//!     &db,
//! ).unwrap();
//! assert!(out.rendering.starts_with("<svg"));
//! ```

pub use relviz_core as core;
pub use relviz_datalog as datalog;
pub use relviz_diagrams as diagrams;
pub use relviz_exec as exec;
pub use relviz_layout as layout;
pub use relviz_model as model;
pub use relviz_ra as ra;
pub use relviz_rc as rc;
pub use relviz_render as render;
pub use relviz_serve as serve;
pub use relviz_sql as sql;
