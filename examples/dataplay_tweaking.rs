//! DataPlay-style quantifier tweaking (Part 5, [Abouzied et al. 2012]):
//! the user composes "sailors who reserved all red boats", sees too few
//! results, flips the ∀ to ∃ with one click, and watches the matching
//! pane grow — example-driven query correction.
//!
//! ```sh
//! cargo run --example dataplay_tweaking
//! ```

use relviz::diagrams::dataplay::{DataPlayTree, QNode};
use relviz::model::catalog::sailors_sample;

fn show_tree(tree: &DataPlayTree) {
    println!(
        "anchor: {}∈{}   output: {}",
        tree.anchor.var,
        tree.anchor.rel,
        tree.head.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>().join(", ")
    );
    fn show(n: &QNode, indent: usize) {
        println!("{}{}", "  ".repeat(indent + 1), n.label());
        for c in &n.children {
            show(c, indent + 1);
        }
    }
    for c in &tree.constraints {
        show(c, 0);
    }
}

fn show_panes(tree: &DataPlayTree, db: &relviz::model::Database) {
    let (matching, non_matching) = tree.partition(db).expect("tree evaluates");
    println!("  matching ({}):", matching.len());
    for t in matching.iter() {
        println!("    ✓ {t}");
    }
    println!("  non-matching ({}):", non_matching.len());
    for t in non_matching.iter() {
        println!("    ✗ {t}");
    }
}

fn main() {
    let db = sailors_sample();

    // The query as first composed: "reserved ALL red boats".
    let sql = "SELECT S.sname FROM Sailor S WHERE NOT EXISTS \
               (SELECT * FROM Boat B WHERE B.color = 'red' AND NOT EXISTS \
                 (SELECT * FROM Reserves R WHERE R.sid = S.sid AND R.bid = B.bid))";
    let tree = DataPlayTree::from_sql(sql, &db).expect("fits the tree fragment");

    println!("═══ as composed: every red boat must be reserved ═══");
    show_tree(&tree);
    show_panes(&tree, &db);

    // "Hmm, I expected more sailors — I meant ANY red boat." One click:
    let fixed = tree.flip(&[0]).expect("root node");
    println!("\n═══ after flipping ∀ → ∃ at the root constraint ═══");
    show_tree(&fixed);
    show_panes(&fixed, &db);

    // The flipped tree *is* the other textbook query.
    let q2 = "SELECT DISTINCT S.sname FROM Sailor S, Reserves R, Boat B \
              WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'red'";
    let direct = relviz::sql::eval::run_sql(q2, &db).expect("evaluates");
    let via_tree =
        relviz::rc::trc_eval::eval_trc(&fixed.to_trc(), &db).expect("evaluates");
    println!(
        "\nflipped tree ≡ \"reserved a red boat\": {}",
        if direct.same_contents(&via_tree) { "yes" } else { "NO" }
    );

    // And the tree renders as a diagram, too.
    let svg = relviz::render::svg::to_svg(&fixed.scene());
    println!("(SVG rendering: {} bytes)", svg.len());
}
