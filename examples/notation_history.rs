//! One sentence, 140 years of notation (Part 4's historical arc): the
//! statement *"some sailor reserved a red boat"* written in
//!
//! 1. Frege's Begriffsschrift (1879) — 2D strokes, ∀/→/¬ primitive;
//! 2. Peirce's beta existential graphs (1896) — cuts and lines of
//!    identity, ∃/∧/¬ primitive, with the famous reading ambiguity;
//! 3. string diagrams (2020) — beta graphs with free-variable wires;
//! 4. Relational Diagrams (2024) — nested negated bounding boxes over
//!    tuple variables, single-reading by construction.
//!
//! ```sh
//! cargo run --example notation_history
//! ```

use relviz::diagrams::frege::Bs;
use relviz::diagrams::peirce::beta::BetaGraph;
use relviz::diagrams::reldiag::RelationalDiagram;
use relviz::diagrams::stringdiag::StringDiagram;
use relviz::model::catalog::sailors_sample;
use relviz::rc::drc_parse::parse_drc;

const SENTENCE: &str = "{ | exists s, n, rt, a, b, d, bn: (Sailor(s, n, rt, a) and \
    Reserves(s, b, d) and Boat(b, bn, 'red'))}";

fn main() {
    let db = sailors_sample();
    let drc = parse_drc(SENTENCE).expect("parses");
    println!("the sentence, as DRC: {}\n", drc.body);

    // 1879 — Begriffsschrift.
    println!("═══ 1879: Frege's Begriffsschrift ═══");
    let bs = Bs::from_drc(&drc.body).expect("translates");
    print!("{}", bs.ascii());
    let (cond, neg, conc, atoms) = bs.census();
    println!(
        "({cond} condition strokes, {neg} negation strokes, {conc} concavities, \
         {atoms} atoms — the lines ARE the connectives)\n"
    );

    // 1896 — beta existential graphs.
    println!("═══ 1896: Peirce's beta existential graphs ═══");
    let beta = BetaGraph::from_drc(&drc.body).expect("translates");
    let readings = beta.readings().expect("well-formed");
    println!(
        "{} predicates, {} lines of identity; {} scope-consistent reading(s)",
        beta.items.len(),
        beta.lines.len(),
        readings.len()
    );
    for r in &readings {
        println!("  reading: {}", r.body);
    }
    println!();

    // 2020 — string diagrams (free variables become open wires).
    println!("═══ 2020: string diagrams ═══");
    let q2_drc = parse_drc(
        "{n | exists s, rt, a, b, d, bn: (Sailor(s, n, rt, a) and \
          Reserves(s, b, d) and Boat(b, bn, 'red'))}",
    )
    .expect("parses");
    let sd = StringDiagram::from_drc(&q2_drc).expect("translates");
    let (preds, cuts, wires, open) = sd.census();
    println!("{preds} predicate boxes, {cuts} cuts, {wires} wires ({open} open — the head)\n");

    // 2024 — Relational Diagrams, as a *query* over the same content.
    println!("═══ 2024: Relational Diagrams ═══");
    let sql = "SELECT DISTINCT S.sname FROM Sailor S, Reserves R, Boat B \
               WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'red'";
    let rd = RelationalDiagram::from_sql(sql, &db).expect("builds");
    let (partitions, boxes, tables, conds, edges) = rd.census();
    println!(
        "{partitions} partition(s), {boxes} box(es), {tables} tables, \
         {conds} conditions, {edges} predicate edges; exactly 1 reading"
    );
    let ascii = relviz::render::ascii::to_ascii(&rd.scene());
    println!("{ascii}");

    // All four agree the sentence is true on the sample database.
    let truth = !relviz::rc::drc_eval::eval_drc(&drc, &db).expect("evaluates").is_empty();
    let frege_truth = !relviz::rc::drc_eval::eval_drc(
        &relviz::rc::drc::DrcQuery { head: vec![], body: bs.to_drc() },
        &db,
    )
    .expect("evaluates")
    .is_empty();
    println!("sentence true on the sample database: {truth} (Frege round-trip: {frege_truth})");
}
