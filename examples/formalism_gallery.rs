//! Part 5 of the tutorial, live: the same suite query rendered by every
//! modern formalism that supports it, plus the expressiveness matrix that
//! shows where each one gives up — the tutorial's comparative landscape as
//! a program.
//!
//! ```sh
//! cargo run --example formalism_gallery          # matrix on stdout
//! cargo run --example formalism_gallery -- svg   # also write SVGs
//! ```

use relviz::diagrams::capability::{try_build, Capability, Formalism};
use relviz::core::suite::SUITE;
use relviz::core::{Backend, QueryVisualizer, VisFormalism};
use relviz::model::catalog::sailors_sample;

fn main() {
    let write_svg = std::env::args().any(|a| a == "svg");
    let db = sailors_sample();

    // The expressiveness matrix.
    println!("{:22}", "formalism ↓ / query →");
    print!("{:22}", "");
    for q in SUITE {
        print!(" {:>4}", q.id);
    }
    println!();
    for f in Formalism::ALL {
        print!("{:22}", f.name());
        for q in SUITE {
            let mark = match try_build(f, q.sql, &db) {
                Ok(Capability::Drawable { .. }) => "✓",
                Ok(Capability::DrawableVia { .. }) => "(✓)",
                Ok(Capability::Unsupported { .. }) => "—",
                Err(_) => "!",
            };
            print!(" {mark:>4}");
        }
        println!();
    }
    println!("\n✓ drawable   (✓) drawable via workaround   — unsupported\n");

    // Why each “—”:
    for f in Formalism::ALL {
        for q in SUITE {
            if let Ok(Capability::Unsupported { feature }) = try_build(f, q.sql, &db) {
                println!("{:20} {}: {}", f.name(), q.id, feature);
            }
        }
    }

    if write_svg {
        std::fs::create_dir_all("target/diagrams").expect("can create output dir");
        for q in SUITE {
            for f in VisFormalism::ALL {
                let viz = QueryVisualizer::new(f, Backend::Svg);
                if let Ok(out) = viz.visualize(q.sql, &db) {
                    let path = format!(
                        "target/diagrams/{}-{}.svg",
                        q.id,
                        f.name().to_lowercase().replace(' ', "-")
                    );
                    std::fs::write(&path, &out.rendering).expect("can write SVG");
                    println!("wrote {path}");
                }
            }
        }
    }
}
