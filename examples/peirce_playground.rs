//! Part 4 of the tutorial, live: a tour of the *early* diagrammatic
//! systems — an alpha-graph proof, the beta-graph scope ambiguity, and a
//! syllogism decided with Venn diagrams.
//!
//! ```sh
//! cargo run --example peirce_playground
//! ```

use relviz::diagrams::peirce::alpha::{AlphaGraph, AlphaItem};
use relviz::diagrams::peirce::beta::{holds, BetaGraph, BetaItem, Hook, Line};
use relviz::diagrams::syllogism::{decide_fol, decide_venn, Figure, Syllogism};
use relviz::diagrams::euler::Categorical;
use relviz::model::{Database, DataType, Relation, Schema, Tuple};

fn main() {
    alpha_modus_ponens();
    alpha_prover();
    beta_ambiguity();
    venn_syllogisms();
}

/// The same derivation, found automatically by best-first search over the
/// five rules.
fn alpha_prover() {
    use relviz::diagrams::peirce::prove::{prove, ProveOptions};
    println!("═══ alpha graphs: machine-found derivations ═══\n");
    let premises = AlphaGraph::new(vec![
        AlphaItem::atom("P"),
        AlphaItem::cut(vec![AlphaItem::atom("P"), AlphaItem::cut(vec![AlphaItem::atom("Q")])]),
        AlphaItem::cut(vec![AlphaItem::atom("Q"), AlphaItem::cut(vec![AlphaItem::atom("R")])]),
    ]);
    let goal = AlphaGraph::new(vec![AlphaItem::atom("R")]);
    println!("premises: {}", premises.reading());
    println!("goal:     {}", goal.reading());
    match prove(&premises, &goal, ProveOptions::default()) {
        Some(steps) => {
            println!("derivation found ({} steps):", steps.len());
            for (i, s) in steps.iter().enumerate() {
                println!("  {}. {s}", i + 1);
            }
        }
        None => println!("no derivation within bounds"),
    }
    println!();
}

/// Derive Q from {P, P→Q} using Peirce's five rules, step by step.
fn alpha_modus_ponens() {
    println!("═══ alpha graphs: modus ponens, diagrammatically ═══\n");
    let premises = AlphaGraph::new(vec![
        AlphaItem::atom("P"),
        AlphaItem::cut(vec![AlphaItem::atom("P"), AlphaItem::cut(vec![AlphaItem::atom("Q")])]),
    ]);
    println!("premises:          {}", premises.reading());
    let s1 = premises.deiterate(&[1], 0).expect("P occurs in an enclosing context");
    println!("after deiteration: {}", s1.reading());
    let s2 = s1.remove_double_cut(&[], 1).expect("a true double cut");
    println!("after double cut:  {}", s2.reading());
    let s3 = s2.erase(&[], 0).expect("sheet level is a positive context");
    println!("after erasure:     {}\n", s3.reading());
}

/// The boundary-touching ligature: one drawing, two readings, different
/// truth values — the "imperfect mapping" to DRC.
fn beta_ambiguity() {
    println!("═══ beta graphs: the scope ambiguity ═══\n");
    let graph = BetaGraph {
        items: vec![BetaItem::Cut {
            id: 0,
            items: vec![BetaItem::pred("P", vec![Hook::Line(0)])],
        }],
        lines: vec![Line { scope: None }], // the line touches the cut
    };

    // P = {1} over an active domain {1, 2}.
    let mut db = Database::new();
    let mut p = Relation::empty(Schema::of(&[("a", DataType::Int)]));
    p.insert(Tuple::of((1,))).expect("well-typed");
    db.add("P", p).expect("fresh name");
    let mut q = Relation::empty(Schema::of(&[("a", DataType::Int)]));
    q.insert(Tuple::of((2,))).expect("well-typed");
    db.add("Q", q).expect("fresh name");

    for reading in graph.readings().expect("graph is well-formed") {
        let truth = holds(&reading, &db).expect("evaluates");
        println!("reading: {:40}  →  {}", reading.body.to_string(), truth);
    }
    println!("one diagram, readings that disagree — beta graphs under-determine scope.\n");
}

/// All 256 syllogistic forms, decided by Venn-I and by FOL model checking.
fn venn_syllogisms() {
    println!("═══ Venn diagrams: deciding all 256 syllogisms ═══\n");
    let mut agree = 0;
    let mut valid_strict = Vec::new();
    let mut valid_import = Vec::new();
    for s in Syllogism::all_forms() {
        let venn_strict = decide_venn(&s, false).expect("decidable");
        let fol_strict = decide_fol(&s, false);
        let venn_import = decide_venn(&s, true).expect("decidable");
        if venn_strict == fol_strict {
            agree += 1;
        }
        if venn_strict {
            valid_strict.push(s.mood());
        } else if venn_import {
            valid_import.push(s.mood());
        }
    }
    println!("Venn-I vs FOL agreement: {agree}/256");
    println!(
        "valid unconditionally: {} forms — {}",
        valid_strict.len(),
        valid_strict.join(", ")
    );
    println!(
        "valid under existential import only: {} more — {}",
        valid_import.len(),
        valid_import.join(", ")
    );

    // Barbara, drawn.
    let barbara = Syllogism {
        major: Categorical::All,
        minor: Categorical::All,
        conclusion: Categorical::All,
        figure: Figure::First,
    };
    println!(
        "\nBarbara ({}) is valid: {}",
        barbara.mood(),
        decide_venn(&barbara, false).expect("decidable")
    );

    // ── 4. A beta derivation: modus ponens in four moves ────────────────
    use relviz::diagrams::peirce::beta::{BetaGraph, BetaItem};
    use relviz::diagrams::peirce::beta_rules as rules;
    println!("\n══ beta inference rules: P, ¬[P ∧ ¬[Q]] ⊢ Q ══");
    let p = || BetaItem::pred("P", vec![]);
    let q = || BetaItem::pred("Q", vec![]);
    let start = BetaGraph {
        items: vec![
            p(),
            BetaItem::Cut { id: 0, items: vec![p(), BetaItem::Cut { id: 1, items: vec![q()] }] },
        ],
        lines: vec![],
    };
    let show = |label: &str, g: &BetaGraph| {
        println!("  {label:28} {}", g.reading().expect("unambiguous").body);
    };
    show("start:", &start);
    let s1 = rules::deiterate(&start, &vec![], 0, &vec![0], 0).expect("legal deiteration");
    show("deiterate inner P:", &s1);
    let s2 = rules::double_cut_remove(&s1, &vec![], 1).expect("double cut");
    show("remove double cut:", &s2);
    let s3 = rules::erase(&s2, &vec![], 0).expect("erasure in positive area");
    show("erase P:", &s3);
    println!("  (each step checked sound by evaluating readings — see beta_rules tests)");
}
