//! Part 3 of the tutorial, live: the suite queries Q1–Q8 in all five
//! textual languages, evaluated through five independent engines, with the
//! results cross-checked — "one semantics, five syntaxes".
//!
//! ```sh
//! cargo run --example five_languages
//! ```

use relviz::core::suite::SUITE;
use relviz::model::catalog::sailors_sample;

fn main() {
    let db = sailors_sample();

    println!("query  | SQL  RA   TRC  DRC  Datalog | answers");
    println!("-------+-----------------------------+--------");
    for q in SUITE {
        let via_sql = relviz::sql::eval::run_sql(q.sql, &db).expect("sql evaluates");

        let ra = relviz::ra::parse::parse_ra(q.ra).expect("ra parses");
        let via_ra = relviz::ra::eval::eval(&ra, &db).expect("ra evaluates");

        let trc = relviz::rc::trc_parse::parse_trc(q.trc).expect("trc parses");
        let via_trc = relviz::rc::trc_eval::eval_trc(&trc, &db).expect("trc evaluates");

        let drc = relviz::rc::drc_parse::parse_drc(q.drc).expect("drc parses");
        let via_drc = relviz::rc::drc_eval::eval_drc(&drc, &db).expect("drc evaluates");

        let dl = relviz::datalog::parse::parse_program(q.datalog).expect("datalog parses");
        let via_dl = relviz::datalog::eval::eval_program(&dl, &db).expect("datalog evaluates");

        let tick = |ok: bool| if ok { "✓" } else { "✗" };
        println!(
            "{:6} | {}    {}    {}    {}    {}       | {} tuples — {}",
            q.id,
            tick(true),
            tick(via_sql.same_contents(&via_ra)),
            tick(via_sql.same_contents(&via_trc)),
            tick(via_sql.same_contents(&via_drc)),
            tick(via_sql.same_contents(&via_dl)),
            via_sql.len(),
            q.description,
        );
    }

    println!("\nAs an illustration, Q5 in each language:\n");
    let q5 = relviz::core::suite::by_id("Q5").expect("Q5 exists");
    println!("SQL:     {}", q5.sql);
    println!("RA:      {}", q5.ra);
    println!("TRC:     {}", q5.trc);
    println!("DRC:     {}", q5.drc);
    println!("Datalog:\n{}", q5.datalog);
}
