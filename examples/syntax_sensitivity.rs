//! Syntax-mirroring vs logic-based diagrams (Part 5): the same relational
//! pattern phrased as `NOT EXISTS` and as `NOT IN` produces *different*
//! Visual SQL / SQLVis / TableTalk pictures but *one* Relational Diagram
//! pattern — the tutorial's observation about Visual SQL ("syntactic
//! variants of the same query lead to different representations"), run
//! as code.
//!
//! ```sh
//! cargo run --example syntax_sensitivity
//! ```

use relviz::diagrams::sqlvis::SqlVisDiagram;
use relviz::diagrams::tabletalk::TableTalkDiagram;
use relviz::diagrams::visualsql::VisualSqlDiagram;
use relviz::model::catalog::sailors_sample;

const VARIANT_A: &str = "SELECT S.sname FROM Sailor S WHERE NOT EXISTS \
    (SELECT * FROM Reserves R, Boat B \
     WHERE R.sid = S.sid AND R.bid = B.bid AND B.color = 'red')";
const VARIANT_B: &str = "SELECT S.sname FROM Sailor S WHERE S.sid NOT IN \
    (SELECT R.sid FROM Reserves R, Boat B \
     WHERE R.bid = B.bid AND B.color = 'red')";

fn main() {
    let db = sailors_sample();

    println!("variant A (NOT EXISTS): {VARIANT_A}\n");
    println!("variant B (NOT IN):     {VARIANT_B}\n");

    // Both mean the same thing…
    let ra = relviz::sql::eval::run_sql(VARIANT_A, &db).expect("evaluates");
    let rb = relviz::sql::eval::run_sql(VARIANT_B, &db).expect("evaluates");
    println!("same answers on the sample database: {}\n", ra.same_contents(&rb));

    // …but the syntax-mirroring formalisms draw them differently:
    let va = VisualSqlDiagram::from_sql(VARIANT_A, &db).expect("builds");
    let vb = VisualSqlDiagram::from_sql(VARIANT_B, &db).expect("builds");
    println!("Visual SQL diagrams isomorphic: {}", va.isomorphic(&vb));
    println!("  fingerprint A: {}", va.fingerprint());
    println!("  fingerprint B: {}\n", vb.fingerprint());

    let sa = SqlVisDiagram::from_sql(VARIANT_A, &db).expect("builds");
    let sb = SqlVisDiagram::from_sql(VARIANT_B, &db).expect("builds");
    println!("SQLVis diagrams isomorphic:     {}", sa.isomorphic(&sb));

    let ta = TableTalkDiagram::from_sql(VARIANT_A, &db).expect("builds");
    let tb = TableTalkDiagram::from_sql(VARIANT_B, &db).expect("builds");
    println!(
        "TableTalk tile sequences:       {:?} vs {:?}\n",
        ta.tile_sequence(),
        tb.tile_sequence()
    );

    // The logic-based view: one pattern. flatten_exists is the pattern
    // normalization; the Relational Diagram pattern is then identical.
    let pa = relviz::core::patterns::extract_pattern(
        &relviz::rc::normalize::flatten_exists(
            &relviz::rc::from_sql::parse_sql_to_trc(VARIANT_A, &db).expect("translates"),
        ),
        &db,
        false,
    )
    .expect("pattern");
    let pb = relviz::core::patterns::extract_pattern(
        &relviz::rc::normalize::flatten_exists(
            &relviz::rc::from_sql::parse_sql_to_trc(VARIANT_B, &db).expect("translates"),
        ),
        &db,
        false,
    )
    .expect("pattern");
    println!(
        "Relational Diagram patterns isomorphic: {}",
        relviz::core::patterns::patterns_isomorphic(&pa, &pb)
    );
    println!("\n(The logic-based diagram shows the *pattern*; the syntax-mirroring");
    println!(" diagrams show the *text*. Both are useful — for different readers.)");
}
