//! Quickstart: the Fig. 1–2 scenario of the tutorial — a query arrives as
//! text (here: typed; in the tutorial: dictated), and the system shows it
//! back as a diagram, together with its answers, for the user to verify.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use relviz::core::{Backend, QueryVisualizer, VisFormalism};
use relviz::model::catalog::sailors_sample;

fn main() {
    let db = sailors_sample();

    // The query "the analyst dictated": sailors who reserved all red boats.
    let sql = "SELECT S.sname FROM Sailor S WHERE NOT EXISTS \
               (SELECT * FROM Boat B WHERE B.color = 'red' AND NOT EXISTS \
                 (SELECT * FROM Reserves R WHERE R.sid = S.sid AND R.bid = B.bid))";

    println!("── the query as understood ───────────────────────────────");
    println!("{sql}\n");

    // 1. The answers (what today's systems show).
    let answers = relviz::sql::eval::run_sql(sql, &db).expect("query evaluates");
    println!("── answers ───────────────────────────────────────────────");
    println!("{answers}");

    // 2. The logical form (TRC) the diagrams are built from.
    let trc = relviz::rc::from_sql::parse_sql_to_trc(sql, &db).expect("translates");
    println!("── tuple relational calculus ─────────────────────────────");
    println!("{trc}\n");

    // 3. The diagram, as ASCII right here …
    let viz = QueryVisualizer::new(VisFormalism::RelationalDiagrams, Backend::Ascii);
    let out = viz.visualize(sql, &db).expect("visualizes");
    println!("── Relational Diagram (ASCII preview) ────────────────────");
    println!("{}", out.rendering);

    // … and as SVG on disk for every formalism that supports the query.
    std::fs::create_dir_all("target/diagrams").expect("can create output dir");
    for f in VisFormalism::ALL {
        let viz = QueryVisualizer::new(f, Backend::Svg);
        match viz.visualize(sql, &db) {
            Ok(out) => {
                let path = format!(
                    "target/diagrams/quickstart-{}.svg",
                    f.name().to_lowercase().replace(' ', "-")
                );
                std::fs::write(&path, &out.rendering).expect("can write SVG");
                println!("wrote {path}");
            }
            Err(e) => println!("{}: {e}", f.name()),
        }
    }
}
